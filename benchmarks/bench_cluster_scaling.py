"""Cluster scaling — router QPS / p99 / shed rate vs worker count.

Drives the multi-process serving tier (``repro.cluster``) with the
closed-loop load generator: N concurrent client threads against the
router, sharding across 1, 2 and 4 supervised workers.  Each worker
simulates an accelerator-backed deployment with a fixed per-request
device dwell (``device_dwell_ms``) — the regime the cluster tier
targets, where worker occupancy is device wait, not host CPU, so
sharding across processes overlaps the dwells even on a single-CPU
host.  Claims checked:

* throughput scales with worker count (≥1.5× at 4 workers vs 1);
* a bounded per-worker queue sheds load as typed ``Backpressure`` /
  ``Overloaded`` (counted as shed rate, not failures) instead of
  letting latency collapse;
* an unbounded-enough queue sheds nothing while fully loaded.
"""

import numpy as np
import pytest

from repro.bench import run_closed_loop
from repro.cluster import Backpressure, Cluster, ClusterConfig, Overloaded
from repro.faults.chaos import default_chaos_graph
from repro.obs import MetricsRegistry

RNG = np.random.default_rng(21)
DWELL_MS = 6.0
CLIENTS = 16
QUERIES = 8


@pytest.fixture(scope="module")
def net():
    return default_chaos_graph()


def _drive(graph, workers, max_queue_depth, clients=CLIENTS, queries=QUERIES):
    feed = {
        graph.inputs[0]: RNG.standard_normal(
            graph.desc(graph.inputs[0]).shape
        ).astype(np.float32)
    }
    cluster = Cluster(graph, ClusterConfig(
        workers=workers,
        max_queue_depth=max_queue_depth,
        device_dwell_ms=DWELL_MS,
        metrics=MetricsRegistry(),
    ))
    try:
        return run_closed_loop(
            lambda c, i: cluster.infer(feed),
            clients=clients,
            queries_per_client=queries,
            shed_errors=(Backpressure, Overloaded),
        )
    finally:
        cluster.close()


@pytest.mark.cluster
def test_cluster_scaling(net, report_table):
    rows = []
    qps = {}
    for workers in (1, 2, 4):
        rep = _drive(net, workers, max_queue_depth=max(64, CLIENTS * 2))
        qps[workers] = rep.qps
        rows.append([
            workers, "none", rep.completed, rep.shed,
            round(rep.qps, 1), round(rep.p50_ms, 2), round(rep.p99_ms, 2),
            round(rep.shed_rate, 3),
        ])
        assert rep.errors == 0
        assert rep.shed == 0  # bound is above offered concurrency

    # Overload config: 2 workers with a queue bound of 1 under 16
    # clients must shed — typed, counted, and with no errors.
    over = _drive(net, 2, max_queue_depth=1)
    rows.append([
        2, 1, over.completed, over.shed,
        round(over.qps, 1), round(over.p50_ms, 2), round(over.p99_ms, 2),
        round(over.shed_rate, 3),
    ])

    report_table(
        "Cluster scaling — router QPS vs supervised worker count",
        ["workers", "queue bound", "completed", "shed", "QPS",
         "p50 (ms)", "p99 (ms)", "shed rate"],
        rows,
        name="cluster_scaling",
        config={
            "graph": "chaos-cnn-16", "clients": CLIENTS,
            "queries_per_client": QUERIES, "device_dwell_ms": DWELL_MS,
        },
        qps_by_workers={str(k): v for k, v in qps.items()},
        overload_shed_rate=over.shed_rate,
    )

    assert over.errors == 0
    assert over.shed > 0  # admission control actually engaged
    # The acceptance bar: sharding must pay for its IPC.
    assert qps[4] >= 1.5 * qps[1], (
        f"4-worker QPS {qps[4]:.1f} is not >=1.5x 1-worker QPS {qps[1]:.1f}"
    )
    assert qps[2] > qps[1]
