"""Serving — cold vs. warm session creation and concurrent throughput.

The paper front-loads scheme search, backend selection, Winograd transform
generation and memory planning into pre-inference (Section 3.2); the
serving layer persists those results so only the first process ever pays
them.  Claims checked: a warm engine (artifacts replayed from the
pre-inference cache) creates sessions measurably faster than a cold one;
pooled concurrent serving stays bit-identical to serial execution; and
micro-batching raises single-sample throughput.
"""

import numpy as np
import pytest

from repro.bench import time_callable
from repro.converter import optimize
from repro.core import Session, SessionConfig
from repro.core.schemes import clear_scheme_memo
from repro.kernels.winograd import clear_transform_cache
from repro.serving import Engine, EngineConfig, PreInferenceCache

RNG = np.random.default_rng(2020)
SIZE = 96
REQUESTS = 24
CLIENTS = 4


@pytest.fixture(scope="module")
def net(tmp_path_factory):
    from repro.models import squeezenet_v1_1

    return optimize(squeezenet_v1_1(input_size=SIZE, classes=10))


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "preinference-cache")


def _feeds(n):
    return [
        {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}
        for _ in range(n)
    ]


def test_cold_vs_warm_prepare(net, cache_dir, report_table, benchmark):
    clear_transform_cache()
    clear_scheme_memo()
    cold = Engine(net, EngineConfig(pool_size=1, cache_dir=cache_dir))
    cold_ms = cold.stats.cold_prepare_ms[0]

    # Incremental prepare on a fully cold process (no disk cache, no
    # in-memory caches): execution creation — including Winograd
    # transform generation — is deferred off the prepare critical path
    # and finished by a background thread.  (The parallel scheme fan-out
    # is off here: under the GIL, fanning out 26 sub-millisecond
    # pure-Python searches costs more than it saves at this scale.)
    clear_transform_cache()
    clear_scheme_memo()
    incremental = Engine(net, EngineConfig(
        pool_size=1, cache_dir=cache_dir + "-incremental",
        session=SessionConfig(lazy_prepare=True),
    ))
    incremental_ms = incremental.stats.cold_prepare_ms[0]

    # simulate a fresh process: in-memory transform cache gone, disk warm
    clear_transform_cache()
    warm = Engine(net, EngineConfig(pool_size=1, cache_dir=cache_dir))
    warm_ms = warm.stats.warm_prepare_ms[0]

    cache = PreInferenceCache(cache_dir)
    entry = cache.load(warm.cache_key)

    def warm_session():
        return Session(net, artifacts=entry.apply())

    benchmark(warm_session)
    steady = time_callable(warm_session, repeats=8).median_ms

    report_table(
        "Serving — cold vs warm session creation (pre-inference cache)",
        ["metric", "value"],
        [
            ["cold prepare (ms)", round(cold_ms, 1)],
            ["cold prepare, incremental (ms)", round(incremental_ms, 1)],
            ["warm prepare, first (ms)", round(warm_ms, 1)],
            ["warm prepare, steady (ms)", round(steady, 1)],
            ["cold/warm speedup", f"{cold_ms / max(warm_ms, 1e-9):.1f}x"],
            ["cold/incremental speedup",
             f"{cold_ms / max(incremental_ms, 1e-9):.1f}x"],
            ["winograd entries replayed", len(entry.winograd)],
            ["cached schemes", len(entry.schemes)],
        ],
        config={"model": "squeezenet_v1.1", "input_size": SIZE,
                "cold_prepare_ms": cold_ms,
                "incremental_cold_prepare_ms": incremental_ms,
                "warm_prepare_ms": warm_ms},
        metrics=warm.metrics.snapshot(),
    )
    # The headline acceptance criterion.  Steady-state is the fair warm
    # number: the *first* warm create pays the one-time JSON cache read,
    # which can edge above cold when a prior test warmed the process.
    assert steady < cold_ms
    # Incremental prepare must shrink the *cold* critical path too.
    assert incremental_ms < cold_ms
    x = _feeds(1)[0]
    np.testing.assert_array_equal(
        list(cold.infer(x).values())[0], list(warm.infer(x).values())[0]
    )
    np.testing.assert_array_equal(
        list(cold.infer(x).values())[0], list(incremental.infer(x).values())[0]
    )


def test_concurrent_throughput(net, cache_dir, report_table, benchmark):
    requests = _feeds(REQUESTS)
    serial = Session(net)
    t_serial = time_callable(
        lambda: [serial.run(x) for x in requests], repeats=3
    ).median_ms
    gold = [list(serial.run(x).values())[0] for x in requests]

    pooled = Engine(net, EngineConfig(pool_size=CLIENTS, cache_dir=cache_dir))
    results = pooled.infer_many(requests, clients=CLIENTS)
    for got, want in zip(results, gold):  # concurrency must not change bits
        np.testing.assert_array_equal(list(got.values())[0], want)
    pooled_timing = time_callable(
        lambda: pooled.infer_many(requests, clients=CLIENTS), repeats=3
    )
    t_pooled = pooled_timing.median_ms
    benchmark(lambda: pooled.infer_many(requests, clients=CLIENTS))

    with Engine(net, EngineConfig(
        pool_size=1, cache_dir=cache_dir, batching=True,
        max_batch=8, batch_timeout_ms=5.0,
    )) as batched:
        t_batched = time_callable(
            lambda: batched.infer_many(requests, clients=CLIENTS), repeats=3
        ).median_ms
        stats = batched.batcher.stats

    def rps(ms):
        return REQUESTS / (ms / 1000.0)

    report_table(
        "Serving — concurrent throughput (24 single-sample requests)",
        ["mode", "wall (ms)", "req/s"],
        [
            ["serial session", round(t_serial), round(rps(t_serial))],
            [f"pool of {CLIENTS}", round(t_pooled), round(rps(t_pooled))],
            [f"micro-batch <=8 (mean {stats.mean_batch_size():.1f})",
             round(t_batched), round(rps(t_batched))],
        ],
        config={"model": "squeezenet_v1.1", "input_size": SIZE,
                "requests": REQUESTS, "clients": CLIENTS},
        timing=pooled_timing,
        metrics=pooled.metrics.snapshot(),
    )
    # batching must actually coalesce on this traffic pattern
    assert stats.batches < stats.requests
