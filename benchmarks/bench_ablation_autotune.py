"""Ablation — measured auto-tuning vs. the Eq. 2 cost model (future work 1).

Runs the measurement-based scheme tuner on a real network and compares the
resulting end-to-end wall time against the cost-model selection.  Claims
checked: tuning costs milliseconds-to-seconds (not TVM's hours), the tuned
session is never meaningfully slower, and on this host — whose BLAS
substrate differs from the ARM world the cost model is calibrated for —
it is usually faster.
"""

import numpy as np
import pytest

from repro.bench import time_callable
from repro.converter import optimize
from repro.core import Session, SessionConfig, autotune_schemes
from repro.models import squeezenet_v1_1

RNG = np.random.default_rng(77)
SIZE = 96


@pytest.fixture(scope="module")
def net():
    return optimize(squeezenet_v1_1(input_size=SIZE, classes=10))


def test_ablation_autotune_vs_cost_model(net, report_table, benchmark):
    report = autotune_schemes(net, repeats=2)
    feed = {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}
    base = Session(net)
    tuned = Session(net, SessionConfig(scheme_overrides=report.decisions))
    benchmark(lambda: tuned.run(feed))
    t_base = time_callable(lambda: base.run(feed), repeats=8).median_ms
    t_tuned = time_callable(lambda: tuned.run(feed), repeats=8).median_ms
    changed = sum(
        1 for name, d in report.decisions.items()
        if (d.kind, d.winograd_n)
        != (report.model_decisions[name].kind, report.model_decisions[name].winograd_n)
    )
    report_table(
        "Ablation — auto-tuning (measured) vs Eq. 2 cost model",
        ["metric", "value"],
        [
            ["convs tuned", len(report.decisions)],
            ["tuning wall time (ms)", round(report.tuning_ms)],
            ["decisions changed vs model", changed],
            ["cost-model session (ms)", round(t_base, 1)],
            ["auto-tuned session (ms)", round(t_tuned, 1)],
            ["speedup", f"{t_base / t_tuned:.2f}x"],
        ],
        config={"model": "squeezenet_v1.1", "input_size": SIZE, "tune_repeats": 2},
        tuned_ms=t_tuned,
        base_ms=t_base,
    )
    # tuning cost stays in the interactive regime (vs TVM's hours, Table 5)
    assert report.tuning_ms < 60_000
    # never meaningfully slower than the cost model's choice
    assert t_tuned <= t_base * 1.15


def test_ablation_tuning_cost_scales_with_convs(report_table, benchmark):
    from repro.ir import GraphBuilder

    def net_with(n_convs):
        b = GraphBuilder(f"n{n_convs}", seed=0)
        x = b.input("in", (1, 8, 24, 24))
        for _ in range(n_convs):
            x = b.conv(x, oc=8, kernel=3)
        b.output(x)
        return b.finish()

    small = autotune_schemes(net_with(2), repeats=1)
    large = autotune_schemes(net_with(8), repeats=1)
    benchmark(lambda: autotune_schemes(net_with(2), repeats=1))
    report_table(
        "Ablation — tuning cost scaling",
        ["convs", "tuning ms"],
        [[2, round(small.tuning_ms)], [8, round(large.tuning_ms)]],
    )
    assert large.tuning_ms > small.tuning_ms
