"""Ablation — the Winograd generator's interpolation spacing f (Eq. 8).

The paper sets f = 0.5 "to minimize the numerical errors".  This ablation
measures real float32 error of generated F(n x n, 3 x 3) algorithms against
a float64 direct convolution for f in {1/4, 1/2, 1} and several tile
sizes.  Claims checked: f = 1/2 is never worse than f = 1 (the naive
integer-point choice), and error grows with tile size for any f — the
motivation for capping n + k - 1 in the scheme pool.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.kernels import winograd_conv2d
from repro.kernels.conv import conv2d_im2col

RNG = np.random.default_rng(21)


def _rel_error(n, f, ic=16, oc=16, size=36, k=3):
    x = RNG.standard_normal((1, ic, size, size)).astype(np.float32)
    w = RNG.standard_normal((oc, ic, k, k)).astype(np.float32)
    ref = conv2d_im2col(x.astype(np.float64), w.astype(np.float64))
    got = winograd_conv2d(x, w, n=n, f=f)
    return float(np.abs(got - ref).max() / np.abs(ref).max())


def test_ablation_f_choice(report_table, benchmark):
    fs = [Fraction(1, 4), Fraction(1, 2), Fraction(1)]
    ns = [2, 4, 6]
    errors = {(n, f): _rel_error(n, f) for n in ns for f in fs}
    benchmark(lambda: _rel_error(4, Fraction(1, 2)))
    report_table(
        "Ablation — Winograd generator numerical error (relative, f x n)",
        ["tile n"] + [f"f={f}" for f in fs],
        [[n] + [f"{errors[(n, f)]:.2e}" for f in fs] for n in ns],
        config={"fs": [str(f) for f in fs], "tiles": ns},
    )
    for n in ns:
        # the paper's f=1/2 beats (or matches) integer points f=1
        assert errors[(n, Fraction(1, 2))] <= errors[(n, Fraction(1))] * 1.5
    # all configurations stay usable for inference
    assert all(e < 1e-2 for e in errors.values())


def test_ablation_error_grows_with_tile(report_table, benchmark):
    """Motivates SchemeConfig.max_tile: large tiles trade accuracy.

    Averaged over several random draws — a single draw sits at the
    float32 noise floor where the ordering can flip by chance.
    """
    f = Fraction(1, 2)
    draws = 5
    errors = {
        n: float(np.mean([_rel_error(n, f) for _ in range(draws)]))
        for n in (2, 4, 6, 8)
    }
    benchmark(lambda: _rel_error(2, f))
    report_table(
        "Ablation — error vs tile size (f = 1/2, mean of 5 draws)",
        ["tile n", "relative error"],
        [[n, f"{e:.2e}"] for n, e in errors.items()],
    )
    # trend with slack for noise: the largest tile is never *better* than
    # the smallest by more than noise, and typically worse
    assert errors[8] > errors[2] * 0.8
    assert errors[2] < 1e-5  # small tiles are effectively exact
