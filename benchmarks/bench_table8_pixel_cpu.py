"""Table 8 / Appendix B — Inception-v3 on Pixel CPUs, TF-Lite vs. MNN.

Simulated latencies at 1 and 4 threads.  The asserted shape: MNN beats
TF-Lite in every cell, 4 threads beat 1 thread for both engines, and
Pixel 3 beats Pixel 2.  (Note recorded in EXPERIMENTS.md: the paper's own
TF-Lite/MNN gap differs between Figure 7 (~3x) and Table 8 (~1.5x); our
single globally-calibrated TF-Lite profile lands between the two.)
"""

import pytest

from repro.baselines import ENGINES
from repro.devices import get_device
from repro.sim import estimate_latency

#: Paper Table 8: (phone, threads) -> (TF-Lite ms, MNN ms).
PAPER = {
    ("Pixel2", 1): (974, 664),
    ("Pixel2", 4): (310, 214),
    ("Pixel3", 1): (873, 593),
    ("Pixel3", 4): (239, 160),
}


def test_table8_pixel_inception(model, report_table, benchmark):
    inception = model("inception_v3")
    benchmark(
        lambda: estimate_latency(
            inception, ENGINES["MNN"], get_device("Pixel3"), "cpu", 4
        )
    )
    rows, sims = [], {}
    for (phone, threads), (paper_tfl, paper_mnn) in PAPER.items():
        device = get_device(phone)
        tfl = estimate_latency(inception, ENGINES["TF-Lite"], device, "cpu", threads).total_ms
        mnn = estimate_latency(inception, ENGINES["MNN"], device, "cpu", threads).total_ms
        sims[(phone, threads)] = (tfl, mnn)
        rows.append([phone, threads, round(tfl), round(mnn), paper_tfl, paper_mnn])
    report_table(
        "Table 8 — Inception-v3 CPU inference (ms)",
        ["phone", "#threads", "TF-Lite (sim)", "MNN (sim)",
         "TF-Lite (paper)", "MNN (paper)"],
        rows,
        config={"network": "inception_v3",
                "settings": [f"{p}x{t}" for p, t in PAPER]},
    )
    for key, (tfl, mnn) in sims.items():
        assert mnn < tfl, key                      # MNN consistently faster
    for phone in ("Pixel2", "Pixel3"):
        assert sims[(phone, 4)][1] < sims[(phone, 1)][1]   # threads help
    for threads in (1, 4):
        assert sims[("Pixel3", threads)][1] < sims[("Pixel2", threads)][1]


def test_table8_thread_scaling_band(model, report_table, benchmark):
    """Paper's implied 1->4 thread speedup is ~3.1-3.7x (frequency-sum
    scaling minus the serial memory-bound tail); ours must land nearby."""
    inception = model("inception_v3")
    device = get_device("Pixel3")
    benchmark(lambda: estimate_latency(inception, ENGINES["MNN"], device, "cpu", 1))
    t1 = estimate_latency(inception, ENGINES["MNN"], device, "cpu", 1).total_ms
    t4 = estimate_latency(inception, ENGINES["MNN"], device, "cpu", 4).total_ms
    speedup = t1 / t4
    report_table(
        "Table 8 — MNN thread scaling on Pixel 3",
        ["threads", "sim ms", "paper ms"],
        [[1, round(t1), 593], [4, round(t4), 160], ["speedup", f"{speedup:.2f}x", "3.71x"]],
    )
    assert 2.0 < speedup < 4.2
