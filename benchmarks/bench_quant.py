"""Quantized inference — int8 decode throughput, KV-slab capacity at
equal arena bytes, and the weight-quantization accuracy headline.

Claims checked: an int8 KV cache holds >= 3x the tokens of fp32 in the
same arena (per-row scales included in the accounting), quantized decode
emits bit-identical tokens on seeded replay while staying within a small
factor of fp32 throughput (pure numpy has no real int8 speedup; the cost
model's ``int8_gemm_speedup`` models the hardware win), and per-channel
weight quantization moves the tiny decoder's logits by at most the
accuracy contract's bound."""

from dataclasses import replace

import numpy as np
import pytest

from repro.bench import time_callable
from repro.genai import (
    GenerationConfig,
    GenerationEngine,
    KVCacheConfig,
    SamplingParams,
)
from repro.models.text import tiny_decoder
from repro.quant import max_abs_error, quantize_graph

SEED = 404
VOCAB = 96
MAX_SEQ = 48
D_MODEL = 32
HEADS = 2
LAYERS = 2
MAX_TOKENS = 16
ERROR_BOUND = 0.15


def _config(**overrides):
    base = dict(
        vocab=VOCAB, max_seq=MAX_SEQ, d_model=D_MODEL, heads=HEADS,
        layers=LAYERS, seed=SEED, max_batch=4, page_tokens=8,
        smallest_bucket=8,
    )
    base.update(overrides)
    return GenerationConfig(**base)


def _prompts(n, seed=SEED):
    rng = np.random.default_rng(seed)
    return [[int(t) for t in rng.integers(0, VOCAB, size=int(ln))]
            for ln in rng.integers(4, 9, size=n)]


def _run(config, prompts):
    engine = GenerationEngine(config)
    try:
        params = SamplingParams(max_tokens=MAX_TOKENS)
        engine.generate(prompts[:1], params)  # warm the prepared buckets

        def serve():
            return engine.generate(prompts, params)

        timing = time_callable(serve, repeats=3)
        results = serve()
        tokens = sum(len(r.tokens) for r in results)
        return {
            "timing": timing,
            "tokens": [r.tokens for r in results],
            "tps": tokens / (timing.median_ms / 1000.0),
            "stats": engine.stats(),
        }
    finally:
        engine.close()


def test_quant_decode_throughput(report_table):
    """int8 KV (+ int8 weights) vs fp32 decode, identical request mix."""
    prompts = _prompts(6)
    fp = _run(_config(), prompts)
    q_kv = _run(_config(kv_dtype="int8"), prompts)
    q_full = _run(_config(kv_dtype="int8", quantize_weights=True), prompts)

    replayed = _run(_config(kv_dtype="int8", quantize_weights=True), prompts)
    assert q_full["tokens"] == replayed["tokens"], (
        "quantized decode must be seeded-replayable bit-for-bit"
    )

    rows = []
    for label, run in (("fp32", fp), ("int8 KV", q_kv),
                       ("int8 KV + int8 weights", q_full)):
        rows.append([
            label,
            round(run["timing"].median_ms, 2),
            round(run["tps"], 1),
            int(run["stats"]["kv_bytes_per_token"]),
        ])
    report_table(
        "Quant — decode throughput, int8 vs fp32 (same request mix)",
        ["variant", "ms", "tokens/s", "KV B/token"],
        rows,
        config={"model": f"tiny_decoder L{LAYERS} D{D_MODEL}",
                "requests": len(prompts), "max_tokens": MAX_TOKENS},
        timing=q_full["timing"],
    )
    # numpy emulation: int8 must stay within an order of magnitude
    assert q_full["tps"] > fp["tps"] / 10.0


def test_quant_kv_slab_capacity(report_table):
    """Tokens per arena byte: the >= 3x acceptance criterion, plus the
    utilization comparison at equal arena bytes."""
    rows = []
    ratios = {}
    for d_head in (8, 16):
        fp = KVCacheConfig(layers=LAYERS, heads=HEADS, d_head=d_head,
                           page_tokens=8, capacity_tokens=256, max_seq=MAX_SEQ)
        q = replace(fp, kv_dtype="int8")
        arena = fp.total_pages * fp.page_bytes
        fp_tokens = arena // fp.per_token_bytes
        q_tokens = arena // q.per_token_bytes
        ratios[d_head] = fp.per_token_bytes / q.per_token_bytes
        rows.append([
            f"d_head={d_head}",
            fp.per_token_bytes, q.per_token_bytes,
            int(fp_tokens), int(q_tokens),
            round(ratios[d_head], 2),
        ])
    report_table(
        "Quant — KV-slab capacity at equal arena bytes (per-row scales included)",
        ["geometry", "fp32 B/token", "int8 B/token",
         "fp32 tokens", "int8 tokens", "ratio"],
        rows,
        config={"layers": LAYERS, "heads": HEADS,
                "arena": "capacity_tokens=256 fp32 carve"},
    )
    assert all(r >= 3.0 for r in ratios.values()), ratios


def test_quant_accuracy_headline(report_table):
    """Max-abs-error of per-channel int8 weights on decoder logits."""
    graph = tiny_decoder(mode="full", seq_len=16, batch=1, vocab=VOCAB,
                         max_seq=16, d_model=D_MODEL, heads=HEADS,
                         layers=LAYERS, seed=7)
    quantized = quantize_graph(graph)
    rng = np.random.default_rng(0)
    feeds = {
        "tokens": rng.integers(0, VOCAB, size=(1, 16)).astype(np.int32),
        "positions": np.arange(16, dtype=np.int32).reshape(1, 16),
    }
    err = max_abs_error(graph, quantized, feeds, outputs=["logits"])

    fp_bytes = sum(c.nbytes for c in graph.constants.values())
    q_bytes = sum(c.nbytes for c in quantized.constants.values())
    report_table(
        "Quant — per-channel int8 weight accuracy (logits max-abs-error)",
        ["metric", "value"],
        [
            ["logits max-abs-error", round(float(err), 5)],
            ["contract bound", ERROR_BOUND],
            ["weight bytes fp32", fp_bytes],
            ["weight bytes int8", q_bytes],
            ["weight compression", round(fp_bytes / q_bytes, 2)],
        ],
        config={"model": f"tiny_decoder L{LAYERS} D{D_MODEL}",
                "seq_len": 16},
    )
    assert err <= ERROR_BOUND
