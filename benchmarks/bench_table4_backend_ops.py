"""Table 4 — backend/operator coverage comparison.

The paper's Table 4 counts operators per backend per engine; MNN supports
the most backends and the broadest GPU coverage.  Here we count this
reproduction's actual registries: the CPU backend supports every
registered op, each simulated GPU API a curated subset (proportioned to
the paper's MNN row), and the baseline engines the API sets their profiles
declare.  The asserted shape: CPU > Metal > Vulkan >= OpenCL > OpenGL, and
MNN covers all four GPU APIs while every baseline covers at most one.
"""

import pytest

from repro.backends import CPUBackend, GPU_OP_COVERAGE
from repro.baselines import ENGINES
from repro.devices import GpuApi

#: Paper Table 4 operator counts for MNN.
PAPER_MNN = {"cpu": 94, "metal": 55, "opengl": 15, "opencl": 33, "vulkan": 35}


def test_table4_mnn_backend_coverage(report_table, benchmark):
    cpu_ops = benchmark(lambda: len(CPUBackend().supported_ops()))
    counts = {"cpu": cpu_ops}
    for api in GpuApi.ALL:
        counts[api] = len(GPU_OP_COVERAGE[api])
    rows = [
        [backend, counts[backend], PAPER_MNN[backend],
         f"{counts[backend] / counts['cpu']:.2f}",
         f"{PAPER_MNN[backend] / PAPER_MNN['cpu']:.2f}"]
        for backend in ("cpu", "metal", "vulkan", "opencl", "opengl")
    ]
    report_table(
        "Table 4 — MNN operator counts per backend (repro registry vs paper)",
        ["backend", "#ops (repro)", "#ops (paper)", "share (repro)", "share (paper)"],
        rows,
        config={"backends": list(PAPER_MNN)},
    )
    assert counts["cpu"] > counts["metal"] > counts["vulkan"]
    assert counts["vulkan"] >= counts["opencl"] > counts["opengl"]
    # proportionality to the paper's row, within a loose band
    for api in GpuApi.ALL:
        repro_share = counts[api] / counts["cpu"]
        paper_share = PAPER_MNN[api] / PAPER_MNN["cpu"]
        assert abs(repro_share - paper_share) < 0.25, api


def test_table4_engine_gpu_api_breadth(report_table, benchmark):
    """MNN is the only engine covering all GPU standards (paper's claim)."""
    benchmark(lambda: {name: len(p.gpu_efficiency) for name, p in ENGINES.items()})
    rows = []
    for name, profile in sorted(ENGINES.items()):
        apis = sorted(profile.gpu_efficiency)
        rows.append([name, ", ".join(apis) or "-", ", ".join(profile.os_support)])
    report_table(
        "Table 4 — GPU API coverage per engine",
        ["engine", "GPU APIs", "OS support"],
        rows,
    )
    assert set(ENGINES["MNN"].gpu_efficiency) == {"metal", "opencl", "opengl", "vulkan"}
    for name, profile in ENGINES.items():
        if name != "MNN":
            assert len(profile.gpu_efficiency) <= 2
    # only MNN + the libraries ship on both OSes with GPU support everywhere
    assert ENGINES["MNN"].supports_os("ios") and ENGINES["MNN"].supports_os("android")
