"""Autoregressive decoding — prefill vs decode throughput, continuous
batching vs serial per-request decode, and KV-slab utilization.

The paper's prepare/execute split (Section 3.2) is stretched over
dynamic shapes by bucketed pre-inference: every (prompt-bucket) prefill
graph and every (batch-bucket, capacity-bucket) decode graph is prepared
once and reused for every token that lands in the cell.  Claims checked:
decode-step reuse keeps single-token steps cheap relative to prefill;
continuous batching beats serial per-request decode by >= 1.5x aggregate
tokens/sec *without changing any request's tokens*; and capacity
bucketing keeps KV-slab utilization high enough that memory, not
fragmentation, is the admission limit."""

import numpy as np
import pytest

from repro.bench import time_callable
from repro.genai import (
    GenerationConfig,
    GenerationEngine,
    KVCacheAllocator,
    KVCacheConfig,
    SamplingParams,
)

SEED = 404
VOCAB = 96
MAX_SEQ = 48
D_MODEL = 32
HEADS = 2
LAYERS = 2
SEATS = 4
REQUESTS = 8
MAX_TOKENS = 24


def _config(**overrides):
    base = dict(
        vocab=VOCAB, max_seq=MAX_SEQ, d_model=D_MODEL, heads=HEADS,
        layers=LAYERS, seed=SEED, max_batch=SEATS, page_tokens=8,
        smallest_bucket=8,
    )
    base.update(overrides)
    return GenerationConfig(**base)


def _prompts(n, seed=SEED):
    rng = np.random.default_rng(seed)
    return [[int(t) for t in rng.integers(0, VOCAB, size=int(ln))]
            for ln in rng.integers(4, 9, size=n)]


@pytest.fixture(scope="module")
def warm_engine():
    engine = GenerationEngine(_config())
    engine.generate(_prompts(2, seed=1), SamplingParams(max_tokens=2))  # warm
    return engine


def test_prefill_vs_decode_tokens_per_sec(warm_engine, report_table):
    """Per-token cost of the two phases on already-prepared graphs."""
    engine = warm_engine
    prompt = _prompts(1, seed=7)[0]
    params = SamplingParams(max_tokens=MAX_TOKENS)

    def one_request():
        return engine.generate([prompt], params)

    timing = time_callable(one_request, repeats=5)

    alloc = engine.allocator

    def prefill_only():
        slab = alloc.alloc("bench-prefill", len(prompt) + 1)
        try:
            engine.prefill.run(prompt, slab)
        finally:
            alloc.release(slab)

    t_prefill = time_callable(prefill_only, repeats=5).median_ms

    slab = alloc.alloc("bench-decode", len(prompt) + 1)
    engine.prefill.run(prompt, slab)

    def one_step():
        if slab.length >= slab.capacity:
            slab.length = len(prompt)  # rewind instead of re-bucketing
        engine.decode.step([prompt[-1]], [slab])

    t_step = time_callable(one_step, repeats=20).median_ms
    alloc.release(slab)

    prefill_tps = len(prompt) / (t_prefill / 1000.0)
    decode_tps = 1.0 / (t_step / 1000.0)
    report_table(
        "Decode — prefill vs decode throughput (prepared buckets)",
        ["phase", "ms", "tokens/s"],
        [
            [f"prefill ({len(prompt)} tokens)", round(t_prefill, 2),
             round(prefill_tps)],
            ["decode (1 token)", round(t_step, 2), round(decode_tps)],
            [f"end-to-end request (+{MAX_TOKENS} tokens)",
             round(timing.median_ms, 2),
             round(MAX_TOKENS / (timing.median_ms / 1000.0))],
        ],
        config={"model": f"tiny_decoder L{LAYERS} D{D_MODEL}",
                "prompt_tokens": len(prompt), "max_tokens": MAX_TOKENS},
        timing=timing,
    )
    assert t_step > 0 and t_prefill > 0


def test_continuous_batching_vs_serial_decode(report_table):
    """The acceptance criterion: continuous batching >= 1.5x aggregate
    tokens/sec over per-request serial decode, bit-identical outputs."""
    prompts = _prompts(REQUESTS)
    params = SamplingParams(max_tokens=MAX_TOKENS)

    serial = GenerationEngine(_config(max_batch=1))
    # Request tracking on: the timed engine also observes the SLO
    # histograms (queue-wait/TTFT/TPOT) and samples the KV/arena counter
    # tracks, both persisted into the BENCH record below.
    continuous = GenerationEngine(_config(max_batch=SEATS, requests=True))

    gold = serial.generate(prompts, params)       # also warms serial
    batched = continuous.generate(prompts, params)  # also warms continuous
    for a, b in zip(gold, batched):
        assert a.tokens == b.tokens  # batching must not move a single bit

    def run_serial():
        return serial.generate(prompts, params)

    def run_continuous():
        return continuous.generate(prompts, params)

    t_serial = time_callable(run_serial, repeats=3)
    t_continuous = time_callable(run_continuous, repeats=3)

    tokens = sum(len(r.tokens) for r in gold)
    serial_tps = tokens / (t_serial.median_ms / 1000.0)
    continuous_tps = tokens / (t_continuous.median_ms / 1000.0)
    speedup = continuous_tps / serial_tps

    snapshot = continuous.metrics.snapshot()
    assert "slo.ttft_ms" in snapshot["histograms"]
    assert "slo.tpot_ms" in snapshot["histograms"]
    counters = continuous.sampler.series()
    assert counters.get("res.kv.page_utilization"), (
        "resource sampler recorded no KV counter series"
    )

    report_table(
        f"Decode — continuous batching vs serial ({REQUESTS} requests, "
        f"{tokens} tokens)",
        ["mode", "wall (ms)", "tokens/s"],
        [
            ["serial per-request decode", round(t_serial.median_ms),
             round(serial_tps)],
            [f"continuous batching ({SEATS} seats)",
             round(t_continuous.median_ms), round(continuous_tps)],
            ["aggregate speedup", "", f"{speedup:.2f}x"],
        ],
        config={"requests": REQUESTS, "seats": SEATS,
                "max_tokens": MAX_TOKENS,
                "model": f"tiny_decoder L{LAYERS} D{D_MODEL}"},
        timing=t_continuous,
        speedup=speedup,
        metrics=snapshot,
        counters=counters,
        headline={"continuous_tokens_per_sec": {
            "value": continuous_tps, "direction": "higher"}},
    )
    assert speedup >= 1.5, (
        f"continuous batching achieved only {speedup:.2f}x over serial decode"
    )


def test_kv_slab_utilization(report_table):
    """Bucketing wastes at most the gap to the next power-of-two bucket;
    measured utilization under a mixed-length population stays above the
    half-full floor doubling buckets guarantee."""
    config = KVCacheConfig(layers=LAYERS, heads=HEADS, d_head=D_MODEL // HEADS,
                           page_tokens=8, capacity_tokens=512, max_seq=MAX_SEQ)
    alloc = KVCacheAllocator(config)
    rng = np.random.default_rng(2)
    lengths = [int(n) for n in rng.integers(4, MAX_SEQ, size=10)]
    slabs = []
    for i, n in enumerate(lengths):
        try:
            slab = alloc.alloc(f"s{i}", n)
        except Exception:
            break
        slab.length = n
        slabs.append(slab)

    token_util = alloc.token_utilization()
    page_util = alloc.page_utilization()
    per_slab = [round(s.utilization, 2) for s in slabs]
    report = alloc.check()

    report_table(
        "Decode — KV-slab utilization (doubling capacity buckets)",
        ["metric", "value"],
        [
            ["resident sequences", len(slabs)],
            ["token utilization (written/bucketed)", round(token_util, 3)],
            ["page utilization (owned/arena)", round(page_util, 3)],
            ["worst slab utilization", min(per_slab)],
            ["sanitizer diagnostics", len(report.diagnostics)],
        ],
        config={"arena_tokens": config.capacity_tokens,
                "page_tokens": config.page_tokens,
                "population": lengths[: len(slabs)]},
        token_utilization=token_util,
        page_utilization=page_util,
    )
    # Doubling buckets guarantee > 50% once a slab is past its first page.
    assert token_util > 0.5
    assert not report.diagnostics
