"""GenAI — KV prefix caching: shared-prefix serving throughput.

Serving traffic repeats prompt prefixes (system prompts, few-shot
headers, chat history), and every repeat re-prefills K/V rows that are a
pure function of the shared tokens.  The prefix cache serves those rows
copy-on-write from retired sequences' slabs and decodes only the suffix.

Claims checked: on a shared-prefix workload, prefix-hit generation moves
tokens at least 1.3x faster than no-reuse generation, with *bit-identical
output tokens* — and the whole COW lifecycle (share, materialize, parent
eviction, release) comes up clean under the concurrency/lifecycle
sanitizer.
"""

import numpy as np

from repro.bench import time_callable
from repro.genai import (
    GenerationConfig,
    GenerationEngine,
    GenRequest,
    SamplingParams,
)
from repro.obs.metrics import MetricsRegistry

PREFIX_LEN = 48
N_PROMPTS = 8
MAX_TOKENS = 4


def _config(prefix_cache, sanitize=False):
    return GenerationConfig(
        vocab=128, max_seq=96, d_model=32, heads=4, layers=2, seed=6,
        max_batch=2, page_tokens=8, smallest_bucket=8,
        prefix_cache=prefix_cache, min_prefix_tokens=8,
        metrics=MetricsRegistry(), sanitize=sanitize,
        # Track requests: SLO histograms (TTFT/TPOT) and the KV/prefix
        # counter tracks land in this engine's private registry and are
        # persisted into the BENCH record.
        requests=True,
    )


def _requests(seed=2020):
    rng = np.random.default_rng(seed)
    shared = [int(t) for t in rng.integers(0, 128, size=PREFIX_LEN)]
    params = SamplingParams(max_tokens=MAX_TOKENS, temperature=0.7, seed=9)
    return [
        GenRequest(
            f"p{i}",
            shared + [int(t) for t in rng.integers(0, 128, size=int(k))],
            params,
        )
        for i, k in enumerate(rng.integers(2, 6, size=N_PROMPTS))
    ]


def test_prefix_cache_tokens_per_sec(report_table, benchmark):
    requests = _requests()
    generated = N_PROMPTS * MAX_TOKENS

    no_reuse = GenerationEngine(_config(prefix_cache=False))
    prefix = GenerationEngine(_config(prefix_cache=True))
    try:
        # Warm every bucket/decode cell and (for the prefix engine)
        # populate the trie, so the timed runs measure steady state.
        gold = [r.tokens for r in no_reuse.generate(requests)]
        first = [r.tokens for r in prefix.generate(requests)]
        assert first == gold  # identical even while the trie fills

        t_cold = time_callable(
            lambda: no_reuse.generate(requests), repeats=3
        ).median_ms
        warm_timing = time_callable(
            lambda: prefix.generate(requests), repeats=3
        )
        t_warm = warm_timing.median_ms
        benchmark(lambda: prefix.generate(requests))

        replay = [r.tokens for r in prefix.generate(requests)]
        assert replay == gold  # still identical at full hit rate

        stats = prefix.stats()
        assert stats["prefix_hits"] > 0
        no_reuse_tps = generated / (t_cold / 1000.0)
        prefix_tps = generated / (t_warm / 1000.0)
        snapshot = prefix.metrics.snapshot()
        assert "slo.ttft_ms" in snapshot["histograms"]
        assert "slo.tpot_ms" in snapshot["histograms"]
        counters = prefix.sampler.series()
        assert counters.get("res.kv.page_utilization"), (
            "resource sampler recorded no KV counter series"
        )
        assert counters.get("res.prefix.hit_rate"), (
            "resource sampler recorded no prefix-hit-rate series"
        )
    finally:
        no_reuse.close()
        prefix.close()

    # The whole COW lifecycle must come up sanitizer-clean on the same
    # workload (separate engine: the sanitizer instruments every lock).
    sanitized = GenerationEngine(_config(prefix_cache=True, sanitize=True))
    try:
        for _ in range(2):  # second pass serves from the trie
            clean = [r.tokens for r in sanitized.generate(requests)]
        assert clean == gold
        assert sanitized.stats()["prefix_hits"] > 0
        report = sanitized.sanitizer.report()
        assert not report.races
        assert not report.lock_cycles
        assert not report.lifecycle
    finally:
        sanitized.close()

    report_table(
        "GenAI — prefix-hit vs no-reuse generation "
        f"({N_PROMPTS} prompts, {PREFIX_LEN}-token shared prefix)",
        ["mode", "wall (ms)", "new tokens/s"],
        [
            ["no reuse (full prefill)", round(t_cold, 1), round(no_reuse_tps)],
            ["prefix cache (COW hits)", round(t_warm, 1), round(prefix_tps)],
            ["speedup", "", f"{prefix_tps / no_reuse_tps:.2f}x"],
            ["prefix hits / hit tokens",
             int(stats["prefix_hits"]), int(stats["prefix_hit_tokens"])],
            ["cow materializes", int(stats["cow_materializes"]), ""],
        ],
        config={
            "prefix_len": PREFIX_LEN, "prompts": N_PROMPTS,
            "max_tokens": MAX_TOKENS,
            "prefix_hit_tokens_per_sec": prefix_tps,
            "no_reuse_tokens_per_sec": no_reuse_tps,
        },
        timing=warm_timing,
        metrics=snapshot,
        counters=counters,
        headline={"prefix_hit_tokens_per_sec": {
            "value": prefix_tps, "direction": "higher"}},
    )
    # The headline acceptance criterion: reuse must actually pay.
    assert prefix_tps >= 1.3 * no_reuse_tps, (
        f"prefix cache speedup {prefix_tps / no_reuse_tps:.2f}x < 1.3x"
    )
