"""Ablation — the pre-inference memory planner (Figure 3).

Measures the real memory plans the planner produces for every zoo model:
arena size vs. the naive sum of all activation tensors.  Claims checked:
substantial reuse on every architecture (deep chains reuse best), plans
are sound (validated invariant), and planning is fast enough to sit in
session creation.
"""

import time

import pytest

from repro.core import plan_memory


MODELS = [
    ("mobilenet_v1", {}),
    ("mobilenet_v2", {}),
    ("squeezenet_v1.1", {}),
    ("resnet18", {}),
    ("inception_v3", {}),
]


def test_ablation_memory_reuse(model, report_table, benchmark):
    rows = []
    ratios = {}
    for name, kwargs in MODELS:
        graph = model(name, **kwargs)
        plan = plan_memory(graph)
        plan.validate()
        ratios[name] = plan.reuse_ratio
        rows.append(
            [name, f"{plan.total_tensor_bytes / 2**20:.1f}",
             f"{plan.arena_bytes / 2**20:.1f}", f"{plan.reuse_ratio:.2f}x"]
        )
    benchmark(lambda: plan_memory(model("mobilenet_v1")))
    report_table(
        "Ablation — activation memory: naive vs planned arena (MiB)",
        ["model", "naive total", "arena", "reuse"],
        rows,
        config={"models": [name for name, _ in MODELS]},
    )
    # every architecture reuses memory; chains reuse more than DAG-heavy nets
    assert all(r > 1.8 for r in ratios.values())
    assert ratios["mobilenet_v1"] > 3.0  # a pure chain packs tightest


def test_ablation_planning_is_cheap(model, report_table, benchmark):
    """Planning must be a negligible fraction of session creation."""
    graph = model("inception_v3")  # the biggest graph (310 nodes)
    start = time.perf_counter()
    plan = plan_memory(graph)
    ms = (time.perf_counter() - start) * 1000.0
    benchmark(lambda: plan_memory(graph))
    report_table(
        "Ablation — planner cost on the largest graph",
        ["metric", "value"],
        [["nodes", len(graph.nodes)], ["tensors planned", len(plan.offsets)],
         ["planning time (ms)", round(ms, 1)]],
    )
    assert ms < 2000
