"""Table 5 — auto-tuning and compiling cost of the automated-search paradigm.

ResNet-18 deployed with the TVM-style engine on a Galaxy-S8-class device at
1/10/30 trials per workload.  The model's scaling law (linear in trials x
unique conv workloads) is fitted to the paper's published triple and then
exercised: the same law must extrapolate across trials and across models.
"""

import pytest

from repro.baselines import AutoSearchEngine, TuningCostModel, unique_conv_workloads

#: Paper Table 5: trials -> (auto-tuning s, compiling s).
PAPER = {1: (355, 40), 10: (1477, 41), 30: (4583, 41)}


def test_table5_tuning_cost(model, report_table, benchmark):
    g = model("resnet18")
    cost = TuningCostModel()
    benchmark(lambda: cost.tuning_seconds(g, 30))
    rows = []
    for trials, (paper_tune, paper_compile) in PAPER.items():
        tune = cost.tuning_seconds(g, trials)
        compile_s = cost.compile_seconds(g, trials)
        rows.append([trials, round(tune), round(compile_s), paper_tune, paper_compile])
        assert tune == pytest.approx(paper_tune, rel=0.15)
        assert compile_s == pytest.approx(paper_compile, rel=0.10)
    report_table(
        "Table 5 — TVM-style deployment cost for ResNet-18 (seconds)",
        ["#Trial", "auto-tuning (sim)", "compiling (sim)",
         "auto-tuning (paper)", "compiling (paper)"],
        rows,
        config={"model": "resnet18", "trials": list(PAPER)},
    )


def test_table5_cost_multiplies_across_fleet(model, report_table, benchmark):
    """The paper's deployment argument: M models x D devices tuning runs,
    invalidated on every model update — while MNN tunes at runtime for free."""
    engine = AutoSearchEngine()
    nets = [model("resnet18"), model("squeezenet_v1.1"), model("mobilenet_v1")]
    devices = ["GalaxyS8", "MI6", "Mate20", "P20"]
    benchmark(lambda: unique_conv_workloads(nets[0]))
    for net in nets:
        for device in devices:
            engine.deploy(net, device, trials=10)
    total_hours = engine.total_tuning_seconds / 3600
    rows = [[net.name, len(unique_conv_workloads(net))] for net in nets]
    rows.append(["TOTAL fleet tuning (3 models x 4 devices, 10 trials)",
                 f"{total_hours:.1f} h"])
    report_table(
        "Table 5 — fleet deployment cost blow-up",
        ["item", "value"],
        rows,
    )
    assert len(engine.artifacts) == 12
    assert total_hours > 3  # hours of server time for a tiny fleet
    # one model update throws away a quarter of the artifacts
    assert engine.invalidate_model(nets[0].name) == 4
