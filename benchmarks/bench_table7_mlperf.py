"""Table 7 / Appendix A — MLPerf single-stream benchmark of MobileNet-v2.

Real execution: the loadgen issues sequential queries against a prepared
Session and reports the same statistics the paper lists (QPS with/without
loadgen overhead, min/max/mean and 50th/90th percentile latencies).
Absolute numbers reflect this host, not a Pixel 3; the structural claims
checked are the ones that transfer: percentile ordering, small loadgen
overhead, and tail/median ratio in the paper's regime.
"""

import numpy as np
import pytest

from repro.bench import run_single_stream
from repro.converter import optimize
from repro.core import Session

#: Paper Table 7 reference values (Pixel 3, 4 threads).
PAPER = {
    "qps": 64.27,
    "mean_ns": 15_560_004,
    "p50_ns": 15_600_783,
    "p90_ns": 16_407_241,
    "max_over_mean": 36_022_504 / 15_560_004,
}

RNG = np.random.default_rng(9)
SIZE = 160  # MobileNet-v2 at reduced resolution: Pixel-3-class ms on this host


@pytest.fixture(scope="module")
def session(request):
    from repro.models import mobilenet_v2

    graph = optimize(mobilenet_v2(input_size=SIZE))
    return Session(graph)


def test_table7_mlperf_single_stream(session, report_table, benchmark):
    feed = {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}
    report = run_single_stream(lambda: session.run(feed), min_query_count=30)
    benchmark(lambda: session.run(feed))
    rows = [list(r) for r in report.rows()]
    rows.append(["paper QPS w/o overhead (Pixel 3)", PAPER["qps"]])
    rows.append(["paper mean latency (ns)", PAPER["mean_ns"]])
    report_table("Table 7 — MLPerf single-stream, MobileNet-v2", ["item", "value"], rows,
                 config={"model": "mobilenet_v2", "input_size": SIZE,
                         "min_query_count": 30})

    # structural claims that transfer across substrates:
    assert report.query_count >= 30
    assert report.min_latency_ns <= report.p50_latency_ns <= report.p90_latency_ns
    assert report.p90_latency_ns <= report.max_latency_ns
    # loadgen overhead is small: QPS w/ and w/o within 10%
    assert report.qps_with_overhead > report.qps_without_overhead * 0.9
    # single-stream tail is tight (paper: p90/p50 = 1.05); allow host noise
    assert report.p90_latency_ns / report.p50_latency_ns < 2.0
    # max latency within a small multiple of mean (paper: 2.3x)
    assert report.max_latency_ns / report.mean_latency_ns < 6.0


def test_table7_throughput_is_inverse_latency(session, report_table, benchmark):
    """Single-stream QPS must equal 1/mean-latency (definitional check)."""
    feed = {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}
    report = run_single_stream(lambda: session.run(feed), min_query_count=15)
    benchmark(lambda: session.run(feed))
    implied_qps = 1e9 / report.mean_latency_ns
    report_table(
        "Table 7 — QPS consistency",
        ["metric", "value"],
        [["QPS w/o overhead", round(report.qps_without_overhead, 2)],
         ["1 / mean latency", round(implied_qps, 2)]],
    )
    assert report.qps_without_overhead == pytest.approx(implied_qps, rel=0.05)
