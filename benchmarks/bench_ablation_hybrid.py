"""Ablation — hybrid CPU/GPU scheduling vs. single-backend execution.

Runs a real Session on the sparse simulated OpenGL backend (only a handful
of op types, per Table 4's OpenGL column): hybrid scheduling places
unsupported ops on the CPU with automatic inter-backend copies.  Claims
checked: the hybrid session is numerically identical to pure-CPU, its
modeled time beats pure-CPU when the GPU is strong, and the copy overhead
is visible and bounded.
"""

import numpy as np
import pytest

from repro.converter import optimize
from repro.core import Session, SessionConfig
from repro.devices import get_device
from repro.models import mobilenet_v1

RNG = np.random.default_rng(44)
SIZE = 128


@pytest.fixture(scope="module")
def net():
    return optimize(mobilenet_v1(input_size=SIZE))


@pytest.fixture(scope="module")
def feed():
    return {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}


def _virtual_ms(session, feed):
    session.run(feed)
    before = session.clock.now_ms
    session.run(feed)
    return session.clock.now_ms - before


def test_ablation_hybrid_correctness_and_placement(net, feed, report_table, benchmark):
    device = get_device("MI6")
    cpu = Session(net, SessionConfig(backend="cpu"))
    hybrid = Session(net, SessionConfig(backend="opengl", device=device))
    ref = list(cpu.run(feed).values())[0]
    got = list(hybrid.run(feed).values())[0]
    benchmark(lambda: hybrid.run(feed))
    placement = hybrid.placement_summary()
    report_table(
        "Ablation — hybrid scheduling on the sparse OpenGL backend",
        ["metric", "value"],
        [
            ["ops on GPU (opengl)", placement.get("opengl", 0)],
            ["ops on CPU fallback", placement.get("sim_cpu", 0)],
            ["cross-backend copies per run", hybrid.last_run.copies],
            ["copied bytes per run (KiB)", round(hybrid.last_run.copy_bytes / 1024)],
            ["max |hybrid - cpu| output delta", float(np.abs(ref - got).max())],
        ],
        config={"model": "mobilenet_v1", "input_size": SIZE,
                "device": "MI6", "backend": "opengl"},
    )
    assert placement.get("opengl", 0) > 0 and placement.get("sim_cpu", 0) > 0
    np.testing.assert_allclose(ref, got, atol=1e-4)
    assert hybrid.last_run.copies > 0


def test_ablation_hybrid_beats_single_backend(net, feed, report_table, benchmark):
    """On a strong-GPU device the hybrid schedule undercuts pure-CPU, even
    paying for the copies (the paper's 'enable hybrid scheduling' claim)."""
    device = get_device("MI6")  # Adreno 540: 42.74 GFLOPS vs weak CPU
    pure_cpu = Session(net, SessionConfig(backend="sim_cpu", device=device, threads=4))
    hybrid_vk = Session(net, SessionConfig(backend="vulkan", device=device, threads=4))
    t_cpu = _virtual_ms(pure_cpu, feed)
    t_hybrid = _virtual_ms(hybrid_vk, feed)
    benchmark(lambda: hybrid_vk.run(feed))
    report_table(
        "Ablation — hybrid (Vulkan + CPU fallback) vs pure CPU, MI6 (ms, virtual)",
        ["schedule", "ms"],
        [["pure sim-CPU x4", round(t_cpu, 1)], ["hybrid Vulkan", round(t_hybrid, 1)]],
    )
    assert t_hybrid < t_cpu


def test_ablation_auto_backend_picks_the_winner(net, feed, report_table, benchmark):
    """Eq. 4 auto-selection must land on the fastest candidate backend."""
    device = get_device("MI6")
    times = {}
    for kind in ("sim_cpu", "opencl", "vulkan", "opengl"):
        session = Session(net, SessionConfig(backend=kind, device=device, threads=4))
        times[kind] = _virtual_ms(session, feed)
    auto = Session(
        net, SessionConfig(auto_backend=True, device=device, threads=4)
    )
    benchmark(lambda: auto.run(feed))
    t_auto = _virtual_ms(auto, feed)
    report_table(
        "Ablation — Eq. 4 backend auto-selection on MI6 (ms, virtual)",
        ["backend", "ms"],
        [[k, round(v, 1)] for k, v in times.items()] + [["AUTO -> " + auto.backend_kind, round(t_auto, 1)]],
    )
    best = min(times.values())
    assert t_auto <= best * 1.15
