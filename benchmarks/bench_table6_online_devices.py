"""Table 6 — the production case study: stable latency across top-5 devices.

The paper's E-commerce detection service reports ~84-95 ms average
inference time (AIT) across wildly different phones, because MNN's backend
selection picks the best backend per device.  We model the detection
backbone as MobileNet-v1 at 320x320 (a standard SSD-class configuration),
let Eq. 4 pick CPU vs. each available GPU API per device, and check the
paper's stability claim: max/min AIT spread across devices stays small.
"""

import numpy as np
import pytest

from repro.baselines import ENGINES
from repro.devices import get_device
from repro.sim import estimate_latency

#: Paper Table 6: device -> average inference time (ms).
PAPER_AIT = {
    "EML-AL00": 87.9,
    "PBEM00": 84.5,
    "PACM00": 92.0,
    "COL-AL10": 95.1,
    "OPPO R11": 91.4,
}


def _best_backend_ms(graph, device):
    """Eq. 4 over {cpu4} + the device's GPU APIs with MNN's profile."""
    mnn = ENGINES["MNN"]
    candidates = {"cpu": estimate_latency(graph, mnn, device, "cpu", 4).total_ms}
    for api in device.gpu_apis:
        if api in mnn.gpu_efficiency:
            candidates[api] = estimate_latency(graph, mnn, device, api).total_ms
    best = min(candidates, key=candidates.get)
    return best, candidates[best], candidates


def test_table6_stable_ait_across_devices(model, report_table, benchmark):
    backbone = model("mobilenet_v1", input_size=320)
    rows, aits = [], {}
    for name, paper_ait in PAPER_AIT.items():
        device = get_device(name)
        backend, ait, _ = _best_backend_ms(backbone, device)
        aits[name] = ait
        rows.append([name, device.soc, device.gpu, backend, ait, paper_ait])
    benchmark(lambda: _best_backend_ms(backbone, get_device("EML-AL00")))
    mean_ait = float(np.mean(list(aits.values())))
    rows.append(["MEAN", "", "", "", mean_ait, 90.2])
    report_table(
        "Table 6 — top-5 production devices, average inference time (ms)",
        ["device", "CPU", "GPU", "chosen backend", "sim AIT", "paper AIT"],
        rows,
        config={"model": "mobilenet_v1", "input_size": 320,
                "devices": list(PAPER_AIT)},
    )
    # stability claim: across very different SoCs, spread stays bounded
    spread = max(aits.values()) / min(aits.values())
    assert spread < 2.0, aits
    # and the mean lands in the paper's regime (tens of ms, not seconds)
    assert 20 < mean_ait < 300


def test_table6_backend_selection_adapts(model, report_table, benchmark):
    """Devices with strong GPUs offload; weak-GPU devices stay on CPU —
    that adaptivity is what flattens the AIT curve."""
    backbone = model("mobilenet_v1", input_size=320)
    strong = get_device("EML-AL00")   # Mali-G72: 31.61 GFLOPS
    weak = get_device("OPPO R11")     # Adreno 512: 14.23 GFLOPS
    benchmark(lambda: _best_backend_ms(backbone, strong))
    _, _, strong_c = _best_backend_ms(backbone, strong)
    _, _, weak_c = _best_backend_ms(backbone, weak)
    report_table(
        "Table 6 — per-device backend candidates (ms)",
        ["device"] + sorted(strong_c),
        [
            ["EML-AL00"] + [round(strong_c[k], 1) for k in sorted(strong_c)],
            ["OPPO R11"] + [round(weak_c[k], 1) for k in sorted(weak_c)],
        ],
    )
    # the strong GPU must beat its own CPU by more than the weak one does
    strong_gain = strong_c["cpu"] / min(v for k, v in strong_c.items() if k != "cpu")
    weak_gain = weak_c["cpu"] / min(v for k, v in weak_c.items() if k != "cpu")
    assert strong_gain > weak_gain
