"""Table 3 — Strassen vs. direct matrix multiplication.

Both paths run on the same tiled micro-kernel, so Strassen's saving is
exactly its reduced base-tile multiplication count (the paper's
mechanism): 0% at 256^3 (below the recursion floor, Table 3 row 1) and a
12.5%/level cut above it, matching the paper's 7.5-13.5% band.

Substrate caveat (EXPERIMENTS.md): the wall-clock win does *not* transfer
to this host, because the micro-kernel is OpenBLAS running near peak —
the matrix additions Strassen trades for are memory-bound and cost more
than the saved (compute-dense) multiply.  On ARM, where MNN's kernel is
the bottleneck, the MUL saving is the wall saving.  We therefore assert
the MUL-count shape and report wall time informationally.
"""

import numpy as np
import pytest

from repro.bench import time_callable
from repro.kernels import GemmStats, strassen_matmul, tiled_matmul

#: Paper Table 3: (n, k, m) -> (w/o Strassen ms, w/ Strassen ms).
PAPER = {
    (256, 256, 256): (23, 23),
    (512, 512, 512): (191, 176),
    (512, 512, 1024): (388, 359),
    (1024, 1024, 1024): (1501, 1299),
}

RNG = np.random.default_rng(1)
TILE = 256  # micro-kernel tile == the paper's no-benefit size (row 1)


def _case(n, k, m):
    return (
        RNG.standard_normal((n, k)).astype(np.float64),
        RNG.standard_normal((k, m)).astype(np.float64),
    )


@pytest.mark.parametrize("size", sorted(PAPER), ids=[str(s) for s in PAPER])
def test_table3_strassen(size, report_table, benchmark):
    n, k, m = size
    a, b = _case(n, k, m)
    direct_stats, strassen_stats = GemmStats(), GemmStats()
    tiled_matmul(a, b, TILE, direct_stats)
    out = strassen_matmul(a, b, TILE, strassen_stats)
    np.testing.assert_allclose(out, a @ b, atol=1e-6)

    t_direct = time_callable(lambda: tiled_matmul(a, b, TILE), repeats=5).median_ms
    t_strassen = benchmark(lambda: strassen_matmul(a, b, TILE))
    t_strassen = time_callable(lambda: strassen_matmul(a, b, TILE), repeats=5).median_ms

    mul_saving = 1 - strassen_stats.mul_elements / direct_stats.mul_elements
    wall_saving = 1 - t_strassen / t_direct
    paper_wo, paper_w = PAPER[size]
    report_table(
        f"Table 3 — matrix multiplication {size}",
        ["metric", "w/o Strassen", "w/ Strassen", "saving"],
        [
            ["measured ms", t_direct, t_strassen, f"{wall_saving * 100:.1f}%"],
            ["micro-kernel MULs (M)", direct_stats.mul_elements / 1e6,
             strassen_stats.mul_elements / 1e6, f"{mul_saving * 100:.1f}%"],
            ["paper ms", paper_wo, paper_w,
             f"{(1 - paper_w / paper_wo) * 100:.1f}%"],
        ],
        config={"size": size, "tile": TILE},
    )

    if min(n, k, m) >= 512:
        # paper band: 7.5-13.5% — the MUL mechanism must deliver a real cut
        assert mul_saving >= 0.10
        assert strassen_stats.max_depth >= 1
        # wall time stays in the same regime (see substrate caveat above)
        assert t_strassen < t_direct * 5
    else:
        # 256^3: below the micro-kernel floor -> identical plans, 0% saving
        assert strassen_stats.max_depth == 0
        assert mul_saving == pytest.approx(0.0)


def test_table3_saving_grows_with_size(report_table, benchmark):
    """The paper's trend: bigger GEMMs save more (7.9% -> 13.5%)."""
    savings = []
    for size in ((512, 512, 512), (1024, 1024, 1024)):
        a, b = _case(*size)
        d, s = GemmStats(), GemmStats()
        tiled_matmul(a, b, TILE, d)
        strassen_matmul(a, b, TILE, s)
        savings.append(1 - s.mul_elements / d.mul_elements)
    a, b = _case(512, 512, 512)
    benchmark(lambda: strassen_matmul(a, b, TILE))
    report_table(
        "Table 3 — MUL saving by size",
        ["size", "saving"],
        [["512^3", f"{savings[0] * 100:.1f}%"], ["1024^3", f"{savings[1] * 100:.1f}%"]],
    )
    assert savings[1] > savings[0]
