"""Ablation — cost-model tile search vs. exhaustive measurement.

The scheme selector picks the Winograd output tile n from the Eq. 2 cost
model without running anything.  This ablation runs every candidate tile
for real on a spread of conv shapes and asks: how close is the model's
pick to the empirically best tile?  (This is the "semi-automated search
beats blind defaults without auto-tuning cost" claim at kernel scale.)
"""

import numpy as np
import pytest

from repro.bench import time_callable
from repro.core import SchemeConfig, select_conv_scheme
from repro.kernels import conv2d

RNG = np.random.default_rng(12)
CFG = SchemeConfig()

#: (k, ic, oc, input size) — small maps, big maps, deep and shallow convs.
SHAPES = [
    (3, 32, 32, 112),
    (3, 64, 64, 56),
    (3, 128, 128, 28),
    (3, 256, 256, 14),
]


def _measure_tiles(k, ic, oc, size):
    x = RNG.standard_normal((1, ic, size, size)).astype(np.float32)
    w = RNG.standard_normal((oc, ic, k, k)).astype(np.float32)
    times = {}
    for n in CFG.winograd_candidates:
        if n <= 1 or n + k - 1 > CFG.max_tile:
            continue
        times[n] = time_callable(
            lambda n=n: conv2d(x, w, scheme="winograd", winograd_n=n), repeats=3
        ).median_ms
    return times


def test_ablation_tile_search(report_table, benchmark):
    rows = []
    regrets = []
    for shape in SHAPES:
        k, ic, oc, size = shape
        out_hw = (size - k + 1, size - k + 1)
        decision = select_conv_scheme((k, k), ic, oc, out_hw, config=CFG)
        measured = _measure_tiles(k, ic, oc, size)
        best_n = min(measured, key=measured.get)
        picked_n = decision.winograd_n if decision.kind == "winograd" else best_n
        regret = measured.get(picked_n, measured[best_n]) / measured[best_n]
        regrets.append(regret)
        rows.append(
            [str(shape), decision.kind, picked_n, best_n,
             round(measured[best_n], 1),
             round(measured.get(picked_n, measured[best_n]), 1),
             f"{(regret - 1) * 100:.0f}%"]
        )
    x = RNG.standard_normal((1, 64, 56, 56)).astype(np.float32)
    w = RNG.standard_normal((64, 64, 3, 3)).astype(np.float32)
    benchmark(lambda: conv2d(x, w, scheme="winograd", winograd_n=4))
    report_table(
        "Ablation — model-chosen Winograd tile vs measured-best tile",
        ["conv (k,ic,oc,size)", "scheme", "model n", "best n",
         "best ms", "chosen ms", "regret"],
        rows,
        config={"shapes": [str(s) for s in SHAPES],
                "candidates": list(CFG.winograd_candidates)},
        max_regret=max(regrets),
    )
    # the model's pick costs at most ~50% over the measured optimum (wall
    # clock jitters on a shared host), with zero measurement cost
    # (contrast: TVM's hours of auto-tuning)
    assert max(regrets) < 1.55
    assert float(np.mean(regrets)) < 1.25
