"""Table 2 — preparation/execution decoupling (Figure 3's payoff).

MobileNet-v1-class workload on the paper's devices (MI6, P10), CPU
4-thread and GPU Vulkan, with and without decoupling.  Times come from the
simulated backends' virtual clock, which prices exactly the two mechanisms
the paper describes: interleaved buffer management on the CPU and per-run
command-buffer rebuilding on the GPU.
"""

import numpy as np
import pytest

from repro.converter import optimize
from repro.core import Session, SessionConfig
from repro.devices import get_device
from repro.models import mobilenet_v1

#: Paper Table 2 (ms): (device, backend) -> (w/o, w/).
PAPER = {
    ("MI6", "sim_cpu"): (30.9, 28.9),
    ("MI6", "vulkan"): (63.6, 15.8),
    ("P10", "sim_cpu"): (29.0, 26.8),
    ("P10", "vulkan"): (41.0, 20.7),
}

RNG = np.random.default_rng(3)
SIZE = 128  # keeps real NumPy execution quick; virtual timing is size-faithful


@pytest.fixture(scope="module")
def net():
    graph = mobilenet_v1(input_size=SIZE)
    return optimize(graph)


def _virtual_ms(graph, device_name, backend, decouple):
    session = Session(
        graph,
        SessionConfig(
            backend=backend,
            device=get_device(device_name),
            threads=4,
            decouple=decouple,
        ),
    )
    feed = {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}
    session.run(feed)  # warm-up
    before = session.clock.now_ms
    session.run(feed)
    return session.clock.now_ms - before


def test_table2_decoupling(net, report_table, benchmark):
    rows = []
    results = {}
    for (device, backend), (paper_wo, paper_w) in PAPER.items():
        wo = _virtual_ms(net, device, backend, decouple=False)
        w = _virtual_ms(net, device, backend, decouple=True)
        results[(device, backend)] = (wo, w)
        label = "CPU (4 threads)" if backend == "sim_cpu" else "GPU (Vulkan)"
        rows.append(
            [f"{device} {label}", wo, w, f"{(1 - w / wo) * 100:.1f}%",
             paper_wo, paper_w, f"{(1 - paper_w / paper_wo) * 100:.1f}%"]
        )
    report_table(
        "Table 2 — inference time without/with preparation-execution decoupling",
        ["setting", "sim w/o", "sim w/", "sim drop",
         "paper w/o", "paper w/", "paper drop"],
        rows,
        config={"model": "mobilenet_v1", "input_size": SIZE,
                "settings": [f"{d}/{b}" for d, b in PAPER]},
    )

    session = Session(
        net, SessionConfig(backend="sim_cpu", device=get_device("MI6"), threads=4)
    )
    feed = {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}
    benchmark(lambda: session.run(feed))

    for (device, backend), (wo, w) in results.items():
        drop = 1 - w / wo
        if backend == "sim_cpu":
            # paper: ~7-8% CPU improvement; accept a generous band
            assert 0.01 < drop < 0.35, (device, backend, drop)
        else:
            # paper: 50-75% GPU improvement
            assert 0.40 < drop < 0.90, (device, backend, drop)


def test_table2_cpu_wall_clock_direction(net, report_table, benchmark):
    """On the real CPU backend, decoupling must not be slower (and the
    memory pool must genuinely pre-plan the arena).

    Measured as *interleaved pairs* (w/, w/o, w/, w/o, ...) so thermal and
    cache drift on a shared host hits both modes equally.
    """
    import time

    feed = {"data": RNG.standard_normal((1, 3, SIZE, SIZE)).astype(np.float32)}
    decoupled = Session(net, SessionConfig(backend="cpu", decouple=True))
    interleaved = Session(net, SessionConfig(backend="cpu", decouple=False))
    benchmark(lambda: decoupled.run(feed))
    decoupled.run(feed)
    interleaved.run(feed)
    t_dec, t_int = [], []
    for _ in range(9):
        start = time.perf_counter()
        decoupled.run(feed)
        t_dec.append((time.perf_counter() - start) * 1000.0)
        start = time.perf_counter()
        interleaved.run(feed)
        t_int.append((time.perf_counter() - start) * 1000.0)
    med_dec = float(np.median(t_dec))
    med_int = float(np.median(t_int))
    report_table(
        "Table 2 (host CPU, wall clock) — decoupling direction check",
        ["mode", "ms (median of 9 paired runs)"],
        [["interleaved alloc (w/o)", med_int], ["pre-planned (w/)", med_dec]],
    )
    assert decoupled.memory_plan is not None
    assert decoupled.memory_plan.reuse_ratio > 1.5
    # Direction check with host-noise slack: the manager-call overhead our
    # substrate can actually remove is small (numpy kernels still allocate
    # internally), so "not meaningfully slower" is the testable claim.
    assert med_dec <= med_int * 1.20
