"""Figure 8 — the bottleneck of case-by-case optimization (Inception-v3).

Inception-v3 on a Kirin-970 phone: NCNN's hand-written kernel table has no
entry for the network's 1x7/7x1 convolutions, so they fall back to a naive
path and dominate its runtime (paper: 4501 ms vs. MNN's 297 ms).  The
asserted shape: the ordering MNN < MNN-Vulkan-ish < MACE < TF-Lite << NCNN
and the fact (verified structurally) that NCNN's time concentrates in
exactly the asymmetric convolutions.
"""

import pytest

from repro.baselines import ENGINES, analyze_kernel_coverage
from repro.devices import get_device
from repro.sim import estimate_latency

#: Paper Figure 8 values (ms) on Huawei P20 (Kirin 970).
PAPER = {
    "MNN-CPU": 297.1,
    "MNN-Vulkan": 160.9,
    "MACE-CPU": 749.1,
    "MACE-CL": 606.2,
    "TF-Lite-CPU": 1039.1,
    "NCNN-CPU": 4501.1,
}


def _estimates(inception):
    p20 = get_device("P20")
    return {
        "MNN-CPU": estimate_latency(inception, ENGINES["MNN"], p20, "cpu", 4).total_ms,
        "MNN-Vulkan": estimate_latency(inception, ENGINES["MNN"], p20, "vulkan").total_ms,
        "MACE-CPU": estimate_latency(inception, ENGINES["MACE"], p20, "cpu", 4).total_ms,
        "MACE-CL": estimate_latency(inception, ENGINES["MACE"], p20, "opencl").total_ms,
        "TF-Lite-CPU": estimate_latency(inception, ENGINES["TF-Lite"], p20, "cpu", 4).total_ms,
        "NCNN-CPU": estimate_latency(inception, ENGINES["NCNN"], p20, "cpu", 4).total_ms,
    }


def test_fig8_bottleneck(model, report_table, benchmark):
    inception = model("inception_v3")
    benchmark(lambda: estimate_latency(inception, ENGINES["NCNN"],
                                       get_device("P20"), "cpu", 4))
    sims = _estimates(inception)
    report_table(
        "Figure 8 — Inception-v3 on Kirin 970 (ms)",
        ["engine", "sim ms", "paper ms"],
        [[name, round(sims[name]), PAPER[name]] for name in PAPER],
        config={"network": "inception_v3", "device": "P20"},
    )
    # the cliff: NCNN an order of magnitude behind MNN (paper: 15.1x)
    assert sims["NCNN-CPU"] > 8 * sims["MNN-CPU"]
    # overall ordering of the CPU entries matches the paper
    assert sims["MNN-CPU"] < sims["MACE-CPU"] < sims["TF-Lite-CPU"] < sims["NCNN-CPU"]
    # every engine within ~2.5x of its paper value (absolute sanity band)
    for name, paper_ms in PAPER.items():
        assert paper_ms / 2.5 < sims[name] < paper_ms * 2.5, name


def test_fig8_blame_is_on_asymmetric_convs(model, report_table, benchmark):
    """Attribute NCNN's time: the fallback ops must carry the bulk of it,
    and they must be exactly the 1x7/7x1 (and 1x3/3x1) kernels."""
    inception = model("inception_v3")
    p20 = get_device("P20")
    benchmark(lambda: analyze_kernel_coverage(inception, ENGINES["NCNN"]))
    est = estimate_latency(inception, ENGINES["NCNN"], p20, "cpu", 4)
    coverage = analyze_kernel_coverage(inception, ENGINES["NCNN"])
    report_table(
        "Figure 8 — NCNN kernel coverage on Inception-v3",
        ["metric", "value"],
        [
            ["conv kernel coverage", f"{coverage.coverage * 100:.0f}%"],
            ["fallback share of conv MULs", f"{coverage.fallback_mul_share * 100:.0f}%"],
            ["fallback share of runtime", f"{est.fallback_share() * 100:.0f}%"],
            ["fallback kernel shapes",
             ", ".join(f"{k}x{v}" for k, v in sorted(coverage.fallback_kernels.items()))],
        ],
    )
    assert est.fallback_share() > 0.8  # a third of MULs -> >80% of runtime
    assert {(1, 7), (7, 1)} <= set(coverage.fallback_kernels)
    # MNN has no such cliff: its generic scheme covers everything
    mnn_est = estimate_latency(inception, ENGINES["MNN"], p20, "cpu", 4)
    assert mnn_est.fallback_share() == 0.0


def test_fig8_mnn_general_scheme_on_asym_convs(model, report_table, benchmark):
    """MNN executes 1x7/7x1 through the same general sliding/GEMM path —
    verify those ops are a proportionate share of its modeled time."""
    inception = model("inception_v3")
    est = estimate_latency(inception, ENGINES["MNN"], get_device("P20"), "cpu", 4)
    benchmark(lambda: est.by_op_type())
    asym_ms = sum(
        op.ms for op in est.per_op
        if op.op_type == "Conv2D" and op.algorithm in ("direct", "fallback")
    )
    report_table(
        "Figure 8 — MNN time breakdown on Inception-v3",
        ["bucket", "ms"],
        [[k, round(v, 1)] for k, v in sorted(est.by_op_type().items(),
                                             key=lambda kv: -kv[1])[:6]],
    )
    # no single bucket dominates pathologically (the anti-bottleneck claim)
    assert asym_ms < est.total_ms * 0.7
