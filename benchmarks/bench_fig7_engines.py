"""Figure 7 — the headline grid: engines x devices x networks x backends.

Simulated inference times for MobileNet-v1, SqueezeNet-v1.1 and ResNet-18
on iPhoneX/iPhone8/Mate20/MI6 at CPU 2/4 threads and on each GPU backend.
The asserted shape (the paper's observations 1-4):

1. MNN wins (or ties within 5%) against every engine in every CPU cell,
   generally by ~20-40%.
2. On Android GPUs, every competitor has a blind spot somewhere, while MNN
   stays competitive on all three standards.
3. On iOS Metal, CoreML is allowed to win (Apple's own stack); MNN stays
   within ~1.35x.
4. MNN's multi-threaded CPU is competitive with GPU backends on the
   Apple-silicon devices.
"""

import pytest

from repro.baselines import ENGINES
from repro.devices import get_device
from repro.sim import estimate_latency

NETWORKS = ["mobilenet_v1", "squeezenet_v1.1", "resnet18"]
DEVICES = ["iPhoneX", "iPhone8", "Mate20", "MI6"]

#: Paper Figure 7 CPU-4-thread values (ms) for the MNN-vs-NCNN headline.
PAPER_CPU4 = {
    ("mobilenet_v1", "Mate20"): {"NCNN": 28, "MNN": 21},
    ("mobilenet_v1", "MI6"): {"NCNN": 66, "MNN": 58},
    ("resnet18", "Mate20"): {"NCNN": 76, "MNN": 69},
    ("resnet18", "MI6"): {"NCNN": 218, "MNN": 208},
}


def _cpu_grid(graph, threads):
    grid = {}
    for device_name in DEVICES:
        device = get_device(device_name)
        for engine_name, profile in ENGINES.items():
            if engine_name in ("TVM", "CoreML"):
                continue  # TVM is Figure 9; CoreML has no CPU path in Fig. 7
            if not profile.supports_os(device.os):
                continue
            est = estimate_latency(graph, profile, device, "cpu", threads)
            grid[(device_name, engine_name)] = est.total_ms
    return grid


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("threads", [2, 4])
def test_fig7_cpu(network, threads, model, report_table, benchmark):
    graph = model(network)
    benchmark(lambda: estimate_latency(graph, ENGINES["MNN"], get_device("Mate20"),
                                       "cpu", threads))
    grid = _cpu_grid(graph, threads)
    engines = ["NCNN", "MACE", "TF-Lite", "MNN"]
    rows = []
    for device in DEVICES:
        rows.append(
            [device]
            + [round(grid.get((device, e), float("nan")), 1)
               if (device, e) in grid else "-" for e in engines]
        )
    report_table(
        f"Figure 7 — {network}, CPU {threads} threads (ms)",
        ["device"] + engines,
        rows,
        config={"network": network, "threads": threads, "devices": DEVICES},
    )
    # Observation 1: MNN best (or within 5%) everywhere it competes.
    for device in DEVICES:
        mnn = grid[(device, "MNN")]
        rivals = [v for (d, e), v in grid.items() if d == device and e != "MNN"]
        assert mnn <= min(rivals) * 1.05, (network, threads, device)


def test_fig7_cpu4_margins_match_paper(model, report_table, benchmark):
    """The 20-40% headline: sim NCNN/MNN ratios near the paper's."""
    rows = []
    benchmark(lambda: None)
    for (network, device_name), paper in PAPER_CPU4.items():
        graph = model(network)
        device = get_device(device_name)
        mnn = estimate_latency(graph, ENGINES["MNN"], device, "cpu", 4).total_ms
        ncnn = estimate_latency(graph, ENGINES["NCNN"], device, "cpu", 4).total_ms
        rows.append(
            [f"{network}@{device_name}", f"{ncnn / mnn:.2f}x",
             f"{paper['NCNN'] / paper['MNN']:.2f}x"]
        )
        assert 1.0 < ncnn / mnn < 2.0
    report_table(
        "Figure 7 — NCNN/MNN speed ratio, CPU 4 threads",
        ["setting", "sim ratio", "paper ratio"],
        rows,
    )


@pytest.mark.parametrize("network", NETWORKS)
def test_fig7_gpu(network, model, report_table, benchmark):
    graph = model(network)
    benchmark(lambda: estimate_latency(graph, ENGINES["MNN"], get_device("MI6"), "vulkan"))
    rows = []
    results = {}
    columns = [
        ("iPhoneX", "metal", "CoreML"), ("iPhoneX", "metal", "TF-Lite"),
        ("iPhoneX", "metal", "MNN"),
        ("Mate20", "vulkan", "NCNN"), ("Mate20", "opencl", "MACE"),
        ("Mate20", "opengl", "TF-Lite"), ("Mate20", "opencl", "MNN"),
        ("Mate20", "opengl", "MNN"), ("Mate20", "vulkan", "MNN"),
        ("MI6", "vulkan", "NCNN"), ("MI6", "opencl", "MACE"),
        ("MI6", "opengl", "TF-Lite"), ("MI6", "opencl", "MNN"),
        ("MI6", "opengl", "MNN"), ("MI6", "vulkan", "MNN"),
    ]
    for device_name, api, engine in columns:
        est = estimate_latency(graph, ENGINES[engine], get_device(device_name), api)
        results[(device_name, api, engine)] = est.total_ms
        rows.append([device_name, api, engine, round(est.total_ms, 1)])
    report_table(f"Figure 7 — {network}, GPU backends (ms)",
                 ["device", "API", "engine", "sim ms"], rows)

    # Observation 3a: CoreML may beat MNN on Metal, but only moderately.
    metal_ratio = results[("iPhoneX", "metal", "MNN")] / results[("iPhoneX", "metal", "CoreML")]
    assert metal_ratio < 1.35
    # Observation 3b: on each Android GPU standard, MNN beats the rival
    # engine that uses the same standard.
    for device in ("Mate20", "MI6"):
        assert results[(device, "vulkan", "MNN")] < results[(device, "vulkan", "NCNN")]
        assert results[(device, "opencl", "MNN")] < results[(device, "opencl", "MACE")]
        assert results[(device, "opengl", "MNN")] < results[(device, "opengl", "TF-Lite")]
    # Observation 3c: MNN is consistent across the three standards (no
    # blind spot): worst/best across APIs stays < 2x on each device.
    for device in ("Mate20", "MI6"):
        mnn_apis = [results[(device, api, "MNN")] for api in ("opencl", "opengl", "vulkan")]
        assert max(mnn_apis) / min(mnn_apis) < 2.0


def test_fig7_cpu_competitive_with_gpu_on_apple(model, report_table, benchmark):
    """Observation 4: on iPhones, MNN CPU x4 rivals its own GPU backend."""
    graph = model("mobilenet_v1")
    device = get_device("iPhoneX")
    benchmark(lambda: estimate_latency(graph, ENGINES["MNN"], device, "cpu", 4))
    cpu4 = estimate_latency(graph, ENGINES["MNN"], device, "cpu", 4).total_ms
    metal = estimate_latency(graph, ENGINES["MNN"], device, "metal").total_ms
    report_table(
        "Figure 7 — MNN iPhoneX: CPU vs GPU (ms)",
        ["backend", "sim ms", "paper ms"],
        [["CPU 4 threads", round(cpu4, 1), 15], ["Metal GPU", round(metal, 1), 27]],
    )
    assert cpu4 < metal * 1.5  # competitive, as the paper observes
