"""Shared fixtures for the paper-reproduction benchmarks.

Every bench records its paper-style result table through ``report_table``;
the tables are printed in the terminal summary (visible even under pytest's
output capture) so `pytest benchmarks/ --benchmark-only | tee` preserves
them.
"""

import pytest

from repro.analysis import format_diagnostics, has_errors, lint_graph
from repro.models import build_model

_TABLES = []
_MODEL_CACHE = {}


def _lint_or_fail(name, graph):
    """Fail fast on a broken benchmark fixture instead of timing garbage."""
    diags = lint_graph(graph)
    if has_errors(diags):
        pytest.fail(
            f"benchmark graph {name!r} failed lint:\n" + format_diagnostics(diags),
            pytrace=False,
        )


@pytest.fixture
def report_table():
    """Record a (title, headers, rows) table for the terminal summary."""

    def _record(title, headers, rows):
        _TABLES.append((title, headers, [list(r) for r in rows]))

    return _record


@pytest.fixture
def model(request):
    """Cached model builder: ``model("mobilenet_v1", input_size=224)``."""

    def _get(name, **kwargs):
        key = (name, tuple(sorted(kwargs.items())))
        if key not in _MODEL_CACHE:
            graph = build_model(name, **kwargs)
            _lint_or_fail(name, graph)  # every benchmark graph is linted once
            _MODEL_CACHE[key] = graph
        return _MODEL_CACHE[key]

    return _get


def pytest_terminal_summary(terminalreporter):
    from repro.bench import format_table

    if not _TABLES:
        return
    terminalreporter.section("paper reproduction tables")
    for title, headers, rows in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(format_table(headers, rows, title))
    _TABLES.clear()
