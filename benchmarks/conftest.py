"""Shared fixtures for the paper-reproduction benchmarks.

Every bench records its paper-style result table through ``report_table``;
the tables are printed in the terminal summary (visible even under pytest's
output capture) so `pytest benchmarks/ --benchmark-only | tee` preserves
them.  Each recorded table is also appended as a machine-readable record to
``BENCH_<name>.json`` (see :func:`repro.bench.write_bench_result`), so
repeated benchmark runs accumulate a performance trajectory.

Benchmark graphs are sanity-checked three times before any timing: once
by the static linter (``_lint_or_fail``), once by a traced session
(``_trace_or_fail``) that proves the observability instrumentation still
covers pre-inference and every executed operator — tracing that silently
stopped recording would otherwise rot unnoticed — and once by a seeded
fault-storm session (``_chaos_or_fail``) that injects transient kernel
failures and NaN-poisons every Winograd convolution, asserting the
resilience layer still produces finite outputs matching a fault-free run.

The generation stack gets the same treatment once per benchmark session
(``_genai_storm``): a seeded ``kvcache.alloc`` fault storm over a small
continuous-batching engine, asserting that memory-pressure faults degrade
to eviction/retry without moving a single output token.

A fourth pre-flight (``_sanitize_or_fail``) runs each benchmark graph
once under the concurrency sanitizer (``SessionConfig(sanitize=True)``)
with parallel branch execution: the race/lock-order/lifecycle report must
come back clean, so BENCH records are only ever produced by code the
sanitizer vouches for.  The ``sanitize.*`` counters are pre-registered on
the process-wide registry, so every snapshot embedded in a BENCH record
carries them (zeros, unless something rotted).
"""

import os

import pytest

from repro.analysis import format_diagnostics, has_errors, lint_graph
from repro.models import build_model

_TABLES = []
_MODEL_CACHE = {}
_TRACED = set()
_STORMED = set()
_SANITIZED = set()


def _lint_or_fail(name, graph):
    """Fail fast on a broken benchmark fixture instead of timing garbage."""
    diags = lint_graph(graph)
    if has_errors(diags):
        pytest.fail(
            f"benchmark graph {name!r} failed lint:\n" + format_diagnostics(diags),
            pytrace=False,
        )


def _trace_or_fail(name, graph):
    """Run one traced session per benchmark graph; fail if coverage slipped.

    Asserts the two invariants every trace consumer relies on: the
    pre-inference stages appear as spans, and there is one ``op`` span per
    runnable node.
    """
    from repro.analysis.verify_passes import random_feeds
    from repro.core import Session, SessionConfig
    from repro.obs import Tracer

    tracer = Tracer()
    session = Session(graph, SessionConfig(threads=2, trace=tracer))
    session.run(random_feeds(graph))
    names = {span.name for span in tracer.spans}
    missing = {"session.prepare", "session.run"} - names
    if missing:
        pytest.fail(
            f"traced session over benchmark graph {name!r} recorded no "
            f"{sorted(missing)} spans — tracing instrumentation has rotted",
            pytrace=False,
        )
    op_spans = sum(1 for span in tracer.spans if span.category == "op")
    runnable = len(session._order)
    if op_spans != runnable:
        pytest.fail(
            f"traced session over benchmark graph {name!r} recorded "
            f"{op_spans} op spans for {runnable} runnable nodes",
            pytrace=False,
        )


def _chaos_or_fail(name, graph):
    """Run one seeded fault-storm session per benchmark graph.

    Transient kernel faults must be retried away and NaN-poisoned
    Winograd convolutions must be re-run on the direct scheme: the
    session has to return finite outputs numerically matching a
    fault-free run, or the resilience layer has rotted.
    """
    import numpy as np

    from repro.analysis.verify_passes import random_feeds
    from repro.core import Session, SessionConfig
    from repro.faults import FaultPlan, FaultRule

    feeds = random_feeds(graph)
    gold = Session(graph, SessionConfig(threads=2)).run(feeds)
    plan = FaultPlan([
        FaultRule("kernel.execute", "nan",
                  match={"scheme": ("winograd", "winograd_rect")}),
        FaultRule("kernel.execute", "transient", p=0.1, times=8),
    ], seed=0)
    session = Session(graph, SessionConfig(threads=2, faults=plan))
    out = session.run(feeds)
    for key, arr in out.items():
        if not np.isfinite(arr).all():
            pytest.fail(
                f"fault-storm session over benchmark graph {name!r} produced "
                f"non-finite output {key!r} — numeric fallback has rotted",
                pytrace=False,
            )
        if not np.allclose(arr, gold[key], rtol=1e-4, atol=1e-5):
            pytest.fail(
                f"fault-storm session over benchmark graph {name!r} diverged "
                f"from the fault-free run on output {key!r} "
                f"({plan.injected} faults injected)",
                pytrace=False,
            )


def _sanitize_or_fail(name, graph):
    """Run one sanitized session per benchmark graph.

    A race, lock-order cycle or leaked extent in the code a benchmark is
    about to time would make its numbers meaningless (or flaky); the
    sanitizer report must be clean before any timing happens.
    """
    from repro.analysis.verify_passes import random_feeds
    from repro.core import Session, SessionConfig

    session = Session(graph, SessionConfig(threads=2, decouple=True,
                                           sanitize=True))
    session.run(random_feeds(graph))
    report = session.sanitizer.report()
    if not report.ok:
        pytest.fail(
            f"sanitized session over benchmark graph {name!r} reported "
            f"findings:\n{report.describe()}",
            pytrace=False,
        )


@pytest.fixture(scope="session", autouse=True)
def _genai_storm():
    """One seeded generation storm per benchmark session.

    KV-slab allocation faults (flaky arena + hard OOM) must be absorbed
    by retry, LRU eviction or preemption: every request that completes
    has to emit exactly the fault-free tokens, and failures must be
    typed per-request errors, never crashes.
    """
    import numpy as np

    from repro.faults import FaultPlan, FaultRule
    from repro.genai import GenerationConfig, GenerationEngine, SamplingParams

    def build(faults=None):
        return GenerationEngine(GenerationConfig(
            vocab=32, max_seq=16, d_model=16, heads=2, layers=1, seed=8,
            max_batch=2, page_tokens=4, capacity_tokens=48, faults=faults,
        ))

    rng = np.random.default_rng(8)
    prompts = [[int(t) for t in rng.integers(0, 32, size=int(n))]
               for n in rng.integers(2, 6, size=4)]
    params = SamplingParams(max_tokens=4)
    gold = [r.tokens for r in build().generate(prompts, params)]
    plan = FaultPlan([
        FaultRule("kvcache.alloc", "transient", times=2),
        FaultRule("kvcache.alloc", "fatal", p=0.5, times=3),
    ], seed=8)
    results = build(plan).generate(prompts, params)
    if plan.injected == 0:
        pytest.fail("generation storm injected no kvcache.alloc faults",
                    pytrace=False)
    for got, want in zip(results, gold):
        if got.finish_reason != "error" and got.tokens != want:
            pytest.fail(
                f"generation storm moved tokens for {got.request_id!r}: "
                f"{got.tokens} != {want} — alloc faults must only shuffle "
                f"memory, never arithmetic",
                pytrace=False,
            )
    yield


@pytest.fixture(scope="session", autouse=True)
def _cluster_storm():
    """One seeded router-level chaos storm per benchmark session.

    A 2-worker generation cluster takes ``worker.crash`` faults at the
    router's dispatch point: one worker killed before starting, one
    mid-decode.  The router must absorb both — transparent replay on
    the ring's next live worker, supervisor replacement of every corpse
    — with zero untyped errors and every completed generation
    bit-identical to a local, in-process fault-free engine.
    """
    from repro.cluster import Cluster, ClusterConfig, WorkerLost
    from repro.faults import FaultPlan, FaultRule
    from repro.genai import GenerationConfig, GenerationEngine, SamplingParams
    from repro.obs import MetricsRegistry

    import numpy as np

    genai = dict(vocab=32, max_seq=16, d_model=16, heads=2, layers=1, seed=8,
                 max_batch=2, page_tokens=4, capacity_tokens=48)
    rng = np.random.default_rng(9)
    prompts = [[int(t) for t in rng.integers(0, 32, size=int(n))]
               for n in rng.integers(2, 6, size=4)]
    gold_engine = GenerationEngine(GenerationConfig(**genai))
    gold = [r.tokens
            for r in gold_engine.generate(prompts, SamplingParams(max_tokens=4))]
    gold_engine.close()

    plan = FaultPlan([
        FaultRule("worker.crash", "transient", times=1),
        FaultRule("worker.crash", "fatal", times=1, skip=1),
    ], seed=9)
    metrics = MetricsRegistry()
    cluster = Cluster(config=ClusterConfig(
        workers=2, genai=genai, metrics=metrics, faults=plan,
    ))
    try:
        for i, prompt in enumerate(prompts):
            try:
                out = cluster.generate(prompt, {"max_tokens": 4},
                                       session_key=f"bench-{i}")
            except WorkerLost:
                continue  # typed, isolated — acceptable under "error" paths
            if out.tokens != gold[i]:
                pytest.fail(
                    f"router storm moved tokens for prompt {i}: "
                    f"{out.tokens} != {gold[i]} — a worker crash must "
                    f"never change surviving outputs",
                    pytrace=False,
                )
        if plan.injected == 0:
            pytest.fail("router storm injected no worker.crash faults",
                        pytrace=False)
        if metrics.value("cluster.replacements") < 1:
            pytest.fail(
                "router storm killed workers but the supervisor recorded "
                "no replacements — supervision has rotted",
                pytrace=False,
            )
    finally:
        cluster.close()
    yield


@pytest.fixture
def report_table(request):
    """Record a (title, headers, rows) table for the terminal summary.

    Also appends a machine-readable record to ``BENCH_<bench>.json``
    (``$REPRO_BENCH_DIR`` or the repo root).  Benches may pass extra
    keyword context — ``config=``, ``timing=``, ``metrics=`` — which lands
    in the JSON record under the shared schema.
    """
    from repro.bench import bench_record, write_bench_result

    bench_name = request.node.name

    def _record(title, headers, rows, **context):
        from repro.obs import get_metrics

        _TABLES.append((title, headers, [list(r) for r in rows]))
        metrics = context.pop("metrics", None)
        if metrics is None:
            # Default to the process-wide registry: sessions run by the
            # bench land their run/prepare histograms there.  Sanitizer
            # counters are pre-registered so every BENCH record carries
            # sanitize.races / .lock_cycles / .leaks — zeros expected.
            from repro.sanitize.sanitizer import COUNTER_NAMES

            registry = get_metrics()
            for counter_name in COUNTER_NAMES:
                registry.counter(counter_name)
            metrics = registry.snapshot()
        record = bench_record(
            context.pop("name", bench_name),
            config=context.pop("config", None),
            timing=context.pop("timing", None),
            metrics=metrics,
            title=title,
            table={"headers": list(headers), "rows": [list(r) for r in rows]},
            **context,
        )
        out_dir = os.environ.get("REPRO_BENCH_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        write_bench_result(record, out_dir)

    return _record


@pytest.fixture
def model(request):
    """Cached model builder: ``model("mobilenet_v1", input_size=224)``."""

    def _get(name, **kwargs):
        key = (name, tuple(sorted(kwargs.items())))
        if key not in _MODEL_CACHE:
            graph = build_model(name, **kwargs)
            _lint_or_fail(name, graph)  # every benchmark graph is linted once
            _MODEL_CACHE[key] = graph
        if key not in _TRACED:
            _TRACED.add(key)
            _trace_or_fail(name, _MODEL_CACHE[key])  # ... and traced once
        if key not in _STORMED:
            _STORMED.add(key)
            _chaos_or_fail(name, _MODEL_CACHE[key])  # ... and stormed once
        if key not in _SANITIZED:
            _SANITIZED.add(key)
            _sanitize_or_fail(name, _MODEL_CACHE[key])  # ... and sanitized once
        return _MODEL_CACHE[key]

    return _get


def pytest_terminal_summary(terminalreporter):
    from repro.bench import format_table

    if not _TABLES:
        return
    terminalreporter.section("paper reproduction tables")
    for title, headers, rows in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(format_table(headers, rows, title))
    _TABLES.clear()
