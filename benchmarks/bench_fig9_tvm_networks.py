"""Figure 9 — MNN vs. TVM CPU inference across six networks.

Kirin 970 (Huawei P20 Pro), 4 threads.  The paper's claim: MNN, with *no*
per-model tuning, still edges out auto-tuned TVM on every network — and
avoids TVM's deployment cost (cross-referenced from Table 5).
"""

import pytest

from repro.baselines import ENGINES, TuningCostModel
from repro.devices import get_device
from repro.sim import estimate_latency

#: Paper Figure 9 values (ms): network -> (MNN, TVM).
PAPER = {
    "mobilenet_v1": (22.9, 33.4),
    "mobilenet_v2": (33.6, 41.3),
    "squeezenet_v1.1": (21.9, 26.0),
    "squeezenet_v1.0": (47.7, 51.4),
    "resnet50": (184.6, 232.5),
    "inception_v3": (297.1, 444.7),
}


def test_fig9_mnn_vs_tvm(model, report_table, benchmark):
    device = get_device("P20Pro")
    benchmark(
        lambda: estimate_latency(
            model("squeezenet_v1.1"), ENGINES["MNN"], device, "cpu", 4
        )
    )
    rows, sims = [], {}
    for network, (paper_mnn, paper_tvm) in PAPER.items():
        graph = model(network)
        mnn = estimate_latency(graph, ENGINES["MNN"], device, "cpu", 4).total_ms
        tvm = estimate_latency(graph, ENGINES["TVM"], device, "cpu", 4).total_ms
        sims[network] = (mnn, tvm)
        rows.append([network, round(mnn, 1), round(tvm, 1),
                     paper_mnn, paper_tvm,
                     f"{tvm / mnn:.2f}", f"{paper_tvm / paper_mnn:.2f}"])
    report_table(
        "Figure 9 — CPU inference (ms), Kirin 970, 4 threads",
        ["network", "MNN (sim)", "TVM (sim)", "MNN (paper)", "TVM (paper)",
         "ratio (sim)", "ratio (paper)"],
        rows,
        config={"device": "P20Pro", "threads": 4, "networks": list(PAPER)},
    )
    for network, (mnn, tvm) in sims.items():
        assert mnn < tvm, network                   # MNN ahead everywhere
        assert tvm / mnn < 2.0, network             # ... but same ballpark
    # sim latencies within ~2.5x of the paper's absolute numbers
    for network, (paper_mnn, paper_tvm) in PAPER.items():
        mnn, tvm = sims[network]
        assert paper_mnn / 2.5 < mnn < paper_mnn * 2.5, network
        assert paper_tvm / 2.5 < tvm < paper_tvm * 2.5, network


def test_fig9_deployment_cost_contrast(model, report_table, benchmark):
    """The other half of the argument: TVM pays hours of tuning for these
    six networks; MNN's scheme search runs at session-create time in ms."""
    import time

    from repro.core import select_graph_schemes

    cost = TuningCostModel()
    tvm_total_s = sum(
        cost.tuning_seconds(model(network), trials=10)
        + cost.compile_seconds(model(network), trials=10)
        for network in PAPER
    )
    graph = model("inception_v3")
    start = time.perf_counter()
    select_graph_schemes(graph)
    mnn_search_ms = (time.perf_counter() - start) * 1000.0
    benchmark(lambda: select_graph_schemes(graph))
    report_table(
        "Figure 9 / Table 5 — per-deployment optimization cost",
        ["engine", "cost"],
        [
            ["TVM (6 models, 1 device, 10 trials)", f"{tvm_total_s / 3600:.1f} hours"],
            ["MNN (runtime scheme search, worst model)", f"{mnn_search_ms:.1f} ms"],
        ],
    )
    assert tvm_total_s > 3600          # hours
    assert mnn_search_ms < 1000        # milliseconds
