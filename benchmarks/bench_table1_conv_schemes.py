"""Table 1 — computation scheme selection vs. fixed conv schemes.

Two views of the paper's three convolution settings (kernel, ic, oc, size)
= (2,3,16,224), (2,512,512,16), (3,64,64,112):

* **modeled cost** (the Eq. 2/3 metric the selector minimizes) — this is
  where the paper's shape must reproduce exactly: each fixed scheme wins
  one column and loses another; "Ours" tracks the per-column best.
* **measured wall time** of this repo's kernels.  One documented substrate
  caveat (EXPERIMENTS.md): our "sliding window" is im2col + one OpenBLAS
  GEMM, which on a desktop CPU has far higher per-FLOP throughput than the
  einsum-based Winograd path, so sliding wins wall-clock across the board
  here — unlike ARM, where both schemes share hand-written NEON kernels.
  What *does* transfer is the within-Winograd ranking: the selector's tile
  size n must beat the wrong fixed tile (WinoMin on big maps, WinoMax on
  small maps), and that is asserted below.
"""

import numpy as np
import pytest

from repro.bench import time_callable
from repro.core import SchemeConfig, select_conv_scheme
from repro.core.schemes import winograd_plane_cost
from repro.kernels import conv2d

CASES = [
    (2, 3, 16, 224),
    (2, 512, 512, 16),
    (3, 64, 64, 112),
]
#: Paper Table 1 (ms): sliding, WinoMin, WinoMax, Ours.
PAPER = {
    (2, 3, 16, 224): (32.1, 42.2, 57.3, 32.7),
    (2, 512, 512, 16): (895.1, 287.7, 539.3, 286.0),
    (3, 64, 64, 112): (895.1, 389.8, 237.4, 236.4),
}

RNG = np.random.default_rng(0)
CFG = SchemeConfig()


def _make_case(k, ic, oc, size):
    x = RNG.standard_normal((1, ic, size, size)).astype(np.float32)
    w = RNG.standard_normal((oc, ic, k, k)).astype(np.float32)
    return x, w


def _max_legal_n(k):
    return max(n for n in CFG.winograd_candidates if n > 1 and n + k - 1 <= CFG.max_tile)


def _modeled_costs(k, ic, oc, size):
    out_hw = (size - k + 1, size - k + 1)
    decision = select_conv_scheme((k, k), ic, oc, out_hw, config=CFG)
    sliding = out_hw[0] * out_hw[1] * ic * k * k * oc
    return {
        "Sliding": float(sliding),
        "WinoMin": winograd_plane_cost(2, k, ic, oc, out_hw, CFG),
        "WinoMax": winograd_plane_cost(_max_legal_n(k), k, ic, oc, out_hw, CFG),
        "Ours": float(decision.cost),
    }, decision


def _measured_times(k, ic, oc, size, decision, repeats=5):
    x, w = _make_case(k, ic, oc, size)
    exec_scheme = decision.kind if decision.kind != "gemm1x1" else "sliding"
    runs = {
        "Sliding": lambda: conv2d(x, w, scheme="sliding"),
        "WinoMin": lambda: conv2d(x, w, scheme="winograd", winograd_n=2),
        "WinoMax": lambda: conv2d(x, w, scheme="winograd", winograd_n=_max_legal_n(k)),
        "Ours": lambda: conv2d(x, w, scheme=exec_scheme, winograd_n=decision.winograd_n),
    }
    return {name: time_callable(fn, repeats=repeats).median_ms for name, fn in runs.items()}


@pytest.mark.parametrize("case", CASES, ids=[str(c) for c in CASES])
def test_table1_per_setting(case, report_table, benchmark):
    k, ic, oc, size = case
    modeled, decision = _modeled_costs(k, ic, oc, size)
    measured = _measured_times(k, ic, oc, size, decision)
    x, w = _make_case(k, ic, oc, size)
    exec_scheme = decision.kind if decision.kind != "gemm1x1" else "sliding"
    benchmark(lambda: conv2d(x, w, scheme=exec_scheme, winograd_n=decision.winograd_n))

    paper = PAPER[case]
    report_table(
        f"Table 1 — setting (k,ic,oc,size)={case}; selected: "
        f"{decision.kind} n={decision.winograd_n}",
        ["scheme", "modeled cost (M weighted MULs)", "measured ms", "paper ms"],
        [
            [name, modeled[name] / 1e6, measured[name], paper[i]]
            for i, name in enumerate(("Sliding", "WinoMin", "WinoMax", "Ours"))
        ],
        config={"case": case, "selected": decision.kind,
                "winograd_n": decision.winograd_n},
    )
    # Shape claim 1: "Ours" is the modeled best, by construction and in fact.
    assert modeled["Ours"] <= min(modeled.values()) * 1.0001
    # Shape claim 2 (transfers to wall clock): within the Winograd family,
    # the searched tile size beats or matches the wrong fixed tile.
    if decision.kind == "winograd":
        assert measured["Ours"] <= min(measured["WinoMin"], measured["WinoMax"]) * 1.25


def test_table1_no_fixed_scheme_wins_everywhere(report_table, benchmark):
    """Paper's point: every fixed scheme has a losing column (modeled)."""
    x, w = _make_case(*CASES[0])
    benchmark(lambda: conv2d(x, w, scheme="sliding"))
    losses = {"Sliding": 0, "WinoMin": 0, "WinoMax": 0}
    rows = []
    for case in CASES:
        modeled, _ = _modeled_costs(*case)
        best = min(modeled[s] for s in losses)
        for scheme in losses:
            if modeled[scheme] > best * 1.3:
                losses[scheme] += 1
        rows.append([str(case)] + [round(modeled[s] / best, 2) for s in losses])
    report_table(
        "Table 1 — modeled cost relative to per-setting best",
        ["setting", "Sliding", "WinoMin", "WinoMax"],
        rows,
    )
    assert all(count >= 1 for count in losses.values())


def test_table1_winograd_tile_ranking_transfers(report_table, benchmark):
    """Within-Winograd wall-clock ranking matches the paper's Min/Max rows:
    small maps favor small tiles, big maps favor big tiles."""
    x_small, w_small = _make_case(2, 512, 512, 16)
    x_big, w_big = _make_case(3, 64, 64, 112)
    benchmark(lambda: conv2d(x_small, w_small, scheme="winograd", winograd_n=2))
    t_small = {
        n: time_callable(
            lambda n=n: conv2d(x_small, w_small, scheme="winograd", winograd_n=n),
            repeats=3,
        ).median_ms
        for n in (2, 8)
    }
    t_big = {
        n: time_callable(
            lambda n=n: conv2d(x_big, w_big, scheme="winograd", winograd_n=n),
            repeats=3,
        ).median_ms
        for n in (2, 8)
    }
    report_table(
        "Table 1 — Winograd tile ranking (measured ms)",
        ["setting", "n=2", "n=8", "paper says"],
        [
            ["(2,512,512,16)", t_small[2], t_small[8], "small tile wins (288 vs 539)"],
            ["(3,64,64,112)", t_big[2], t_big[8], "big tile wins (237 vs 390)"],
        ],
    )
    assert t_small[2] < t_small[8]
    assert t_big[8] < t_big[2]
