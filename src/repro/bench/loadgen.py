"""A minimal MLPerf-style load generator (paper Table 7 / Appendix A).

Implements two scenarios:

* **single-stream** (:func:`run_single_stream`): queries issued
  back-to-back from one thread; the report mirrors the MLPerf fields
  the paper lists — QPS with/without loadgen overhead, min/max/mean
  latency and percentiles in nanoseconds.
* **closed-loop** (:func:`run_closed_loop`): N concurrent client
  threads, each issuing its next query the moment the previous one
  resolves — the server/offline-style driver the cluster tier is
  benchmarked with.  Typed shed errors (``Backpressure``/``Overloaded``)
  are counted as *shed*, not failures: an admission controller refusing
  load is a result, not a bug, and the shed rate is a headline column
  of ``BENCH_cluster_scaling``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type

import numpy as np

__all__ = [
    "ClosedLoopReport",
    "LoadgenReport",
    "run_closed_loop",
    "run_single_stream",
]


@dataclass
class LoadgenReport:
    """MLPerf single-stream statistics (latencies in nanoseconds)."""

    query_count: int
    qps_with_overhead: float
    qps_without_overhead: float
    min_latency_ns: int
    max_latency_ns: int
    mean_latency_ns: int
    p50_latency_ns: int
    p90_latency_ns: int

    def rows(self) -> List[tuple]:
        """Rows matching the paper's Table 7 items."""
        return [
            ("query_count", self.query_count),
            ("QPS w/ loadgen overhead", round(self.qps_with_overhead, 2)),
            ("QPS w/o loadgen overhead", round(self.qps_without_overhead, 2)),
            ("Min latency (ns)", self.min_latency_ns),
            ("Max latency (ns)", self.max_latency_ns),
            ("Mean latency (ns)", self.mean_latency_ns),
            ("50.00 percentile latency (ns)", self.p50_latency_ns),
            ("90.00 percentile latency (ns)", self.p90_latency_ns),
        ]


def run_single_stream(
    issue_query: Callable[[], object],
    min_query_count: int = 64,
    min_duration_s: float = 0.0,
    warmup: int = 1,
) -> LoadgenReport:
    """Run the single-stream scenario against ``issue_query``.

    Queries are issued sequentially until both ``min_query_count`` and
    ``min_duration_s`` are satisfied (MLPerf semantics).

    Raises:
        ValueError: if ``min_query_count`` < 1.
    """
    if min_query_count < 1:
        raise ValueError("min_query_count must be >= 1")
    for _ in range(warmup):
        issue_query()

    latencies_ns: List[int] = []
    bench_start = time.perf_counter()
    while (
        len(latencies_ns) < min_query_count
        or (time.perf_counter() - bench_start) < min_duration_s
    ):
        start = time.perf_counter_ns()
        issue_query()
        latencies_ns.append(time.perf_counter_ns() - start)
    total_wall_s = time.perf_counter() - bench_start

    arr = np.asarray(latencies_ns, dtype=np.int64)
    pure_s = float(arr.sum()) / 1e9
    return LoadgenReport(
        query_count=len(latencies_ns),
        qps_with_overhead=len(latencies_ns) / total_wall_s,
        qps_without_overhead=len(latencies_ns) / pure_s if pure_s > 0 else float("inf"),
        min_latency_ns=int(arr.min()),
        max_latency_ns=int(arr.max()),
        mean_latency_ns=int(arr.mean()),
        p50_latency_ns=int(np.percentile(arr, 50)),
        p90_latency_ns=int(np.percentile(arr, 90)),
    )


@dataclass
class ClosedLoopReport:
    """Concurrent closed-loop statistics (latencies in milliseconds)."""

    clients: int
    completed: int
    shed: int
    errors: int
    wall_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float

    @property
    def issued(self) -> int:
        return self.completed + self.shed + self.errors

    @property
    def shed_rate(self) -> float:
        """Fraction of issued queries refused by admission control."""
        return self.shed / self.issued if self.issued else 0.0

    def rows(self) -> List[tuple]:
        return [
            ("clients", self.clients),
            ("completed", self.completed),
            ("shed", self.shed),
            ("errors", self.errors),
            ("QPS", round(self.qps, 2)),
            ("shed rate", round(self.shed_rate, 4)),
            ("Mean latency (ms)", round(self.mean_ms, 3)),
            ("50.00 percentile latency (ms)", round(self.p50_ms, 3)),
            ("99.00 percentile latency (ms)", round(self.p99_ms, 3)),
        ]


def run_closed_loop(
    issue_query: Callable[[int, int], object],
    clients: int = 16,
    queries_per_client: int = 8,
    shed_errors: Tuple[Type[BaseException], ...] = (),
    warmup: int = 1,
) -> ClosedLoopReport:
    """Drive ``issue_query`` from ``clients`` concurrent closed-loop threads.

    Each client thread calls ``issue_query(client, i)``
    ``queries_per_client`` times back-to-back.  Exceptions matching
    ``shed_errors`` count as shed (admission control working as
    designed); any other exception counts as an error — both are
    latency-excluded.  QPS is completed queries over total wall time.

    Raises:
        ValueError: if ``clients`` or ``queries_per_client`` < 1.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if queries_per_client < 1:
        raise ValueError("queries_per_client must be >= 1")
    for i in range(warmup):
        issue_query(-1, i)

    lock = threading.Lock()
    latencies_ms: List[float] = []
    shed = [0]
    errors = [0]

    def client(c: int) -> None:
        for i in range(queries_per_client):
            start = time.perf_counter()
            try:
                issue_query(c, i)
            except shed_errors:
                with lock:
                    shed[0] += 1
            except Exception:
                with lock:
                    errors[0] += 1
            else:
                dt_ms = (time.perf_counter() - start) * 1e3
                with lock:
                    latencies_ms.append(dt_ms)

    threads = [
        threading.Thread(target=client, args=(c,), name=f"loadgen-{c}")
        for c in range(clients)
    ]
    bench_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - bench_start

    arr = np.asarray(latencies_ms, dtype=np.float64)
    done = len(latencies_ms)
    return ClosedLoopReport(
        clients=clients,
        completed=done,
        shed=shed[0],
        errors=errors[0],
        wall_s=wall_s,
        qps=done / wall_s if wall_s > 0 else float("inf"),
        p50_ms=float(np.percentile(arr, 50)) if done else 0.0,
        p99_ms=float(np.percentile(arr, 99)) if done else 0.0,
        mean_ms=float(arr.mean()) if done else 0.0,
    )
