"""A minimal MLPerf-style load generator (paper Table 7 / Appendix A).

Implements the single-stream scenario: queries are issued back-to-back,
each query's latency is recorded, and the report mirrors the MLPerf fields
the paper lists — QPS with/without loadgen overhead, min/max/mean latency
and percentiles in nanoseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

__all__ = ["LoadgenReport", "run_single_stream"]


@dataclass
class LoadgenReport:
    """MLPerf single-stream statistics (latencies in nanoseconds)."""

    query_count: int
    qps_with_overhead: float
    qps_without_overhead: float
    min_latency_ns: int
    max_latency_ns: int
    mean_latency_ns: int
    p50_latency_ns: int
    p90_latency_ns: int

    def rows(self) -> List[tuple]:
        """Rows matching the paper's Table 7 items."""
        return [
            ("query_count", self.query_count),
            ("QPS w/ loadgen overhead", round(self.qps_with_overhead, 2)),
            ("QPS w/o loadgen overhead", round(self.qps_without_overhead, 2)),
            ("Min latency (ns)", self.min_latency_ns),
            ("Max latency (ns)", self.max_latency_ns),
            ("Mean latency (ns)", self.mean_latency_ns),
            ("50.00 percentile latency (ns)", self.p50_latency_ns),
            ("90.00 percentile latency (ns)", self.p90_latency_ns),
        ]


def run_single_stream(
    issue_query: Callable[[], object],
    min_query_count: int = 64,
    min_duration_s: float = 0.0,
    warmup: int = 1,
) -> LoadgenReport:
    """Run the single-stream scenario against ``issue_query``.

    Queries are issued sequentially until both ``min_query_count`` and
    ``min_duration_s`` are satisfied (MLPerf semantics).

    Raises:
        ValueError: if ``min_query_count`` < 1.
    """
    if min_query_count < 1:
        raise ValueError("min_query_count must be >= 1")
    for _ in range(warmup):
        issue_query()

    latencies_ns: List[int] = []
    bench_start = time.perf_counter()
    while (
        len(latencies_ns) < min_query_count
        or (time.perf_counter() - bench_start) < min_duration_s
    ):
        start = time.perf_counter_ns()
        issue_query()
        latencies_ns.append(time.perf_counter_ns() - start)
    total_wall_s = time.perf_counter() - bench_start

    arr = np.asarray(latencies_ns, dtype=np.int64)
    pure_s = float(arr.sum()) / 1e9
    return LoadgenReport(
        query_count=len(latencies_ns),
        qps_with_overhead=len(latencies_ns) / total_wall_s,
        qps_without_overhead=len(latencies_ns) / pure_s if pure_s > 0 else float("inf"),
        min_latency_ns=int(arr.min()),
        max_latency_ns=int(arr.max()),
        mean_latency_ns=int(arr.mean()),
        p50_latency_ns=int(np.percentile(arr, 50)),
        p90_latency_ns=int(np.percentile(arr, 90)),
    )
