"""Benchmark harness: timing helpers, tables, MLPerf-style loadgen."""

from .harness import TimingResult, format_table, print_table, time_callable
from .loadgen import LoadgenReport, run_single_stream

__all__ = [
    "TimingResult",
    "format_table",
    "print_table",
    "time_callable",
    "LoadgenReport",
    "run_single_stream",
]
