"""Benchmark harness: timing helpers, tables, MLPerf-style loadgen."""

from .harness import (
    TimingResult,
    bench_record,
    format_table,
    print_table,
    time_callable,
    write_bench_result,
)
from .loadgen import (
    ClosedLoopReport,
    LoadgenReport,
    run_closed_loop,
    run_single_stream,
)

__all__ = [
    "TimingResult",
    "bench_record",
    "format_table",
    "print_table",
    "time_callable",
    "write_bench_result",
    "ClosedLoopReport",
    "LoadgenReport",
    "run_closed_loop",
    "run_single_stream",
]
