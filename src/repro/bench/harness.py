"""Benchmark harness utilities: wall-clock timing, paper-style tables, and
machine-readable result records.

Besides the human-facing tables, every benchmark can persist a JSON record
(:func:`bench_record` + :func:`write_bench_result`) so repeated runs
accumulate a performance trajectory per benchmark — ``BENCH_<name>.json``
is a list of records, one appended per run.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.devices.host import host_fingerprint

__all__ = [
    "BENCH_SCHEMA",
    "TimingResult",
    "time_callable",
    "format_table",
    "print_table",
    "bench_record",
    "write_bench_result",
]

#: Bumped when the BENCH record layout changes shape.  Schema 2 added the
#: provenance stamp (schema / git commit / host fingerprint) that the
#: regression gate keys comparability on.
BENCH_SCHEMA = 2


@dataclass
class TimingResult:
    """Wall-clock statistics over repeated runs, in milliseconds."""

    times_ms: List[float]

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.times_ms))

    @property
    def median_ms(self) -> float:
        return float(np.median(self.times_ms))

    @property
    def min_ms(self) -> float:
        return float(np.min(self.times_ms))

    @property
    def std_ms(self) -> float:
        return float(np.std(self.times_ms))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (for :func:`bench_record`)."""
        return {
            "repeats": len(self.times_ms),
            "mean_ms": self.mean_ms,
            "median_ms": self.median_ms,
            "min_ms": self.min_ms,
            "std_ms": self.std_ms,
        }


def time_callable(fn: Callable[[], object], repeats: int = 10, warmup: int = 1) -> TimingResult:
    """Time ``fn`` with the paper's protocol: warm-up runs, then averaging.

    (Section 4.1: "one warm-up inference is conducted", results "averaged
    by 10 runs".)
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append((time.perf_counter() - start) * 1000.0)
    return TimingResult(times)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table like the paper's result tables."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def print_table(headers, rows, title=None) -> None:
    print("\n" + format_table(headers, rows, title) + "\n")


# -- machine-readable bench results -----------------------------------------

_GIT_COMMIT: Optional[str] = None


def _git_commit() -> str:
    """The repo's HEAD commit, cached per process; "unknown" off-repo."""
    global _GIT_COMMIT
    if _GIT_COMMIT is None:
        try:
            _GIT_COMMIT = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip() or "unknown"
        except Exception:
            _GIT_COMMIT = "unknown"
    return _GIT_COMMIT


def _jsonable(value: object) -> object:
    """Best-effort coercion to a JSON-serializable value."""
    if isinstance(value, TimingResult):
        return value.as_dict()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def bench_record(
    name: str,
    config: Optional[Dict[str, object]] = None,
    timing: Optional[TimingResult] = None,
    metrics: Optional[Dict[str, object]] = None,
    **extra: object,
) -> Dict[str, object]:
    """Build one machine-readable benchmark record.

    Schema (stable across benches so trajectories are comparable):
    ``name`` (the bench id), ``config`` (the knobs that shaped the run),
    ``timing`` (wall-clock stats from :class:`TimingResult`), ``metrics``
    (a :meth:`repro.obs.MetricsRegistry.snapshot`), plus any bench-specific
    ``extra`` keys.  Every record carries a provenance ``stamp`` — schema
    version, git commit, and the measuring host's fingerprint — so the
    regression gate (:mod:`repro.obs.regress`) can refuse to compare
    numbers from different machines or record layouts.
    """
    record: Dict[str, object] = {
        "name": name,
        "config": _jsonable(config or {}),
        "stamp": {
            "schema": BENCH_SCHEMA,
            "git_commit": _git_commit(),
            "host": host_fingerprint().as_dict(),
        },
    }
    if timing is not None:
        record["timing"] = timing.as_dict()
    if metrics is not None:
        record["metrics"] = _jsonable(metrics)
    for key, value in extra.items():
        record[key] = _jsonable(value)
    return record


def write_bench_result(
    record: Dict[str, object], out_dir: Optional[str] = None
) -> str:
    """Append ``record`` to ``BENCH_<name>.json`` and return the path.

    The file holds a JSON list — one record per historical run — so
    re-running a benchmark accumulates a trajectory instead of clobbering
    the previous result.  ``out_dir`` defaults to ``$REPRO_BENCH_DIR`` or
    the current directory; an unreadable/corrupt existing file is treated
    as empty rather than failing the bench.
    """
    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR") or "."
    os.makedirs(out_dir, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in str(record["name"]))
    path = os.path.join(out_dir, f"BENCH_{safe}.json")
    history: List[object] = []
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, list):
                history = loaded
        except (OSError, ValueError):
            history = []
    history.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
