"""Benchmark harness utilities: wall-clock timing and paper-style tables."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["TimingResult", "time_callable", "format_table", "print_table"]


@dataclass
class TimingResult:
    """Wall-clock statistics over repeated runs, in milliseconds."""

    times_ms: List[float]

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.times_ms))

    @property
    def median_ms(self) -> float:
        return float(np.median(self.times_ms))

    @property
    def min_ms(self) -> float:
        return float(np.min(self.times_ms))

    @property
    def std_ms(self) -> float:
        return float(np.std(self.times_ms))


def time_callable(fn: Callable[[], object], repeats: int = 10, warmup: int = 1) -> TimingResult:
    """Time ``fn`` with the paper's protocol: warm-up runs, then averaging.

    (Section 4.1: "one warm-up inference is conducted", results "averaged
    by 10 runs".)
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append((time.perf_counter() - start) * 1000.0)
    return TimingResult(times)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table like the paper's result tables."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def print_table(headers, rows, title=None) -> None:
    print("\n" + format_table(headers, rows, title) + "\n")
