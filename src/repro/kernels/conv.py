"""Convolution kernels: sliding-window (im2col), 1x1-as-GEMM, and dispatch.

The scheme names follow the paper's convolution scheme pool (Section 3.2):

* ``sliding``  — direct sliding-window convolution, realized as im2col +
  tiled GEMM (the vectorized equivalent of MNN's NEON sliding kernels).
* ``winograd`` — F(n x n, k x k) Winograd (see :mod:`repro.kernels.winograd`).
* 1x1 kernels are a plain matrix multiplication and route through Strassen
  (Section 3.3.2) when the size makes it worthwhile.

Which scheme runs is decided by pre-inference (:mod:`repro.core.schemes`);
these functions just execute a chosen scheme.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .matmul import GemmStats, matmul, tiled_matmul
from .winograd import generate_transforms, transform_kernel, winograd_conv2d_with_kernel

__all__ = ["im2col", "conv2d_im2col", "conv2d_1x1", "conv2d", "apply_activation"]


def apply_activation(y: np.ndarray, activation: Optional[str]) -> np.ndarray:
    """Apply a fused activation produced by the graph optimizer."""
    if activation is None:
        return y
    if activation == "relu":
        return np.maximum(y, 0)
    if activation == "relu6":
        return np.clip(y, 0, 6)
    raise ValueError(f"unknown fused activation {activation!r}")


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pads: Tuple[int, int, int, int],
    dilation: Tuple[int, int] = (1, 1),
) -> np.ndarray:
    """Unfold conv windows into a matrix.

    Returns an array of shape ``(N, oh, ow, C, kh, kw)`` (a strided view
    reshaped lazily by callers into GEMM operands).
    """
    kh, kw = kernel
    sh, sw = stride
    dh, dw = dilation
    top, bottom, left, right = pads
    if any(p for p in pads):
        x = np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)))
    eff_kh = (kh - 1) * dh + 1
    eff_kw = (kw - 1) * dw + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (eff_kh, eff_kw), axis=(2, 3))
    # stride over output positions, dilate within the window
    windows = windows[:, :, ::sh, ::sw, ::dh, ::dw]
    # (N, C, oh, ow, kh, kw) -> (N, oh, ow, C, kh, kw)
    return windows.transpose(0, 2, 3, 1, 4, 5)


def conv2d_im2col(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: Tuple[int, int] = (1, 1),
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """Sliding-window convolution via im2col + tiled GEMM.

    Supports arbitrary kernel/stride/dilation/groups — this is the
    universally-applicable scheme the selector falls back to.
    """
    n, ic, _, _ = x.shape
    oc = weights.shape[0]
    kh, kw = weights.shape[2], weights.shape[3]
    if ic % groups or oc % groups:
        raise ValueError(f"channels ({ic}, {oc}) not divisible by groups={groups}")
    cols = im2col(x, (kh, kw), stride, pads, dilation)  # (N, oh, ow, C, kh, kw)
    _, oh, ow, _, _, _ = cols.shape
    icg = ic // groups
    ocg = oc // groups
    out = np.empty((n, oc, oh, ow), dtype=np.result_type(x.dtype, weights.dtype))
    for g in range(groups):
        group_cols = cols[:, :, :, g * icg : (g + 1) * icg]
        lhs = np.ascontiguousarray(group_cols).reshape(n * oh * ow, icg * kh * kw)
        rhs = weights[g * ocg : (g + 1) * ocg].reshape(ocg, icg * kh * kw).T
        prod = tiled_matmul(lhs, np.ascontiguousarray(rhs), stats=stats)
        out[:, g * ocg : (g + 1) * ocg] = prod.reshape(n, oh, ow, ocg).transpose(0, 3, 1, 2)
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


def conv2d_1x1(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: Tuple[int, int] = (1, 1),
    use_strassen: bool = True,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """1x1 convolution as one large GEMM, Strassen-accelerated (Section 3.3.2)."""
    if weights.shape[2:] != (1, 1):
        raise ValueError(f"conv2d_1x1 needs a 1x1 kernel, got {weights.shape}")
    if stride != (1, 1):
        x = x[:, :, :: stride[0], :: stride[1]]
    n, ic, h, w = x.shape
    oc = weights.shape[0]
    lhs = np.ascontiguousarray(x.transpose(0, 2, 3, 1)).reshape(n * h * w, ic)
    rhs = np.ascontiguousarray(weights.reshape(oc, ic).T)
    out = matmul(lhs, rhs, use_strassen=use_strassen, stats=stats)
    out = out.reshape(n, h, w, oc).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return np.ascontiguousarray(out)


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: Tuple[int, int] = (1, 1),
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
    scheme: str = "sliding",
    winograd_n: int = 2,
    winograd_n_hw: Tuple[int, int] = (1, 2),
    activation: Optional[str] = None,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """Execute a convolution with an explicitly chosen scheme.

    ``scheme`` is one of ``"sliding"``, ``"winograd"``, ``"winograd_rect"``,
    ``"gemm1x1"``.  Winograd variants require stride 1, dilation 1 and
    groups == 1 (square kernels for plain ``"winograd"``); violations raise
    ``ValueError`` (the selector never picks Winograd for those cases).
    ``winograd_n_hw`` gives the per-axis tile sizes for the rectangular
    variant.
    """
    if scheme == "gemm1x1":
        if groups != 1:
            raise ValueError("gemm1x1 scheme does not support groups")
        y = conv2d_1x1(x, weights, bias, stride, stats=stats)
    elif scheme == "winograd_rect":
        if groups != 1 or dilation != (1, 1):
            raise ValueError("winograd_rect scheme requires groups=1, dilation=1")
        if stride != (1, 1):
            raise ValueError("Winograd convolution requires stride 1")
        from .winograd import winograd_conv2d_rect

        y = winograd_conv2d_rect(x, weights, bias, winograd_n_hw, pads)
    elif scheme == "winograd":
        if groups != 1 or dilation != (1, 1):
            raise ValueError("winograd scheme requires groups=1, dilation=1")
        transforms = generate_transforms(winograd_n, weights.shape[2])
        kernel = transform_kernel(weights, transforms)
        y = winograd_conv2d_with_kernel(x, kernel, transforms, bias, pads, stride)
    elif scheme == "sliding":
        y = conv2d_im2col(x, weights, bias, stride, pads, dilation, groups, stats=stats)
    else:
        raise ValueError(f"unknown conv scheme {scheme!r}")
    return apply_activation(y, activation)
