"""Remaining kernels: fully-connected, deconvolution, resize, padding, reduce."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .matmul import GemmStats, matmul

__all__ = ["fully_connected", "conv_transpose2d", "resize2d", "pad_nd", "reduce_mean"]


def fully_connected(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    use_strassen: bool = True,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """FC layer: flatten trailing dims, then ``x @ W^T + b``.

    Args:
        x: (N, ...) input, flattened to (N, in_features).
        weights: (units, in_features).
    """
    n = x.shape[0]
    flat = np.ascontiguousarray(x.reshape(n, -1))
    out = matmul(flat, np.ascontiguousarray(weights.T), use_strassen=use_strassen, stats=stats)
    if bias is not None:
        out = out + bias
    return out


def conv_transpose2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: Tuple[int, int] = (1, 1),
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    output_padding: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Transposed convolution (deconvolution) by input scattering.

    Args:
        x: (N, ic, H, W) input.
        weights: (ic, oc, kh, kw) kernel (note the transposed channel order).
    """
    n, ic, ih, iw = x.shape
    _, oc, kh, kw = weights.shape
    sh, sw = stride
    top, bottom, left, right = pads
    oph, opw = output_padding
    full_h = (ih - 1) * sh + kh
    full_w = (iw - 1) * sw + kw
    # Accumulate each kernel tap over the strided output canvas.
    canvas = np.zeros((n, oc, full_h, full_w), dtype=np.result_type(x.dtype, weights.dtype))
    contrib = np.tensordot(x, weights, axes=([1], [0]))  # (N, H, W, oc, kh, kw)
    for i in range(kh):
        for j in range(kw):
            canvas[:, :, i : i + (ih - 1) * sh + 1 : sh, j : j + (iw - 1) * sw + 1 : sw] += (
                contrib[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    oh = full_h - top - bottom + oph
    ow = full_w - left - right + opw
    out = np.zeros((n, oc, oh, ow), dtype=canvas.dtype)
    crop = canvas[:, :, top : top + oh, left : left + ow]
    out[:, :, : crop.shape[2], : crop.shape[3]] = crop
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


def resize2d(x: np.ndarray, scale: Tuple[int, int], mode: str = "nearest") -> np.ndarray:
    """Integer-factor spatial upsampling (nearest or bilinear)."""
    sh, sw = int(scale[0]), int(scale[1])
    if mode == "nearest":
        return np.repeat(np.repeat(x, sh, axis=2), sw, axis=3)
    if mode == "bilinear":
        n, c, h, w = x.shape
        oh, ow = h * sh, w * sw
        # align_corners=False sampling grid
        ys = (np.arange(oh) + 0.5) / sh - 0.5
        xs = (np.arange(ow) + 0.5) / sw - 0.5
        y0 = np.clip(np.floor(ys).astype(int), 0, h - 1)
        y1 = np.clip(y0 + 1, 0, h - 1)
        x0 = np.clip(np.floor(xs).astype(int), 0, w - 1)
        x1 = np.clip(x0 + 1, 0, w - 1)
        wy = np.clip(ys - y0, 0, 1).reshape(1, 1, -1, 1)
        wx = np.clip(xs - x0, 0, 1).reshape(1, 1, 1, -1)
        top = x[:, :, y0][:, :, :, x0] * (1 - wx) + x[:, :, y0][:, :, :, x1] * wx
        bot = x[:, :, y1][:, :, :, x0] * (1 - wx) + x[:, :, y1][:, :, :, x1] * wx
        return (top * (1 - wy) + bot * wy).astype(x.dtype, copy=False)
    raise ValueError(f"unknown resize mode {mode!r}")


def pad_nd(x: np.ndarray, pads, value: float = 0.0) -> np.ndarray:
    """N-d constant padding; ``pads`` is flat (before_0, after_0, before_1, ...)."""
    if len(pads) != 2 * x.ndim:
        raise ValueError(f"pads length {len(pads)} != 2 * rank {x.ndim}")
    width = [(pads[2 * i], pads[2 * i + 1]) for i in range(x.ndim)]
    return np.pad(x, width, constant_values=value)


def reduce_mean(x: np.ndarray, axes, keepdims: bool = True) -> np.ndarray:
    return x.mean(axis=tuple(axes), keepdims=keepdims)
