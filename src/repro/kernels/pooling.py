"""Pooling kernels: max, average and global-average pooling."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["max_pool2d", "avg_pool2d", "global_avg_pool2d"]


def _pool_windows(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pads: Tuple[int, int, int, int],
    out_hw: Tuple[int, int],
    pad_value: float,
) -> np.ndarray:
    """Extract (N, C, oh, ow, kh, kw) pooling windows, padding with ``pad_value``.

    The padded extent is grown on the bottom/right if ``ceil_mode`` produced
    an output larger than the exactly-covered input.
    """
    kh, kw = kernel
    sh, sw = stride
    top, bottom, left, right = pads
    oh, ow = out_hw
    need_h = (oh - 1) * sh + kh
    need_w = (ow - 1) * sw + kw
    grow_h = max(0, need_h - (x.shape[2] + top + bottom))
    grow_w = max(0, need_w - (x.shape[3] + left + right))
    x = np.pad(
        x,
        ((0, 0), (0, 0), (top, bottom + grow_h), (left, right + grow_w)),
        constant_values=pad_value,
    )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    return windows[:, :, ::sh, ::sw][:, :, :oh, :ow]


def max_pool2d(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pads: Tuple[int, int, int, int],
    out_hw: Tuple[int, int],
) -> np.ndarray:
    """Max pooling; padding contributes -inf so it never wins."""
    neg = np.finfo(x.dtype).min if np.issubdtype(x.dtype, np.floating) else np.iinfo(x.dtype).min
    windows = _pool_windows(x, kernel, stride, pads, out_hw, float(neg))
    return windows.max(axis=(4, 5))


def avg_pool2d(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pads: Tuple[int, int, int, int],
    out_hw: Tuple[int, int],
    count_include_pad: bool = False,
) -> np.ndarray:
    """Average pooling.

    With ``count_include_pad=False`` (the common convention) border windows
    divide by the number of *real* elements they cover.
    """
    windows = _pool_windows(x, kernel, stride, pads, out_hw, 0.0)
    sums = windows.sum(axis=(4, 5))
    if count_include_pad:
        return sums / (kernel[0] * kernel[1])
    ones = np.ones((1, 1, x.shape[2], x.shape[3]), dtype=x.dtype)
    counts = _pool_windows(ones, kernel, stride, pads, out_hw, 0.0).sum(axis=(4, 5))
    return sums / counts


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """Global average pooling to (N, C, 1, 1)."""
    return x.mean(axis=(2, 3), keepdims=True)
