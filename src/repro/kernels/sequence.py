"""Sequence-model kernels: LayerNorm, GELU, LSTM, attention.

These back the Transformer/LSTM operators (paper Figure 1 lists RNN, LSTM
and Transformer among the model families a universal engine must cover).
All kernels are vectorized over batch and, where possible, time.

The attention kernels are deliberately *not* vectorized over the query
axis: each query row is computed as an independent GEMV over exactly the
keys visible to it.  BLAS GEMM is not bitwise batch-invariant (row ``t``
of an ``M = T`` GEMM can differ in the last ulp from the same row computed
with ``M = 1``), so a vectorized prefill and a row-at-a-time decode would
drift apart.  With the row-loop formulation, a cached decode step issues
byte-for-byte the same GEMV calls as the corresponding row of a
full-sequence recompute — bit-identity by construction, which
``repro.genai`` relies on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["gelu", "layer_norm", "lstm_forward", "attention", "attention_step"]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as in BERT)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    axis: int = -1,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over one axis with affine parameters."""
    axis = axis % x.ndim
    mean = x.mean(axis=axis, keepdims=True)
    var = x.var(axis=axis, keepdims=True)
    normed = (x - mean) / np.sqrt(var + epsilon)
    shape = [1] * x.ndim
    shape[axis] = x.shape[axis]
    return normed * gamma.reshape(shape) + beta.reshape(shape)


def _attend_row(
    q_row: np.ndarray, keys: np.ndarray, values: np.ndarray, scale: np.float32
) -> np.ndarray:
    """One query row attending over ``keys``/``values`` (the GEMV core).

    Every caller — full-sequence, bucketed prefill, single-token decode —
    funnels through this function with identically shaped contiguous
    operands, which is what makes cached decode bitwise equal to a full
    recompute.
    """
    scores = (keys @ q_row) * scale
    scores = scores - scores.max()
    weights = np.exp(scores)
    weights /= weights.sum(dtype=weights.dtype)
    return weights @ values


def _merged_kv(cache: Optional[np.ndarray], new: np.ndarray, base: int) -> np.ndarray:
    """Valid cache rows followed by the freshly computed rows, contiguous."""
    if cache is None or base == 0:
        return new if cache is None else np.ascontiguousarray(new)
    return np.concatenate([cache[:base], new], axis=0)


def attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lengths: Optional[np.ndarray] = None,
    k_cache: Optional[np.ndarray] = None,
    v_cache: Optional[np.ndarray] = None,
    causal: bool = True,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Multi-head scaled-dot-product attention with optional cached K/V.

    Args:
        q: (N, H, Tq, dh) query rows for the current tokens.
        k / v: (N, H, Tq, dh) keys/values for the *same* current tokens.
        lengths: optional (N,) int — how many tokens are already cached
            per sequence (0 when absent).
        k_cache / v_cache: optional (N, H, cap, dh) cache; rows
            ``[:lengths[n]]`` are valid, rows beyond are ignored.
        causal: query row ``t`` sees keys ``[: lengths[n] + t + 1]``;
            non-causal rows see every valid key.
        scale: score scale, default ``dh ** -0.5``.

    Returns:
        (N, H, Tq, dh) context rows, dtype of ``q``.
    """
    n, h, tq, dh = q.shape
    if k.shape != v.shape:
        raise ValueError(f"k/v shape mismatch: {k.shape} vs {v.shape}")
    if (k_cache is None) != (v_cache is None):
        raise ValueError("k_cache and v_cache must be given together")
    scale_f = np.float32(dh**-0.5 if scale is None else scale)
    out = np.empty_like(q)
    for ni in range(n):
        base = 0 if lengths is None else int(lengths[ni])
        for hi in range(h):
            keys = _merged_kv(
                None if k_cache is None else k_cache[ni, hi], k[ni, hi], base
            )
            values = _merged_kv(
                None if v_cache is None else v_cache[ni, hi], v[ni, hi], base
            )
            total = base + tq
            for t in range(tq):
                valid = base + t + 1 if causal else total
                out[ni, hi, t] = _attend_row(
                    q[ni, hi, t], keys[:valid], values[:valid], scale_f
                )
    return out


def attention_step(
    q: np.ndarray,
    k_new: np.ndarray,
    v_new: np.ndarray,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    lengths: np.ndarray,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Incremental single-query attention against a K/V cache.

    Args:
        q: (N, H, dh) — the one new query row per sequence.
        k_new / v_new: (N, H, dh) — the new token's key/value rows.
        k_cache / v_cache: (N, H, cap, dh) with ``lengths[n]`` valid rows.
        lengths: (N,) cached-token counts (the new token excluded).

    Returns:
        (N, H, dh) context rows, bit-identical to row ``lengths[n]`` of a
        causal full-sequence :func:`attention` over the same tokens.
    """
    out = attention(
        q[:, :, None, :],
        k_new[:, :, None, :],
        v_new[:, :, None, :],
        lengths=lengths,
        k_cache=k_cache,
        v_cache=v_cache,
        causal=True,
        scale=scale,
    )
    return out[:, :, 0, :]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def lstm_forward(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: Optional[np.ndarray] = None,
    return_sequences: bool = False,
) -> np.ndarray:
    """Single-layer LSTM over a batched sequence.

    Args:
        x: (N, T, features) input sequence.
        w_ih: (4*H, features) input weights, gate order [i, f, g, o].
        w_hh: (4*H, H) recurrent weights.
        bias: optional (4*H,) bias.
        return_sequences: return all hidden states (N, T, H) instead of
            just the final one (N, H).
    """
    n, t, features = x.shape
    hidden = w_hh.shape[1]
    if w_ih.shape != (4 * hidden, features):
        raise ValueError(f"w_ih {w_ih.shape} != ({4 * hidden}, {features})")
    # Pre-compute all input projections in one GEMM over (N*T, features).
    proj = x.reshape(n * t, features) @ w_ih.T
    if bias is not None:
        proj = proj + bias
    proj = proj.reshape(n, t, 4 * hidden)

    h = np.zeros((n, hidden), dtype=x.dtype)
    c = np.zeros((n, hidden), dtype=x.dtype)
    outputs = np.empty((n, t, hidden), dtype=x.dtype) if return_sequences else None
    w_hh_t = w_hh.T
    for step in range(t):
        gates = proj[:, step] + h @ w_hh_t
        i = _sigmoid(gates[:, :hidden])
        f = _sigmoid(gates[:, hidden : 2 * hidden])
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden :])
        c = f * c + i * g
        h = o * np.tanh(c)
        if outputs is not None:
            outputs[:, step] = h
    return outputs if outputs is not None else h
