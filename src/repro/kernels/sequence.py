"""Sequence-model kernels: LayerNorm, GELU, LSTM.

These back the Transformer/LSTM operators (paper Figure 1 lists RNN, LSTM
and Transformer among the model families a universal engine must cover).
All kernels are vectorized over batch and, where possible, time.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["gelu", "layer_norm", "lstm_forward"]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as in BERT)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    axis: int = -1,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over one axis with affine parameters."""
    axis = axis % x.ndim
    mean = x.mean(axis=axis, keepdims=True)
    var = x.var(axis=axis, keepdims=True)
    normed = (x - mean) / np.sqrt(var + epsilon)
    shape = [1] * x.ndim
    shape[axis] = x.shape[axis]
    return normed * gamma.reshape(shape) + beta.reshape(shape)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def lstm_forward(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: Optional[np.ndarray] = None,
    return_sequences: bool = False,
) -> np.ndarray:
    """Single-layer LSTM over a batched sequence.

    Args:
        x: (N, T, features) input sequence.
        w_ih: (4*H, features) input weights, gate order [i, f, g, o].
        w_hh: (4*H, H) recurrent weights.
        bias: optional (4*H,) bias.
        return_sequences: return all hidden states (N, T, H) instead of
            just the final one (N, H).
    """
    n, t, features = x.shape
    hidden = w_hh.shape[1]
    if w_ih.shape != (4 * hidden, features):
        raise ValueError(f"w_ih {w_ih.shape} != ({4 * hidden}, {features})")
    # Pre-compute all input projections in one GEMM over (N*T, features).
    proj = x.reshape(n * t, features) @ w_ih.T
    if bias is not None:
        proj = proj + bias
    proj = proj.reshape(n, t, 4 * hidden)

    h = np.zeros((n, hidden), dtype=x.dtype)
    c = np.zeros((n, hidden), dtype=x.dtype)
    outputs = np.empty((n, t, hidden), dtype=x.dtype) if return_sequences else None
    w_hh_t = w_hh.T
    for step in range(t):
        gates = proj[:, step] + h @ w_hh_t
        i = _sigmoid(gates[:, :hidden])
        f = _sigmoid(gates[:, hidden : 2 * hidden])
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden :])
        c = f * c + i * g
        h = o * np.tanh(c)
        if outputs is not None:
            outputs[:, step] = h
    return outputs if outputs is not None else h
