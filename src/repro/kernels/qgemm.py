"""Int8 GEMM/MatMul micro-kernels, beside the fp family on one substrate.

MNN registers its int8 kernels on the same packed-layout substrate as
the fp path so scheme selection keeps ranking schemes correctly; this
module does the python equivalent: the int8 GEMM is the same blocked
tile walk as :func:`repro.kernels.matmul.tiled_matmul` (tile edges stay
multiples of ``SIMD_WIDTH`` — the NC4HW4 lane count), records into the
same :class:`~repro.kernels.matmul.GemmStats`, and differs only in the
arithmetic contract:

* activations quantize **dynamically per row** (symmetric, zero-point
  0) — the MNN-LLM weight-only recipe, no calibration pass needed;
* accumulation is **exact int32**, which buys a property the fp GEMM
  has to work for: the int sum is associative, so row ``t`` of a batched
  product is *bitwise* equal to the single-row product.  A ``rowwise``
  MatMul therefore needs no per-row loop on the int8 path — the batched
  kernel already has decode's token-invariance for free;
* dequantization multiplies each int32 cell by ``row_scale x col_scale``
  in float32, element-wise (no float reductions anywhere).

Winograd/Strassen stay fp-only: their transforms are float arithmetic,
which would forfeit the exact-int32 contract — the scheme selector
(:mod:`repro.core.schemes`) excludes them for int8 layers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .matmul import GemmStats

__all__ = ["QGEMM_TILE", "quantize_rowwise", "qgemm", "qmatmul"]

#: Micro-kernel tile edge for the int8 GEMM.  int8 operands pack 4x more
#: elements per cache line than float32, so the cache-resident tile edge
#: doubles relative to the fp kernel's 256 while staying a SIMD_WIDTH
#: multiple.
QGEMM_TILE = 512


def quantize_rowwise(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dynamic per-row symmetric int8 quantization of a 2-D activation.

    Returns ``(xq, scales)`` with one float32 scale per row
    (``max_abs / 127``; all-zero rows get scale 0.0 and quantize to
    zeros).  Pure function of ``x`` — no calibration state — so the
    quantized bytes are identical on every execution path.
    """
    x = np.asarray(x, np.float32)
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D activation, got shape {x.shape}")
    max_abs = np.max(np.abs(x), axis=1) if x.size else np.zeros(x.shape[0], np.float32)
    scales = (max_abs / 127.0).astype(np.float32)
    safe = np.where(scales > 0, scales, np.float32(1.0)).astype(np.float32)
    xq = np.clip(np.rint(x / safe.reshape(-1, 1)), -127, 127).astype(np.int8)
    return xq, scales


def qgemm(
    xq: np.ndarray,
    wq: np.ndarray,
    row_scales: np.ndarray,
    col_scales: np.ndarray,
    tile: int = QGEMM_TILE,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """Blocked int8 GEMM: exact int32 accumulation, float32 dequant.

    ``C[i, j] = (sum_k xq[i, k] * wq[k, j]) * row_scales[i] * col_scales[j]``

    The k-loop runs entirely in int32 (worst-case ``k * 127 * 127`` fits
    int32 for any k this engine meets; the guard below enforces it), so
    the accumulator is exact and batch-invariant.
    """
    if xq.dtype != np.int8 or wq.dtype != np.int8:
        raise ValueError(
            f"qgemm wants int8 operands, got {xq.dtype} x {wq.dtype}"
        )
    if xq.ndim != 2 or wq.ndim != 2 or xq.shape[1] != wq.shape[0]:
        raise ValueError(f"bad GEMM shapes {xq.shape} x {wq.shape}")
    n, k = xq.shape
    _, m = wq.shape
    if k * 127 * 127 >= 2**31:
        raise ValueError(f"reduction depth {k} overflows the int32 accumulator")
    acc = np.zeros((n, m), dtype=np.int32)
    a32 = xq.astype(np.int32)
    b32 = wq.astype(np.int32)
    for i0 in range(0, n, tile):
        i1 = min(i0 + tile, n)
        for j0 in range(0, m, tile):
            j1 = min(j0 + tile, m)
            block = acc[i0:i1, j0:j1]
            for p0 in range(0, k, tile):
                p1 = min(p0 + tile, k)
                block += a32[i0:i1, p0:p1] @ b32[p0:p1, j0:j1]
                if stats is not None:
                    stats.record_base(i1 - i0, p1 - p0, j1 - j0)
    scale = np.asarray(row_scales, np.float32).reshape(-1, 1) * np.asarray(
        col_scales, np.float32
    ).reshape(1, -1)
    return acc.astype(np.float32) * scale


def qmatmul(
    x: np.ndarray,
    wq: np.ndarray,
    col_scales: np.ndarray,
    tile: int = QGEMM_TILE,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """Float-in/float-out MatMul over int8 weights (the op-runner entry).

    Flattens leading axes to rows, quantizes each row dynamically, runs
    the int32 GEMM and dequantizes — the drop-in int8 twin of
    :func:`repro.kernels.matmul.matmul` for a constant rhs.  Because the
    int32 accumulation is exact, the result for row ``t`` is bitwise
    identical whether ``x`` carries one token or a whole sequence, which
    is the property decode-step pre-inference relies on.
    """
    wq = np.asarray(wq)
    if wq.ndim != 2:
        raise ValueError(f"qmatmul weights must be 2-D, got shape {wq.shape}")
    cs = np.asarray(col_scales, np.float32)
    if cs.shape != (wq.shape[1],):
        raise ValueError(
            f"weight_scales shape {cs.shape} != output channels ({wq.shape[1]},)"
        )
    x = np.asarray(x, np.float32)
    rows = np.ascontiguousarray(x.reshape(-1, x.shape[-1]))
    xq, row_scales = quantize_rowwise(rows)
    out = qgemm(xq, np.ascontiguousarray(wq), row_scales, cs, tile, stats)
    return out.reshape(*x.shape[:-1], wq.shape[1])
