"""Winograd convolution with a general transform-matrix generator.

The paper (Section 3.3.1) replaces hard-coded Winograd transform tables with
a *generator* able to produce the ``A``, ``B``, ``G`` matrices for any output
tile size ``n`` and kernel size ``k``.  Interpolation points follow Eq. 8:

    x * (x - f)(x + f) * (x - 2f)(x + 2f) * ...

with ``f = 0.5`` chosen to minimize numerical error.  We construct ``A^T``
and ``G`` in closed form from the points (plus the point at infinity) and
solve for ``B^T`` exactly over the rationals from the bilinear-algorithm
identity, so the generated algorithm is *exact* up to float rounding:

    sum_l  AT[j, l] * G[l, c] * BT[l, i]  ==  1  iff  i == j + c   (else 0)

which is precisely the statement "y = A^T [(G g) . (B^T d)] computes the
valid correlation of d with g".

The 2-D convolution (``winograd_conv2d``) follows Figure 4: tile the input,
transform tiles with ``B^T X B``, pre-transform the kernel with ``G W G^T``
(done once at pre-inference — the "pre-computed constants" of Figure 2),
batch the Hadamard products into per-position matrix multiplications over
the channel dimension, and inverse-transform with ``A^T Y' A``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "WinogradTransforms",
    "generate_transforms",
    "interpolation_points",
    "transform_kernel",
    "winograd_conv2d",
    "winograd_conv2d_rect",
    "winograd_conv2d_with_kernel",
    "transform_cache_entries",
    "preload_transforms",
    "clear_transform_cache",
    "transforms_to_json",
    "transforms_from_json",
]


def interpolation_points(count: int, f: Fraction = Fraction(1, 2)) -> List[Fraction]:
    """The first ``count`` points of the paper's Eq. 8 sequence.

    Sequence: ``0, f, -f, 2f, -2f, 3f, -3f, ...``
    """
    points: List[Fraction] = [Fraction(0)]
    step = 1
    while len(points) < count:
        points.append(f * step)
        if len(points) < count:
            points.append(-f * step)
        step += 1
    return points[:count]


def _solve_exact(rows: List[List[Fraction]], rhs: List[List[Fraction]]) -> List[List[Fraction]]:
    """Solve the (possibly overdetermined but consistent) system M X = R exactly.

    Gaussian elimination over ``Fraction``; raises ``ValueError`` if the
    system is inconsistent or rank-deficient.
    """
    n_rows = len(rows)
    n_cols = len(rows[0])
    n_rhs = len(rhs[0])
    aug = [rows[i] + rhs[i] for i in range(n_rows)]
    pivot_row = 0
    pivot_cols = []
    for col in range(n_cols):
        pivot = next(
            (r for r in range(pivot_row, n_rows) if aug[r][col] != 0), None
        )
        if pivot is None:
            continue
        aug[pivot_row], aug[pivot] = aug[pivot], aug[pivot_row]
        factor = aug[pivot_row][col]
        aug[pivot_row] = [v / factor for v in aug[pivot_row]]
        for r in range(n_rows):
            if r != pivot_row and aug[r][col] != 0:
                scale = aug[r][col]
                aug[r] = [a - scale * b for a, b in zip(aug[r], aug[pivot_row])]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == n_rows:
            break
    if len(pivot_cols) < n_cols:
        raise ValueError("Winograd system is rank-deficient; pick distinct points")
    # Rows beyond the pivots must be all-zero (consistency).
    for r in range(len(pivot_cols), n_rows):
        if any(v != 0 for v in aug[r]):
            raise ValueError("Winograd system inconsistent; generator invariant broken")
    solution = [[Fraction(0)] * n_rhs for _ in range(n_cols)]
    for r, col in enumerate(pivot_cols):
        solution[col] = aug[r][n_cols:]
    return solution


@dataclass(frozen=True)
class WinogradTransforms:
    """Generated transform matrices for F(n x n, k x k).

    Attributes:
        n: output tile size.
        k: kernel size.
        t: input tile size ``n + k - 1`` (= number of multiplies per 1-D tile).
        at: ``A^T`` of shape (n, t) — output/inverse transform.
        g: ``G`` of shape (t, k) — kernel transform.
        bt: ``B^T`` of shape (t, t) — input transform.
    """

    n: int
    k: int
    t: int
    at: np.ndarray
    g: np.ndarray
    bt: np.ndarray


#: Process-wide transform cache keyed by (n, k, f_num, f_den).  Solving for
#: the matrices is exact rational Gaussian elimination — by far the most
#: expensive part of conv pre-inference — so the cache is exposed for
#: snapshotting (``transform_cache_entries``) and re-seeding
#: (``preload_transforms``): a warm serving process restores the matrices
#: from disk instead of re-deriving them (see :mod:`repro.serving.cache`).
_TRANSFORM_CACHE: Dict[Tuple[int, int, int, int], WinogradTransforms] = {}


def _generate_cached(n: int, k: int, f_num: int, f_den: int) -> WinogradTransforms:
    key = (n, k, f_num, f_den)
    cached = _TRANSFORM_CACHE.get(key)
    if cached is None:
        cached = _TRANSFORM_CACHE.setdefault(key, _generate(n, k, f_num, f_den))
    return cached


def transform_cache_entries() -> Dict[Tuple[int, int, int, int], WinogradTransforms]:
    """A snapshot of every transform generated so far (for persistence)."""
    return dict(_TRANSFORM_CACHE)


def preload_transforms(
    entries: Mapping[Tuple[int, int, int, int], WinogradTransforms],
) -> int:
    """Seed the cache with previously generated transforms.

    Returns the number of entries actually inserted (existing keys win —
    an in-process transform is never replaced by a deserialized one).
    """
    inserted = 0
    for key, tr in entries.items():
        n, k, _, _ = key
        if tr.n != n or tr.k != k or tr.t != n + k - 1:
            raise ValueError(f"transform entry {key} does not match its matrices")
        if key not in _TRANSFORM_CACHE:
            _TRANSFORM_CACHE[key] = tr
            inserted += 1
    return inserted


def clear_transform_cache() -> None:
    """Drop every cached transform (tests and cold-start benchmarks)."""
    _TRANSFORM_CACHE.clear()


def transforms_to_json(
    entries: Mapping[Tuple[int, int, int, int], WinogradTransforms],
) -> List[Dict[str, Any]]:
    """JSON-serializable form of a transform-cache snapshot.

    The matrices are tiny (``t <= 10``), so nested float lists keep the
    cache file human-inspectable.
    """
    return [
        {
            "n": n, "k": k, "f_num": f_num, "f_den": f_den,
            "at": tr.at.tolist(), "g": tr.g.tolist(), "bt": tr.bt.tolist(),
        }
        for (n, k, f_num, f_den), tr in sorted(entries.items())
    ]


def transforms_from_json(
    data: Iterable[Mapping[str, Any]],
) -> Dict[Tuple[int, int, int, int], WinogradTransforms]:
    """Inverse of :func:`transforms_to_json`."""
    entries: Dict[Tuple[int, int, int, int], WinogradTransforms] = {}
    for item in data:
        n, k = int(item["n"]), int(item["k"])
        key = (n, k, int(item["f_num"]), int(item["f_den"]))
        entries[key] = WinogradTransforms(
            n=n, k=k, t=n + k - 1,
            at=np.asarray(item["at"], dtype=np.float64),
            g=np.asarray(item["g"], dtype=np.float64),
            bt=np.asarray(item["bt"], dtype=np.float64),
        )
    return entries


def _generate(n: int, k: int, f_num: int, f_den: int) -> WinogradTransforms:
    f = Fraction(f_num, f_den)
    t = n + k - 1
    points = interpolation_points(t - 1, f)
    if len(set(points)) != len(points):
        raise ValueError("interpolation points must be distinct")

    # G: rows are [1, a, a^2, ...]/N_i for finite points, then e_{k-1} for ∞.
    g_rows: List[List[Fraction]] = []
    for i, a in enumerate(points):
        norm = Fraction(1)
        for j, other in enumerate(points):
            if j != i:
                norm *= a - other
        g_rows.append([a**p / norm for p in range(k)])
    g_rows.append([Fraction(0)] * (k - 1) + [Fraction(1)])

    # A^T: columns are [1, a, a^2, ...] for finite points, e_{n-1} for ∞.
    at_rows: List[List[Fraction]] = [
        [a**j for a in points] + [Fraction(1) if j == n - 1 else Fraction(0)]
        for j in range(n)
    ]

    # Solve for B^T from the bilinear identity (see module docstring):
    # for each output column i of B^T, sum_l AT[j,l] G[l,c] BT[l,i] = [i == j+c].
    system_rows: List[List[Fraction]] = []
    rhs: List[List[Fraction]] = []
    for j in range(n):
        for c in range(k):
            system_rows.append([at_rows[j][l] * g_rows[l][c] for l in range(t)])
            rhs.append([Fraction(1) if i == j + c else Fraction(0) for i in range(t)])
    bt_cols = _solve_exact(system_rows, rhs)  # shape (t rows of solution) x t
    # _solve_exact returns X with X[l][i] = BT[l][i] (unknowns were BT[:, i]).
    bt_rows = bt_cols

    to_np = lambda rows: np.array([[float(v) for v in row] for row in rows], dtype=np.float64)
    return WinogradTransforms(n=n, k=k, t=t, at=to_np(at_rows), g=to_np(g_rows), bt=to_np(bt_rows))


def generate_transforms(n: int, k: int, f: Fraction = Fraction(1, 2)) -> WinogradTransforms:
    """Generate exact Winograd transforms for F(n x n, k x k).

    Args:
        n: output tile size (>= 1; n == 1 degenerates to direct convolution).
        k: kernel size (>= 2 for a meaningful Winograd transform).
        f: the Eq. 8 spacing scalar (default 1/2, as in the paper).

    Raises:
        ValueError: for invalid sizes.
    """
    if n < 1 or k < 1:
        raise ValueError(f"invalid Winograd sizes n={n}, k={k}")
    frac = Fraction(f)
    return _generate_cached(n, k, frac.numerator, frac.denominator)


def transform_kernel(weights: np.ndarray, transforms: WinogradTransforms) -> np.ndarray:
    """Pre-transform conv weights: ``W' = G W G^T`` per (oc, ic) pair.

    Args:
        weights: (oc, ic, k, k) convolution kernel.
        transforms: matrices from :func:`generate_transforms`.

    Returns:
        (t, t, ic, oc) transformed kernel, laid out so the Hadamard stage can
        run one (U, ic) x (ic, oc) matmul per tile position (Figure 4).
    """
    oc, ic, kh, kw = weights.shape
    if kh != transforms.k or kw != transforms.k:
        raise ValueError(f"kernel {kh}x{kw} does not match transforms k={transforms.k}")
    g = transforms.g
    # W'[a, b, ic, oc] = sum_{i,j} G[a, i] W[oc, ic, i, j] G[b, j]
    wt = np.tensordot(g, weights.astype(np.float64), axes=([1], [2]))
    # wt: (t, oc, ic, k); contract the remaining kernel axis with G
    wt = np.tensordot(wt, g, axes=([3], [1]))  # (t, oc, ic, t)
    return np.ascontiguousarray(wt.transpose(0, 3, 2, 1))  # (t, t, ic, oc)


def _tile_input(x: np.ndarray, n: int, t: int, tiles_h: int, tiles_w: int) -> np.ndarray:
    """Gather overlapping t x t tiles at stride n: -> (N, ic, th, tw, t, t)."""
    view = np.lib.stride_tricks.sliding_window_view(x, (t, t), axis=(2, 3))
    return view[:, :, :: n, :: n][:, :, :tiles_h, :tiles_w]


def winograd_conv2d_with_kernel(
    x: np.ndarray,
    transformed_kernel: np.ndarray,
    transforms: WinogradTransforms,
    bias: Optional[np.ndarray] = None,
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    stride: Tuple[int, int] = (1, 1),
) -> np.ndarray:
    """Winograd convolution given an already-transformed kernel.

    Splitting kernel transformation out mirrors MNN's pre-inference: ``G W
    G^T`` is computed once per session and reused across inferences.

    Only stride 1 is supported (Winograd requires it); callers fall back to
    sliding window otherwise.
    """
    if stride != (1, 1):
        raise ValueError("Winograd convolution requires stride 1")
    n_tile, k, t = transforms.n, transforms.k, transforms.t
    batch, ic, ih, iw = x.shape
    top, bottom, left, right = pads
    oh = ih + top + bottom - k + 1
    ow = iw + left + right - k + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"kernel {k} does not fit padded input {(ih, iw)}")
    tiles_h = -(-oh // n_tile)
    tiles_w = -(-ow // n_tile)
    # Pad: explicit conv padding plus right/bottom padding to whole tiles.
    pad_h = tiles_h * n_tile + k - 1 - (ih + top + bottom)
    pad_w = tiles_w * n_tile + k - 1 - (iw + left + right)
    xp = np.pad(
        x.astype(np.float64, copy=False),
        ((0, 0), (0, 0), (top, bottom + pad_h), (left, right + pad_w)),
    )

    tiles = _tile_input(xp, n_tile, t, tiles_h, tiles_w)  # (N, ic, th, tw, t, t)
    bt, at = transforms.bt, transforms.at
    # X' = B^T X B, batched over (N, ic, th, tw).
    xt = np.einsum("ab,nctwbd,ed->aenctw", bt, tiles, bt, optimize=True)
    # Hadamard-as-matmul per tile position (Figure 4):
    # Y'[a, e, n, th, tw, oc] = sum_ic X'[a, e, n, c, th, tw] W'[a, e, c, oc]
    yt = np.einsum("aenctw,aeco->aentwo", xt, transformed_kernel, optimize=True)
    # Y = A^T Y' A  -> (n_tile, n_tile, N, th, tw, oc)
    y = np.einsum("pa,aentwo,qe->pqntwo", at, yt, at, optimize=True)
    # Scatter tiles back: (N, oc, th*n, tw*n), then crop to (oh, ow).
    y = y.transpose(2, 5, 3, 0, 4, 1).reshape(batch, y.shape[5], tiles_h * n_tile, tiles_w * n_tile)
    y = y[:, :, :oh, :ow]
    if bias is not None:
        y = y + bias.reshape(1, -1, 1, 1)
    return y.astype(x.dtype, copy=False)


def _transforms_1d(n: int, k: int, f: Fraction) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-axis transforms (A^T, G, B^T) for F(n, k), with k = 1 degenerate.

    A k = 1 "convolution" along an axis is a scalar multiply, so the
    transforms collapse to identities with ``G = ones((n, 1))``.
    """
    if k == 1:
        eye = np.eye(n, dtype=np.float64)
        return eye, np.ones((n, 1), dtype=np.float64), eye
    tr = generate_transforms(n, k, f)
    return tr.at, tr.g, tr.bt


def winograd_conv2d_rect(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    n_hw: Tuple[int, int] = (2, 2),
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    f: Fraction = Fraction(1, 2),
) -> np.ndarray:
    """Winograd convolution for *rectangular* kernels F(nh x nw, kh x kw).

    This is the generator's payoff beyond hard-coded tables: asymmetric
    kernels like Inception's 1x7 / 7x1 get Winograd acceleration too, with
    independent per-axis tile sizes and interpolation points.  Stride must
    be 1 (as for square Winograd).
    """
    batch, ic, ih, iw = x.shape
    oc, _, kh, kw = weights.shape
    nh, nw = n_hw
    at_h, g_h, bt_h = _transforms_1d(nh, kh, f)
    at_w, g_w, bt_w = _transforms_1d(nw, kw, f)
    th, tw = nh + kh - 1, nw + kw - 1

    top, bottom, left, right = pads
    oh = ih + top + bottom - kh + 1
    ow = iw + left + right - kw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"kernel ({kh},{kw}) does not fit padded input {(ih, iw)}")
    tiles_h = -(-oh // nh)
    tiles_w = -(-ow // nw)
    pad_h = tiles_h * nh + kh - 1 - (ih + top + bottom)
    pad_w = tiles_w * nw + kw - 1 - (iw + left + right)
    xp = np.pad(
        x.astype(np.float64, copy=False),
        ((0, 0), (0, 0), (top, bottom + pad_h), (left, right + pad_w)),
    )

    # W'[a, b, ic, oc] = sum_{i,j} G_h[a, i] W[oc, ic, i, j] G_w[b, j]
    wt = np.einsum("ai,ocij,bj->abco", g_h, weights.astype(np.float64), g_w,
                   optimize=True)

    view = np.lib.stride_tricks.sliding_window_view(xp, (th, tw), axis=(2, 3))
    tiles = view[:, :, ::nh, ::nw][:, :, :tiles_h, :tiles_w]  # (N, ic, TH, TW, th, tw)
    xt = np.einsum("ab,nctwbd,ed->aenctw", bt_h, tiles, bt_w, optimize=True)
    yt = np.einsum("aenctw,aeco->aentwo", xt, wt, optimize=True)
    y = np.einsum("pa,aentwo,qe->pqntwo", at_h, yt, at_w, optimize=True)
    y = y.transpose(2, 5, 3, 0, 4, 1).reshape(batch, oc, tiles_h * nh, tiles_w * nw)
    y = y[:, :, :oh, :ow]
    if bias is not None:
        y = y + bias.reshape(1, -1, 1, 1)
    return y.astype(x.dtype, copy=False)


def winograd_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    n: int = 2,
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    stride: Tuple[int, int] = (1, 1),
    f: Fraction = Fraction(1, 2),
) -> np.ndarray:
    """Winograd convolution F(n x n, k x k) from raw weights.

    Args:
        x: (N, ic, H, W) input.
        weights: (oc, ic, k, k) kernel (square, stride 1, dilation 1).
        bias: optional (oc,) bias.
        n: output tile size.
        pads: explicit (top, bottom, left, right) input padding.
        f: interpolation-point spacing (Eq. 8).
    """
    k = weights.shape[2]
    if weights.shape[2] != weights.shape[3]:
        raise ValueError("Winograd requires a square kernel")
    transforms = generate_transforms(n, k, f)
    kernel = transform_kernel(weights, transforms)
    return winograd_conv2d_with_kernel(x, kernel, transforms, bias, pads, stride)
