"""NC4HW4 data-layout packing and unpacking (paper Section 3.3.1).

NC4HW4 splits the channel axis into blocks of ``V = 4`` elements placed
contiguously in memory so a vector register can process 4 channels per
instruction.  In this NumPy port, the trailing axis of size 4 plays the
role of the SIMD lane: kernels that operate on packed tensors express
their inner loop over that axis with whole-array numpy ops.

Logical NCHW shape ``(N, C, H, W)`` maps to physical ``(N, ceil(C/4), H, W, 4)``
with zero padding in the final partial channel block.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..ir.tensor import SIMD_WIDTH

__all__ = ["pack_nc4hw4", "unpack_nc4hw4", "packed_shape", "conv2d_1x1_packed"]


def packed_shape(shape: Tuple[int, int, int, int]) -> Tuple[int, int, int, int, int]:
    """Physical NC4HW4 shape for a logical NCHW ``shape``."""
    n, c, h, w = shape
    c4 = -(-c // SIMD_WIDTH)
    return (n, c4, h, w, SIMD_WIDTH)


def pack_nc4hw4(x: np.ndarray) -> np.ndarray:
    """Repack an NCHW tensor into NC4HW4.

    The channel axis is zero-padded up to a multiple of 4, split into
    ``(C/4, 4)``, and the 4-lane axis is moved innermost.
    """
    if x.ndim != 4:
        raise ValueError(f"pack_nc4hw4 expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    c4 = -(-c // SIMD_WIDTH)
    pad = c4 * SIMD_WIDTH - c
    if pad:
        x = np.concatenate([x, np.zeros((n, pad, h, w), x.dtype)], axis=1)
    # (N, C4, 4, H, W) -> (N, C4, H, W, 4)
    return np.ascontiguousarray(x.reshape(n, c4, SIMD_WIDTH, h, w).transpose(0, 1, 3, 4, 2))


def conv2d_1x1_packed(
    x_packed: np.ndarray,
    weights: np.ndarray,
    bias=None,
) -> np.ndarray:
    """1x1 convolution directly on NC4HW4-packed activations.

    The lane axis stays innermost throughout: each output 4-lane block is a
    sum over input 4-lane blocks of 4x4 weight sub-matrices — exactly the
    register tiling MNN's NEON kernels use (Section 3.3.1).  Input and
    output remain packed, so a chain of packed ops never repacks.

    Args:
        x_packed: (N, C4_in, H, W, 4) packed input.
        weights: (oc, ic, 1, 1) standard kernel; ``ic`` may be less than
            ``C4_in * 4`` (the padding lanes are zeros and contribute 0).

    Returns:
        (N, C4_out, H, W, 4) packed output.
    """
    if x_packed.ndim != 5 or x_packed.shape[-1] != SIMD_WIDTH:
        raise ValueError(f"expected packed (N, C4, H, W, 4) input, got {x_packed.shape}")
    if weights.shape[2:] != (1, 1):
        raise ValueError(f"conv2d_1x1_packed needs a 1x1 kernel, got {weights.shape}")
    n, c4_in, h, w, v = x_packed.shape
    oc, ic = weights.shape[0], weights.shape[1]
    if ic > c4_in * v:
        raise ValueError(f"kernel expects {ic} channels, packed input has {c4_in * v}")
    # Pack the weight matrix into (C4_out, C4_in, 4out, 4in) blocks.
    oc4 = -(-oc // v)
    wmat = np.zeros((oc4 * v, c4_in * v), dtype=weights.dtype)
    wmat[:oc, : ic] = weights.reshape(oc, ic)
    wblocks = wmat.reshape(oc4, v, c4_in, v)
    # out[n, O, h, w, o] = sum_{I, i} x[n, I, h, w, i] * W[O, o, I, i]
    out = np.einsum("nIhwi,OoIi->nOhwo", x_packed, wblocks, optimize=True)
    if bias is not None:
        bias_packed = np.zeros(oc4 * v, dtype=out.dtype)
        bias_packed[:oc] = bias
        out += bias_packed.reshape(1, oc4, 1, 1, v)
    return np.ascontiguousarray(out)


def unpack_nc4hw4(x: np.ndarray, channels: int) -> np.ndarray:
    """Inverse of :func:`pack_nc4hw4`, dropping channel padding.

    Args:
        x: packed tensor of shape ``(N, C4, H, W, 4)``.
        channels: the logical channel count to restore.
    """
    if x.ndim != 5 or x.shape[-1] != SIMD_WIDTH:
        raise ValueError(f"unpack_nc4hw4 expects (N, C4, H, W, 4), got {x.shape}")
    n, c4, h, w, v = x.shape
    if channels > c4 * v:
        raise ValueError(f"cannot unpack {channels} channels from {c4 * v} packed")
    full = x.transpose(0, 1, 4, 2, 3).reshape(n, c4 * v, h, w)
    return np.ascontiguousarray(full[:, :channels])
