"""Int8 quantized convolution (the converter's model-compression path).

Symmetric linear quantization: activations use one scale per tensor,
weights one scale per output channel.  Accumulation is exact int32 — the
same arithmetic contract as MNN's int8 kernels — and the result is
dequantized back to float32.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .conv import im2col

__all__ = ["quantize_tensor", "quantize_weights_per_channel", "qconv2d"]


def quantize_tensor(x: np.ndarray, scale: float) -> np.ndarray:
    """Quantize to int8 with a symmetric scale (zero point 0)."""
    if scale <= 0:
        raise ValueError(f"quantization scale must be positive, got {scale}")
    return np.clip(np.round(x / scale), -127, 127).astype(np.int8)


def quantize_weights_per_channel(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-output-channel symmetric int8 quantization of conv weights.

    Args:
        weights: (oc, ic, kh, kw) float kernel.

    Returns:
        (int8 weights, per-channel float scales of shape (oc,)).
    """
    oc = weights.shape[0]
    flat = np.abs(weights.reshape(oc, -1))
    max_abs = flat.max(axis=1)
    scales = np.where(max_abs > 0, max_abs / 127.0, 1.0).astype(np.float32)
    q = np.clip(np.round(weights / scales.reshape(-1, 1, 1, 1)), -127, 127).astype(np.int8)
    return q, scales


def qconv2d(
    x: np.ndarray,
    weights_q: np.ndarray,
    weight_scales: np.ndarray,
    input_scale: float,
    bias: Optional[np.ndarray] = None,
    stride: Tuple[int, int] = (1, 1),
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> np.ndarray:
    """Quantized conv: int8 inputs/weights, int32 accumulation, float output."""
    n, ic = x.shape[:2]
    oc = weights_q.shape[0]
    kh, kw = weights_q.shape[2], weights_q.shape[3]
    xq = quantize_tensor(x, input_scale).astype(np.int32)
    cols = im2col(xq, (kh, kw), stride, pads, dilation)  # (N, oh, ow, C, kh, kw)
    _, oh, ow, _, _, _ = cols.shape
    icg, ocg = ic // groups, oc // groups
    acc = np.empty((n, oc, oh, ow), dtype=np.int32)
    wq = weights_q.astype(np.int32)
    for g in range(groups):
        lhs = np.ascontiguousarray(
            cols[:, :, :, g * icg : (g + 1) * icg]
        ).reshape(n * oh * ow, icg * kh * kw)
        rhs = wq[g * ocg : (g + 1) * ocg].reshape(ocg, icg * kh * kw).T
        prod = lhs @ rhs  # exact int32 accumulation
        acc[:, g * ocg : (g + 1) * ocg] = prod.reshape(n, oh, ow, ocg).transpose(0, 3, 1, 2)
    dequant = input_scale * weight_scales.reshape(1, -1, 1, 1)
    out = acc.astype(np.float32) * dequant
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out
