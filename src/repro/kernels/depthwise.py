"""Depthwise convolution kernel.

Depthwise conv applies one k x k filter per channel.  It is memory-bound, so
no Winograd/Strassen variant exists in MNN's scheme pool either; the kernel
is a direct vectorized sweep over the (small) kernel window.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["depthwise_conv2d"]


def depthwise_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: Tuple[int, int] = (1, 1),
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    dilation: Tuple[int, int] = (1, 1),
) -> np.ndarray:
    """Depthwise convolution.

    Args:
        x: (N, C, H, W) input.
        weights: (C, 1, kh, kw) per-channel filters.
        bias: optional (C,) bias.
    """
    n, c, _, _ = x.shape
    if weights.shape[0] != c or weights.shape[1] != 1:
        raise ValueError(f"depthwise weights {weights.shape} do not match {c} channels")
    kh, kw = weights.shape[2], weights.shape[3]
    sh, sw = stride
    dh, dw = dilation
    top, bottom, left, right = pads
    if any(pads):
        x = np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)))
    eff_kh = (kh - 1) * dh + 1
    eff_kw = (kw - 1) * dw + 1
    oh = (x.shape[2] - eff_kh) // sh + 1
    ow = (x.shape[3] - eff_kw) // sw + 1
    out = np.zeros((n, c, oh, ow), dtype=np.result_type(x.dtype, weights.dtype))
    # Sweep the kernel window: kh*kw fused multiply-adds over whole planes.
    for i in range(kh):
        for j in range(kw):
            di, dj = i * dh, j * dw
            patch = x[:, :, di : di + (oh - 1) * sh + 1 : sh, dj : dj + (ow - 1) * sw + 1 : sw]
            out += patch * weights[:, 0, i, j].reshape(1, c, 1, 1)
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out
