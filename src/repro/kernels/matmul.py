"""Matrix multiplication kernels: the tiled base GEMM and Strassen on top.

The paper (Section 3.3.2) converts 1x1 convolutions to large GEMMs and
accelerates them with Strassen's algorithm, recursing only while the saved
base multiplication outweighs the extra matrix additions — its Eq. 9 for a
product ``[n, k] x [k, m] -> [n, m]``::

    n*k*m  -  7*(n/2)*(k/2)*(m/2)  >  4*(m/2)*(k/2) + 4*(n/2)*(k/2) + 7*(m/2)*(n/2)

Both the direct and the Strassen path run on the same *micro-kernel* — a
tiled GEMM whose base tile multiply stands in for MNN's hand-written
assembly kernel.  Building both on the same substrate keeps the Table 3
comparison fair: Strassen wins exactly because it issues fewer base-tile
multiplications, which is the paper's mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["GemmStats", "tiled_matmul", "strassen_matmul", "matmul", "strassen_should_recurse"]

#: Edge length of the micro-kernel tile.  256 floats keeps a full tile
#: triple (A, B, C) comfortably inside typical L2, mirroring MNN's choice of
#: a cache-resident base kernel.
DEFAULT_TILE = 256


@dataclass
class GemmStats:
    """Instrumentation collected while running a GEMM kernel.

    Attributes:
        base_multiplies: number of micro-kernel (tile x tile) multiplies.
        mul_elements: total scalar multiplications issued to the micro-kernel
            (the paper's ``MUL`` complexity measure).
        add_elements: scalar additions spent on Strassen's extra matrix
            additions (zero for the direct path).
        max_depth: deepest Strassen recursion level reached.
    """

    base_multiplies: int = 0
    mul_elements: int = 0
    add_elements: int = 0
    max_depth: int = 0

    def record_base(self, n: int, k: int, m: int) -> None:
        self.base_multiplies += 1
        self.mul_elements += n * k * m

    def record_adds(self, count: int) -> None:
        self.add_elements += count


def tiled_matmul(
    a: np.ndarray,
    b: np.ndarray,
    tile: int = DEFAULT_TILE,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """Blocked GEMM: C = A @ B computed tile by tile.

    This is the "direct multiplication" baseline of Table 3.  Each
    ``tile x tile`` block product is one micro-kernel invocation.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad GEMM shapes {a.shape} x {b.shape}")
    n, k = a.shape
    _, m = b.shape
    out = np.zeros((n, m), dtype=np.result_type(a.dtype, b.dtype))
    for i0 in range(0, n, tile):
        i1 = min(i0 + tile, n)
        for j0 in range(0, m, tile):
            j1 = min(j0 + tile, m)
            acc = out[i0:i1, j0:j1]
            for p0 in range(0, k, tile):
                p1 = min(p0 + tile, k)
                acc += a[i0:i1, p0:p1] @ b[p0:p1, j0:j1]
                if stats is not None:
                    stats.record_base(i1 - i0, p1 - p0, j1 - j0)
    return out


def strassen_should_recurse(n: int, k: int, m: int) -> bool:
    """The paper's Eq. 9 recursion gate for ``[n, k] x [k, m]``.

    Recursion continues only while the multiplications saved exceed the cost
    of the extra matrix additions.
    """
    saved = n * k * m - 7 * (n // 2) * (k // 2) * (m // 2)
    extra = 4 * (m // 2) * (k // 2) + 4 * (n // 2) * (k // 2) + 7 * (m // 2) * (n // 2)
    return saved > extra


def _pad_even(x: np.ndarray) -> np.ndarray:
    """Zero-pad both dims of ``x`` up to even sizes (no-op if already even)."""
    ph = x.shape[0] % 2
    pw = x.shape[1] % 2
    if ph == 0 and pw == 0:
        return x
    return np.pad(x, ((0, ph), (0, pw)))


def _strassen(
    a: np.ndarray,
    b: np.ndarray,
    tile: int,
    stats: Optional[GemmStats],
    depth: int,
) -> np.ndarray:
    n, k = a.shape
    m = b.shape[1]
    # Stop per Eq. 9, or once the sub-problem reaches micro-kernel
    # granularity (Eq. 9 alone would recurse down to 32x32, where call
    # overhead dwarfs the saved multiplications; MNN likewise bottoms out
    # at its assembly-kernel tile size — hence Table 3's "no benefit at
    # 256^3" row).
    if (
        min(n, k, m) <= tile
        or not strassen_should_recurse(n, k, m)
    ):
        return tiled_matmul(a, b, tile, stats)

    if stats is not None and depth + 1 > stats.max_depth:
        stats.max_depth = depth + 1

    a = _pad_even(a)
    b = _pad_even(b)
    n2, k2 = a.shape[0] // 2, a.shape[1] // 2
    m2 = b.shape[1] // 2
    a11, a12 = a[:n2, :k2], a[:n2, k2:]
    a21, a22 = a[n2:, :k2], a[n2:, k2:]
    b11, b12 = b[:k2, :m2], b[:k2, m2:]
    b21, b22 = b[k2:, :m2], b[k2:, m2:]

    if stats is not None:
        # 4 additions on A quadrants (n/2 x k/2), 4 on B quadrants
        # (k/2 x m/2), 7 recombination adds (n/2 x m/2) — the paper's Eq. 9
        # bookkeeping (we issue 8 recombinations; the inequality's 7 counts
        # the distinct M-term combinations).
        stats.record_adds(5 * n2 * k2 + 5 * k2 * m2 + 8 * n2 * m2)

    rec = lambda x, y: _strassen(x, y, tile, stats, depth + 1)
    m1 = rec(a11 + a22, b11 + b22)
    m2_ = rec(a21 + a22, b11)
    m3 = rec(a11, b12 - b22)
    m4 = rec(a22, b21 - b11)
    m5 = rec(a11 + a12, b22)
    m6 = rec(a21 - a11, b11 + b12)
    m7 = rec(a12 - a22, b21 + b22)

    top = np.hstack([m1 + m4 - m5 + m7, m3 + m5])
    bottom = np.hstack([m2_ + m4, m1 - m2_ + m3 + m6])
    out = np.vstack([top, bottom])
    return out[:n, :m]


def strassen_matmul(
    a: np.ndarray,
    b: np.ndarray,
    tile: int = DEFAULT_TILE,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """GEMM via Strassen's algorithm with the paper's Eq. 9 stop rule.

    Falls back to :func:`tiled_matmul` for problems too small to benefit.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad GEMM shapes {a.shape} x {b.shape}")
    return _strassen(a, b, tile, stats, depth=0)


def matmul(
    a: np.ndarray,
    b: np.ndarray,
    use_strassen: bool = True,
    tile: int = DEFAULT_TILE,
    stats: Optional[GemmStats] = None,
) -> np.ndarray:
    """Dispatch a GEMM to Strassen or the direct tiled kernel.

    This mirrors MNN's behaviour: large multiplications (from 1x1 convs)
    route through Strassen automatically, everything else runs direct.
    """
    if use_strassen:
        return strassen_matmul(a, b, tile, stats)
    return tiled_matmul(a, b, tile, stats)
