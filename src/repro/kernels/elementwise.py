"""Elementwise, activation and normalization kernels."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "relu",
    "relu6",
    "prelu",
    "sigmoid",
    "tanh",
    "softmax",
    "batch_norm",
    "add",
    "sub",
    "mul",
    "eltwise_max",
    "scale",
]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0, 6)


def prelu(x: np.ndarray, slope: np.ndarray) -> np.ndarray:
    """Parametric ReLU with per-channel slope (broadcast over N, H, W)."""
    slope = slope.reshape(1, -1, *([1] * (x.ndim - 2)))
    return np.where(x >= 0, x, x * slope)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split by sign for numerical stability.
    out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def softmax(x: np.ndarray, axis: int = 1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=axis, keepdims=True)


def batch_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalization over the channel axis."""
    shape = (1, -1) + (1,) * (x.ndim - 2)
    inv = gamma.reshape(shape) / np.sqrt(var.reshape(shape) + epsilon)
    return x * inv + (beta.reshape(shape) - mean.reshape(shape) * inv)


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a - b


def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


def eltwise_max(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.maximum(a, b)


def scale(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-channel affine scale (Caffe's Scale layer)."""
    shape = (1, -1) + (1,) * (x.ndim - 2)
    out = x * weight.reshape(shape)
    if bias is not None:
        out = out + bias.reshape(shape)
    return out
