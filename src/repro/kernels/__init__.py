"""Optimized compute kernels (the paper's Section 3.3)."""

import numpy as _np

from .layout import conv2d_1x1_packed, pack_nc4hw4, packed_shape, unpack_nc4hw4
from .matmul import (
    DEFAULT_TILE,
    GemmStats,
    matmul,
    strassen_matmul,
    strassen_should_recurse,
    tiled_matmul,
)
from .winograd import (
    WinogradTransforms,
    generate_transforms,
    interpolation_points,
    transform_kernel,
    winograd_conv2d,
    winograd_conv2d_rect,
    winograd_conv2d_with_kernel,
)
from .conv import apply_activation, conv2d, conv2d_1x1, conv2d_im2col, im2col
from .depthwise import depthwise_conv2d
from .pooling import avg_pool2d, global_avg_pool2d, max_pool2d
from .elementwise import (
    add,
    batch_norm,
    eltwise_max,
    mul,
    prelu,
    relu,
    relu6,
    scale,
    sigmoid,
    softmax,
    sub,
    tanh,
)
from .misc import conv_transpose2d, fully_connected, pad_nd, reduce_mean, resize2d
from .sequence import attention, attention_step, gelu, layer_norm, lstm_forward
from .qgemm import QGEMM_TILE, qgemm, qmatmul, quantize_rowwise
from .quantized import qconv2d, quantize_tensor, quantize_weights_per_channel


def nonfinite_count(arrays) -> int:
    """Total NaN/Inf elements across ``arrays`` (the numeric-guard test).

    Fast-path: integer/bool arrays cannot hold non-finite values and are
    skipped without a scan.
    """
    total = 0
    for arr in arrays:
        if arr is None or not _np.issubdtype(arr.dtype, _np.floating):
            continue
        total += int(arr.size - _np.count_nonzero(_np.isfinite(arr)))
    return total


__all__ = [
    "nonfinite_count",
    "conv2d_1x1_packed",
    "pack_nc4hw4",
    "packed_shape",
    "unpack_nc4hw4",
    "DEFAULT_TILE",
    "GemmStats",
    "matmul",
    "strassen_matmul",
    "strassen_should_recurse",
    "tiled_matmul",
    "WinogradTransforms",
    "generate_transforms",
    "interpolation_points",
    "transform_kernel",
    "winograd_conv2d",
    "winograd_conv2d_rect",
    "winograd_conv2d_with_kernel",
    "apply_activation",
    "conv2d",
    "conv2d_1x1",
    "conv2d_im2col",
    "im2col",
    "depthwise_conv2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "max_pool2d",
    "add",
    "batch_norm",
    "eltwise_max",
    "mul",
    "prelu",
    "relu",
    "relu6",
    "scale",
    "sigmoid",
    "softmax",
    "sub",
    "tanh",
    "conv_transpose2d",
    "fully_connected",
    "pad_nd",
    "reduce_mean",
    "resize2d",
    "attention",
    "attention_step",
    "gelu",
    "layer_norm",
    "lstm_forward",
    "QGEMM_TILE",
    "qconv2d",
    "qgemm",
    "qmatmul",
    "quantize_rowwise",
    "quantize_tensor",
    "quantize_weights_per_channel",
]
