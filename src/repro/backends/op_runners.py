"""Shared operator dispatch: turn a graph node into a runnable closure.

Both the real CPU backend and the simulated GPU backends execute identical
NumPy numerics (so hybrid scheduling is numerically transparent, as in the
paper); they differ only in how time is accounted.  This module builds, for
one node, a ``runner(inputs) -> outputs`` closure with all static work done
up front:

* constants (weights) are bound at build time,
* padding is resolved from the static shapes (pre-inference!),
* Winograd kernels are pre-transformed (the "pre-computed constants" of
  Figure 2),
* GEMM-shaped weights are pre-reshaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import kernels as K
from ..ir.graph import Graph, Node
from ..ir.ops import Op
from ..ir.shape_inference import resolve_padding
from .base import BackendError

__all__ = ["OpRunner", "build_runner"]

Runner = Callable[[Sequence[np.ndarray]], List[np.ndarray]]


@dataclass
class OpRunner:
    """A prepared operator closure.

    Attributes:
        node: the graph node this runner executes.
        dynamic_inputs: names of the non-constant inputs, in call order.
        fn: the closure; takes dynamic input arrays, returns output arrays.
        muls: multiply count under the *chosen scheme* (drives Eq. 5 cost).
    """

    node: Node
    dynamic_inputs: List[str]
    fn: Runner
    muls: int


def _conv_muls_for_scheme(
    node: Node, graph: Graph, scheme_kind: str, winograd_n: int,
    winograd_n_hw=(1, 2),
) -> int:
    """Effective MULs: Winograd genuinely reduces the multiply count."""
    from ..core.cost import node_muls  # local import to avoid a cycle

    return node_muls(node, graph, scheme_kind=scheme_kind, winograd_n=winograd_n,
                     winograd_n_hw=winograd_n_hw)


def build_runner(node: Node, graph: Graph, scheme=None, use_strassen: bool = True) -> OpRunner:
    """Build the runnable closure for ``node``.

    Args:
        node: graph node.
        graph: owning graph (for constants and static shapes).
        scheme: optional conv :class:`~repro.core.schemes.SchemeDecision`.
        use_strassen: allow Strassen for large GEMMs.

    Raises:
        BackendError: if the op type has no runner.
    """
    constants = graph.constants
    dynamic = [name for name in node.inputs if name not in constants]
    const_arrays = {name: constants[name] for name in node.inputs if name in constants}
    attrs = node.attrs
    op = node.op_type

    def const_or_input(name: str, inputs: Sequence[np.ndarray]) -> np.ndarray:
        if name in const_arrays:
            return const_arrays[name]
        return inputs[dynamic.index(name)]

    from ..core.cost import node_muls

    muls = node_muls(node, graph)
    fn: Runner

    if op in (Op.CONV2D, Op.DEPTHWISE_CONV2D):
        x_desc = graph.desc(node.inputs[0])
        weights = const_arrays.get(node.inputs[1])
        bias = const_arrays.get(node.inputs[2]) if len(node.inputs) > 2 else None
        kernel = tuple(attrs["kernel"])
        stride = tuple(attrs["stride"])
        dilation = tuple(attrs["dilation"])
        groups = int(attrs["groups"])
        activation = attrs.get("activation")
        pads = resolve_padding(
            attrs["pad_mode"], attrs["pad"], x_desc.shape[2:], kernel, stride, dilation
        )
        if weights is None:
            raise BackendError(f"{node.name!r}: conv weights must be constant")
        if weights.dtype == np.int8:
            # Quantized path (converter-produced): int8 weights + scales.
            input_scale = attrs.get("input_scale")
            weight_scales = attrs.get("weight_scales")
            if input_scale is None or weight_scales is None:
                raise BackendError(
                    f"{node.name!r}: int8 weights need input_scale/weight_scales attrs"
                )
            from ..kernels.quantized import qconv2d

            scales = np.asarray(weight_scales, dtype=np.float32)

            def fn(inputs, *, _w=weights, _b=bias, _s=scales, _is=float(input_scale)):
                y = qconv2d(inputs[0], _w, _s, _is, _b, stride, pads, dilation, groups)
                return [K.apply_activation(y, activation)]

            return OpRunner(node=node, dynamic_inputs=dynamic, fn=fn, muls=muls)
        if op == Op.DEPTHWISE_CONV2D:
            def fn(inputs, *, _w=weights, _b=bias):
                y = K.depthwise_conv2d(inputs[0], _w, _b, stride, pads, dilation)
                return [K.apply_activation(y, activation)]
        else:
            kind = getattr(scheme, "kind", None) or _default_conv_scheme(kernel, stride, dilation, groups)
            winograd_n = getattr(scheme, "winograd_n", 2)
            winograd_n_hw = getattr(scheme, "winograd_n_hw", (1, 2))
            muls = _conv_muls_for_scheme(node, graph, kind, winograd_n, winograd_n_hw)
            if kind == "winograd_rect":
                def fn(inputs, *, _w=weights, _b=bias, _n=winograd_n_hw):
                    y = K.winograd_conv2d_rect(inputs[0], _w, _b, _n, pads)
                    return [K.apply_activation(y, activation)]
            elif kind == "winograd":
                transforms = K.generate_transforms(winograd_n, kernel[0])
                packed = K.transform_kernel(weights, transforms)

                def fn(inputs, *, _p=packed, _t=transforms, _b=bias):
                    y = K.winograd_conv2d_with_kernel(inputs[0], _p, _t, _b, pads, stride)
                    return [K.apply_activation(y, activation)]
            elif kind == "gemm1x1":
                def fn(inputs, *, _w=weights, _b=bias):
                    y = K.conv2d_1x1(inputs[0], _w, _b, stride, use_strassen)
                    return [K.apply_activation(y, activation)]
            else:
                def fn(inputs, *, _w=weights, _b=bias):
                    y = K.conv2d_im2col(inputs[0], _w, _b, stride, pads, dilation, groups)
                    return [K.apply_activation(y, activation)]

    elif op == Op.CONV_TRANSPOSE2D:
        x_desc = graph.desc(node.inputs[0])
        weights = const_arrays[node.inputs[1]]
        bias = const_arrays.get(node.inputs[2]) if len(node.inputs) > 2 else None
        stride = tuple(attrs["stride"])
        pads = resolve_padding(
            attrs["pad_mode"], attrs["pad"], x_desc.shape[2:],
            tuple(attrs["kernel"]), stride, tuple(attrs["dilation"]),
        )
        out_pad = tuple(attrs.get("output_padding", (0, 0)))

        def fn(inputs, *, _w=weights, _b=bias):
            return [K.conv_transpose2d(inputs[0], _w, _b, stride, pads, out_pad)]

    elif op == Op.MATMUL:
        ta, tb = attrs["transpose_a"], attrs["transpose_b"]
        rowwise = bool(attrs.get("rowwise", False))
        w = const_arrays.get(node.inputs[1]) if len(node.inputs) > 1 else None
        if w is not None and w.dtype == np.int8:
            # Quantized path: int8 weights + per-output-channel scales;
            # activations quantize dynamically per row inside qmatmul.
            # Exact int32 accumulation makes the batched kernel bitwise
            # token-invariant, so the rowwise contract needs no row loop.
            weight_scales = attrs.get("weight_scales")
            if weight_scales is None:
                raise BackendError(
                    f"{node.name!r}: int8 MatMul weights need weight_scales "
                    "(run repro.quant.quantize_graph to attach them)"
                )
            wq = np.ascontiguousarray(w.T if tb else w)
            scales = np.asarray(weight_scales, dtype=np.float32)
            if scales.shape != (wq.shape[1],):
                raise BackendError(
                    f"{node.name!r}: {scales.shape[0]} weight_scales for "
                    f"{wq.shape[1]} output channels"
                )

            def fn(inputs, *, _wq=wq, _s=scales):
                a = const_or_input(node.inputs[0], inputs)
                a = np.swapaxes(a, -1, -2) if ta else a
                return [K.qmatmul(a, _wq, _s)]

            return OpRunner(node=node, dynamic_inputs=dynamic, fn=fn, muls=muls)

        def fn(inputs):
            a = const_or_input(node.inputs[0], inputs)
            b = const_or_input(node.inputs[1], inputs)
            a = np.swapaxes(a, -1, -2) if ta else a
            b = np.swapaxes(b, -1, -2) if tb else b
            if rowwise:
                return [_rowwise_matmul(node, a, b)]
            if a.ndim == 2 and b.ndim == 2:
                return [K.matmul(np.ascontiguousarray(a), np.ascontiguousarray(b),
                                 use_strassen=use_strassen)]
            return [a @ b]

    elif op == Op.FULLY_CONNECTED:
        weights = const_arrays[node.inputs[1]]
        bias = const_arrays.get(node.inputs[2]) if len(node.inputs) > 2 else None
        if weights.dtype == np.int8:
            input_scale = attrs.get("input_scale")
            weight_scales = attrs.get("weight_scales")
            if input_scale is None or weight_scales is None:
                raise BackendError(
                    f"{node.name!r}: int8 FC weights need input_scale/weight_scales"
                )
            from ..kernels.quantized import quantize_tensor

            scales = np.asarray(weight_scales, dtype=np.float32)

            def fn(inputs, *, _w=weights.astype(np.int32), _b=bias,
                   _s=scales, _is=float(input_scale)):
                xq = quantize_tensor(inputs[0].reshape(inputs[0].shape[0], -1), _is)
                acc = xq.astype(np.int32) @ _w.T
                out = acc.astype(np.float32) * (_is * _s)
                if _b is not None:
                    out = out + _b
                return [out]
        else:
            def fn(inputs, *, _w=weights, _b=bias):
                return [K.fully_connected(inputs[0], _w, _b, use_strassen)]

    elif op == Op.BATCH_NORM:
        gamma, beta, mean, var = (const_arrays[name] for name in node.inputs[1:5])
        eps = float(attrs["epsilon"])

        def fn(inputs):
            return [K.batch_norm(inputs[0], gamma, beta, mean, var, eps)]

    elif op == Op.PRELU:
        slope = const_arrays[node.inputs[1]]

        def fn(inputs):
            return [K.prelu(inputs[0], slope)]

    elif op in (Op.RELU, Op.RELU6, Op.SIGMOID, Op.TANH, Op.GLOBAL_AVG_POOL,
                Op.DROPOUT, Op.IDENTITY):
        unary = {
            Op.RELU: K.relu,
            Op.RELU6: K.relu6,
            Op.SIGMOID: K.sigmoid,
            Op.TANH: K.tanh,
            Op.GLOBAL_AVG_POOL: K.global_avg_pool2d,
            Op.DROPOUT: lambda x: x,  # inference mode: identity
            Op.IDENTITY: lambda x: x,
        }[op]

        def fn(inputs, *, _u=unary):
            return [_u(inputs[0])]

    elif op == Op.SOFTMAX:
        axis = int(attrs["axis"])

        def fn(inputs):
            return [K.softmax(inputs[0], axis)]

    elif op in (Op.MAX_POOL, Op.AVG_POOL):
        x_desc = graph.desc(node.inputs[0])
        out_desc = graph.desc(node.outputs[0])
        kernel = tuple(attrs["kernel"])
        stride = tuple(attrs["stride"])
        pads = resolve_padding(attrs["pad_mode"], attrs["pad"], x_desc.shape[2:], kernel, stride)
        out_hw = out_desc.shape[2:]
        if op == Op.MAX_POOL:
            def fn(inputs):
                return [K.max_pool2d(inputs[0], kernel, stride, pads, out_hw)]
        else:
            include_pad = bool(attrs["count_include_pad"])

            def fn(inputs):
                return [K.avg_pool2d(inputs[0], kernel, stride, pads, out_hw, include_pad)]

    elif op in (Op.ADD, Op.SUB, Op.MUL, Op.ELTWISE_MAX):
        binary = {Op.ADD: K.add, Op.SUB: K.sub, Op.MUL: K.mul, Op.ELTWISE_MAX: K.eltwise_max}[op]

        def fn(inputs, *, _b=binary):
            a = const_or_input(node.inputs[0], inputs)
            b = const_or_input(node.inputs[1], inputs)
            return [_b(a, b)]

    elif op == Op.CONCAT:
        axis = int(attrs["axis"])

        def fn(inputs):
            arrays = [const_or_input(name, inputs) for name in node.inputs]
            return [np.concatenate(arrays, axis=axis)]

    elif op == Op.SLICE:
        axis = int(attrs["axis"])
        start, end = int(attrs["start"]), int(attrs["end"])

        def fn(inputs):
            index = [slice(None)] * inputs[0].ndim
            index[axis] = slice(start, end)
            return [inputs[0][tuple(index)]]

    elif op == Op.RESHAPE:
        out_shape = graph.desc(node.outputs[0]).shape

        def fn(inputs):
            return [inputs[0].reshape(out_shape)]

    elif op == Op.FLATTEN:
        out_shape = graph.desc(node.outputs[0]).shape

        def fn(inputs):
            return [inputs[0].reshape(out_shape)]

    elif op == Op.PAD:
        pads = tuple(attrs["pads"])
        value = float(attrs["value"])

        def fn(inputs):
            return [K.pad_nd(inputs[0], pads, value)]

    elif op == Op.RESIZE:
        scale = tuple(attrs["scale"])
        mode = attrs["mode"]

        def fn(inputs):
            return [K.resize2d(inputs[0], scale, mode)]

    elif op == Op.REDUCE_MEAN:
        axes = tuple(attrs["axes"])
        keepdims = bool(attrs["keepdims"])

        def fn(inputs):
            return [K.reduce_mean(inputs[0], axes, keepdims)]

    elif op == Op.SCALE:
        weight = const_arrays[node.inputs[1]]
        bias = const_arrays.get(node.inputs[2]) if len(node.inputs) > 2 else None

        def fn(inputs):
            return [K.scale(inputs[0], weight, bias)]

    elif op == Op.QUANTIZE:
        scale_v = float(attrs["scale"])
        zero = int(attrs["zero_point"])

        def fn(inputs):
            q = np.round(inputs[0] / scale_v) + zero
            return [np.clip(q, -128, 127).astype(np.int8)]

    elif op == Op.DEQUANTIZE:
        scale_v = float(attrs["scale"])
        zero = int(attrs["zero_point"])

        def fn(inputs):
            return [(inputs[0].astype(np.float32) - zero) * scale_v]

    elif op == Op.SPLIT:
        axis = int(attrs["axis"])
        sizes = [int(s) for s in attrs["sizes"]]
        boundaries = np.cumsum(sizes)[:-1]

        def fn(inputs):
            return [np.ascontiguousarray(part)
                    for part in np.split(inputs[0], boundaries, axis=axis)]

    elif op == Op.TRANSPOSE:
        perm = tuple(attrs["perm"])

        def fn(inputs):
            return [np.ascontiguousarray(inputs[0].transpose(perm))]

    elif op == Op.GATHER:
        axis = int(attrs["axis"])

        def fn(inputs):
            data = const_or_input(node.inputs[0], inputs)
            indices = const_or_input(node.inputs[1], inputs)
            return [np.take(data, indices.astype(np.int64), axis=axis)]

    elif op == Op.LAYER_NORM:
        gamma = const_arrays[node.inputs[1]]
        beta = const_arrays[node.inputs[2]]
        axis = int(attrs["axis"])
        eps = float(attrs["epsilon"])

        def fn(inputs):
            from ..kernels.sequence import layer_norm

            return [layer_norm(inputs[0], gamma, beta, axis, eps)]

    elif op == Op.GELU:
        def fn(inputs):
            from ..kernels.sequence import gelu

            return [gelu(inputs[0])]

    elif op == Op.ATTENTION:
        causal = bool(attrs["causal"])
        scale = attrs["scale"]
        has_cache = len(node.inputs) > 3

        def fn(inputs):
            from ..kernels.sequence import attention

            q = const_or_input(node.inputs[0], inputs)
            k = const_or_input(node.inputs[1], inputs)
            v = const_or_input(node.inputs[2], inputs)
            lengths = k_cache = v_cache = None
            if has_cache:
                lengths = const_or_input(node.inputs[3], inputs)
                k_cache = const_or_input(node.inputs[4], inputs)
                v_cache = const_or_input(node.inputs[5], inputs)
            return [attention(q, k, v, lengths, k_cache, v_cache,
                              causal=causal, scale=scale)]

    elif op == Op.LSTM:
        w_ih = const_arrays[node.inputs[1]]
        w_hh = const_arrays[node.inputs[2]]
        bias = const_arrays.get(node.inputs[3]) if len(node.inputs) > 3 else None
        return_sequences = bool(attrs["return_sequences"])

        def fn(inputs):
            from ..kernels.sequence import lstm_forward

            return [lstm_forward(inputs[0], w_ih, w_hh, bias, return_sequences)]

    else:
        raise BackendError(f"no runner for operator {op!r}")

    return OpRunner(node=node, dynamic_inputs=dynamic, fn=fn, muls=muls)


def _rowwise_matmul(node: Node, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Token-invariant matmul: one GEMV per output row.

    BLAS GEMM picks different kernels (and summation orders) for different
    ``M``, so ``(A @ B)[t]`` is not bitwise equal to ``A[t:t+1] @ B`` in
    general.  Decode-step pre-inference needs exactly that equality, so a
    ``rowwise`` MatMul computes every output row as an independent
    ``(K,) @ (K, N)`` product — identical calls whether the activation
    carries 1 token or the whole sequence.
    """
    if b.ndim != 2:
        raise BackendError(
            f"{node.name!r}: rowwise matmul requires a 2-D rhs, got {b.shape}"
        )
    rows = np.ascontiguousarray(a.reshape(-1, a.shape[-1]))
    out = np.empty((rows.shape[0], b.shape[1]), dtype=rows.dtype)
    for i in range(rows.shape[0]):
        out[i] = rows[i] @ b
    return out.reshape(*a.shape[:-1], b.shape[1])


def _default_conv_scheme(kernel, stride, dilation, groups) -> str:
    """Fallback scheme when pre-inference did not pick one."""
    if kernel == (1, 1) and dilation == (1, 1) and groups == 1:
        return "gemm1x1"
    return "sliding"
