"""The real CPU backend: executes kernels on the host, measured in wall time."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.ops import Op, all_op_types
from .base import Backend, BackendError, Execution
from .op_runners import OpRunner, build_runner

__all__ = ["CPUBackend", "CpuExecution"]

#: Op types with no runner on any backend (graph-structural pseudo-ops).
_STRUCTURAL = {Op.INPUT, Op.CONSTANT}


class CpuExecution(Execution):
    """Executes one node via the shared NumPy kernel dispatch."""

    def __init__(self, backend: "CPUBackend", node: Node, runner: OpRunner) -> None:
        super().__init__(backend, node)
        self.runner = runner

    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        return self.runner.fn(inputs)


class CPUBackend(Backend):
    """Host-CPU backend.

    ``threads`` only feeds the cost model used during backend selection
    (NumPy's own threading is what actually executes); all registered
    operators are supported, mirroring MNN's CPU backend being the
    universal fallback (Table 4's largest op count).
    """

    forward_type = "cpu"

    def __init__(self, threads: int = 4, use_strassen: bool = True) -> None:
        super().__init__()
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.use_strassen = use_strassen

    def supports(self, op_type: str) -> bool:
        return op_type in set(all_op_types()) - _STRUCTURAL

    def on_create(self, node: Node, graph: Graph, scheme=None) -> Execution:
        if not self.supports(node.op_type):
            raise BackendError(f"cpu: unsupported op {node.op_type!r}")
        runner = build_runner(node, graph, scheme, self.use_strassen)
        return CpuExecution(self, node, runner)
