"""The backend abstraction module (paper Section 3.4, Figure 5).

Every hardware/software target is wrapped in a :class:`Backend` exposing the
same uniform interface the paper's ``XPUBackend`` class sketches:

* ``on_create``           — build an :class:`Execution` for one operator;
* ``on_acquire_buffer`` / ``on_release_buffer`` / ``on_clear_buffer``
                          — tensor memory management;
* ``on_copy_buffer``      — data transmission between backends (used by
                            hybrid scheduling);
* ``on_execute_begin`` / ``on_execute_end``
                          — bracket one inference.

Resource management and scheduling are thereby disentangled from operator
implementations: the session never touches raw buffers or device queues.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import TensorDesc

if TYPE_CHECKING:  # pragma: no cover
    from ..core.schemes import SchemeDecision

__all__ = ["StorageType", "Execution", "Backend", "BackendError", "BackendTransientError"]


class BackendError(RuntimeError):
    """Raised for unsupported operators or misused backend APIs."""


class BackendTransientError(BackendError):
    """A backend failure that is expected to clear on retry.

    Real backends raise this for recoverable conditions (device busy,
    queue full, transient allocation pressure); the session's resilient
    executor treats it like an injected transient fault — bounded retry
    with backoff before escalating to the per-op CPU fallback.
    """


class StorageType(enum.Enum):
    """Buffer lifetime classes (mirrors MNN's StorageType)."""

    #: Weights / pre-computed constants: live for the whole session.
    STATIC = "static"
    #: Activations managed by the memory pool, reusable across ops.
    DYNAMIC = "dynamic"
    #: Activations excluded from reuse (e.g. session outputs).
    DYNAMIC_SEPARATE = "dynamic_separate"


class Execution(abc.ABC):
    """A prepared operator instance on a specific backend.

    ``prepare`` runs once during pre-inference (this is where pre-computed
    constants such as Winograd-transformed weights are built); ``run``
    executes the operator on concrete tensors.
    """

    def __init__(self, backend: "Backend", node: Node) -> None:
        self.backend = backend
        self.node = node

    def prepare(self, graph: Graph) -> None:
        """Build pre-computed constants; default is nothing to do."""

    @abc.abstractmethod
    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Execute the operator; returns one array per node output."""


class Backend(abc.ABC):
    """Uniform interface over a compute device (Figure 5).

    Attributes:
        forward_type: backend identifier (``"cpu"``, ``"vulkan"``, ...).
    """

    forward_type: str = "abstract"

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self._storage: Dict[str, StorageType] = {}

    # -- operator creation ----------------------------------------------------
    @abc.abstractmethod
    def on_create(
        self,
        node: Node,
        graph: Graph,
        scheme: Optional["SchemeDecision"] = None,
    ) -> Execution:
        """Create an execution instance for ``node``.

        Raises:
            BackendError: if the op is not supported on this backend.
        """

    @abc.abstractmethod
    def supports(self, op_type: str) -> bool:
        """Whether this backend implements ``op_type`` (Table 4 coverage)."""

    def supported_ops(self) -> List[str]:
        """All registered op types this backend supports (Table 4 rows)."""
        from ..ir.ops import all_op_types

        return [op for op in all_op_types() if self.supports(op)]

    # -- memory management ------------------------------------------------------
    def on_acquire_buffer(self, desc: TensorDesc, storage: StorageType) -> bool:
        """Allocate backing memory for ``desc`` on this backend."""
        if desc.name in self._buffers:
            return True
        self._buffers[desc.name] = np.zeros(desc.physical_shape(), desc.dtype.np_dtype)
        self._storage[desc.name] = storage
        return True

    def on_release_buffer(self, desc: TensorDesc, storage: StorageType) -> bool:
        """Release a dynamic buffer (static buffers persist until clear)."""
        if storage is StorageType.STATIC:
            return False
        self._buffers.pop(desc.name, None)
        self._storage.pop(desc.name, None)
        return True

    def on_clear_buffer(self) -> None:
        """Drop every buffer, including static ones."""
        self._buffers.clear()
        self._storage.clear()

    def buffer(self, name: str) -> np.ndarray:
        """Access a previously acquired buffer.

        Raises:
            BackendError: if no buffer with that name exists.
        """
        try:
            return self._buffers[name]
        except KeyError:
            raise BackendError(f"{self.forward_type}: no buffer {name!r} acquired") from None

    # -- cross-backend copies --------------------------------------------------
    def on_copy_buffer(self, src: np.ndarray, dst_backend: "Backend") -> np.ndarray:
        """Move a tensor to ``dst_backend``; may account transfer cost."""
        return src

    # -- inference bracketing ----------------------------------------------------
    def on_execute_begin(self) -> None:
        """Called once before each inference run."""

    def on_execute_end(self) -> None:
        """Called once after each inference run."""

    # -- cost model hooks -------------------------------------------------------
    def op_cost_ms(self, muls: int) -> float:
        """Modeled cost of an op with ``muls`` multiplications (Eq. 5)."""
        raise NotImplementedError(f"{self.forward_type} has no cost model")
