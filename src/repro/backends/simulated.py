"""Simulated device backends: real numerics, modeled time.

The paper's GPU results require Adreno/Mali/Apple GPUs and their graphics
APIs, none of which exist here.  Per DESIGN.md's substitution table these
backends compute *bit-identical* results with the shared NumPy kernels but
account execution time on a :class:`~repro.sim.clock.VirtualClock` using
the paper's own published cost model (Appendix C):

* compute:      MUL / FLOPS * 1000 ms  (Eq. 5),
* dispatch:     t_schedule per command submission (0.05 ms OpenCL/OpenGL,
                0.01 ms Vulkan),
* record:       t_setup per command-buffer build — paid once at
                pre-inference when preparation/execution decoupling is on,
                or on *every* inference when it is off (Table 2's GPU rows),
* allocation:   t_alloc per buffer acquire/release pair when memory is not
                pre-planned (Table 2's CPU rows).

t_setup (0.8 ms) and t_alloc (0.02 ms) are calibrated constants; DESIGN.md
documents them as substitutions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from ..devices.specs import DeviceSpec, GpuApi
from ..ir.graph import Graph, Node
from ..ir.ops import Op
from ..ir.tensor import TensorDesc
from ..sim.clock import VirtualClock
from .base import Backend, BackendError, Execution, StorageType
from .op_runners import OpRunner, build_runner

__all__ = [
    "SimulatedCPUBackend",
    "SimulatedGPUBackend",
    "GPU_OP_COVERAGE",
    "T_SETUP_MS",
    "T_ALLOC_MS",
]

#: Calibrated per-op command-buffer build cost (ms); see module docstring.
T_SETUP_MS = 0.8
#: Calibrated per-buffer allocate/free cost (ms) when memory is unplanned.
T_ALLOC_MS = 0.02

#: Per-API operator coverage, proportional to the paper's Table 4 counts
#: (MNN: CPU 94, Metal 55, OpenCL 33, Vulkan 35, OpenGL 15) scaled to this
#: reproduction's registry.  Unsupported ops fall back to the CPU during
#: hybrid scheduling, exactly as in the paper.
GPU_OP_COVERAGE = {
    GpuApi.METAL: {
        Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.CONV_TRANSPOSE2D, Op.MATMUL,
        Op.FULLY_CONNECTED, Op.BATCH_NORM, Op.RELU, Op.RELU6, Op.PRELU,
        Op.SIGMOID, Op.TANH, Op.SOFTMAX, Op.MAX_POOL, Op.AVG_POOL,
        Op.GLOBAL_AVG_POOL, Op.ADD, Op.SUB, Op.MUL, Op.CONCAT, Op.RESHAPE,
        Op.FLATTEN, Op.SCALE,
    },
    GpuApi.OPENCL: {
        Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.MATMUL, Op.FULLY_CONNECTED,
        Op.RELU, Op.RELU6, Op.SIGMOID, Op.SOFTMAX, Op.MAX_POOL, Op.AVG_POOL,
        Op.GLOBAL_AVG_POOL, Op.ADD, Op.CONCAT,
    },
    GpuApi.VULKAN: {
        Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.MATMUL, Op.FULLY_CONNECTED,
        Op.BATCH_NORM, Op.RELU, Op.RELU6, Op.SIGMOID, Op.SOFTMAX,
        Op.MAX_POOL, Op.AVG_POOL, Op.GLOBAL_AVG_POOL, Op.ADD, Op.MUL,
        Op.CONCAT,
    },
    GpuApi.OPENGL: {
        Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.MAX_POOL, Op.AVG_POOL,
        Op.RELU, Op.ADD,
    },
}


class _SimulatedExecution(Execution):
    """Runs the shared kernels and charges modeled time to the clock."""

    def __init__(self, backend: "_SimulatedBackend", node: Node, runner: OpRunner) -> None:
        super().__init__(backend, node)
        self.runner = runner
        self.command_recorded = False

    def prepare(self, graph: Graph) -> None:
        """Pre-record the command buffer (decoupled mode only)."""
        backend = self.backend
        if backend.decouple and backend.is_gpu:
            backend.prepare_cost_ms += backend.t_setup_ms
            self.command_recorded = True

    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        backend = self.backend
        cost = backend.compute_cost_ms(self.runner.muls)
        if backend.is_gpu:
            cost += backend.t_schedule_ms
            if not self.command_recorded:
                cost += backend.t_setup_ms  # rebuilt every inference
        backend.clock.advance(cost)
        return self.runner.fn(inputs)


class _SimulatedBackend(Backend):
    """Shared machinery of the simulated CPU and GPU backends."""

    is_gpu = False

    def __init__(
        self,
        device: DeviceSpec,
        clock: Optional[VirtualClock] = None,
        decouple: bool = True,
        use_strassen: bool = True,
    ) -> None:
        super().__init__()
        self.device = device
        self.clock = clock or VirtualClock()
        self.decouple = decouple
        self.use_strassen = use_strassen
        #: time charged during pre-inference (command recording, planning)
        self.prepare_cost_ms = 0.0
        self.t_setup_ms = T_SETUP_MS
        self.t_alloc_ms = T_ALLOC_MS

    def compute_cost_ms(self, muls: int) -> float:
        raise NotImplementedError

    def op_cost_ms(self, muls: int) -> float:
        cost = self.compute_cost_ms(muls)
        if self.is_gpu:
            cost += self.t_schedule_ms
        return cost

    def on_create(self, node: Node, graph: Graph, scheme=None) -> Execution:
        if not self.supports(node.op_type):
            raise BackendError(f"{self.forward_type}: unsupported op {node.op_type!r}")
        runner = build_runner(node, graph, scheme, self.use_strassen)
        return _SimulatedExecution(self, node, runner)

    # Unplanned allocation charges the clock (Table 2's "w/o" CPU rows).
    def on_acquire_buffer(self, desc: TensorDesc, storage: StorageType) -> bool:
        if not self.decouple and storage is not StorageType.STATIC:
            self.clock.advance(self.t_alloc_ms)
        return super().on_acquire_buffer(desc, storage)

    def on_release_buffer(self, desc: TensorDesc, storage: StorageType) -> bool:
        if not self.decouple and storage is not StorageType.STATIC:
            self.clock.advance(self.t_alloc_ms)
        return super().on_release_buffer(desc, storage)


class SimulatedCPUBackend(_SimulatedBackend):
    """A phone CPU modeled by its top-k core frequencies (Appendix C)."""

    forward_type = "sim_cpu"

    def __init__(self, device: DeviceSpec, threads: int = 4, **kwargs) -> None:
        super().__init__(device, **kwargs)
        self.threads = threads

    def supports(self, op_type: str) -> bool:
        from ..ir.ops import all_op_types

        return op_type in set(all_op_types()) - {Op.INPUT, Op.CONSTANT}

    def compute_cost_ms(self, muls: int) -> float:
        return muls / self.device.cpu_flops(self.threads) * 1000.0


class SimulatedGPUBackend(_SimulatedBackend):
    """A phone GPU behind one of the four graphics APIs.

    Unsupported ops (per :data:`GPU_OP_COVERAGE`) raise at ``on_create``;
    the session's hybrid scheduler routes them to a CPU backend instead.
    """

    is_gpu = True

    def __init__(self, device: DeviceSpec, api: str, **kwargs) -> None:
        if api not in GPU_OP_COVERAGE:
            raise ValueError(f"unknown GPU API {api!r}; expected one of {sorted(GPU_OP_COVERAGE)}")
        if not device.supports_api(api):
            raise BackendError(f"device {device.name} does not expose the {api} API")
        super().__init__(device, **kwargs)
        self.api = api
        self.forward_type = api
        self.t_schedule_ms = device.t_schedule_ms(api)

    def supports(self, op_type: str) -> bool:
        return op_type in GPU_OP_COVERAGE[self.api]

    def compute_cost_ms(self, muls: int) -> float:
        return muls / self.device.gpu_flops() * 1000.0

    def on_copy_buffer(self, src: np.ndarray, dst_backend: Backend) -> np.ndarray:
        # Host<->device transfer: modeled at 10 GB/s plus one dispatch.
        self.clock.advance(src.nbytes / 10e9 * 1000.0 + self.t_schedule_ms)
        return src
