"""Backend abstraction module (paper Section 3.4)."""

from .base import Backend, BackendError, Execution, StorageType
from .cpu import CPUBackend
from .op_runners import OpRunner, build_runner
from .simulated import (
    GPU_OP_COVERAGE,
    SimulatedCPUBackend,
    SimulatedGPUBackend,
    T_ALLOC_MS,
    T_SETUP_MS,
)

__all__ = [
    "Backend",
    "BackendError",
    "Execution",
    "StorageType",
    "CPUBackend",
    "OpRunner",
    "build_runner",
    "GPU_OP_COVERAGE",
    "SimulatedCPUBackend",
    "SimulatedGPUBackend",
    "T_ALLOC_MS",
    "T_SETUP_MS",
]
