"""Concurrency and lifecycle sanitizers for the runtime (TSan/ASan analogue).

PRs 2–5 made nearly every hot path multithreaded — the parallel branch
executor, :class:`~repro.serving.SessionPool` checkout, micro-batching,
the continuous-batching scheduler and the KV allocator.  ``repro.analysis``
proves *static* properties (graph shapes, memory-plan aliasing); this
package proves the *dynamic* ones those layers now depend on:

* :mod:`repro.sanitize.race` — lockset + vector-clock (happens-before)
  race detection over ``probe()`` events;
* :mod:`repro.sanitize.lockorder` — runtime lock-order graph with
  deadlock-cycle detection;
* :mod:`repro.sanitize.lifecycle` — carve/retire/free/use tracking for
  arena extents and KV slabs: leaks at close, double-free and
  generation-counter use-after-free.

Enable per layer with ``SessionConfig(sanitize=True)``,
``EngineConfig(sanitize=True)`` or ``GenerationConfig(sanitize=True)``;
run everything at once with ``python -m repro.tools.cli sanitize``.  The
static companion pass (rule family ``C0xx`` over ``src/repro`` itself)
lives in :mod:`repro.analysis.concurrency`.
"""

from .lifecycle import ExtentState, LifecycleFinding, LifecycleTracker
from .lockorder import LockCycle, LockOrderRecorder
from .race import AccessInfo, RaceDetector, RaceRecord
from .sanitizer import (
    SanitizeError,
    SanitizeReport,
    Sanitizer,
    get_sanitizer,
    resolve_sanitizer,
    set_sanitizer,
)

__all__ = [
    "AccessInfo",
    "ExtentState",
    "LifecycleFinding",
    "LifecycleTracker",
    "LockCycle",
    "LockOrderRecorder",
    "RaceDetector",
    "RaceRecord",
    "SanitizeError",
    "SanitizeReport",
    "Sanitizer",
    "get_sanitizer",
    "resolve_sanitizer",
    "set_sanitizer",
]
