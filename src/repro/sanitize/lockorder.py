"""Runtime lock-order recording and deadlock-cycle detection.

Every ``Sanitizer.locked(lock, name)`` acquisition appends an edge from
each lock already held by the thread to the newly acquired one.  The
resulting directed graph over lock *names* (class-level roles such as
``"kvcache.lock"``, not instances — the standard granularity, since two
instances of one class follow the same discipline) is checked for cycles
at report time: any strongly connected component of two or more locks
means two threads can acquire the same pair in opposite orders, i.e. a
potential deadlock, even if the interleaving never actually hung during
the run.

Reentrant re-acquisition of the same name (``RLock``) is deliberately not
an edge — a self-loop is not an ordering inversion.  The *static* analogue
(rule ``C003`` in :mod:`repro.analysis.concurrency`) flags lexically
nested acquires of one non-reentrant lock attribute instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

__all__ = ["LockCycle", "LockOrderRecorder"]


@dataclass(frozen=True)
class LockCycle:
    """One inconsistent acquisition ordering (a cycle of lock names)."""

    names: Tuple[str, ...]

    def describe(self) -> str:
        path = " -> ".join(self.names + (self.names[0],))
        return (
            f"lock-order cycle {path}: these locks are acquired in "
            f"inconsistent orders by different code paths (deadlock risk)"
        )


class LockOrderRecorder:
    """Held-lock stacks per thread plus the global acquired-after graph.

    Like :class:`~repro.sanitize.race.RaceDetector`, not internally
    synchronized — the owning :class:`Sanitizer` serializes all calls.
    """

    def __init__(self) -> None:
        self._held: Dict[int, List[str]] = {}
        self._edges: Dict[str, Set[str]] = {}

    def held(self, tid: int) -> List[str]:
        """Names of locks currently held by ``tid`` (outermost first)."""
        return self._held.get(tid, [])

    def acquire(self, tid: int, name: str) -> None:
        stack = self._held.setdefault(tid, [])
        for outer in stack:
            if outer != name:
                self._edges.setdefault(outer, set()).add(name)
        stack.append(name)

    def release(self, tid: int, name: str) -> None:
        stack = self._held.get(tid)
        if not stack:
            return
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def cycles(self) -> List[LockCycle]:
        """Strongly connected components of size >= 2, one cycle each.

        Tarjan over the acquired-after graph; deterministic output order
        (first-seen root) so repeated reports are stable.
        """
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        out: List[LockCycle] = []

        def strongconnect(node: str) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(self._edges.get(node, ())):
                if succ not in index:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    component.reverse()
                    out.append(LockCycle(tuple(component)))

        for node in sorted(set(self._edges) | {s for ss in self._edges.values() for s in ss}):
            if node not in index:
                strongconnect(node)
        return out

    def clear(self) -> None:
        self._held.clear()
        self._edges.clear()
