"""Lockset + happens-before race detection (Eraser crossed with FastTrack).

The detector consumes three event kinds from :class:`repro.sanitize.Sanitizer`:

* **accesses** — ``access(tid, var, rw, lockset)`` for every instrumented
  read/write of a shared field;
* **lock edges** — release/acquire of a named lock, which double as
  happens-before channels (a release publishes the releasing thread's
  clock; the next acquire inherits it), exactly how TSan models mutexes;
* **message edges** — explicit ``send``/``recv`` on an arbitrary key, used
  for non-lock synchronization such as the session pool's ``queue.Queue``
  handoff (put happens-before get).

Each thread carries a vector clock (``{tid: counter}``).  An access is
recorded with the accessing thread's *epoch* — its own clock component —
plus the set of lock names held.  Two accesses to the same variable race
when (a) they come from different threads, (b) neither happens-before the
other (FastTrack's epoch test: the later thread's clock has not absorbed
the earlier access's epoch), and (c) their locksets are disjoint (Eraser's
test).  Requiring *both* (b) and (c) keeps the false-positive rate near
zero on lock-free-by-design single-thread ownership (the micro-batcher's
dispatcher) while still flagging genuinely unordered sharing.

Per-variable state is a last-write plus a bounded read ring — O(1) per
access, which is what makes the enabled mode usable inside the chaos
storm's inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List

__all__ = ["AccessInfo", "RaceRecord", "RaceDetector", "VectorClock"]

#: A vector clock: thread id -> last event counter observed for it.
VectorClock = Dict[int, int]


@dataclass(frozen=True)
class AccessInfo:
    """One recorded access: who, when (own epoch), holding what."""

    tid: int
    epoch: int
    lockset: FrozenSet[str]
    rw: str  # "r" | "w"


@dataclass(frozen=True)
class RaceRecord:
    """Two conflicting accesses with no ordering and no common lock."""

    var: str
    kind: str  # "write-write" | "read-write" | "write-read"
    first: AccessInfo
    second: AccessInfo

    def describe(self) -> str:
        def side(a: AccessInfo) -> str:
            locks = ",".join(sorted(a.lockset)) or "no locks"
            return f"thread {a.tid} ({'write' if a.rw == 'w' else 'read'}, {locks})"

        return (
            f"{self.kind} race on {self.var}: {side(self.first)} vs "
            f"{side(self.second)} — unordered and lockset-disjoint"
        )


class RaceDetector:
    """Vector-clock + lockset checker over a stream of access events.

    Not internally synchronized: the owning :class:`Sanitizer` serializes
    every call under its own lock (the detector is shared mutable state
    itself, and eating our own dog food one level down would recurse).
    """

    def __init__(self, max_reads: int = 8) -> None:
        self.max_reads = max_reads
        self._clocks: Dict[int, VectorClock] = {}
        self._channels: Dict[Hashable, VectorClock] = {}
        self._writes: Dict[str, AccessInfo] = {}
        self._reads: Dict[str, List[AccessInfo]] = {}
        self.races: List[RaceRecord] = []
        self._seen: set = set()

    # -- clocks --------------------------------------------------------------
    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = self._clocks[tid] = {tid: 1}
        return clock

    def _tick(self, tid: int) -> None:
        clock = self._clock(tid)
        clock[tid] = clock.get(tid, 0) + 1

    @staticmethod
    def _merge_into(dst: VectorClock, src: VectorClock) -> None:
        for tid, counter in src.items():
            if counter > dst.get(tid, 0):
                dst[tid] = counter

    # -- synchronization edges ----------------------------------------------
    def send(self, tid: int, key: Hashable) -> None:
        """Publish ``tid``'s clock on ``key`` (lock release, queue put)."""
        channel = self._channels.setdefault(key, {})
        self._merge_into(channel, self._clock(tid))
        self._tick(tid)

    def recv(self, tid: int, key: Hashable) -> None:
        """Absorb the clock published on ``key`` (lock acquire, queue get)."""
        channel = self._channels.get(key)
        if channel:
            self._merge_into(self._clock(tid), channel)

    # -- accesses ------------------------------------------------------------
    def access(
        self, tid: int, var: str, rw: str, lockset: FrozenSet[str]
    ) -> int:
        """Record one access; returns how many new races it exposed."""
        clock = self._clock(tid)
        current = AccessInfo(tid, clock.get(tid, 0), lockset, rw)

        def racy(prev: AccessInfo) -> bool:
            if prev.tid == tid:
                return False
            # FastTrack epoch test: prev happens-before current iff the
            # current thread's clock has absorbed prev's own component.
            if clock.get(prev.tid, 0) >= prev.epoch:
                return False
            return not (prev.lockset & lockset)

        found = 0
        last_write = self._writes.get(var)
        if rw == "w":
            if last_write is not None and racy(last_write):
                found += self._report(var, "write-write", last_write, current)
            for read in self._reads.get(var, ()):
                if racy(read):
                    found += self._report(var, "read-write", read, current)
            self._writes[var] = current
            self._reads[var] = []
        else:
            if last_write is not None and racy(last_write):
                found += self._report(var, "write-read", last_write, current)
            reads = self._reads.setdefault(var, [])
            reads.append(current)
            if len(reads) > self.max_reads:
                del reads[0]
        return found

    def _report(
        self, var: str, kind: str, first: AccessInfo, second: AccessInfo
    ) -> int:
        key = (var, kind, first.tid, second.tid)
        if key in self._seen:
            return 0
        self._seen.add(key)
        self.races.append(RaceRecord(var, kind, first, second))
        return 1

    def clear(self) -> None:
        """Drop all state (per-run isolation in tests and the CLI)."""
        self._clocks.clear()
        self._channels.clear()
        self._writes.clear()
        self._reads.clear()
        self.races.clear()
        self._seen.clear()
