"""Allocation-lifecycle sanitizer for arena extents and KV slabs.

Dynamic allocations (KV-cache slabs over the page free list, and any
future arena tenant) move through a three-state machine::

    carve ──> live ──release(evictable)──> retired ──evict──> freed
                │                                               ▲
                └──────────────── free ─────────────────────────┘

The tracker mirrors every transition and flags the ways the real
allocator can be misused:

* **leak** — an extent still ``live`` when its owning scope (one
  allocator / one engine) closes.  ``retired`` extents are *not* leaks:
  they are the LRU cache of reusable slabs, reclaimed under pressure by
  design.
* **double-free** — ``free`` on an extent already ``freed``.
* **use-after-free** — a data access through an extent after ``free``,
  caught by generation counters: each re-carve of a key bumps the
  generation, so a stale handle (old generation) or a freed extent is
  poisoned even if the same pages were since handed to someone else.
* **wild-free / wild-use** — operations on extents the tracker never saw
  carved (an allocator bypass).

Findings are plain records here; :meth:`repro.sanitize.Sanitizer.report`
converts them into :class:`repro.analysis.Diagnostic` rows (rule family
``sanitize-*``) so the CLI prints them with the same machinery as lint
and memcheck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["ExtentState", "LifecycleFinding", "LifecycleTracker"]


@dataclass
class ExtentState:
    """Tracker-side shadow of one allocation."""

    scope: str
    key: str
    start: int
    units: int
    kind: str
    state: str = "live"  # "live" | "retired" | "freed"
    generation: int = 0


@dataclass(frozen=True)
class LifecycleFinding:
    """One lifecycle violation (leak, double-free, use-after-free...)."""

    rule: str  # "leak" | "double-free" | "use-after-free" | "wild-free" | "wild-use"
    scope: str
    key: str
    message: str

    def describe(self) -> str:
        return f"{self.rule} in {self.scope}: {self.message}"


class LifecycleTracker:
    """Shadow state machine over carve/retire/free/use events.

    Not internally synchronized — the owning :class:`Sanitizer`
    serializes all calls.
    """

    def __init__(self) -> None:
        self._extents: Dict[Tuple[str, str], ExtentState] = {}
        self.findings: List[LifecycleFinding] = []

    # -- transitions ---------------------------------------------------------
    def carve(
        self, scope: str, key: str, start: int, units: int, kind: str = "kv-slab"
    ) -> int:
        """Record an allocation; returns the extent's generation counter."""
        full = (scope, key)
        prev = self._extents.get(full)
        generation = 0
        if prev is not None:
            if prev.state != "freed":
                self._report(
                    "wild-use", scope, key,
                    f"carved while already {prev.state} "
                    f"(units [{prev.start}, {prev.start + prev.units}))",
                )
            generation = prev.generation + 1
        self._extents[full] = ExtentState(
            scope, key, start, units, kind, "live", generation
        )
        return generation

    def retire(self, scope: str, key: str) -> None:
        """live -> retired (LRU-evictable; not a leak at close)."""
        extent = self._extents.get((scope, key))
        if extent is None:
            self._report("wild-free", scope, key, "retire of an unknown extent")
        elif extent.state == "freed":
            self._report("double-free", scope, key, "retire after free")
        else:
            extent.state = "retired"

    def free(self, scope: str, key: str) -> None:
        """live/retired -> freed; flags double and wild frees."""
        extent = self._extents.get((scope, key))
        if extent is None:
            self._report("wild-free", scope, key, "free of an extent never carved")
        elif extent.state == "freed":
            self._report(
                "double-free", scope, key,
                f"pages [{extent.start}, {extent.start + extent.units}) "
                f"freed twice (generation {extent.generation})",
            )
        else:
            extent.state = "freed"

    def use(self, scope: str, key: str, generation: Optional[int] = None) -> bool:
        """A data access through the extent; True when it was valid."""
        extent = self._extents.get((scope, key))
        if extent is None:
            self._report("wild-use", scope, key, "access through an unknown extent")
            return False
        if extent.state == "freed":
            self._report(
                "use-after-free", scope, key,
                f"access to pages [{extent.start}, {extent.start + extent.units}) "
                f"after free (generation {extent.generation})",
            )
            return False
        if generation is not None and generation != extent.generation:
            self._report(
                "use-after-free", scope, key,
                f"stale handle: generation {generation} vs current "
                f"{extent.generation} (pages were recycled)",
            )
            return False
        return True

    def close_scope(self, scope: str) -> List[LifecycleFinding]:
        """Scope teardown: every still-``live`` extent is a leak."""
        leaks: List[LifecycleFinding] = []
        for (owner, key), extent in list(self._extents.items()):
            if owner != scope:
                continue
            if extent.state == "live":
                finding = self._report(
                    "leak", scope, key,
                    f"{extent.kind} of {extent.units} units at {extent.start} "
                    f"still live at scope close",
                )
                leaks.append(finding)
            del self._extents[(owner, key)]
        return leaks

    # -- introspection -------------------------------------------------------
    def live_extents(self, scope: str) -> List[ExtentState]:
        return [
            e for (owner, _), e in self._extents.items()
            if owner == scope and e.state == "live"
        ]

    def _report(self, rule: str, scope: str, key: str, message: str) -> LifecycleFinding:
        finding = LifecycleFinding(rule, scope, key, message)
        self.findings.append(finding)
        return finding

    def clear(self) -> None:
        self._extents.clear()
        self.findings.clear()
