"""The :class:`Sanitizer` facade: one event API over three checkers.

Instrumented code talks to exactly one object::

    san.probe(obj, "field", "w", lockset=("kvcache.lock",))   # data access
    with san.locked(self._lock, "kvcache.lock"): ...          # lock + order
    san.hb_send(("pool.session", id(s)))                      # queue put
    san.hb_recv(("pool.session", id(s)))                      # queue get
    gen = san.carve(scope, key, start, units)                 # allocation
    san.free_extent(scope, key); san.use_extent(scope, key, gen)
    san.close_scope(scope)                                    # leak check

Design constraints mirror the tracer's (:mod:`repro.obs.tracer`):

1. **Disabled must be (almost) free.**  The process-wide default is a
   disabled sanitizer; every entry point starts with one ``enabled``
   check, ``locked()`` on a disabled sanitizer returns the raw lock
   itself, and hot loops additionally guard on ``sanitizer.enabled`` so
   an unsanitized run pays a single attribute test.  The overhead guard
   in ``tests/test_sanitize_integration.py`` holds this to <10% of a
   small-model run loop.
2. **Thread-safe recording.**  All three checkers are plain data
   structures mutated under one internal lock; that lock is never held
   while acquiring user locks, so instrumentation cannot introduce the
   deadlocks it is hunting.
3. **No global mutation by default.**  Sessions/engines take a sanitizer
   via config (``SessionConfig(sanitize=True)``); the process-wide
   default (:func:`get_sanitizer`/:func:`set_sanitizer`) is only the
   fallback.

Findings surface three ways: :meth:`Sanitizer.report` (a structured
:class:`SanitizeReport` with ``analysis.diagnostics`` conversion), the
``sanitize.races`` / ``sanitize.lock_cycles`` / ``sanitize.leaks``
counters in the bound metrics registry (pre-registered to zero so every
snapshot shows them), and ``cli sanitize``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Union

from ..obs.metrics import MetricsRegistry, get_metrics
from .lifecycle import LifecycleFinding, LifecycleTracker
from .lockorder import LockCycle, LockOrderRecorder
from .race import RaceDetector, RaceRecord

__all__ = [
    "SanitizeReport",
    "Sanitizer",
    "get_sanitizer",
    "set_sanitizer",
    "resolve_sanitizer",
]

#: Counters every enabled sanitizer registers (at zero) in its metrics
#: registry.  ``sanitize.leaks`` counts *all* lifecycle findings (leaks,
#: double-frees, use-after-frees) — one number that must stay zero.
COUNTER_NAMES = ("sanitize.races", "sanitize.lock_cycles", "sanitize.leaks")


@dataclass
class SanitizeReport:
    """Snapshot of every finding from one sanitized run."""

    races: List[RaceRecord] = field(default_factory=list)
    lock_cycles: List[LockCycle] = field(default_factory=list)
    lifecycle: List[LifecycleFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.races or self.lock_cycles or self.lifecycle)

    @property
    def total(self) -> int:
        return len(self.races) + len(self.lock_cycles) + len(self.lifecycle)

    def diagnostics(self) -> list:
        """Findings as :class:`repro.analysis.Diagnostic` rows.

        Imported lazily: ``repro.analysis`` pulls in the converter and IR
        stacks, which instrumented low-level modules must not depend on
        at import time.
        """
        from ..analysis.diagnostics import error

        out = []
        for race in self.races:
            out.append(error("sanitize-race", race.describe(), tensor=race.var))
        for cycle in self.lock_cycles:
            out.append(error("sanitize-lock-cycle", cycle.describe()))
        for finding in self.lifecycle:
            out.append(
                error(f"sanitize-{finding.rule}", finding.describe(),
                      tensor=finding.key)
            )
        return out

    def describe(self) -> str:
        if self.ok:
            return "sanitize: clean (0 races, 0 lock cycles, 0 lifecycle findings)"
        lines = [
            f"sanitize: {len(self.races)} race(s), "
            f"{len(self.lock_cycles)} lock cycle(s), "
            f"{len(self.lifecycle)} lifecycle finding(s)"
        ]
        for race in self.races:
            lines.append(f"  - {race.describe()}")
        for cycle in self.lock_cycles:
            lines.append(f"  - {cycle.describe()}")
        for finding in self.lifecycle:
            lines.append(f"  - {finding.describe()}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise SanitizeError(self.describe(), self)


class SanitizeError(RuntimeError):
    """Raised by :meth:`SanitizeReport.raise_if_failed`; carries the report."""

    def __init__(self, message: str, report: SanitizeReport) -> None:
        super().__init__(message)
        self.report = report


class _LockedContext:
    """``with sanitizer.locked(lock, name):`` — real lock + recorded order."""

    __slots__ = ("_sanitizer", "_lock", "_name")

    def __init__(self, sanitizer: "Sanitizer", lock, name: str) -> None:
        self._sanitizer = sanitizer
        self._lock = lock
        self._name = name

    def __enter__(self):
        # Real lock first: the recorded order then reflects the order
        # acquisitions actually succeeded in.
        self._lock.acquire()  # sanitize: released in __exit__
        self._sanitizer.acquire(self._name)
        return self._lock

    def __exit__(self, *exc) -> bool:
        self._sanitizer.release(self._name)
        self._lock.release()
        return False


class Sanitizer:
    """Race, lock-order and lifecycle checking behind one event API.

    ``Sanitizer()`` is enabled; ``Sanitizer(enabled=False)`` is the no-op
    form used as the process-wide default.  All events are safe to emit
    from any thread.
    """

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        max_reads: int = 8,
    ) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics = metrics
        self.race_detector = RaceDetector(max_reads=max_reads)
        self.lock_order = LockOrderRecorder()
        self.lifecycle = LifecycleTracker()
        self._counted_cycles: set = set()
        self._counted_lifecycle = 0
        if enabled:
            registry = self.metrics
            for name in COUNTER_NAMES:
                registry.counter(name)

    @property
    def metrics(self) -> MetricsRegistry:
        """Bound registry, falling back to the process-wide one lazily
        (so a sanitizer created before ``set_metrics`` still lands its
        counters in the registry active at event time)."""
        return self._metrics if self._metrics is not None else get_metrics()

    # -- data accesses -------------------------------------------------------
    def probe(
        self, obj: object, field_name: str, rw: str = "r",
        lockset: Iterable[str] = (),
    ) -> None:
        """Record a shared-state access.

        ``lockset`` names locks the caller *knows* protect this access
        (e.g. a metrics gauge's internal lock); locks currently held via
        :meth:`locked` are added automatically.
        """
        if not self.enabled:
            return
        tid = threading.get_ident()
        var = f"{type(obj).__name__}#{id(obj):x}.{field_name}"
        with self._lock:
            effective = frozenset(lockset).union(self.lock_order.held(tid))
            found = self.race_detector.access(tid, var, rw, effective)
        if found:
            self.metrics.counter("sanitize.races").inc(found)

    # -- locks ---------------------------------------------------------------
    def locked(self, lock, name: str):
        """Wrap ``with lock:`` so acquisition order and lockset are seen.

        Disabled sanitizers return the raw lock — the ``with`` statement
        costs one extra method call and nothing else.
        """
        if not self.enabled:
            return lock
        return _LockedContext(self, lock, name)

    def acquire(self, name: str) -> None:
        """A named lock was acquired by the calling thread."""
        if not self.enabled:
            return
        tid = threading.get_ident()
        with self._lock:
            self.lock_order.acquire(tid, name)
            self.race_detector.recv(tid, ("lock", name))

    def release(self, name: str) -> None:
        """A named lock is about to be released by the calling thread."""
        if not self.enabled:
            return
        tid = threading.get_ident()
        with self._lock:
            self.lock_order.release(tid, name)
            self.race_detector.send(tid, ("lock", name))

    # -- message edges -------------------------------------------------------
    def hb_send(self, key: Hashable) -> None:
        """Publish a happens-before edge (queue put, handoff, signal)."""
        if not self.enabled:
            return
        with self._lock:
            self.race_detector.send(threading.get_ident(), key)

    def hb_recv(self, key: Hashable) -> None:
        """Receive a happens-before edge (queue get, join, wait-return)."""
        if not self.enabled:
            return
        with self._lock:
            self.race_detector.recv(threading.get_ident(), key)

    # -- lifecycle -----------------------------------------------------------
    def carve(
        self, scope: str, key: str, start: int, units: int, kind: str = "kv-slab"
    ) -> int:
        if not self.enabled:
            return 0
        with self._lock:
            generation = self.lifecycle.carve(scope, key, start, units, kind)
        self._flush_lifecycle()
        return generation

    def retire_extent(self, scope: str, key: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.lifecycle.retire(scope, key)
        self._flush_lifecycle()

    def free_extent(self, scope: str, key: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.lifecycle.free(scope, key)
        self._flush_lifecycle()

    def use_extent(self, scope: str, key: str, generation: Optional[int] = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.lifecycle.use(scope, key, generation)
        self._flush_lifecycle()

    def close_scope(self, scope: str) -> List[LifecycleFinding]:
        """Leak check at allocator/engine teardown."""
        if not self.enabled:
            return []
        with self._lock:
            leaks = self.lifecycle.close_scope(scope)
        self._flush_lifecycle()
        return leaks

    def _flush_lifecycle(self) -> None:
        with self._lock:
            new = len(self.lifecycle.findings) - self._counted_lifecycle
            self._counted_lifecycle = len(self.lifecycle.findings)
        if new > 0:
            self.metrics.counter("sanitize.leaks").inc(new)

    # -- reporting -----------------------------------------------------------
    def report(self) -> SanitizeReport:
        """Snapshot findings; runs lock-cycle detection and updates counters."""
        if not self.enabled:
            return SanitizeReport()
        with self._lock:
            cycles = self.lock_order.cycles()
            new_cycles = [
                c for c in cycles if frozenset(c.names) not in self._counted_cycles
            ]
            for cycle in new_cycles:
                self._counted_cycles.add(frozenset(cycle.names))
            snapshot = SanitizeReport(
                races=list(self.race_detector.races),
                lock_cycles=cycles,
                lifecycle=list(self.lifecycle.findings),
            )
        if new_cycles:
            self.metrics.counter("sanitize.lock_cycles").inc(len(new_cycles))
        return snapshot

    def clear(self) -> None:
        """Reset all detector state (counters are left alone)."""
        with self._lock:
            self.race_detector.clear()
            self.lock_order.clear()
            self.lifecycle.clear()
            self._counted_cycles.clear()
            self._counted_lifecycle = 0


#: Process-wide default: a disabled sanitizer, so un-configured sessions
#: pay only an ``enabled`` check.  Replace via :func:`set_sanitizer` (the
#: CLI does this for ``cli sanitize``).
_GLOBAL_SANITIZER = Sanitizer(enabled=False)


def get_sanitizer() -> Sanitizer:
    """The process-wide sanitizer (disabled no-op unless :func:`set_sanitizer` ran)."""
    return _GLOBAL_SANITIZER


def set_sanitizer(sanitizer: Sanitizer) -> Sanitizer:
    """Install ``sanitizer`` process-wide; returns the previous one (restore it)."""
    global _GLOBAL_SANITIZER
    previous = _GLOBAL_SANITIZER
    _GLOBAL_SANITIZER = sanitizer
    return previous


def resolve_sanitizer(
    value: Union[bool, Sanitizer, None],
    metrics: Optional[MetricsRegistry] = None,
) -> Sanitizer:
    """Config-field semantics shared by every layer.

    ``False``/``None`` -> the process-wide default (usually disabled);
    ``True`` -> a fresh enabled sanitizer bound to ``metrics``;
    a :class:`Sanitizer` instance -> itself (so one detector can span an
    engine, its pool, its batcher and every worker session).
    """
    if isinstance(value, Sanitizer):
        return value
    if value:
        return Sanitizer(enabled=True, metrics=metrics)
    return get_sanitizer()
