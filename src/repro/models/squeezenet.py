"""SqueezeNet v1.0 / v1.1 graph builders (Iandola et al. 2016)."""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder

__all__ = ["squeezenet_v1_0", "squeezenet_v1_1"]


def _fire(b: GraphBuilder, x: str, squeeze: int, expand1: int, expand3: int) -> str:
    """A Fire module: 1x1 squeeze, then parallel 1x1/3x3 expands, concat."""
    s = b.relu(b.conv(x, oc=squeeze, kernel=1))
    e1 = b.relu(b.conv(s, oc=expand1, kernel=1))
    e3 = b.relu(b.conv(s, oc=expand3, kernel=3, pad_mode="same"))
    return b.concat([e1, e3])


def squeezenet_v1_0(
    input_size: int = 224, classes: int = 1000, batch: int = 1, seed: int = 0
) -> Graph:
    """SqueezeNet v1.0: 7x7 stem, late downsampling."""
    b = GraphBuilder(f"squeezenet_v1.0_{input_size}", seed=seed)
    x = b.input("data", (batch, 3, input_size, input_size))
    x = b.relu(b.conv(x, oc=96, kernel=7, stride=2, pad_mode="valid"))
    x = b.max_pool(x, 3, stride=2, ceil_mode=True)
    x = _fire(b, x, 16, 64, 64)
    x = _fire(b, x, 16, 64, 64)
    x = _fire(b, x, 32, 128, 128)
    x = b.max_pool(x, 3, stride=2, ceil_mode=True)
    x = _fire(b, x, 32, 128, 128)
    x = _fire(b, x, 48, 192, 192)
    x = _fire(b, x, 48, 192, 192)
    x = _fire(b, x, 64, 256, 256)
    x = b.max_pool(x, 3, stride=2, ceil_mode=True)
    x = _fire(b, x, 64, 256, 256)
    x = b.dropout(x)
    x = b.relu(b.conv(x, oc=classes, kernel=1))
    x = b.global_avg_pool(x)
    x = b.flatten(x)
    b.output(b.softmax(x))
    return b.finish()


def squeezenet_v1_1(
    input_size: int = 224, classes: int = 1000, batch: int = 1, seed: int = 0
) -> Graph:
    """SqueezeNet v1.1: 3x3 stem and earlier pooling (2.4x cheaper, same accuracy).

    This is the variant the paper benchmarks (Figure 7 middle column).
    """
    b = GraphBuilder(f"squeezenet_v1.1_{input_size}", seed=seed)
    x = b.input("data", (batch, 3, input_size, input_size))
    x = b.relu(b.conv(x, oc=64, kernel=3, stride=2, pad_mode="valid"))
    x = b.max_pool(x, 3, stride=2, ceil_mode=True)
    x = _fire(b, x, 16, 64, 64)
    x = _fire(b, x, 16, 64, 64)
    x = b.max_pool(x, 3, stride=2, ceil_mode=True)
    x = _fire(b, x, 32, 128, 128)
    x = _fire(b, x, 32, 128, 128)
    x = b.max_pool(x, 3, stride=2, ceil_mode=True)
    x = _fire(b, x, 48, 192, 192)
    x = _fire(b, x, 48, 192, 192)
    x = _fire(b, x, 64, 256, 256)
    x = _fire(b, x, 64, 256, 256)
    x = b.dropout(x)
    x = b.relu(b.conv(x, oc=classes, kernel=1))
    x = b.global_avg_pool(x)
    x = b.flatten(x)
    b.output(b.softmax(x))
    return b.finish()
