"""Model zoo: the architectures benchmarked in the paper's evaluation."""

from typing import Callable, Dict

from ..ir.graph import Graph
from .mobilenet import mobilenet_v1, mobilenet_v2
from .squeezenet import squeezenet_v1_0, squeezenet_v1_1
from .resnet import resnet18, resnet50
from .inception import inception_v3
from .text import lstm_classifier, tiny_decoder, tiny_transformer

__all__ = [
    "mobilenet_v1",
    "mobilenet_v2",
    "squeezenet_v1_0",
    "squeezenet_v1_1",
    "resnet18",
    "resnet50",
    "inception_v3",
    "tiny_transformer",
    "tiny_decoder",
    "lstm_classifier",
    "MODEL_REGISTRY",
    "build_model",
]

MODEL_REGISTRY: Dict[str, Callable[..., Graph]] = {
    "mobilenet_v1": mobilenet_v1,
    "mobilenet_v2": mobilenet_v2,
    "squeezenet_v1.0": squeezenet_v1_0,
    "squeezenet_v1.1": squeezenet_v1_1,
    "resnet18": resnet18,
    "resnet50": resnet50,
    "inception_v3": inception_v3,
    "tiny_transformer": tiny_transformer,
    "tiny_decoder": tiny_decoder,
    "lstm_classifier": lstm_classifier,
}


def build_model(name: str, **kwargs) -> Graph:
    """Build a zoo model by name.

    Raises:
        KeyError: listing the available names if ``name`` is unknown.
    """
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    return factory(**kwargs)
