"""Inception-v3 graph builder (Szegedy et al. 2015).

The factorized 1x7 / 7x1 convolutions in the middle blocks are exactly the
operators the paper's Figure 8 uses to demonstrate the bottleneck of
case-by-case kernel optimization: NCNN-style engines have no hand-tuned
kernel for them and fall back to a slow path.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder

__all__ = ["inception_v3"]


def _cbr(b: GraphBuilder, x: str, oc: int, kernel, stride=1, pad_mode="valid") -> str:
    x = b.conv(x, oc=oc, kernel=kernel, stride=stride, pad_mode=pad_mode, bias=False)
    x = b.batch_norm(x)
    return b.relu(x)


def _inception_a(b: GraphBuilder, x: str, pool_features: int) -> str:
    b1 = _cbr(b, x, 64, 1)
    b5 = _cbr(b, x, 48, 1)
    b5 = _cbr(b, b5, 64, 5, pad_mode="same")
    b3 = _cbr(b, x, 64, 1)
    b3 = _cbr(b, b3, 96, 3, pad_mode="same")
    b3 = _cbr(b, b3, 96, 3, pad_mode="same")
    bp = b.avg_pool(x, 3, stride=1, pad_mode="same")
    bp = _cbr(b, bp, pool_features, 1)
    return b.concat([b1, b5, b3, bp])


def _reduction_a(b: GraphBuilder, x: str) -> str:
    b3 = _cbr(b, x, 384, 3, stride=2)
    bd = _cbr(b, x, 64, 1)
    bd = _cbr(b, bd, 96, 3, pad_mode="same")
    bd = _cbr(b, bd, 96, 3, stride=2)
    bp = b.max_pool(x, 3, stride=2)
    return b.concat([b3, bd, bp])


def _inception_b(b: GraphBuilder, x: str, c7: int) -> str:
    """The factorized-7 block: contains 1x7 and 7x1 convolutions."""
    b1 = _cbr(b, x, 192, 1)
    b7 = _cbr(b, x, c7, 1)
    b7 = _cbr(b, b7, c7, (1, 7), pad_mode="same")
    b7 = _cbr(b, b7, 192, (7, 1), pad_mode="same")
    b77 = _cbr(b, x, c7, 1)
    b77 = _cbr(b, b77, c7, (7, 1), pad_mode="same")
    b77 = _cbr(b, b77, c7, (1, 7), pad_mode="same")
    b77 = _cbr(b, b77, c7, (7, 1), pad_mode="same")
    b77 = _cbr(b, b77, 192, (1, 7), pad_mode="same")
    bp = b.avg_pool(x, 3, stride=1, pad_mode="same")
    bp = _cbr(b, bp, 192, 1)
    return b.concat([b1, b7, b77, bp])


def _reduction_b(b: GraphBuilder, x: str) -> str:
    b3 = _cbr(b, x, 192, 1)
    b3 = _cbr(b, b3, 320, 3, stride=2)
    b7 = _cbr(b, x, 192, 1)
    b7 = _cbr(b, b7, 192, (1, 7), pad_mode="same")
    b7 = _cbr(b, b7, 192, (7, 1), pad_mode="same")
    b7 = _cbr(b, b7, 192, 3, stride=2)
    bp = b.max_pool(x, 3, stride=2)
    return b.concat([b3, b7, bp])


def _inception_c(b: GraphBuilder, x: str) -> str:
    b1 = _cbr(b, x, 320, 1)
    b3 = _cbr(b, x, 384, 1)
    b3a = _cbr(b, b3, 384, (1, 3), pad_mode="same")
    b3b = _cbr(b, b3, 384, (3, 1), pad_mode="same")
    bd = _cbr(b, x, 448, 1)
    bd = _cbr(b, bd, 384, 3, pad_mode="same")
    bda = _cbr(b, bd, 384, (1, 3), pad_mode="same")
    bdb = _cbr(b, bd, 384, (3, 1), pad_mode="same")
    bp = b.avg_pool(x, 3, stride=1, pad_mode="same")
    bp = _cbr(b, bp, 192, 1)
    return b.concat([b1, b3a, b3b, bda, bdb, bp])


def inception_v3(
    input_size: int = 299, classes: int = 1000, batch: int = 1, seed: int = 0
) -> Graph:
    """Inception-v3 with the standard 299x299 input."""
    b = GraphBuilder(f"inception_v3_{input_size}", seed=seed)
    x = b.input("data", (batch, 3, input_size, input_size))
    # stem
    x = _cbr(b, x, 32, 3, stride=2)
    x = _cbr(b, x, 32, 3)
    x = _cbr(b, x, 64, 3, pad_mode="same")
    x = b.max_pool(x, 3, stride=2)
    x = _cbr(b, x, 80, 1)
    x = _cbr(b, x, 192, 3)
    x = b.max_pool(x, 3, stride=2)
    # 3 x inception A
    x = _inception_a(b, x, 32)
    x = _inception_a(b, x, 64)
    x = _inception_a(b, x, 64)
    x = _reduction_a(b, x)
    # 4 x inception B (the 1x7 / 7x1 blocks)
    x = _inception_b(b, x, 128)
    x = _inception_b(b, x, 160)
    x = _inception_b(b, x, 160)
    x = _inception_b(b, x, 192)
    x = _reduction_b(b, x)
    # 2 x inception C
    x = _inception_c(b, x)
    x = _inception_c(b, x)
    x = b.global_avg_pool(x)
    x = b.dropout(x)
    x = b.fc(x, units=classes)
    b.output(b.softmax(x))
    return b.finish()
