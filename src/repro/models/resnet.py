"""ResNet-18 / ResNet-50 graph builders (He et al. 2016)."""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder

__all__ = ["resnet18", "resnet50"]


def _conv_bn(b: GraphBuilder, x: str, oc: int, kernel, stride=1, relu=True) -> str:
    x = b.conv(x, oc=oc, kernel=kernel, stride=stride, pad_mode="same", bias=False)
    x = b.batch_norm(x)
    return b.relu(x) if relu else x


def _basic_block(b: GraphBuilder, x: str, oc: int, stride: int) -> str:
    """Two 3x3 convs with an identity (or projected) shortcut."""
    in_ch = b.graph.desc(x).shape[1]
    shortcut = x
    if stride != 1 or in_ch != oc:
        shortcut = _conv_bn(b, x, oc, 1, stride, relu=False)
    y = _conv_bn(b, x, oc, 3, stride)
    y = _conv_bn(b, y, oc, 3, 1, relu=False)
    return b.relu(b.add(y, shortcut))


def _bottleneck(b: GraphBuilder, x: str, oc: int, stride: int) -> str:
    """1x1 reduce -> 3x3 -> 1x1 expand (x4), shortcut-added."""
    in_ch = b.graph.desc(x).shape[1]
    out_ch = oc * 4
    shortcut = x
    if stride != 1 or in_ch != out_ch:
        shortcut = _conv_bn(b, x, out_ch, 1, stride, relu=False)
    y = _conv_bn(b, x, oc, 1, 1)
    y = _conv_bn(b, y, oc, 3, stride)
    y = _conv_bn(b, y, out_ch, 1, 1, relu=False)
    return b.relu(b.add(y, shortcut))


def _resnet(name: str, block, layers, input_size: int, classes: int,
            batch: int, seed: int) -> Graph:
    b = GraphBuilder(name, seed=seed)
    x = b.input("data", (batch, 3, input_size, input_size))
    x = _conv_bn(b, x, 64, 7, 2)
    x = b.max_pool(x, 3, stride=2, pad_mode="same")
    for stage, (oc, n_blocks) in enumerate(zip((64, 128, 256, 512), layers)):
        for i in range(n_blocks):
            stride = 2 if (stage > 0 and i == 0) else 1
            x = block(b, x, oc, stride)
    x = b.global_avg_pool(x)
    x = b.fc(x, units=classes)
    b.output(b.softmax(x))
    return b.finish()


def resnet18(input_size: int = 224, classes: int = 1000, batch: int = 1, seed: int = 0) -> Graph:
    """ResNet-18: basic blocks [2, 2, 2, 2] — the paper's heavy CNN benchmark."""
    return _resnet(f"resnet18_{input_size}", _basic_block, (2, 2, 2, 2),
                   input_size, classes, batch, seed)


def resnet50(input_size: int = 224, classes: int = 1000, batch: int = 1, seed: int = 0) -> Graph:
    """ResNet-50: bottleneck blocks [3, 4, 6, 3] (Figure 9's Res-50)."""
    return _resnet(f"resnet50_{input_size}", _bottleneck, (3, 4, 6, 3),
                   input_size, classes, batch, seed)
