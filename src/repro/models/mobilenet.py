"""MobileNet v1 and v2 graph builders (Howard et al. 2017; Sandler et al. 2018).

Weights are seeded-random: the paper's experiments measure latency, which is
weight-independent.  Architectures follow the published configurations.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder

__all__ = ["mobilenet_v1", "mobilenet_v2"]


def _round_channels(c: float) -> int:
    return max(8, int(c + 0.5))


def mobilenet_v1(
    input_size: int = 224,
    width: float = 1.0,
    classes: int = 1000,
    batch: int = 1,
    seed: int = 0,
) -> Graph:
    """MobileNet-v1: depthwise-separable stacks.

    Args:
        input_size: input spatial resolution (paper benchmarks use 224).
        width: channel multiplier (1.0 = the full network).
    """
    b = GraphBuilder(f"mobilenet_v1_{width}_{input_size}", seed=seed)
    x = b.input("data", (batch, 3, input_size, input_size))
    ch = _round_channels(32 * width)
    x = b.conv(x, oc=ch, kernel=3, stride=2, bias=False)
    x = b.batch_norm(x)
    x = b.relu(x)

    # (out_channels, stride) for the 13 separable blocks
    cfg = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
           (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1)]
    for oc, stride in cfg:
        x = b.depthwise_conv(x, kernel=3, stride=stride, bias=False)
        x = b.batch_norm(x)
        x = b.relu(x)
        x = b.conv(x, oc=_round_channels(oc * width), kernel=1, bias=False)
        x = b.batch_norm(x)
        x = b.relu(x)

    x = b.global_avg_pool(x)
    x = b.fc(x, units=classes)
    b.output(b.softmax(x))
    return b.finish()


def mobilenet_v2(
    input_size: int = 224,
    width: float = 1.0,
    classes: int = 1000,
    batch: int = 1,
    seed: int = 0,
) -> Graph:
    """MobileNet-v2: inverted residuals with linear bottlenecks."""
    b = GraphBuilder(f"mobilenet_v2_{width}_{input_size}", seed=seed)
    x = b.input("data", (batch, 3, input_size, input_size))
    ch = _round_channels(32 * width)
    x = b.conv(x, oc=ch, kernel=3, stride=2, bias=False)
    x = b.batch_norm(x)
    x = b.relu6(x)
    in_ch = ch

    # (expansion t, channels c, repeats n, first stride s)
    cfg = [(1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
           (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1)]
    for t, c, n, s in cfg:
        oc = _round_channels(c * width)
        for i in range(n):
            stride = s if i == 0 else 1
            block_in = x
            hidden = in_ch * t
            y = x
            if t != 1:
                y = b.conv(y, oc=hidden, kernel=1, bias=False)
                y = b.batch_norm(y)
                y = b.relu6(y)
            y = b.depthwise_conv(y, kernel=3, stride=stride, bias=False)
            y = b.batch_norm(y)
            y = b.relu6(y)
            y = b.conv(y, oc=oc, kernel=1, bias=False)  # linear bottleneck
            y = b.batch_norm(y)
            if stride == 1 and in_ch == oc:
                y = b.add(block_in, y)
            x = y
            in_ch = oc

    x = b.conv(x, oc=_round_channels(1280 * max(1.0, width)), kernel=1, bias=False)
    x = b.batch_norm(x)
    x = b.relu6(x)
    x = b.global_avg_pool(x)
    x = b.fc(x, units=classes)
    b.output(b.softmax(x))
    return b.finish()
