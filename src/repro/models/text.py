"""Sequence models: a Transformer encoder and an LSTM text classifier.

The paper's Figure 1 lists RNN/LSTM/Transformer among the model families a
universal engine must handle; these builders exercise the engine's
non-CNN path: Gather embeddings, LayerNorm, multi-head attention built
from Transpose/MatMul/Softmax, GELU FFNs, and a recurrent LSTM kernel.
"""

from __future__ import annotations

import numpy as np

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import DataType

__all__ = ["tiny_transformer", "lstm_classifier", "tiny_decoder"]


def _attention(b: GraphBuilder, x: str, d_model: int, heads: int, prefix: str) -> str:
    """Multi-head self-attention block (pre-LN residual)."""
    n, t, _ = b.graph.desc(x).shape
    d_head = d_model // heads
    normed = b.layer_norm(x)

    def project(name: str) -> str:
        w = b._weight(f"{prefix}_{name}_w", (d_model, d_model), scale=d_model**-0.5)
        p = b.matmul(normed, w)                                  # (N, T, D)
        p = b.reshape(p, (n, t, heads, d_head))
        return b.transpose(p, (0, 2, 1, 3))                      # (N, H, T, dh)

    q, k, v = project("q"), project("k"), project("v")
    scores = b.matmul(q, k, transpose_b=True)                    # (N, H, T, T)
    scale = b.constant(np.full((1,), d_head**-0.5, np.float32))
    scores = b.mul(scores, scale)
    attn = b.softmax(scores, axis=-1)
    ctx = b.matmul(attn, v)                                      # (N, H, T, dh)
    ctx = b.transpose(ctx, (0, 2, 1, 3))
    ctx = b.reshape(ctx, (n, t, d_model))
    w_out = b._weight(f"{prefix}_out_w", (d_model, d_model), scale=d_model**-0.5)
    return b.add(x, b.matmul(ctx, w_out))


def _ffn(b: GraphBuilder, x: str, d_model: int, prefix: str) -> str:
    """Position-wise feed-forward block with GELU (pre-LN residual)."""
    normed = b.layer_norm(x)
    w1 = b._weight(f"{prefix}_ffn_w1", (d_model, 4 * d_model), scale=d_model**-0.5)
    w2 = b._weight(f"{prefix}_ffn_w2", (4 * d_model, d_model), scale=(4 * d_model) ** -0.5)
    hidden = b.gelu(b.matmul(normed, w1))
    return b.add(x, b.matmul(hidden, w2))


def tiny_transformer(
    vocab: int = 1000,
    seq_len: int = 64,
    d_model: int = 128,
    heads: int = 4,
    layers: int = 2,
    classes: int = 10,
    batch: int = 1,
    seed: int = 0,
) -> Graph:
    """A BERT-style encoder classifier over integer token ids.

    Input: ``tokens`` of shape (batch, seq_len), dtype int32.
    """
    if d_model % heads:
        raise ValueError(f"d_model {d_model} not divisible by heads {heads}")
    b = GraphBuilder(f"tiny_transformer_L{layers}_D{d_model}", seed=seed)
    tokens = b.input("tokens", (batch, seq_len), DataType.INT32)

    embedding = b._weight("tok_embed", (vocab, d_model), scale=0.02)
    x = b.gather(embedding, tokens, axis=0)              # (N, T, D)
    positions = b._weight("pos_embed", (seq_len, d_model), scale=0.02)
    x = b.add(x, positions)

    for layer in range(layers):
        x = _attention(b, x, d_model, heads, f"l{layer}")
        x = _ffn(b, x, d_model, f"l{layer}")
    x = b.layer_norm(x)

    # classify from the first ([CLS]) token
    cls = b.graph.add_node(
        "Slice", [x], [b._fresh("cls")], {"axis": 1, "start": 0, "end": 1}
    ).outputs[0]
    cls = b.flatten(cls)
    logits = b.fc(cls, units=classes)
    b.output(b.softmax(logits))
    return b.finish()


def tiny_decoder(
    vocab: int = 256,
    max_seq: int = 64,
    d_model: int = 64,
    heads: int = 4,
    layers: int = 2,
    batch: int = 1,
    seed: int = 0,
    mode: str = "full",
    seq_len: int = None,
    cache_len: int = None,
) -> Graph:
    """A decoder-only (GPT-style, pre-LN, causal) transformer LM.

    The same builder produces the two graph variants ``repro.genai`` needs:

    * ``mode="full"`` — run ``seq_len`` tokens at once (prefill / the
      full-recompute reference).  Outputs ``logits`` (N, T, vocab) plus
      per-layer K/V rows ``l{i}_k`` / ``l{i}_v`` (N, H, T, dh) for the
      host to stash into the KV cache.
    * ``mode="decode"`` — run exactly one new token per sequence against
      cached K/V.  Extra inputs: ``lengths`` (N,) int32 cached-token
      counts and per-layer ``l{i}_k_cache`` / ``l{i}_v_cache``
      (N, H, cache_len, dh); outputs the new token's logits and K/V rows.

    Every projection is a ``rowwise`` MatMul and attention is the fused
    row-loop op, so token ``t`` of a full run and decode step ``t`` issue
    identical per-row kernels — decode is *bit-identical* to recompute.
    Weights depend only on ``seed`` and the architecture (the RNG draw
    order is the same in both modes), and the position table always has
    ``max_seq`` rows gathered by an explicit ``positions`` input, so both
    variants share one set of parameters.
    """
    if d_model % heads:
        raise ValueError(f"d_model {d_model} not divisible by heads {heads}")
    if mode not in ("full", "decode"):
        raise ValueError(f"mode must be 'full' or 'decode', got {mode!r}")
    decode = mode == "decode"
    t = 1 if decode else (seq_len or max_seq)
    if t > max_seq:
        raise ValueError(f"seq_len {t} exceeds max_seq {max_seq}")
    cap = cache_len if cache_len is not None else max_seq
    d_head = d_model // heads

    b = GraphBuilder(f"tiny_decoder_L{layers}_D{d_model}_{mode}{t if not decode else cap}",
                     seed=seed)
    tokens = b.input("tokens", (batch, t), DataType.INT32)
    positions = b.input("positions", (batch, t), DataType.INT32)
    lengths = b.input("lengths", (batch,), DataType.INT32) if decode else None

    embedding = b._weight("tok_embed", (vocab, d_model), scale=0.02)
    pos_table = b._weight("pos_embed", (max_seq, d_model), scale=0.02)
    x = b.add(b.gather(embedding, tokens, axis=0),
              b.gather(pos_table, positions, axis=0))         # (N, T, D)

    for layer in range(layers):
        prefix = f"l{layer}"
        normed = b.layer_norm(x)

        def project(name: str, out_name: str = None) -> str:
            w = b._weight(f"{prefix}_{name}_w", (d_model, d_model),
                          scale=d_model**-0.5)
            p = b.matmul(normed, w, rowwise=True)             # (N, T, D)
            p = b.reshape(p, (batch, t, heads, d_head))
            return b.transpose(p, (0, 2, 1, 3), name=out_name)  # (N, H, T, dh)

        q = project("q")
        k = project("k", out_name=f"{prefix}_k")
        v = project("v", out_name=f"{prefix}_v")
        if decode:
            k_cache = b.input(f"{prefix}_k_cache", (batch, heads, cap, d_head))
            v_cache = b.input(f"{prefix}_v_cache", (batch, heads, cap, d_head))
            ctx = b.attention(q, k, v, lengths, k_cache, v_cache,
                              causal=True, scale=d_head**-0.5)
        else:
            ctx = b.attention(q, k, v, causal=True, scale=d_head**-0.5)
        b.output(k, v)
        ctx = b.transpose(ctx, (0, 2, 1, 3))
        ctx = b.reshape(ctx, (batch, t, d_model))
        w_out = b._weight(f"{prefix}_out_w", (d_model, d_model),
                          scale=d_model**-0.5)
        x = b.add(x, b.matmul(ctx, w_out, rowwise=True))

        normed = b.layer_norm(x)
        w1 = b._weight(f"{prefix}_ffn_w1", (d_model, 4 * d_model),
                       scale=d_model**-0.5)
        w2 = b._weight(f"{prefix}_ffn_w2", (4 * d_model, d_model),
                       scale=(4 * d_model) ** -0.5)
        hidden = b.gelu(b.matmul(normed, w1, rowwise=True))
        x = b.add(x, b.matmul(hidden, w2, rowwise=True))

    x = b.layer_norm(x)
    w_lm = b._weight("lm_head_w", (d_model, vocab), scale=d_model**-0.5)
    logits = b.matmul(x, w_lm, rowwise=True, name="logits")   # (N, T, vocab)
    b.output(logits)
    return b.finish()


def lstm_classifier(
    vocab: int = 1000,
    seq_len: int = 64,
    d_model: int = 96,
    hidden: int = 128,
    classes: int = 5,
    batch: int = 1,
    seed: int = 0,
) -> Graph:
    """Embedding -> LSTM -> FC text classifier over integer token ids."""
    b = GraphBuilder(f"lstm_classifier_H{hidden}", seed=seed)
    tokens = b.input("tokens", (batch, seq_len), DataType.INT32)
    embedding = b._weight("tok_embed", (vocab, d_model), scale=0.02)
    x = b.gather(embedding, tokens, axis=0)              # (N, T, D)
    h = b.lstm(x, hidden_size=hidden)                    # (N, H) final state
    logits = b.fc(h, units=classes)
    b.output(b.softmax(logits))
    return b.finish()
