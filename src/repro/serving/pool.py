"""Session pool: N independently prepared sessions over one shared graph.

A single :class:`~repro.core.Session` is not safe for concurrent ``run``
calls — each run mutates per-session state (the virtual ``clock``,
``last_run``, and in ``arena_execution`` mode the one pre-allocated
:class:`~repro.core.Arena`).  The pool therefore checks out a *whole
session* per in-flight request: every worker owns its own executions,
clock and arena, while the immutable inputs (the graph's nodes, the
constant table) are shared, and warm pool construction shares one cached
:class:`~repro.serving.PreInferenceArtifacts` across all workers.
"""

from __future__ import annotations

import queue
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from ..core.session import Session
from ..faults import FaultPlan, PoolTimeout, get_fault_plan, retry_transient
from ..faults.resilience import Deadline
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, get_tracer
from ..sanitize import Sanitizer, get_sanitizer

__all__ = ["SessionPool"]


class SessionPool:
    """A fixed-size blocking pool of ready-to-run sessions.

    Checkout pressure is observable: every acquire increments the
    ``pool.checkouts`` counter and lands its wait in the ``pool.wait_ms``
    histogram (with a ``pool.checkout_wait`` span when waiting actually
    blocked and tracing is on), and ``pool.idle`` gauges the free-worker
    count — the numbers that say whether the pool, not the kernels, is
    the serving bottleneck.
    """

    def __init__(
        self,
        factory: Callable[[], Session],
        size: int,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultPlan] = None,
        retries: int = 3,
        sanitizer: Optional[Sanitizer] = None,
    ) -> None:
        """Build ``size`` sessions eagerly via ``factory``.

        Eager construction keeps the failure mode simple (a broken model
        fails at pool creation, not mid-traffic) and lets the serving
        cache amortize pre-inference across all workers: the first
        ``factory()`` call is the only potentially cold one.
        """
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.faults = faults if faults is not None else get_fault_plan()
        self.sanitizer = sanitizer if sanitizer is not None else get_sanitizer()
        self.retries = retries
        self._sessions: List[Session] = [factory() for _ in range(size)]
        self._free: "queue.Queue[Session]" = queue.Queue()
        for session in self._sessions:
            if self.sanitizer.enabled:
                # Queue put happens-before the matching get: construction
                # (and every return below) is ordered before the next
                # checkout, however threads interleave.
                self.sanitizer.hb_send(("pool.session", id(session)))
            self._free.put(session)
        self.metrics.gauge("pool.idle").set(size)

    @property
    def size(self) -> int:
        return len(self._sessions)

    @property
    def sessions(self) -> List[Session]:
        """All pooled sessions (introspection/stats; do not run directly)."""
        return list(self._sessions)

    @contextmanager
    def acquire(
        self, timeout: float = None, deadline: Optional[Deadline] = None
    ) -> Iterator[Session]:
        """Check out a session; blocks when all workers are busy.

        A ``deadline`` caps the wait at the request's remaining budget
        (tighter of the two when ``timeout`` is also given).

        Raises:
            PoolTimeout: if ``timeout`` (seconds) elapses with no free
                worker — backpressure instead of unbounded queueing.
            DeadlineExceeded: if the request's deadline expires first.
        """
        if deadline is not None:
            deadline.check("pool.checkout")
            remaining = deadline.remaining_s()
            timeout = remaining if timeout is None else min(timeout, remaining)
        plan = self.faults
        if plan.enabled:
            # Transient checkout faults are retried here with backoff;
            # exhaustion escalates the TransientFault to the caller.
            retry_transient(
                lambda: plan.fire("pool.checkout"),
                retries=self.retries,
                rng=plan.rng_for("pool.checkout"),
                deadline=deadline,
                label="pool.checkout",
            )
        start = time.perf_counter()
        try:
            session = self._free.get(timeout=timeout) if timeout is not None \
                else self._free.get()
        except queue.Empty:
            wait_s = time.perf_counter() - start
            if deadline is not None and deadline.expired:
                deadline.check("pool.checkout")
            raise PoolTimeout(wait_s, self.size, self._free.qsize()) from None
        acquired = time.perf_counter()
        if self.sanitizer.enabled:
            self.sanitizer.hb_recv(("pool.session", id(session)))
            self.sanitizer.probe(self, "idle", "w", lockset=("gauge.pool.idle",))
        self.metrics.counter("pool.checkouts").inc()
        self.metrics.histogram("pool.wait_ms").observe((acquired - start) * 1000.0)
        # An atomic delta, NOT gauge.set(qsize()): read-modify-write over
        # the queue size from concurrent checkouts loses updates (the
        # sanitizer's first real find — a stats race, exactly as
        # predicted), and a stale qsize() could stick as the final value.
        self.metrics.gauge("pool.idle").add(-1)
        if self.tracer.enabled:
            self.tracer.record(
                "pool.checkout_wait", "serving", start, acquired,
                idle=self._free.qsize(),
            )
        try:
            yield session
        finally:
            if self.sanitizer.enabled:
                self.sanitizer.probe(self, "idle", "w", lockset=("gauge.pool.idle",))
                self.sanitizer.hb_send(("pool.session", id(session)))
            self._free.put(session)
            self.metrics.gauge("pool.idle").add(1)

    def idle(self) -> int:
        """Approximate number of currently free sessions."""
        return self._free.qsize()
