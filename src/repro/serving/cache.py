"""Persistent pre-inference cache (the serving layer's cold-start killer).

The paper's pre-inference (Section 3.2) — scheme search, Eq. 4 backend
selection, Winograd transform generation, memory planning — dominates
session creation, and *Boosting DNN Cold Inference on Edge Devices* shows
exactly this cost dominating cold start in production engines.  All of it
is a pure function of (graph structure, shapes, config), so this module
persists the results to disk and replays them: a warm process creates
sessions in a fraction of the cold ``prepare_wall_ms``.

Cache key
---------
``sha256`` over:

* the cache format version (bumping it invalidates every entry);
* :func:`repro.ir.graph_signature` — graph structure, every tensor
  descriptor (shapes + dtypes) and a weight fingerprint, so editing the
  model invalidates its entries;
* a config fingerprint — every ``SessionConfig`` field that influences
  pre-inference decisions (backend, device, threads, decoupling,
  Strassen, scheme tunables, auto-backend candidates);
* optional extra input shapes (used by the batcher: one entry per
  micro-batch bucket).

Entries are single JSON files written atomically (tmp + rename), so
concurrent warmers cannot corrupt each other; a corrupt or stale entry
deserializes to a miss, never an error.  The cache directory defaults to
``$REPRO_CACHE_DIR``, then ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..backends.base import Backend
from ..core.memory import MemoryPlan
from ..core.schemes import SchemeDecision
from ..core.session import Session, SessionArtifacts, SessionConfig
from ..faults import FaultPlan, get_fault_plan
from ..ir.graph import Graph
from ..ir.serialization import graph_signature
from ..kernels import winograd as winograd_mod
from ..obs.metrics import MetricsRegistry, get_metrics
from ..sanitize import Sanitizer, get_sanitizer

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_VERSION",
    "PreInferenceArtifacts",
    "PreInferenceCache",
    "default_cache_dir",
]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
# 2: keys carry the quantization fingerprint (tensor dtypes + scale
# digest), so a graph's int8 and fp variants can never collide.
CACHE_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class PreInferenceArtifacts:
    """Everything a warm process needs to skip pre-inference work.

    Extends :class:`repro.core.SessionArtifacts` (the in-process form)
    with the globally cached Winograd transform matrices and bookkeeping
    for cache-hit statistics.
    """

    backend_kind: Optional[str] = None
    #: ``None`` means *absent* (never captured — the warm session must
    #: re-run the scheme search); ``{}`` means *captured and empty* (a
    #: conv-free graph needs no schemes, and that is full coverage).  The
    #: distinction survives JSON (``null`` vs ``{}``) and ``apply()``.
    schemes: Optional[Dict[str, SchemeDecision]] = None
    memory_plan: Optional[MemoryPlan] = None
    winograd: List[Dict[str, Any]] = field(default_factory=list)
    cold_prepare_ms: float = 0.0

    @classmethod
    def from_session(cls, session: Session) -> "PreInferenceArtifacts":
        """Snapshot a (typically cold) session's pre-inference results."""
        base = session.export_artifacts()
        return cls(
            backend_kind=base.backend_kind,
            schemes=dict(base.schemes) if base.schemes is not None else None,
            memory_plan=base.memory_plan,
            winograd=winograd_mod.transforms_to_json(
                winograd_mod.transform_cache_entries()
            ),
            cold_prepare_ms=session.prepare_wall_ms,
        )

    def apply(self) -> SessionArtifacts:
        """Pre-seed process-global state and return per-session artifacts.

        Loads the persisted Winograd matrices into the kernel-level
        transform cache (so ``generate_transforms`` is a dict lookup, not
        rational Gaussian elimination), then hands back the session-level
        artifacts for ``Session(graph, config, artifacts=...)``.
        """
        if self.winograd:
            winograd_mod.preload_transforms(
                winograd_mod.transforms_from_json(self.winograd)
            )
        return SessionArtifacts(
            backend_kind=self.backend_kind,
            schemes=dict(self.schemes) if self.schemes is not None else None,
            memory_plan=self.memory_plan,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": CACHE_VERSION,
            "backend_kind": self.backend_kind,
            "schemes": (
                None if self.schemes is None
                else {name: d.to_json() for name, d in self.schemes.items()}
            ),
            "memory_plan": (
                self.memory_plan.to_json() if self.memory_plan is not None else None
            ),
            "winograd": self.winograd,
            "cold_prepare_ms": self.cold_prepare_ms,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "PreInferenceArtifacts":
        if data.get("version") != CACHE_VERSION:
            raise ValueError(f"cache entry version {data.get('version')!r} != {CACHE_VERSION}")
        plan = data.get("memory_plan")
        raw_schemes = data.get("schemes")
        return cls(
            backend_kind=data.get("backend_kind"),
            schemes=(
                None if raw_schemes is None
                else {
                    str(name): SchemeDecision.from_json(d)
                    for name, d in dict(raw_schemes).items()
                }
            ),
            memory_plan=MemoryPlan.from_json(plan) if plan is not None else None,
            winograd=list(data.get("winograd", [])),
            cold_prepare_ms=float(data.get("cold_prepare_ms", 0.0)),
        )


def _config_fingerprint(config: SessionConfig) -> Dict[str, Any]:
    """The SessionConfig fields that influence pre-inference decisions."""
    backend = config.backend
    sc = config.scheme_config
    return {
        "backend": (
            f"instance:{backend.forward_type}" if isinstance(backend, Backend)
            else backend
        ),
        "device": config.device.name if config.device is not None else None,
        "threads": config.threads,
        "decouple": config.decouple,
        "use_strassen": config.use_strassen,
        "auto_backend": config.auto_backend,
        "candidate_backends": list(config.candidate_backends),
        "scheme_config": [
            list(sc.winograd_candidates), sc.max_tile, sc.transform_weight,
            sc.sliding_weight, sc.gemm_efficiency_u0, sc.int8_gemm_speedup,
        ],
        "overrides": (
            sorted(config.scheme_overrides) if config.scheme_overrides else None
        ),
        "paranoid": config.paranoid,
    }


class PreInferenceCache:
    """File-backed store of :class:`PreInferenceArtifacts`, one JSON per key.

    Failure semantics (the resilience contract): a *missing* entry is a
    miss; an *unreadable* entry (truncated JSON, wrong signature, torn
    write) is also a miss but additionally counts in ``cache.corrupt``
    and is unlinked on the spot (``cache.quarantined``), so later loads
    miss cleanly instead of re-parsing the same carcass — the cache
    degrades to recompute, never errors.  An active
    :class:`~repro.faults.FaultPlan` can inject ``transient`` IO errors
    (retried by the engine), ``corrupt`` reads and ``torn`` writes at the
    ``cache.load`` / ``cache.store`` fault points.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        sanitizer: Optional[Sanitizer] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        # Resilience counters default to the process-wide registry (the
        # one the fault plan increments), so reconciliation sees them all.
        self._metrics = metrics
        self.faults = faults if faults is not None else get_fault_plan()
        self.sanitizer = sanitizer if sanitizer is not None else get_sanitizer()

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_metrics()

    # -- keying ------------------------------------------------------------
    def key(
        self,
        graph: Graph,
        config: SessionConfig,
        input_shapes: Optional[Dict[str, Sequence[int]]] = None,
    ) -> str:
        """Deterministic cache key for (graph, config[, resized shapes]).

        Includes the quantization fingerprint (every tensor's dtype plus a
        digest of the stamped scale attrs): ``graph_signature`` alone is
        dtype-blind for constants, so without this a quantized graph and
        its fp original could share a key — and a cached fp memory plan
        replayed against int8 tensors mis-sizes every weight buffer.
        """
        from ..quant import quantization_fingerprint

        h = hashlib.sha256()
        payload = {
            "cache_version": CACHE_VERSION,
            "graph": graph_signature(graph),
            "quant": quantization_fingerprint(graph),
            "config": _config_fingerprint(config),
            "input_shapes": (
                {name: list(shape) for name, shape in sorted(input_shapes.items())}
                if input_shapes else None
            ),
        }
        h.update(json.dumps(payload, separators=(",", ":"), sort_keys=True).encode())
        return h.hexdigest()

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- IO ----------------------------------------------------------------
    def load(self, key: str) -> Optional[PreInferenceArtifacts]:
        """The artifacts for ``key``, or ``None`` (missing/corrupt/stale).

        Raises:
            TransientFault: only under an active fault plan injecting a
                transient IO error (the engine retries these).
        """
        if self.faults.enabled:
            # ``transient`` raises from fire(); ``corrupt`` makes this
            # load behave as if the entry were unreadable.
            fault = self.faults.fire("cache.load", key=key)
            if fault is not None and fault.kind == "corrupt":
                self.metrics.counter("cache.corrupt").inc()
                self.metrics.counter("fallback.cache").inc()
                return None
        if self.sanitizer.enabled:
            # Entries are immutable-once-written via atomic rename; the
            # shared "fs.atomic" lockset encodes that readers and the
            # renaming writer can never observe a torn state.
            self.sanitizer.probe(self, f"entry.{key}", "r", lockset=("fs.atomic",))
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            return PreInferenceArtifacts.from_json(data)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Present but unreadable: truncated/torn/stale entry.  Purely
            # observational (outside the fault reconciliation equation —
            # an injected *torn* write was already accounted at the
            # store-side fire).  Unlink it so every later load is a clean
            # miss instead of re-parsing the same carcass: leaving it in
            # place made *each* warm process pay a parse-and-fail and
            # re-count ``cache.corrupt``, and a store that never came
            # (read-only consumers) left the corruption permanent.
            self.metrics.counter("cache.corrupt").inc()
            try:
                path.unlink()
                self.metrics.counter("cache.quarantined").inc()
            except OSError:
                pass  # raced with a healing store or no permission
            return None

    def store(self, key: str, artifacts: PreInferenceArtifacts) -> Path:
        """Atomically persist ``artifacts`` under ``key``; returns the path.

        Raises:
            TransientFault: only under an active fault plan injecting a
                transient IO error (the engine retries these).
        """
        if self.sanitizer.enabled:
            self.sanitizer.probe(self, f"entry.{key}", "w", lockset=("fs.atomic",))
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        payload = json.dumps(artifacts.to_json(), separators=(",", ":"))
        if self.faults.enabled:
            fault = self.faults.fire("cache.store", key=key)
            if fault is not None and fault.kind == "torn":
                # Simulate a crash mid-write that bypassed the atomic
                # rename: a truncated entry lands at the final path.  The
                # degradation this causes (a later load treats it as a
                # miss and recomputes) is accounted *now* — the later
                # read may happen in a different process entirely.
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(payload[: max(1, len(payload) // 2)])
                self.metrics.counter("fallback.cache").inc()
                return path
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)  # atomic on POSIX: readers see old or new
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> List[str]:
        """Keys currently present on disk."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.root.glob("*.json")) if self.root.is_dir() else []:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
