"""The concurrent serving engine: cache + pool + batcher in one front door.

``Engine`` is what a model server embeds.  On construction it builds a
pool of worker sessions over one graph, consulting the persistent
pre-inference cache so that every process after the first creates its
sessions warm (a fraction of the cold ``prepare_wall_ms``); at request
time it either checks a session out of the pool (isolation: each worker
owns its clock/arena/executions) or routes single-sample requests through
the dynamic micro-batcher.

Typical use::

    engine = Engine(graph, EngineConfig(pool_size=4))
    with engine:
        out = engine.infer({"data": x})          # thread-safe
    print(engine.stats.describe())
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.session import Session, SessionConfig
from ..faults import (
    DeadlineExceeded,
    FaultPlan,
    InjectedFault,
    TransientFault,
    get_fault_plan,
    mark_isolated,
    retry_transient,
)
from ..faults.resilience import Deadline
from ..ir.graph import Graph
from ..obs.metrics import MetricsRegistry
from ..obs.requests import RequestTracker, resolve_request_tracker
from ..obs.resources import ResourceSampler
from ..obs.tracer import Tracer, get_tracer
from ..sanitize import Sanitizer, resolve_sanitizer
from .batching import MicroBatcher
from .cache import PreInferenceArtifacts, PreInferenceCache
from .pool import SessionPool

__all__ = ["EngineConfig", "EngineStats", "Engine"]


@dataclass
class EngineConfig:
    """Serving-layer options (wraps a per-worker :class:`SessionConfig`).

    Attributes:
        session: configuration applied to every pooled session.
        pool_size: number of concurrently runnable worker sessions.
        use_cache: consult/populate the persistent pre-inference cache.
        cache_dir: cache location override (default: ``$REPRO_CACHE_DIR``
            or ``~/.cache/repro``).
        batching: coalesce requests into micro-batches instead of running
            each on its own pooled session.
        max_batch: micro-batch sample cap.
        batch_timeout_ms: how long a lone request waits for company.
        trace: a :class:`repro.obs.Tracer` receiving serving spans (cache
            hit/miss, session creation, pool checkout waits, batch
            assembly) and — unless the session config carries its own
            tracer — every worker session's pre-inference and per-op
            spans.  ``None`` falls back to the process-wide tracer.
        metrics: the :class:`repro.obs.MetricsRegistry` backing this
            engine's :class:`EngineStats`, pool and batcher counters.
            ``None`` creates a private registry per engine.
        faults: a :class:`repro.faults.FaultPlan` injected at every
            serving-layer fault point (cache load/store, pool checkout,
            batch assembly) and — unless the session config pins its own
            — into every worker session.  ``None`` falls back to the
            process-wide plan (``$REPRO_FAULTS``, default disabled).
        deadline_ms: default per-request deadline budget for
            :meth:`Engine.infer`; ``None`` means no deadline.
        retries: extra attempts for transient failures (cache IO, pool
            checkout) before escalating.
        requests: request-level observability.  A
            :class:`repro.obs.RequestTracker` (used as-is — attach a
            :class:`repro.obs.FlightRecorder` to it for postmortem
            dumps), ``True`` for a fresh tracker observing SLO
            histograms into this engine's registry, or ``None`` for the
            process-wide tracker (disabled by default, so the per-
            request cost is one attribute check).
        sanitize: a :class:`repro.sanitize.Sanitizer` (or ``True`` for a
            fresh one) spanning the whole serving stack: pool checkout
            handoffs, batcher lock discipline, cache entries and — unless
            the session config pins its own — every worker session's
            probes, so one detector sees every layer's events.
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    pool_size: int = 2
    use_cache: bool = True
    cache_dir: Optional[str] = None
    batching: bool = False
    max_batch: int = 8
    batch_timeout_ms: float = 2.0
    trace: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    faults: Optional[FaultPlan] = None
    deadline_ms: Optional[float] = None
    retries: int = 3
    sanitize: Union[bool, Sanitizer] = False
    requests: Union[bool, RequestTracker, None] = None


class EngineStats:
    """Cache and traffic stats: a thin view over the engine's metrics.

    Historically a plain dataclass of counters; now every number lives in
    a :class:`repro.obs.MetricsRegistry` (counters ``engine.cache.hits``/
    ``engine.cache.misses``/``engine.requests``, histograms
    ``engine.prepare.cold_ms``/``engine.prepare.warm_ms``) and this class
    keeps the old attribute API as read-only properties, so
    ``engine.stats.cache_hits`` and ``cli metrics``' snapshot can never
    disagree.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def cache_hits(self) -> int:
        return int(self.metrics.counter("engine.cache.hits").value)

    @property
    def cache_misses(self) -> int:
        return int(self.metrics.counter("engine.cache.misses").value)

    @property
    def cold_prepare_ms(self) -> List[float]:
        return self.metrics.histogram("engine.prepare.cold_ms").values

    @property
    def warm_prepare_ms(self) -> List[float]:
        return self.metrics.histogram("engine.prepare.warm_ms").values

    @property
    def requests(self) -> int:
        return int(self.metrics.counter("engine.requests").value)

    def record_prepare(self, hit: bool, prepare_ms: float) -> None:
        if hit:
            self.metrics.counter("engine.cache.hits").inc()
            self.metrics.histogram("engine.prepare.warm_ms").observe(prepare_ms)
        else:
            self.metrics.counter("engine.cache.misses").inc()
            self.metrics.histogram("engine.prepare.cold_ms").observe(prepare_ms)

    def record_request(self) -> None:
        self.metrics.counter("engine.requests").inc()

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def describe(self) -> str:
        cold = np.mean(self.cold_prepare_ms) if self.cold_prepare_ms else 0.0
        warm = np.mean(self.warm_prepare_ms) if self.warm_prepare_ms else 0.0
        parts = [
            f"cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate * 100:.0f}% hit rate)",
            f"prepare cold {cold:.1f} ms / warm {warm:.1f} ms",
            f"{self.requests} requests served",
        ]
        return "; ".join(parts)


class Engine:
    """A thread-safe, cache-warmed, optionally batching inference server."""

    def __init__(self, graph: Graph, config: Optional[EngineConfig] = None) -> None:
        self.graph = graph
        self.config = config or EngineConfig()
        self.tracer = (
            self.config.trace if self.config.trace is not None else get_tracer()
        )
        self.metrics = (
            self.config.metrics if self.config.metrics is not None
            else MetricsRegistry()
        )
        self.stats = EngineStats(self.metrics)
        self.faults = (
            self.config.faults if self.config.faults is not None
            else get_fault_plan()
        )
        self.sanitizer = resolve_sanitizer(self.config.sanitize, metrics=self.metrics)
        self.cache = (
            PreInferenceCache(self.config.cache_dir, faults=self.faults,
                              sanitizer=self.sanitizer)
            if self.config.use_cache else None
        )
        self._cache_key: Optional[str] = None
        # Worker sessions inherit the engine's tracer, fault plan and
        # sanitizer unless the session config pins its own, so one trace
        # shows serving + execution and one detector covers every layer.
        self._session_config = self.config.session
        if self.tracer.enabled and self._session_config.trace is None:
            self._session_config = replace(self._session_config, trace=self.tracer)
        if self.config.faults is not None and self._session_config.faults is None:
            self._session_config = replace(self._session_config, faults=self.faults)
        if self.sanitizer.enabled and self._session_config.sanitize is False:
            self._session_config = replace(
                self._session_config, sanitize=self.sanitizer
            )
        self.pool = SessionPool(
            self._create_session, self.config.pool_size,
            metrics=self.metrics, tracer=self.tracer,
            faults=self.faults, retries=self.config.retries,
            sanitizer=self.sanitizer,
        )
        self.batcher = (
            MicroBatcher(
                self._create_session,
                max_batch=self.config.max_batch,
                timeout_ms=self.config.batch_timeout_ms,
                metrics=self.metrics,
                tracer=self.tracer,
                faults=self.faults,
                sanitizer=self.sanitizer,
            )
            if self.config.batching else None
        )
        self.requests = resolve_request_tracker(self.config.requests, self.metrics)
        # Resource counter tracks (pool idle seats, in-flight requests,
        # cache hit rate) are only worth their samples when someone is
        # watching — a request tracker or an enabled tracer.
        self.sampler: Optional[ResourceSampler] = None
        if self.requests.enabled or self.tracer.enabled:
            self.sampler = ResourceSampler(
                sources={
                    "res.pool.idle": lambda: self.metrics.gauge("pool.idle").value,
                    "res.engine.inflight": lambda: self.metrics.gauge(
                        "engine.inflight"
                    ).value,
                    "res.engine.cache_hit_rate": lambda: self.stats.hit_rate,
                },
                tracer=self.tracer,
                metrics=self.metrics,
            )

    # -- session creation (the cache-warmed factory) -------------------------
    def _create_session(self) -> Session:
        """Build one worker session, warm when the cache has the artifacts.

        The first creation in a cold process is the only one paying full
        pre-inference; it immediately persists its artifacts, so the
        remaining pool workers — and every future process — come up warm.
        """
        with self.tracer.span("engine.create_session", "serving") as span:
            artifacts = None
            hit = False
            if self.cache is not None:
                if self._cache_key is None:
                    self._cache_key = self.cache.key(self.graph, self.config.session)
                with self.tracer.span("cache.lookup", "serving"):
                    cached = self._cache_io(
                        lambda: self.cache.load(self._cache_key), "cache.load"
                    )
                if cached is not None:
                    artifacts = cached.apply()
                    hit = True
                self.tracer.instant(
                    "cache.hit" if hit else "cache.miss", "serving",
                    key=self._cache_key,
                )
            start = time.perf_counter()
            session = Session(self.graph, self._session_config, artifacts=artifacts)
            prepare_ms = (time.perf_counter() - start) * 1000.0
            self.stats.record_prepare(hit, prepare_ms)
            span.set(cache_hit=hit, prepare_ms=prepare_ms)
            if self.cache is not None and not hit:
                with self.tracer.span("cache.store", "serving"):
                    self._cache_io(
                        lambda: self.cache.store(
                            self._cache_key,
                            PreInferenceArtifacts.from_session(session),
                        ),
                        "cache.store",
                    )
        return session

    def _cache_io(self, fn, label: str):
        """Run a cache operation with transient-retry, degrading on failure.

        Transient IO faults are retried with backoff; if they persist the
        engine falls back to running cacheless for this call (a miss /
        skipped store), counted in ``fallback.cache`` — the cache must
        never be able to take down session creation.
        """
        try:
            return retry_transient(
                fn,
                retries=self.config.retries,
                rng=self.faults.rng_for(label),
                label=label,
            )
        except TransientFault:
            # Like every reconciliation counter, this lands in the
            # process-wide registry (the one the fault plan itself
            # increments ``faults.injected`` in).
            from ..obs.metrics import get_metrics

            get_metrics().counter("fallback.cache").inc()
            return None

    @property
    def cache_key(self) -> Optional[str]:
        """The engine's pre-inference cache key (``None`` when uncached)."""
        return self._cache_key

    # -- inference ----------------------------------------------------------
    def infer(
        self,
        feeds: Dict[str, np.ndarray],
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, np.ndarray]:
        """Run one inference; safe to call from many threads at once.

        ``deadline_ms`` (default: ``EngineConfig.deadline_ms``) bounds the
        whole request — pool checkout, batch wait and execution all spend
        from one budget — raising :class:`~repro.faults.DeadlineExceeded`
        instead of hanging.

        Raises:
            DeadlineExceeded: the request's deadline budget ran out.
            PoolTimeout: no pool worker freed up in time.
            InjectedFault: an injected fault exhausted every resilience
                path; this request failed alone (``faults.isolated``) —
                the engine itself keeps serving.
        """
        self.stats.record_request()
        if deadline_ms is None:
            deadline_ms = self.config.deadline_ms
        deadline = Deadline.from_ms(deadline_ms)
        tracker = self.requests
        timeline = None
        if tracker.enabled:
            timeline = tracker.start(
                tracker.next_id(),
                "infer",
                batched=self.batcher is not None,
                deadline_ms=deadline_ms,
            )
        if self.sampler is not None:
            self.metrics.gauge("engine.inflight").add(1)
        try:
            with self.tracer.span("engine.infer", "serving",
                                  batched=self.batcher is not None):
                if self.batcher is not None:
                    future = self.batcher.submit(feeds, timeline=timeline)
                    if deadline is None:
                        out = future.result()
                    else:
                        try:
                            out = future.result(timeout=deadline.remaining_s())
                        except (TimeoutError, _FuturesTimeout):
                            raise DeadlineExceeded(
                                deadline.budget_ms, deadline.elapsed_ms(),
                                "batch.wait",
                            ) from None
                else:
                    with self.pool.acquire(deadline=deadline) as session:
                        if timeline is not None:
                            timeline.admitted(path="pool")
                        out = session.run(feeds, deadline=deadline)
            if timeline is not None:
                timeline.finish("ok")
            return out
        except DeadlineExceeded as exc:
            if timeline is not None:
                timeline.event(
                    "deadline_exceeded", where=exc.where,
                    budget_ms=exc.budget_ms, elapsed_ms=exc.elapsed_ms,
                )
                timeline.finish("deadline")
                tracker.dump(
                    "DeadlineExceeded", timeline.request_id, detail=exc.where
                )
            raise
        except InjectedFault as exc:
            # The fault beat every resilience layer: this one request
            # fails alone, counted exactly once across the layers it
            # crossed (mark_isolated deduplicates via the exception).
            mark_isolated(exc)
            if timeline is not None:
                timeline.event(
                    "fault_isolated",
                    kind=type(exc).__name__,
                    site=str(getattr(exc, "site", "")),
                )
                timeline.finish("fault")
                tracker.dump(
                    type(exc).__name__, timeline.request_id,
                    detail=str(getattr(exc, "site", "")),
                )
            raise
        except Exception:
            if timeline is not None:
                timeline.finish("error")
            raise
        finally:
            if self.sampler is not None:
                self.metrics.gauge("engine.inflight").add(-1)
                self.sampler.sample()

    def infer_many(
        self,
        requests: Sequence[Dict[str, np.ndarray]],
        clients: int = 4,
    ) -> List[Dict[str, np.ndarray]]:
        """Run ``requests`` from ``clients`` concurrent threads, in order.

        Convenience driver for load tests and ``cli serve``: results are
        returned in request order regardless of completion order.
        """
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        with ThreadPoolExecutor(
            max_workers=clients, thread_name_prefix="serve-client"
        ) as pool:
            return list(pool.map(self.infer, requests))

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop the batcher thread (pooled sessions need no teardown).

        The batcher object — and its :class:`~repro.serving.BatchStats` —
        stays accessible for post-run reporting; only new submissions are
        rejected.
        """
        if self.batcher is not None:
            self.batcher.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
