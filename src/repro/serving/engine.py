"""The concurrent serving engine: cache + pool + batcher in one front door.

``Engine`` is what a model server embeds.  On construction it builds a
pool of worker sessions over one graph, consulting the persistent
pre-inference cache so that every process after the first creates its
sessions warm (a fraction of the cold ``prepare_wall_ms``); at request
time it either checks a session out of the pool (isolation: each worker
owns its clock/arena/executions) or routes single-sample requests through
the dynamic micro-batcher.

Typical use::

    engine = Engine(graph, EngineConfig(pool_size=4))
    with engine:
        out = engine.infer({"data": x})          # thread-safe
    print(engine.stats.describe())
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.session import Session, SessionConfig
from ..ir.graph import Graph
from .batching import MicroBatcher
from .cache import PreInferenceArtifacts, PreInferenceCache
from .pool import SessionPool

__all__ = ["EngineConfig", "EngineStats", "Engine"]


@dataclass
class EngineConfig:
    """Serving-layer options (wraps a per-worker :class:`SessionConfig`).

    Attributes:
        session: configuration applied to every pooled session.
        pool_size: number of concurrently runnable worker sessions.
        use_cache: consult/populate the persistent pre-inference cache.
        cache_dir: cache location override (default: ``$REPRO_CACHE_DIR``
            or ``~/.cache/repro``).
        batching: coalesce requests into micro-batches instead of running
            each on its own pooled session.
        max_batch: micro-batch sample cap.
        batch_timeout_ms: how long a lone request waits for company.
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    pool_size: int = 2
    use_cache: bool = True
    cache_dir: Optional[str] = None
    batching: bool = False
    max_batch: int = 8
    batch_timeout_ms: float = 2.0


@dataclass
class EngineStats:
    """Cache and traffic counters for one engine."""

    cache_hits: int = 0
    cache_misses: int = 0
    cold_prepare_ms: List[float] = field(default_factory=list)
    warm_prepare_ms: List[float] = field(default_factory=list)
    requests: int = 0

    def record_prepare(self, hit: bool, prepare_ms: float) -> None:
        if hit:
            self.cache_hits += 1
            self.warm_prepare_ms.append(prepare_ms)
        else:
            self.cache_misses += 1
            self.cold_prepare_ms.append(prepare_ms)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def describe(self) -> str:
        cold = np.mean(self.cold_prepare_ms) if self.cold_prepare_ms else 0.0
        warm = np.mean(self.warm_prepare_ms) if self.warm_prepare_ms else 0.0
        parts = [
            f"cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate * 100:.0f}% hit rate)",
            f"prepare cold {cold:.1f} ms / warm {warm:.1f} ms",
            f"{self.requests} requests served",
        ]
        return "; ".join(parts)


class Engine:
    """A thread-safe, cache-warmed, optionally batching inference server."""

    def __init__(self, graph: Graph, config: Optional[EngineConfig] = None) -> None:
        self.graph = graph
        self.config = config or EngineConfig()
        self.stats = EngineStats()
        self.cache = (
            PreInferenceCache(self.config.cache_dir)
            if self.config.use_cache else None
        )
        self._cache_key: Optional[str] = None
        self._count_lock = threading.Lock()
        self.pool = SessionPool(self._create_session, self.config.pool_size)
        self.batcher = (
            MicroBatcher(
                self._create_session,
                max_batch=self.config.max_batch,
                timeout_ms=self.config.batch_timeout_ms,
            )
            if self.config.batching else None
        )

    # -- session creation (the cache-warmed factory) -------------------------
    def _create_session(self) -> Session:
        """Build one worker session, warm when the cache has the artifacts.

        The first creation in a cold process is the only one paying full
        pre-inference; it immediately persists its artifacts, so the
        remaining pool workers — and every future process — come up warm.
        """
        artifacts = None
        hit = False
        if self.cache is not None:
            if self._cache_key is None:
                self._cache_key = self.cache.key(self.graph, self.config.session)
            cached = self.cache.load(self._cache_key)
            if cached is not None:
                artifacts = cached.apply()
                hit = True
        start = time.perf_counter()
        session = Session(self.graph, self.config.session, artifacts=artifacts)
        prepare_ms = (time.perf_counter() - start) * 1000.0
        self.stats.record_prepare(hit, prepare_ms)
        if self.cache is not None and not hit:
            self.cache.store(
                self._cache_key, PreInferenceArtifacts.from_session(session)
            )
        return session

    @property
    def cache_key(self) -> Optional[str]:
        """The engine's pre-inference cache key (``None`` when uncached)."""
        return self._cache_key

    # -- inference ----------------------------------------------------------
    def infer(self, feeds: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one inference; safe to call from many threads at once."""
        with self._count_lock:
            self.stats.requests += 1
        if self.batcher is not None:
            return self.batcher.infer(feeds)
        with self.pool.acquire() as session:
            return session.run(feeds)

    def infer_many(
        self,
        requests: Sequence[Dict[str, np.ndarray]],
        clients: int = 4,
    ) -> List[Dict[str, np.ndarray]]:
        """Run ``requests`` from ``clients`` concurrent threads, in order.

        Convenience driver for load tests and ``cli serve``: results are
        returned in request order regardless of completion order.
        """
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        with ThreadPoolExecutor(max_workers=clients) as pool:
            return list(pool.map(self.infer, requests))

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop the batcher thread (pooled sessions need no teardown).

        The batcher object — and its :class:`~repro.serving.BatchStats` —
        stays accessible for post-run reporting; only new submissions are
        rejected.
        """
        if self.batcher is not None:
            self.batcher.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
