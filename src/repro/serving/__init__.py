"""Concurrent serving layer: pre-inference cache, session pool, batching.

The ROADMAP's production-scale goal meets the paper's semi-automated
search here: everything pre-inference computes (Section 3.2) is persisted
and replayed (:mod:`~repro.serving.cache`), N clients run concurrently on
pooled per-worker sessions (:mod:`~repro.serving.pool`), and
single-sample requests coalesce into shape-bucketed micro-batches
(:mod:`~repro.serving.batching`).  :class:`~repro.serving.Engine` is the
front door tying the three together.
"""

from .batching import BatchStats, MicroBatcher
from .cache import (
    CACHE_ENV_VAR,
    CACHE_VERSION,
    PreInferenceArtifacts,
    PreInferenceCache,
    default_cache_dir,
)
from .engine import Engine, EngineConfig, EngineStats
from .pool import SessionPool

__all__ = [
    "BatchStats",
    "MicroBatcher",
    "CACHE_ENV_VAR",
    "CACHE_VERSION",
    "PreInferenceArtifacts",
    "PreInferenceCache",
    "default_cache_dir",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "SessionPool",
]
