"""Dynamic micro-batching: coalesce single-sample requests into batches.

Kernels amortize per-op overhead over the batch dimension (one Winograd
tile GEMM over ``N * tiles`` instead of ``N`` separate GEMMs), so serving
throughput rises sharply when concurrent single-sample requests are run
as one batched inference — the trick MNN-LLM and every production server
lean on.

The :class:`MicroBatcher` keeps a small pending queue.  Requests are
bucketed by their *per-sample* input signature (names, trailing shapes,
dtypes); a dispatcher thread waits up to ``timeout_ms`` for the bucket to
fill to ``max_batch``, stacks the feeds along axis 0, runs one pooled
batch session — resized to the micro-batch size via the existing
``Session.resize`` machinery, which re-runs pre-inference once per new
batch size — and splits the outputs back per request.

Semantics: every input of a request must share one leading (batch)
dimension, and the graph must treat axis 0 as the batch axis (true of the
whole model zoo).  Requests with mismatched signatures never share a
batch; a failing batch fails exactly the requests in it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.session import Session
from ..faults import FaultPlan, get_fault_plan, mark_isolated
from ..ir.graph import GraphError
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.tracer import Tracer, get_tracer
from ..sanitize import Sanitizer, get_sanitizer

__all__ = ["BatchStats", "MicroBatcher"]


class BatchStats:
    """Coalescing counters: a thin view over a metrics registry.

    Backed by ``batch.requests`` / ``batch.batches`` /
    ``batch.batched_requests`` / ``batch.resizes`` counters, the
    ``batch.max_seen`` gauge and the ``batch.size`` histogram, so the
    batcher's self-description and an exported metrics snapshot are the
    same numbers.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def requests(self) -> int:
        return int(self.metrics.counter("batch.requests").value)

    @property
    def batches(self) -> int:
        return int(self.metrics.counter("batch.batches").value)

    @property
    def batched_requests(self) -> int:
        """Requests that shared a batch with at least one other."""
        return int(self.metrics.counter("batch.batched_requests").value)

    @property
    def resizes(self) -> int:
        return int(self.metrics.counter("batch.resizes").value)

    @property
    def max_batch_seen(self) -> int:
        return int(self.metrics.gauge("batch.max_seen").value)

    def record_batch(self, n_requests: int, total_samples: int) -> None:
        self.metrics.counter("batch.requests").inc(n_requests)
        self.metrics.counter("batch.batches").inc()
        if n_requests > 1:
            self.metrics.counter("batch.batched_requests").inc(n_requests)
        self.metrics.gauge("batch.max_seen").track_max(total_samples)
        self.metrics.histogram("batch.size").observe(total_samples)

    def record_resize(self) -> None:
        self.metrics.counter("batch.resizes").inc()

    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


@dataclass
class _Pending:
    feeds: Dict[str, np.ndarray]
    batch_dim: int
    #: Request timeline (repro.obs.requests.RequestTimeline) riding along
    #: so the dispatcher can stamp admission when the batch assembles.
    timeline: Optional[object] = None
    future: "Future[Dict[str, np.ndarray]]" = field(default_factory=Future)


def _signature(feeds: Dict[str, np.ndarray]) -> Tuple:
    """Per-sample bucket key: input names, trailing shapes and dtypes."""
    return tuple(
        (name, tuple(feeds[name].shape[1:]), str(feeds[name].dtype))
        for name in sorted(feeds)
    )


class MicroBatcher:
    """Coalesces concurrent requests into shape-bucketed micro-batches."""

    def __init__(
        self,
        session_factory: Callable[[], Session],
        max_batch: int = 8,
        timeout_ms: float = 2.0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultPlan] = None,
        sanitizer: Optional[Sanitizer] = None,
    ) -> None:
        """Args:
            session_factory: builds a batch-execution session at the
                graph's native shapes (the engine passes its cache-warmed
                factory); one such session is created lazily per shape
                bucket and resized as micro-batch sizes change.
            max_batch: dispatch as soon as this many samples are pending.
            timeout_ms: how long the first request in a bucket waits for
                company before running alone.
            metrics: registry backing :class:`BatchStats` (the engine
                passes its own so all serving stats share one snapshot).
            tracer: receives batch assembly/run spans on the dispatcher
                thread; defaults to the process-wide tracer.
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._factory = session_factory
        self.max_batch = max_batch
        self.timeout_ms = timeout_ms
        self.tracer = tracer if tracer is not None else get_tracer()
        self.faults = faults if faults is not None else get_fault_plan()
        self.sanitizer = sanitizer if sanitizer is not None else get_sanitizer()
        self.stats = BatchStats(metrics)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: Dict[Tuple, List[_Pending]] = {}
        #: Fill deadline per bucket, fixed at its *first* request's
        #: arrival — the dispatcher picks the earliest-deadline bucket,
        #: so no bucket's wait restarts and none starves behind a busy
        #: sibling.  Guarded by ``_lock``.
        self._deadlines: Dict[Tuple, float] = {}
        self._sessions: Dict[Tuple, Session] = {}
        # Largest memory plan any bucket session has built: offered to
        # sibling sessions before resize so adjacent shape buckets adapt
        # one shared arena layout instead of re-planning (dispatcher-
        # thread-only, like the sessions themselves).
        self._donor_plan = None
        self._running = True
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-microbatcher", daemon=True
        )
        self._thread.start()

    # -- client side --------------------------------------------------------
    def submit(
        self, feeds: Dict[str, np.ndarray], timeline: Optional[object] = None
    ) -> "Future[Dict[str, np.ndarray]]":
        """Enqueue one request; the future resolves to its output dict.

        ``timeline`` (a :class:`repro.obs.requests.RequestTimeline`)
        propagates the caller's request identity into batch assembly:
        the dispatcher stamps admission — with the batch composition —
        the moment the request's micro-batch dispatches.
        """
        if not feeds:
            raise GraphError("empty feed dict")
        dims = {int(np.asarray(v).shape[0]) if np.asarray(v).ndim else 0
                for v in feeds.values()}
        if len(dims) != 1 or 0 in dims:
            raise GraphError(
                f"batching requires every input to share one leading batch "
                f"dimension; got leading dims {sorted(dims)}"
            )
        item = _Pending(feeds=dict(feeds), batch_dim=dims.pop(), timeline=timeline)
        with self.sanitizer.locked(self._cond, "batcher.cond"):
            if not self._running:
                raise RuntimeError("MicroBatcher is closed")
            if self.sanitizer.enabled:
                self.sanitizer.probe(self, "pending", "w")
            sig = _signature(feeds)
            bucket = self._pending.setdefault(sig, [])
            if not bucket:
                # First request of a (re)opened bucket starts its fill
                # clock; later arrivals never extend it.
                self._deadlines[sig] = (
                    time.monotonic() + self.timeout_ms / 1000.0
                )
            bucket.append(item)
            self._cond.notify_all()
        return item.future

    def infer(self, feeds: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(feeds).result()

    def close(self) -> None:
        """Stop the dispatcher after draining already-queued requests."""
        with self.sanitizer.locked(self._cond, "batcher.cond"):
            self._running = False
            self._cond.notify_all()
        self._thread.join()
        if self.sanitizer.enabled:
            # join: everything the dispatcher did happens-before us.
            self.sanitizer.hb_recv(("batcher.dispatcher", id(self)))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatcher ---------------------------------------------------------
    def _take_bucket(self) -> Optional[Tuple[Tuple, List[_Pending]]]:
        """Pop a dispatchable bucket, waiting for batches to fill.

        Called with the lock held.  Returns ``None`` when closed and
        drained.

        Earliest-deadline-first over the fill deadlines recorded at each
        bucket's first-request arrival: a bucket created while the
        dispatcher waited on (or ran) another one keeps its original
        deadline, so a lone request waits at most ``timeout_ms`` from
        *arrival* and a busy bucket cannot starve its siblings.  Any
        bucket opened during the wait has a strictly later deadline, so
        the chosen bucket stays the earliest until it dispatches.
        """
        while True:
            if not self._pending:
                if not self._running:
                    return None
                self._cond.wait()
                continue
            if self.sanitizer.enabled:
                self.sanitizer.probe(self, "pending", "r")
            sig = min(self._pending, key=lambda s: self._deadlines.get(s, 0.0))
            if self._running and self.timeout_ms > 0:
                deadline = self._deadlines.get(sig, time.monotonic())
                while (
                    sum(i.batch_dim for i in self._pending.get(sig, ()))
                    < self.max_batch
                    and self._running
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
            if self.sanitizer.enabled:
                self.sanitizer.probe(self, "pending", "w")
            items = self._pending.pop(sig, [])
            self._deadlines.pop(sig, None)
            if not items:
                continue
            # Cap at max_batch samples; the rest go back to the queue.
            taken: List[_Pending] = []
            total = 0
            while items and total + items[0].batch_dim <= self.max_batch:
                item = items.pop(0)
                taken.append(item)
                total += item.batch_dim
            if not taken:  # one oversized request: run it alone
                taken.append(items.pop(0))
            if items:
                # Leftovers reopen the bucket with a fresh deadline —
                # behind every other waiting bucket, never ahead (an
                # already-expired deadline must not keep winning).
                self._pending.setdefault(sig, []).extend(items)
                self._deadlines[sig] = (
                    time.monotonic() + self.timeout_ms / 1000.0
                )
            return sig, taken

    def _dispatch_loop(self) -> None:
        while True:
            with self.sanitizer.locked(self._cond, "batcher.cond"):
                bucket = self._take_bucket()
            if bucket is None:
                if self.sanitizer.enabled:
                    self.sanitizer.hb_send(("batcher.dispatcher", id(self)))
                return
            sig, items = bucket
            try:
                results = self._run_batch(sig, items)
            except Exception as exc:
                self._degrade(sig, items, exc)
                continue
            except BaseException as exc:
                # KeyboardInterrupt / SystemExit are not per-request
                # failures: unblock waiters with a plain error, then let
                # the interrupt take down the dispatcher thread itself.
                err = RuntimeError(
                    f"batch dispatcher interrupted by {type(exc).__name__} "
                    f"(bucket {sig!r}, {len(items)} requests in flight)"
                )
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(err)
                raise
            for item, result in zip(items, results):
                item.future.set_result(result)

    def _degrade(self, sig: Tuple, items: List[_Pending], exc: Exception) -> None:
        """Graceful degradation: bisect a failed batch and retry the halves.

        A poison request thereby fails alone (its future gets the real
        exception, annotated with the bucket and cohort size) while its
        batch-mates still get answers.  Each non-terminal retry counts in
        ``retry.attempts``; a terminal single-request failure of an
        injected fault counts once in ``faults.isolated``.
        """
        try:
            exc.batch_bucket = sig
            exc.batch_members = len(items)
        except AttributeError:  # exceptions with __slots__
            pass
        if len(items) == 1:
            mark_isolated(exc)
            if not items[0].future.done():
                items[0].future.set_exception(exc)
            return
        get_metrics().counter("retry.attempts").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "batch.bisect", "serving", requests=len(items), error=str(exc)
            )
        mid = (len(items) + 1) // 2
        for half in (items[:mid], items[mid:]):
            try:
                results = self._run_batch(sig, half)
            except Exception as sub:
                self._degrade(sig, half, sub)
            else:
                for item, result in zip(half, results):
                    item.future.set_result(result)

    def _harvest_donor(self, session: Session) -> None:
        """Keep the largest plan any bucket session built as the donor."""
        plan = session.memory_plan
        if plan is None:
            return
        if self._donor_plan is None or plan.arena_bytes > self._donor_plan.arena_bytes:
            self._donor_plan = plan

    def _run_batch(
        self, sig: Tuple, items: List[_Pending]
    ) -> List[Dict[str, np.ndarray]]:
        tracer = self.tracer
        total = sum(item.batch_dim for item in items)
        with tracer.span("batch.run", "serving",
                         requests=len(items), samples=total) as batch_span:
            if self.sanitizer.enabled:
                # No lockset on purpose: bucket sessions are dispatcher-
                # owned, so any second thread here is a real race.
                self.sanitizer.probe(self, "sessions", "w")
            session = self._sessions.get(sig)
            if session is None:
                # Bucket sessions are owned by the dispatcher thread; no
                # other thread ever touches them.
                session = self._sessions[sig] = self._factory()  # sanitize: single-thread
                self._harvest_donor(session)
            with tracer.span("batch.assemble", "serving"):
                if self.faults.enabled:
                    self.faults.fire(
                        "batch.assemble", requests=len(items), samples=total
                    )
                feeds = {
                    name: np.concatenate(
                        [item.feeds[name] for item in items], axis=0
                    )
                    for name in items[0].feeds
                }
            for item in items:
                if item.timeline is not None:
                    item.timeline.admitted(requests=len(items), samples=total)
            # Resize the bucket session once per new micro-batch size; the
            # pre-inference rerun is amortized across every later batch of
            # that size.
            current = {
                name: session.graph.desc(name).shape for name in session.graph.inputs
            }
            wanted = {name: tuple(arr.shape) for name, arr in feeds.items()}
            if current != wanted:
                session.offer_plan_donor(self._donor_plan)
                with tracer.span("batch.resize", "serving"):
                    session.resize(wanted)
                self.stats.record_resize()
                self._harvest_donor(session)
                batch_span.set(resized=True)
            outputs = session.run(feeds)
            self.stats.record_batch(len(items), total)
            # Split along axis 0 by each request's batch dim.
            with tracer.span("batch.split", "serving"):
                results: List[Dict[str, np.ndarray]] = []
                start = 0
                for item in items:
                    stop = start + item.batch_dim
                    results.append(
                        {name: arr[start:stop] for name, arr in outputs.items()}
                    )
                    start = stop
        return results
