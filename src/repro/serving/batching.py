"""Dynamic micro-batching: coalesce single-sample requests into batches.

Kernels amortize per-op overhead over the batch dimension (one Winograd
tile GEMM over ``N * tiles`` instead of ``N`` separate GEMMs), so serving
throughput rises sharply when concurrent single-sample requests are run
as one batched inference — the trick MNN-LLM and every production server
lean on.

The :class:`MicroBatcher` keeps a small pending queue.  Requests are
bucketed by their *per-sample* input signature (names, trailing shapes,
dtypes); a dispatcher thread waits up to ``timeout_ms`` for the bucket to
fill to ``max_batch``, stacks the feeds along axis 0, runs one pooled
batch session — resized to the micro-batch size via the existing
``Session.resize`` machinery, which re-runs pre-inference once per new
batch size — and splits the outputs back per request.

Semantics: every input of a request must share one leading (batch)
dimension, and the graph must treat axis 0 as the batch axis (true of the
whole model zoo).  Requests with mismatched signatures never share a
batch; a failing batch fails exactly the requests in it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.session import Session
from ..ir.graph import GraphError

__all__ = ["BatchStats", "MicroBatcher"]


@dataclass
class BatchStats:
    """Counters describing how well coalescing is working."""

    requests: int = 0
    batches: int = 0
    batched_requests: int = 0  # requests that shared a batch with another
    resizes: int = 0
    max_batch_seen: int = 0

    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


@dataclass
class _Pending:
    feeds: Dict[str, np.ndarray]
    batch_dim: int
    future: "Future[Dict[str, np.ndarray]]" = field(default_factory=Future)


def _signature(feeds: Dict[str, np.ndarray]) -> Tuple:
    """Per-sample bucket key: input names, trailing shapes and dtypes."""
    return tuple(
        (name, tuple(feeds[name].shape[1:]), str(feeds[name].dtype))
        for name in sorted(feeds)
    )


class MicroBatcher:
    """Coalesces concurrent requests into shape-bucketed micro-batches."""

    def __init__(
        self,
        session_factory: Callable[[], Session],
        max_batch: int = 8,
        timeout_ms: float = 2.0,
    ) -> None:
        """Args:
            session_factory: builds a batch-execution session at the
                graph's native shapes (the engine passes its cache-warmed
                factory); one such session is created lazily per shape
                bucket and resized as micro-batch sizes change.
            max_batch: dispatch as soon as this many samples are pending.
            timeout_ms: how long the first request in a bucket waits for
                company before running alone.
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._factory = session_factory
        self.max_batch = max_batch
        self.timeout_ms = timeout_ms
        self.stats = BatchStats()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: Dict[Tuple, List[_Pending]] = {}
        self._sessions: Dict[Tuple, Session] = {}
        self._running = True
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-microbatcher", daemon=True
        )
        self._thread.start()

    # -- client side --------------------------------------------------------
    def submit(self, feeds: Dict[str, np.ndarray]) -> "Future[Dict[str, np.ndarray]]":
        """Enqueue one request; the future resolves to its output dict."""
        if not feeds:
            raise GraphError("empty feed dict")
        dims = {int(np.asarray(v).shape[0]) if np.asarray(v).ndim else 0
                for v in feeds.values()}
        if len(dims) != 1 or 0 in dims:
            raise GraphError(
                f"batching requires every input to share one leading batch "
                f"dimension; got leading dims {sorted(dims)}"
            )
        item = _Pending(feeds=dict(feeds), batch_dim=dims.pop())
        with self._cond:
            if not self._running:
                raise RuntimeError("MicroBatcher is closed")
            self._pending.setdefault(_signature(feeds), []).append(item)
            self._cond.notify_all()
        return item.future

    def infer(self, feeds: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(feeds).result()

    def close(self) -> None:
        """Stop the dispatcher after draining already-queued requests."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatcher ---------------------------------------------------------
    def _take_bucket(self) -> Optional[Tuple[Tuple, List[_Pending]]]:
        """Pop a dispatchable bucket, waiting for batches to fill.

        Called with the lock held.  Returns ``None`` when closed and
        drained.
        """
        while True:
            if not self._pending:
                if not self._running:
                    return None
                self._cond.wait()
                continue
            sig = next(iter(self._pending))
            if self._running and self.timeout_ms > 0:
                deadline = time.monotonic() + self.timeout_ms / 1000.0
                while (
                    sum(i.batch_dim for i in self._pending.get(sig, ()))
                    < self.max_batch
                    and self._running
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
            items = self._pending.pop(sig, [])
            if not items:
                continue
            # Cap at max_batch samples; the rest go back to the queue.
            taken: List[_Pending] = []
            total = 0
            while items and total + items[0].batch_dim <= self.max_batch:
                item = items.pop(0)
                taken.append(item)
                total += item.batch_dim
            if not taken:  # one oversized request: run it alone
                taken.append(items.pop(0))
            if items:
                self._pending.setdefault(sig, []).extend(items)
            return sig, taken

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                bucket = self._take_bucket()
            if bucket is None:
                return
            sig, items = bucket
            try:
                results = self._run_batch(sig, items)
            except BaseException as exc:
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            for item, result in zip(items, results):
                item.future.set_result(result)

    def _run_batch(
        self, sig: Tuple, items: List[_Pending]
    ) -> List[Dict[str, np.ndarray]]:
        session = self._sessions.get(sig)
        if session is None:
            session = self._sessions[sig] = self._factory()
        total = sum(item.batch_dim for item in items)
        feeds = {
            name: np.concatenate([item.feeds[name] for item in items], axis=0)
            for name in items[0].feeds
        }
        # Resize the bucket session once per new micro-batch size; the
        # pre-inference rerun is amortized across every later batch of
        # that size.
        current = {
            name: session.graph.desc(name).shape for name in session.graph.inputs
        }
        wanted = {name: tuple(arr.shape) for name, arr in feeds.items()}
        if current != wanted:
            session.resize(wanted)
            self.stats.resizes += 1
        outputs = session.run(feeds)
        self.stats.requests += len(items)
        self.stats.batches += 1
        if len(items) > 1:
            self.stats.batched_requests += len(items)
        self.stats.max_batch_seen = max(self.stats.max_batch_seen, total)
        # Split along axis 0 by each request's batch dim.
        results: List[Dict[str, np.ndarray]] = []
        start = 0
        for item in items:
            stop = start + item.batch_dim
            results.append({name: arr[start:stop] for name, arr in outputs.items()})
            start = stop
        return results
