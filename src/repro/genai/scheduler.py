"""Continuous batching: sequences join and leave at token boundaries.

Classic serving batches whole *requests* (``repro.serving.batching``
coalesces single-shot inferences).  Generation makes that wasteful: a
request that wants 4 tokens would ride along for a neighbour's 64.  The
continuous scheduler instead re-forms the batch **every decode step** —

* **admission** happens whenever the running set has room *and* the KV
  allocator can stake the sequence a slab (admission control is memory
  control; an OOM just leaves the request queued);
* each step, live sequences are grouped by KV-capacity bucket and
  advanced one token through the matching prepared decode session;
* a sequence that hits its token budget or a stop token **leaves
  immediately**, its pages return (or retire for lazy eviction), and a
  queued request takes the seat at the very next boundary.

Every join/leave is a trace instant (``genai.batch_join`` /
``genai.batch_leave``) and every step nests under ``genai.decode_step``,
so a waterfall of a storm shows the batch breathing.

Determinism: the per-row decode kernels make each sequence's logits
independent of its batch neighbours, and sampling draws only from the
request's own seeded RNG — so scheduling order affects *throughput*,
never *output*.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..faults.errors import ResilienceError
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.requests import RequestTracker
from ..obs.resources import ResourceSampler
from ..obs.tracer import Tracer, get_tracer
from ..sanitize import Sanitizer, get_sanitizer
from .decode import DecodeRunner
from .kvcache import KVCacheAllocator, KVCacheOOM, KVCacheUseAfterFree, KVSlab
from .prefill import PrefillRunner
from .prefix import PrefixCache
from .sampling import Sampler, SamplingParams

__all__ = ["GenRequest", "GenResult", "ContinuousBatchScheduler"]


@dataclass(frozen=True)
class GenRequest:
    """One generation request: a prompt and its sampling contract."""

    request_id: str
    prompt: Sequence[int]
    params: SamplingParams = field(default_factory=SamplingParams)


@dataclass
class GenResult:
    """What a request got back.

    ``finish_reason`` is ``"length"`` (budget spent), ``"stop"`` (stop
    token emitted), or ``"error"`` (failed; ``error`` holds the message
    and ``tokens`` whatever was produced before the failure).
    """

    request_id: str
    prompt: List[int]
    tokens: List[int]
    finish_reason: str
    steps: int = 0
    error: Optional[str] = None


class _Sequence:
    """A running request's mutable state."""

    __slots__ = ("request", "sampler", "slab", "tokens", "budget", "steps", "done_reason")

    def __init__(self, request: GenRequest, sampler: Sampler, slab: KVSlab, budget: int):
        self.request = request
        self.sampler = sampler
        self.slab = slab
        self.tokens: List[int] = []
        self.budget = budget
        self.steps = 0
        self.done_reason: Optional[str] = None

    def take(self, token: int) -> None:
        self.tokens.append(token)
        if self.sampler.is_stop(token):
            self.done_reason = "stop"
        elif len(self.tokens) >= self.budget:
            self.done_reason = "length"


class ContinuousBatchScheduler:
    """The token-boundary loop tying allocator, prefill and decode together."""

    def __init__(
        self,
        prefill: PrefillRunner,
        decode: DecodeRunner,
        allocator: KVCacheAllocator,
        max_batch: int,
        max_seq: int,
        retain_kv: bool = True,
        max_preemptions: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        sanitizer: Optional[Sanitizer] = None,
        prefix_cache: Optional[PrefixCache] = None,
        requests: Optional[RequestTracker] = None,
        sampler: Optional[ResourceSampler] = None,
    ) -> None:
        self.prefill = prefill
        self.decode = decode
        self.allocator = allocator
        self.max_batch = max_batch
        self.max_seq = max_seq
        self.retain_kv = retain_kv
        self.max_preemptions = max_preemptions
        #: When set, finished sequences register their retired slabs by
        #: token path and admission serves matching prompt prefixes from
        #: them copy-on-write instead of re-prefilling (requires
        #: ``retain_kv`` for entries to outlive their sequence).
        self.prefix_cache = prefix_cache
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.sanitizer = sanitizer if sanitizer is not None else get_sanitizer()
        #: Request-timeline tracker; ``None``/disabled costs one check
        #: per stamp site.  Timelines live in ``_timelines`` only for
        #: the duration of one ``run()`` (the loop is single-threaded).
        self.requests = requests
        self.sampler = sampler
        self._timelines: Dict[str, object] = {}

    def _tl(self, request_id: str):
        """The request's live timeline, or ``None`` when not tracking."""
        return self._timelines.get(request_id)

    # -- lifecycle helpers ---------------------------------------------------
    def _fail(self, results: Dict[str, GenResult], request: GenRequest,
              message: str, tokens: Optional[List[int]] = None, steps: int = 0,
              trigger: Optional[str] = None) -> None:
        results[request.request_id] = GenResult(
            request.request_id, list(request.prompt), tokens or [],
            "error", steps=steps, error=message,
        )
        self.metrics.counter("genai.request_errors").inc()
        timeline = self._tl(request.request_id)
        if timeline is not None:
            timeline.event("error", message=message)
            timeline.finish("error")
            if trigger is not None:
                # The "page the on-call" failures (KV OOM, exhausted
                # preemption, prefill faults) flush the flight recorder.
                self.requests.dump(trigger, request.request_id, detail=message)

    def _retire(self, results: Dict[str, GenResult], seq: _Sequence) -> None:
        self.allocator.release(seq.slab, evictable=self.retain_kv)
        if self.prefix_cache is not None and self.retain_kv:
            # The retired slab's rows cover prompt + generated tokens;
            # register the written ones so later prompts sharing the
            # prefix can alias them copy-on-write.
            path = list(seq.request.prompt) + seq.tokens
            self.prefix_cache.insert(path[: seq.slab.length], seq.slab)
        self.tracer.instant(
            "genai.batch_leave", "genai",
            request=seq.request.request_id, reason=seq.done_reason,
        )
        timeline = self._tl(seq.request.request_id)
        if timeline is not None:
            timeline.finish(seq.done_reason or "length", steps=seq.steps)
        results[seq.request.request_id] = GenResult(
            seq.request.request_id, list(seq.request.prompt), seq.tokens,
            seq.done_reason or "length", steps=seq.steps,
        )
        self.metrics.counter("genai.requests").inc()

    def _evictions(self) -> float:
        return self.metrics.value("kvcache.evictions")

    def _admit(self, request: GenRequest, batch_size: int) -> Optional[_Sequence]:
        """Stake the request a slab and prefill it; None when memory says wait."""
        prompt = list(request.prompt)
        timeline = self._tl(request.request_id)
        if self.prefix_cache is not None:
            seq = self._admit_with_prefix(request, prompt, batch_size)
            if seq is not None:
                return seq
        evictions_before = self._evictions() if timeline is not None else 0
        slab = self.allocator.alloc(request.request_id, len(prompt) + 1)
        self.tracer.instant(
            "genai.batch_join", "genai",
            request=request.request_id, prompt_tokens=len(prompt), batch=batch_size,
        )
        if timeline is not None:
            evicted = self._evictions() - evictions_before
            if evicted:
                timeline.event("kv_eviction", evictions=int(evicted), at="alloc")
            timeline.admitted(batch=batch_size, prompt_tokens=len(prompt))
        budget = min(request.params.max_tokens, self.max_seq - len(prompt))
        seq = _Sequence(request, Sampler(request.params), slab, budget)
        try:
            if self.allocator.config.quantized:
                # Quantized KV: the last prompt token's logits must come
                # from a *decode* step (attention over dequantized rows),
                # because that is what every other admission path — prefix
                # hit, preemption replay — produces.  Prefill's internal
                # fp attention would give the first sampled token a
                # different distribution, and determinism across
                # scheduling/fault paths is the contract.
                if len(prompt) > 1:
                    self.prefill.run(prompt[:-1], slab)
                logits = self.decode.step([prompt[-1]], [slab])[0]
            else:
                logits = self.prefill.run(prompt, slab)
        except Exception:
            self.allocator.release(slab)
            raise
        seq.take(seq.sampler.sample(logits))
        if timeline is not None:
            timeline.token()  # prefill's sample is the first token (TTFT)
        return seq

    def _admit_with_prefix(
        self, request: GenRequest, prompt: List[int], batch_size: int
    ) -> Optional[_Sequence]:
        """Admit via the KV prefix cache; ``None`` falls back to prefill.

        On a trie hit the matched slab's prefix rows are shared
        copy-on-write, materialized into private pages (the grow call is
        the write barrier), and only the prompt's suffix is decoded
        token by token.  K/V rows are a deterministic function of the
        token prefix and decode-equals-full is the proven bit-identity
        contract, so the resulting tokens equal a cold generation's
        exactly.  A racing eviction of the matched slab just falls back.

        Raises:
            KVCacheOOM: no room to materialize; the caller's admission
                handling queues the request, same as a cold alloc OOM.
        """
        match = self.prefix_cache.match(prompt)
        if match is None:
            return None
        parent, plen = match
        try:
            slab = self.allocator.share(parent, request.request_id, plen)
        except (KVCacheUseAfterFree, ValueError):
            return None  # evicted or already-owned: recompute instead
        try:
            slab = self.allocator.grow(slab, len(prompt) + 1)
        except KVCacheOOM:
            self.allocator.release(slab)
            raise
        self.tracer.instant(
            "genai.batch_join", "genai",
            request=request.request_id, prompt_tokens=len(prompt), batch=batch_size,
        )
        self.tracer.instant(
            "genai.prefix_hit", "genai",
            request=request.request_id, prefix_tokens=plen,
            prompt_tokens=len(prompt),
        )
        self.metrics.counter("genai.prefix_hits").inc()
        self.metrics.counter("genai.prefix_hit_tokens").inc(plen)
        timeline = self._tl(request.request_id)
        if timeline is not None:
            timeline.event(
                "prefix_hit", prefix_tokens=plen, prompt_tokens=len(prompt)
            )
            timeline.admitted(batch=batch_size, prompt_tokens=len(prompt))
        budget = min(request.params.max_tokens, self.max_seq - len(prompt))
        seq = _Sequence(request, Sampler(request.params), slab, budget)
        try:
            logits = None
            for i in range(plen, len(prompt)):
                logits = self.decode.step([prompt[i]], [slab])[0]
        except Exception:
            self.allocator.release(slab)
            raise
        seq.take(seq.sampler.sample(logits))
        if timeline is not None:
            timeline.token()
        return seq

    # -- the loop ------------------------------------------------------------
    def run(self, requests: Sequence[GenRequest]) -> List[GenResult]:
        """Drive every request to completion; results in input order."""
        waiting: Deque[GenRequest] = deque(requests)
        running: List[_Sequence] = []
        results: Dict[str, GenResult] = {}
        preempts: Dict[str, int] = {}
        order = [r.request_id for r in requests]
        if len(set(order)) != len(order):
            raise ValueError("duplicate request_id in batch")
        tracker = self.requests
        if tracker is not None and tracker.enabled:
            # Every request's queue-wait clock starts now: entering the
            # scheduler's admission queue is the "enqueued" milestone.
            self._timelines = {
                r.request_id: tracker.start(
                    r.request_id, "generate", prompt_tokens=len(r.prompt)
                )
                for r in requests
            }
        else:
            self._timelines = {}
        if self.sanitizer.enabled:
            # The loop below is deliberately single-threaded; concurrent
            # run() calls on one scheduler would interleave allocator and
            # decode-session state.  An unsynchronized write-write probe
            # turns that misuse into a deterministic race finding (vector
            # clocks never order two runs that overlap in wall time).
            self.sanitizer.probe(self, "run_loop", "w")

        while waiting or running:
            # 1. Admission at the token boundary: fill free seats while
            #    the allocator can stake each newcomer a slab.
            while waiting and len(running) < self.max_batch:
                request = waiting[0]
                prompt_len = len(request.prompt)
                if prompt_len < 1 or prompt_len >= self.max_seq:
                    waiting.popleft()
                    self._fail(
                        results, request,
                        f"prompt of {prompt_len} tokens outside [1, {self.max_seq})",
                    )
                    continue
                try:
                    seq = self._admit(request, len(running) + 1)
                except KVCacheOOM as exc:
                    if not running:
                        # Nothing will ever free pages: fail, don't hang.
                        waiting.popleft()
                        self._fail(
                            results, request, f"kv admission failed: {exc}",
                            trigger="KVCacheOOM",
                        )
                        continue
                    break  # wait for a leaver to return pages
                except ResilienceError as exc:
                    waiting.popleft()
                    self._fail(
                        results, request, f"prefill failed: {exc}",
                        trigger=type(exc).__name__,
                    )
                    continue
                waiting.popleft()
                if seq.done_reason is not None:
                    self._retire(results, seq)
                else:
                    running.append(seq)

            if not running:
                continue
            self.metrics.histogram("genai.batch_size").observe(len(running))
            if self.sampler is not None:
                # One resource sample per token boundary: KV/arena
                # utilization plus the batch occupancy counter track.
                self.sampler.sample(
                    {
                        "res.batch.occupancy": len(running),
                        "res.batch.waiting": len(waiting),
                    }
                )

            # 2. Make room for each sequence's next K/V row (bucket growth).
            #    A sequence whose growth hits OOM *stalls* — it keeps its
            #    slab and skips this step, waiting for a leaver's pages —
            #    rather than failing outright.
            stalled: List[_Sequence] = []
            for seq in list(running):
                timeline = self._tl(seq.request.request_id)
                evictions_before = self._evictions() if timeline is not None else 0
                try:
                    seq.slab = self.allocator.grow(seq.slab, seq.slab.length + 1)
                except KVCacheOOM:
                    stalled.append(seq)
                except ResilienceError as exc:
                    running.remove(seq)
                    self.allocator.release(seq.slab)
                    self._fail(
                        results, seq.request, f"kv growth failed: {exc}",
                        tokens=seq.tokens, steps=seq.steps,
                        trigger=type(exc).__name__,
                    )
                else:
                    if timeline is not None:
                        evicted = self._evictions() - evictions_before
                        if evicted:
                            timeline.event(
                                "kv_eviction", evictions=int(evicted), at="grow"
                            )
            if stalled and len(stalled) == len(running):
                # Every live sequence is memory-stalled: nobody will ever
                # leave, so preempt one (the youngest — least sunk work)
                # to guarantee progress for the rest.  The victim's pages
                # return and its request goes back in the queue for a
                # full recompute; repeat offenders eventually fail.
                victim = min(stalled, key=lambda s: len(s.tokens))
                running.remove(victim)
                self.allocator.release(victim.slab)
                self.metrics.counter("genai.preemptions").inc()
                rid = victim.request.request_id
                preempts[rid] = preempts.get(rid, 0) + 1
                timeline = self._tl(rid)
                if timeline is not None:
                    timeline.event(
                        "preempted", count=preempts[rid],
                        tokens_done=len(victim.tokens),
                    )
                if preempts[rid] > self.max_preemptions:
                    self._fail(
                        results, victim.request,
                        f"preempted {preempts[rid]} times: kv arena exhausted",
                        tokens=victim.tokens, steps=victim.steps,
                        trigger="PreemptionLimit",
                    )
                else:
                    waiting.appendleft(victim.request)
                continue

            # 3. One decode step per capacity-bucket group.
            active = [s for s in running if s not in stalled]
            groups: Dict[int, List[_Sequence]] = {}
            for seq in active:
                groups.setdefault(seq.slab.capacity, []).append(seq)
            for capacity in sorted(groups):
                group = groups[capacity]
                logits = self.decode.step(
                    [seq.tokens[-1] for seq in group],
                    [seq.slab for seq in group],
                )
                for seq, row in zip(group, logits):
                    seq.steps += 1
                    seq.take(seq.sampler.sample(row))
                    if self._timelines:
                        timeline = self._tl(seq.request.request_id)
                        if timeline is not None:
                            timeline.token()  # inter-arrival gap -> TPOT

            # 4. Leave at the boundary; seats reopen for step 1.
            for seq in [s for s in running if s.done_reason is not None]:
                running.remove(seq)
                self._retire(results, seq)

        return [results[rid] for rid in order]
