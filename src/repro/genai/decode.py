"""Decode-step pre-inference: one prepared graph per (batch, capacity).

A decode step is the engine's steady state: every live sequence advances
by exactly one token against its cached K/V.  The step's shape is fully
determined by two bucketed quantities — how many sequences share the
batch (padded up to a power-of-two batch bucket) and the common KV-slab
capacity bucket — so the whole shape space is a small grid, and each
cell's session is prepared exactly once (scheme search, placement,
memory plan) then reused for millions of steps: the paper's
prepare/execute split stretched over dynamic sequence lengths.

Bit-identity contract: the decode graph's kernels are per-row (rowwise
MatMul, the fused row-loop Attention, per-row LayerNorm/GELU), so the
new token's logits are bitwise equal to the same position's logits in a
``full``-mode recompute of the whole sequence — padding rows and batch
composition cannot perturb a neighbour's arithmetic.  Feed validation is
the one per-run overhead turned off (``check_feeds=False``): feeds here
are machine-built from already-validated slabs, and a decode step is
short enough for the check to matter.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.session import Session, SessionConfig
from ..faults.plan import FaultPlan, get_fault_plan
from ..ir.graph import Graph
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.tracer import Tracer, get_tracer
from ..serving.cache import PreInferenceCache
from .kvcache import KVSlab
from .prefill import cached_session

__all__ = ["batch_buckets", "bucket_for_batch", "DecodeRunner"]


def batch_buckets(max_batch: int) -> List[int]:
    """Power-of-two batch buckets ending exactly at ``max_batch``."""
    buckets: List[int] = []
    cap = 1
    while cap < max_batch:
        buckets.append(cap)
        cap *= 2
    buckets.append(max_batch)
    return buckets


def bucket_for_batch(n: int, buckets: List[int]) -> int:
    for cap in buckets:
        if cap >= n:
            return cap
    raise ValueError(f"batch {n} exceeds largest bucket {buckets[-1]}")


class DecodeRunner:
    """Single-token steps over prepared (batch, capacity) sessions."""

    def __init__(
        self,
        build_graph: Callable[[int, int], Graph],
        layers: int,
        max_batch: int,
        session_config: Optional[SessionConfig] = None,
        cache: Optional[PreInferenceCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultPlan] = None,
        retries: int = 3,
    ) -> None:
        self.build_graph = build_graph        # (batch, capacity) -> Graph
        self.layers = layers
        self.buckets = batch_buckets(max_batch)
        base = session_config if session_config is not None else SessionConfig()
        self.session_config = replace(base, check_feeds=False)
        self.cache = cache
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.faults = faults if faults is not None else get_fault_plan()
        self.retries = retries
        self._sessions: Dict[Tuple[int, int], Session] = {}

    def _session(self, batch: int, capacity: int) -> Session:
        key = (batch, capacity)
        session = self._sessions.get(key)
        if session is None:
            graph = self.build_graph(batch, capacity)
            config = replace(self.session_config, faults=self.faults)
            session = cached_session(
                graph, config, self.cache, self.tracer, self.faults, self.retries
            )
            self._sessions[key] = session
        return session

    @property
    def prepared(self) -> List[Tuple[int, int]]:
        """The (batch, capacity) grid cells prepared so far."""
        return sorted(self._sessions)

    def step(self, tokens: List[int], slabs: List[KVSlab]) -> np.ndarray:
        """Advance every sequence by one token.

        Args:
            tokens: the last sampled token of each live sequence.
            slabs: the sequences' KV slabs; all must share one capacity
                bucket (the scheduler groups them), each with room for
                one more row.

        Returns:
            ``(len(tokens), vocab)`` logits for the new positions.  As a
            side effect each slab gains its new K/V row and ``length``
            advances by one.
        """
        n = len(tokens)
        if n == 0 or n != len(slabs):
            raise ValueError(f"tokens/slabs mismatch: {n} vs {len(slabs)}")
        capacity = slabs[0].capacity
        cfg = slabs[0].config
        for slab in slabs:
            if slab.capacity != capacity:
                raise ValueError("decode group mixes capacity buckets")
            if slab.length >= capacity:
                raise ValueError(
                    f"slab {slab.seq_id!r} full at {slab.length}/{capacity}; grow first"
                )
        batch = bucket_for_batch(n, self.buckets)

        feed_tokens = np.zeros((batch, 1), np.int32)
        feed_tokens[:n, 0] = np.asarray(tokens, np.int32)
        positions = np.zeros((batch, 1), np.int32)
        lengths = np.zeros((batch,), np.int32)
        for i, slab in enumerate(slabs):
            positions[i, 0] = slab.length
            lengths[i] = slab.length
        feeds: Dict[str, np.ndarray] = {
            "tokens": feed_tokens,
            "positions": positions,
            "lengths": lengths,
        }
        for layer in range(self.layers):
            k_feed = np.zeros((batch, cfg.heads, capacity, cfg.d_head), np.float32)
            v_feed = np.zeros_like(k_feed)
            for i, slab in enumerate(slabs):
                k_feed[i] = slab.k_read(layer)
                v_feed[i] = slab.v_read(layer)
            feeds[f"l{layer}_k_cache"] = k_feed
            feeds[f"l{layer}_v_cache"] = v_feed

        with self.tracer.span(
            "genai.decode_step", "genai", batch=n, batch_bucket=batch, capacity=capacity
        ):
            out = self._session(batch, capacity).run(feeds)

        for i, slab in enumerate(slabs):
            row = slab.length
            for layer in range(self.layers):
                slab.write_k(layer, row, out[f"l{layer}_k"][i, :, 0:1, :])
                slab.write_v(layer, row, out[f"l{layer}_v"][i, :, 0:1, :])
            slab.length = row + 1
        self.metrics.counter("genai.decode_tokens").inc(n)
        return out["logits"][:n, 0, :]

    def close(self) -> None:
        self._sessions.clear()
