"""Seeded token sampling: greedy, temperature, and top-k.

Sampling is the one *intentionally* stochastic stage of generation, so
it gets the same determinism discipline as the fault injector: every
request owns a ``random.Random(seed)`` and draws from nothing else.
Two runs of the same prompt with the same :class:`SamplingParams` emit
identical tokens regardless of batch composition, admission order, or
how many other requests shared the continuous batch — the scheduler can
re-shuffle freely without changing any request's output.

Greedy decoding (``temperature=0``) takes no draws at all; it is the
mode the bit-identity acceptance test runs under, where the whole
pipeline down to the logits must match the full-recompute reference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["SamplingParams", "Sampler", "greedy"]


@dataclass(frozen=True)
class SamplingParams:
    """Per-request generation knobs.

    Attributes:
        max_tokens: generation budget (prompt excluded).
        temperature: 0 -> greedy argmax; higher flattens the distribution.
        top_k: restrict sampling to the k most likely tokens (0 = all).
        seed: seeds this request's private RNG.
        stop_tokens: token ids that end generation early (emitted last).
    """

    max_tokens: int = 16
    temperature: float = 0.0
    top_k: int = 0
    seed: int = 0
    stop_tokens: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {self.max_tokens}")
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")


def greedy(logits: np.ndarray) -> int:
    """Argmax with numpy's deterministic first-max tie-break."""
    return int(np.argmax(logits))


class Sampler:
    """One request's sampling state (an RNG and its params)."""

    def __init__(self, params: SamplingParams) -> None:
        self.params = params
        self._rng = random.Random(params.seed)

    def sample(self, logits: np.ndarray) -> int:
        """Draw the next token id from one ``(vocab,)`` logits row."""
        params = self.params
        if params.temperature == 0.0:
            return greedy(logits)
        # float64 throughout: sampling probabilities need not be
        # bit-stable against the engine's float32 pipeline, but they must
        # be stable against *themselves* across runs.
        scaled = logits.astype(np.float64) / params.temperature
        if params.top_k:
            k = min(params.top_k, scaled.size)
            # argsort (not argpartition) so candidate order is total and
            # deterministic even among tied logits.
            candidates = np.argsort(-scaled, kind="stable")[:k]
        else:
            candidates = np.argsort(-scaled, kind="stable")
        weights = np.exp(scaled[candidates] - scaled[candidates[0]])
        cdf = np.cumsum(weights)
        draw = self._rng.random() * cdf[-1]
        index = int(np.searchsorted(cdf, draw, side="right"))
        return int(candidates[min(index, len(candidates) - 1)])

    def is_stop(self, token: int) -> bool:
        return token in self.params.stop_tokens
