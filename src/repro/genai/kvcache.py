"""KV-cache memory planning: dynamic slabs over one pre-allocated arena.

The paper's static planner (:mod:`repro.core.memory`) lays activations
out once because shapes are fixed.  Autoregressive decoding breaks that
premise in one specific place — the per-sequence key/value cache grows by
one row per generated token, and sequences join and leave the batch at
unpredictable times.  This module confines all of that dynamism to a
single arena managed like an OS page allocator:

* the arena is carved into fixed-size **pages** (``page_tokens`` tokens
  of K+V across all layers, rounded up to the 64-byte ``ALIGNMENT``), so
  every slab offset is aligned by construction;
* a sequence owns a **slab** — contiguous pages holding bucketed
  capacity for its cache.  Capacities double (16, 32, 64... tokens), so
  a sequence re-plans at most ``log2`` times as it grows, and the engine
  needs one prepared decode graph per bucket instead of one per length;
* allocation is best-fit over an :class:`~repro.core.memory.ExtentFreeList`
  with coalescing frees — fragmentation stays bounded while requests
  churn;
* pressure degrades, never crashes: a failed allocation (genuine
  exhaustion or the injected ``kvcache.alloc`` fault) evicts
  least-recently-used *retired* slabs and retries, mirroring the serving
  layer's fallback ladder.

The live layout can be snapshotted as a standard
:class:`~repro.core.memory.MemoryPlan` (every slab co-live at step 0)
and proven alias-free/aligned/in-bounds by the independent sanitizer
(:func:`repro.analysis.check_slab_plan`) — the same distrust-the-planner
discipline the static path gets.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.memory import ALIGNMENT, ExtentFreeList, MemoryPlan, TensorLifetime
from ..faults.errors import FatalFault, ResilienceError, TransientFault, mark_isolated
from ..faults.plan import FaultPlan, get_fault_plan
from ..faults.resilience import retry_transient
from ..obs.metrics import MetricsRegistry, get_metrics
from ..sanitize import LifecycleFinding, Sanitizer, get_sanitizer

__all__ = [
    "KVCacheConfig",
    "KVCacheOOM",
    "KVCacheUseAfterFree",
    "KVSlab",
    "KVCacheAllocator",
]


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class KVCacheOOM(ResilienceError):
    """The arena cannot hold another slab, even after eviction."""


class KVCacheUseAfterFree(ResilienceError):
    """A K/V view was requested through a freed slab.

    The slab's pages may already belong to another sequence, so the old
    silent behaviour (handing out a live view of someone else's cache)
    corrupted generations undetectably.  Freed slabs are poisoned
    instead; the sanitizer additionally records the access as a
    ``use-after-free`` lifecycle finding when enabled.
    """


@dataclass(frozen=True)
class KVCacheConfig:
    """Geometry of the KV arena.

    Attributes:
        layers/heads/d_head: the decoder architecture the cache serves.
        page_tokens: tokens per page — the allocation granule and the
            smallest capacity bucket.
        capacity_tokens: total arena capacity in tokens across all
            resident sequences (rounded down to whole pages).
        max_seq: the longest supported sequence; the largest bucket.
        retries: extra attempts for transient allocation faults.
    """

    layers: int
    heads: int
    d_head: int
    page_tokens: int = 16
    capacity_tokens: int = 512
    max_seq: int = 64
    retries: int = 3

    @property
    def per_token_bytes(self) -> int:
        """K+V bytes one token needs across every layer (float32)."""
        return self.layers * 2 * self.heads * self.d_head * 4

    @property
    def page_bytes(self) -> int:
        return _align(self.page_tokens * self.per_token_bytes)

    @property
    def total_pages(self) -> int:
        return self.capacity_tokens // self.page_tokens

    def buckets(self) -> List[int]:
        """Capacity buckets in tokens: doubling pages up to ``max_seq``."""
        out: List[int] = []
        cap = self.page_tokens
        while cap < self.max_seq:
            out.append(cap)
            cap *= 2
        out.append(self.max_seq)
        return out

    def bucket_for(self, tokens: int) -> int:
        """Smallest bucket holding ``tokens``; raises past ``max_seq``."""
        if tokens > self.max_seq:
            raise ValueError(f"sequence of {tokens} tokens exceeds max_seq {self.max_seq}")
        for cap in self.buckets():
            if cap >= tokens:
                return cap
        raise AssertionError("unreachable: buckets() ends at max_seq")


@dataclass
class KVSlab:
    """One sequence's contiguous K/V storage inside the arena.

    ``k(layer)`` / ``v(layer)`` are zero-copy ``(heads, capacity, d_head)``
    views into the arena buffer; ``length`` counts the rows actually
    written.  Layout within the slab is ``[layer][k|v][head][token][dim]``,
    so each view is one contiguous reshape.
    """

    seq_id: str
    page_start: int
    pages: int
    capacity: int          # tokens
    config: KVCacheConfig
    buffer: np.ndarray = field(repr=False)
    length: int = 0
    freed: bool = False
    #: Lifecycle identity: bumped on each re-carve of the same extent, so
    #: a stale handle is detectable even after the pages were recycled.
    generation: int = 0
    sanitizer: Optional[Sanitizer] = field(default=None, repr=False)
    scope: str = ""

    @property
    def lifecycle_key(self) -> str:
        return f"{self.seq_id}@{self.page_start}+{self.pages}"

    @property
    def offset_bytes(self) -> int:
        return self.page_start * self.config.page_bytes

    @property
    def nbytes(self) -> int:
        return self.pages * self.config.page_bytes

    def _view(self, layer: int, which: int) -> np.ndarray:
        cfg = self.config
        if self.freed:
            sanitizer = self.sanitizer
            if sanitizer is not None and sanitizer.enabled:
                sanitizer.use_extent(self.scope, self.lifecycle_key, self.generation)
            raise KVCacheUseAfterFree(
                f"K/V view of {self.seq_id!r} after its slab was freed "
                f"(pages [{self.page_start}, {self.page_start + self.pages}), "
                f"generation {self.generation}) — these pages may belong "
                f"to another sequence now"
            )
        if not 0 <= layer < cfg.layers:
            raise IndexError(f"layer {layer} out of range for {cfg.layers} layers")
        plane = cfg.heads * self.capacity * cfg.d_head * 4      # bytes per K or V
        start = self.offset_bytes + (2 * layer + which) * plane
        flat = self.buffer[start : start + plane].view(np.float32)
        return flat.reshape(cfg.heads, self.capacity, cfg.d_head)

    def k(self, layer: int) -> np.ndarray:
        return self._view(layer, 0)

    def v(self, layer: int) -> np.ndarray:
        return self._view(layer, 1)

    @property
    def utilization(self) -> float:
        """Written tokens over bucketed capacity (bucketing's overhead)."""
        return self.length / self.capacity if self.capacity else 1.0


class KVCacheAllocator:
    """Page-granular slab allocator with bucketing, growth and eviction.

    Thread-safe; the continuous-batching scheduler allocates at admission
    time, grows at token boundaries, and either frees a finished slab or
    *retires* it (``release(evictable=True)``) so its pages can be
    reclaimed lazily under pressure — the KV analogue of the serving
    layer's pre-inference cache keeping warm artifacts around.

    Every allocation passes the ``kvcache.alloc`` fault point: injected
    transients are retried with backoff (``retry.attempts``), and hard
    failures — injected fatals or genuine exhaustion — walk the eviction
    ladder (``fallback.evict`` per absorbed injection, ``kvcache.evictions``
    for every reclaimed slab) before :class:`KVCacheOOM` escapes.
    """

    def __init__(
        self,
        config: KVCacheConfig,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        sanitizer: Optional[Sanitizer] = None,
    ) -> None:
        if config.total_pages <= 0:
            raise ValueError(
                f"arena of {config.capacity_tokens} tokens holds no "
                f"{config.page_tokens}-token page"
            )
        self.config = config
        self.metrics = metrics if metrics is not None else get_metrics()
        self.faults = faults if faults is not None else get_fault_plan()
        self.sanitizer = sanitizer if sanitizer is not None else get_sanitizer()
        self.scope = f"kvcache#{id(self):x}"
        self._buffer = np.zeros(config.total_pages * config.page_bytes, np.uint8)
        self._pages = ExtentFreeList(config.total_pages)
        self._live: Dict[str, KVSlab] = {}
        self._retired: "OrderedDict[str, KVSlab]" = OrderedDict()  # LRU order
        self._lock = threading.RLock()

    # -- allocation ----------------------------------------------------------
    def _pages_for(self, capacity: int) -> int:
        return -(-capacity // self.config.page_tokens)

    def _try_alloc(self, seq_id: str, pages: int) -> int:
        self.faults.fire("kvcache.alloc", seq=seq_id, pages=pages)
        start = self._pages.alloc(pages)
        if start is None:
            raise KVCacheOOM(
                f"no {pages}-page extent for {seq_id!r} "
                f"(free {self._pages.free_units}, largest {self._pages.largest_extent})"
            )
        return start

    def alloc(self, seq_id: str, tokens: int) -> KVSlab:
        """Reserve a bucketed slab able to hold ``tokens`` tokens.

        Raises:
            KVCacheOOM: when no extent fits even with every retired slab
                evicted (admission control catches this and queues).
        """
        capacity = self.config.bucket_for(max(1, tokens))
        pages = self._pages_for(capacity)
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            if seq_id in self._live:
                raise ValueError(f"sequence {seq_id!r} already owns a slab")
            while True:
                try:
                    start = retry_transient(
                        lambda: self._try_alloc(seq_id, pages),
                        retries=self.config.retries,
                        rng=self.faults.rng_for("kvcache.alloc"),
                        label="kvcache.alloc",
                        transient=(TransientFault,),
                    )
                    break
                except (FatalFault, TransientFault, KVCacheOOM) as exc:
                    injected = not isinstance(exc, KVCacheOOM)
                    if not self._evict_one():
                        if injected:
                            mark_isolated(exc)
                        raise KVCacheOOM(
                            f"arena exhausted allocating {pages} pages for "
                            f"{seq_id!r} with nothing left to evict"
                        ) from exc
                    if injected:
                        # The injection was absorbed by degrading to
                        # eviction; account it like the other fallbacks.
                        self.metrics.counter("fallback.evict").inc()
            slab = KVSlab(seq_id, start, pages, capacity, self.config, self._buffer)
            if self.sanitizer.enabled:
                slab.sanitizer = self.sanitizer
                slab.scope = self.scope
                slab.generation = self.sanitizer.carve(
                    self.scope, slab.lifecycle_key, start, pages
                )
                self.sanitizer.probe(self, "tables", "w")
            self._live[seq_id] = slab
            self._update_gauges()
            return slab

    def grow(self, slab: KVSlab, tokens: int) -> KVSlab:
        """Return a slab holding ``tokens``, copying rows when re-bucketing.

        A no-op while the current bucket still fits; otherwise allocates
        the next bucket, copies the ``length`` written rows layer by
        layer, and frees the old pages — the sequence never re-plans its
        graph, it just moves to the next prepared bucket.
        """
        if tokens <= slab.capacity:
            return slab
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            length = slab.length
            self._forget(slab.seq_id)
            try:
                bigger = self.alloc(slab.seq_id, tokens)
            except KVCacheOOM:
                # Put the original back so the caller still owns a slab.
                self._live[slab.seq_id] = slab
                raise
            for layer in range(self.config.layers):
                bigger.k(layer)[:, :length] = slab.k(layer)[:, :length]
                bigger.v(layer)[:, :length] = slab.v(layer)[:, :length]
            bigger.length = length
            self._pages.free(slab.page_start, slab.pages)
            slab.freed = True
            if self.sanitizer.enabled:
                self.sanitizer.free_extent(self.scope, slab.lifecycle_key)
                self.sanitizer.probe(self, "tables", "w")
            self._update_gauges()
            return bigger

    # -- release / eviction --------------------------------------------------
    def release(self, slab: KVSlab, evictable: bool = False) -> None:
        """Give the slab up: free its pages now, or retire it for lazy
        reclamation under pressure (LRU)."""
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            self._forget(slab.seq_id)
            if slab.freed:
                return
            if evictable:
                self._retired[slab.seq_id] = slab
                self._retired.move_to_end(slab.seq_id)
                if self.sanitizer.enabled:
                    self.sanitizer.retire_extent(self.scope, slab.lifecycle_key)
            else:
                self._pages.free(slab.page_start, slab.pages)
                slab.freed = True
                if self.sanitizer.enabled:
                    self.sanitizer.free_extent(self.scope, slab.lifecycle_key)
            if self.sanitizer.enabled:
                self.sanitizer.probe(self, "tables", "w")
            self._update_gauges()

    def _forget(self, seq_id: str) -> None:
        """Drop the sequence from both tables.  Called with the lock held."""
        self._live.pop(seq_id, None)
        self._retired.pop(seq_id, None)

    def _evict_one(self) -> bool:
        """Reclaim the least-recently-retired slab; False when none left."""
        if not self._retired:
            return False
        _, slab = self._retired.popitem(last=False)
        self._pages.free(slab.page_start, slab.pages)
        slab.freed = True
        if self.sanitizer.enabled:
            self.sanitizer.free_extent(self.scope, slab.lifecycle_key)
        self.metrics.counter("kvcache.evictions").inc()
        return True

    # -- teardown ------------------------------------------------------------
    def close(self) -> List[LifecycleFinding]:
        """Run the lifecycle leak check and return its findings.

        Live slabs at close are leaks (someone allocated and never
        released); *retired* slabs are not — they are the LRU-evictable
        warm set, reclaimed by design whenever pressure needs them.  The
        check only observes; it does not free anything, so a reported
        leak stays reproducible in the allocator's state.
        """
        if not self.sanitizer.enabled:
            return []
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            return self.sanitizer.close_scope(self.scope)

    # -- introspection -------------------------------------------------------
    @property
    def free_pages(self) -> int:
        with self._lock:
            return self._pages.free_units

    @property
    def used_pages(self) -> int:
        return self.config.total_pages - self.free_pages

    def page_utilization(self) -> float:
        """Fraction of arena pages owned by live or retired slabs."""
        return self.used_pages / self.config.total_pages

    def token_utilization(self) -> float:
        """Written tokens over bucketed capacity across live slabs."""
        with self._lock:
            cap = sum(s.capacity for s in self._live.values())
            used = sum(s.length for s in self._live.values())
        return used / cap if cap else 1.0

    def _update_gauges(self) -> None:
        self.metrics.gauge("kvcache.used_pages").set(
            self.config.total_pages - self._pages.free_units
        )
        self.metrics.gauge("kvcache.live_slabs").set(len(self._live))

    def to_memory_plan(self) -> MemoryPlan:
        """Snapshot the resident layout as a standard :class:`MemoryPlan`.

        Every slab (live and retired) is co-live at step 0, so the plan's
        own :meth:`~repro.core.memory.MemoryPlan.validate` and the
        graph-free sanitizer (:func:`repro.analysis.check_slab_plan`)
        prove the dynamic allocator alias-free exactly like the static
        planner's output.
        """
        with self._lock:
            slabs = list(self._live.values()) + list(self._retired.values())
            offsets = {s.seq_id: s.offset_bytes for s in slabs}
            lifetimes = {
                s.seq_id: TensorLifetime(s.seq_id, s.nbytes, 0, 0) for s in slabs
            }
            arena = self.config.total_pages * self.config.page_bytes
            return MemoryPlan(
                offsets=offsets,
                arena_bytes=arena,
                total_tensor_bytes=sum(s.nbytes for s in slabs),
                lifetimes=lifetimes,
            )

    def check(self):
        """Run the independent sanitizer over the current layout."""
        from ..analysis.memcheck import check_slab_plan

        plan = self.to_memory_plan()
        plan.validate()
        return check_slab_plan(plan, page_bytes=self.config.page_bytes)
