"""KV-cache memory planning: dynamic slabs over one pre-allocated arena.

The paper's static planner (:mod:`repro.core.memory`) lays activations
out once because shapes are fixed.  Autoregressive decoding breaks that
premise in one specific place — the per-sequence key/value cache grows by
one row per generated token, and sequences join and leave the batch at
unpredictable times.  This module confines all of that dynamism to a
single arena managed like an OS page allocator:

* the arena is carved into fixed-size **pages** (``page_tokens`` tokens
  of K+V across all layers, rounded up to the 64-byte ``ALIGNMENT``), so
  every slab offset is aligned by construction;
* a sequence owns a **slab** — contiguous pages holding bucketed
  capacity for its cache.  Capacities double (16, 32, 64... tokens), so
  a sequence re-plans at most ``log2`` times as it grows, and the engine
  needs one prepared decode graph per bucket instead of one per length;
* allocation is best-fit over an :class:`~repro.core.memory.ExtentFreeList`
  with coalescing frees — fragmentation stays bounded while requests
  churn;
* pressure degrades, never crashes: a failed allocation (genuine
  exhaustion or the injected ``kvcache.alloc`` fault) evicts
  least-recently-used *retired* slabs and retries, mirroring the serving
  layer's fallback ladder.

The live layout can be snapshotted as a standard
:class:`~repro.core.memory.MemoryPlan` (every slab co-live at step 0)
and proven alias-free/aligned/in-bounds by the independent sanitizer
(:func:`repro.analysis.check_slab_plan`) — the same distrust-the-planner
discipline the static path gets.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.memory import ALIGNMENT, ExtentFreeList, MemoryPlan, TensorLifetime
from ..faults.errors import FatalFault, ResilienceError, TransientFault, mark_isolated
from ..faults.plan import FaultPlan, get_fault_plan
from ..faults.resilience import retry_transient
from ..obs.metrics import MetricsRegistry, get_metrics
from ..quant.kv import KV_DTYPES, dequantize_rows, kv_itemsize, quantize_rows
from ..sanitize import LifecycleFinding, Sanitizer, get_sanitizer

__all__ = [
    "KVCacheConfig",
    "KVCacheOOM",
    "KVCacheUseAfterFree",
    "KVSlab",
    "KVCacheAllocator",
]


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class KVCacheOOM(ResilienceError):
    """The arena cannot hold another slab, even after eviction."""


class KVCacheUseAfterFree(ResilienceError):
    """A K/V view was requested through a freed slab.

    The slab's pages may already belong to another sequence, so the old
    silent behaviour (handing out a live view of someone else's cache)
    corrupted generations undetectably.  Freed slabs are poisoned
    instead; the sanitizer additionally records the access as a
    ``use-after-free`` lifecycle finding when enabled.
    """


@dataclass(frozen=True)
class KVCacheConfig:
    """Geometry of the KV arena.

    Attributes:
        layers/heads/d_head: the decoder architecture the cache serves.
        page_tokens: tokens per page — the allocation granule and the
            smallest capacity bucket.
        capacity_tokens: total arena capacity in tokens across all
            resident sequences (rounded down to whole pages).
        max_seq: the longest supported sequence; the largest bucket.
        retries: extra attempts for transient allocation faults.
        kv_dtype: storage dtype of the cached K/V rows.  ``"float32"``
            (default) stores rows verbatim; ``"int8"`` stores each row
            quantized per-row symmetric (one float32 scale per
            layer/K-or-V/token row, kept in a scales table at the slab
            tail) and dequantizes on read — see :mod:`repro.quant.kv`
            for why the scale granularity must be the row.
    """

    layers: int
    heads: int
    d_head: int
    page_tokens: int = 16
    capacity_tokens: int = 512
    max_seq: int = 64
    retries: int = 3
    kv_dtype: str = "float32"

    def __post_init__(self) -> None:
        kv_itemsize(self.kv_dtype)  # raises ValueError on unknown dtypes
        if self.quantized and self.d_head % 4 != 0:
            raise ValueError(
                f"kv_dtype={self.kv_dtype!r} needs d_head divisible by 4 "
                f"(the SIMD/NC4HW4 lane count; it keeps the int8 payload a "
                f"float32 multiple so the scales table is aligned), "
                f"got d_head={self.d_head}"
            )

    @property
    def quantized(self) -> bool:
        return self.kv_dtype != "float32"

    @property
    def kv_itemsize(self) -> int:
        """Bytes per stored K/V element."""
        return kv_itemsize(self.kv_dtype)

    @property
    def row_scale_bytes(self) -> int:
        """Per-row scale overhead (per layer, per K-or-V) in bytes."""
        return 4 if self.quantized else 0

    @property
    def per_token_bytes(self) -> int:
        """K+V bytes one token needs across every layer, scales included.

        This is the quantity capacity accounting runs on: int8 rows cost
        ``heads * d_head`` payload bytes plus one float32 scale, so the
        same arena holds ~4x the tokens of the fp32 layout (3x+ after
        the scale overhead at small ``d_head``).
        """
        row = self.heads * self.d_head * self.kv_itemsize + self.row_scale_bytes
        return self.layers * 2 * row

    @property
    def page_bytes(self) -> int:
        return _align(self.page_tokens * self.per_token_bytes)

    @property
    def total_pages(self) -> int:
        return self.capacity_tokens // self.page_tokens

    def buckets(self) -> List[int]:
        """Capacity buckets in tokens: doubling pages up to ``max_seq``."""
        out: List[int] = []
        cap = self.page_tokens
        while cap < self.max_seq:
            out.append(cap)
            cap *= 2
        out.append(self.max_seq)
        return out

    def bucket_for(self, tokens: int) -> int:
        """Smallest bucket holding ``tokens``; raises past ``max_seq``."""
        if tokens > self.max_seq:
            raise ValueError(f"sequence of {tokens} tokens exceeds max_seq {self.max_seq}")
        for cap in self.buckets():
            if cap >= tokens:
                return cap
        raise AssertionError("unreachable: buckets() ends at max_seq")


@dataclass
class KVSlab:
    """One sequence's contiguous K/V storage inside the arena.

    ``k(layer)`` / ``v(layer)`` are zero-copy ``(heads, capacity, d_head)``
    views into the arena buffer **in the storage dtype** (float32 or
    int8); ``length`` counts the rows actually written.  Layout within
    the slab is ``[layer][k|v][head][token][dim]``; under
    ``kv_dtype="int8"`` a per-row float32 scales table
    (``[layer][k|v][token]``) follows the payload planes at the slab
    tail.  The typed accessors are the decode/prefill API:

    * :meth:`k_read` / :meth:`v_read` — float32 rows, dequantized on
      read when quantized (zero-copy passthrough for fp32);
    * :meth:`write_k` / :meth:`write_v` — float32 rows in, quantized on
      write (scale stored alongside) when quantized.

    The raw ``k``/``v`` views stay available on purpose: re-bucketing
    copies (:meth:`copy_rows_from`) move int8 bytes and scales verbatim,
    never through a requantization round-trip.
    """

    seq_id: str
    page_start: int
    pages: int
    capacity: int          # tokens
    config: KVCacheConfig
    buffer: np.ndarray = field(repr=False)
    length: int = 0
    freed: bool = False
    #: Lifecycle identity: bumped on each re-carve of the same extent, so
    #: a stale handle is detectable even after the pages were recycled.
    generation: int = 0
    sanitizer: Optional[Sanitizer] = field(default=None, repr=False)
    scope: str = ""
    #: Copy-on-write child: this slab aliases a parent's pages (prefix
    #: sharing).  Its views are read-only; any write path must go through
    #: :meth:`KVCacheAllocator.materialize` first (``grow`` does this
    #: automatically, and the scheduler grows before every decode step).
    shared: bool = False

    @property
    def lifecycle_key(self) -> str:
        return f"{self.seq_id}@{self.page_start}+{self.pages}"

    @property
    def offset_bytes(self) -> int:
        return self.page_start * self.config.page_bytes

    @property
    def nbytes(self) -> int:
        return self.pages * self.config.page_bytes

    def _guard(self, layer: int) -> None:
        cfg = self.config
        if self.freed:
            sanitizer = self.sanitizer
            if sanitizer is not None and sanitizer.enabled:
                sanitizer.use_extent(self.scope, self.lifecycle_key, self.generation)
            raise KVCacheUseAfterFree(
                f"K/V view of {self.seq_id!r} after its slab was freed "
                f"(pages [{self.page_start}, {self.page_start + self.pages}), "
                f"generation {self.generation}) — these pages may belong "
                f"to another sequence now"
            )
        if not 0 <= layer < cfg.layers:
            raise IndexError(f"layer {layer} out of range for {cfg.layers} layers")

    @property
    def _plane_bytes(self) -> int:
        """Bytes per K or V payload plane (one layer, storage dtype)."""
        cfg = self.config
        return cfg.heads * self.capacity * cfg.d_head * cfg.kv_itemsize

    def _view(self, layer: int, which: int) -> np.ndarray:
        cfg = self.config
        self._guard(layer)
        plane = self._plane_bytes
        start = self.offset_bytes + (2 * layer + which) * plane
        dtype = np.int8 if cfg.quantized else np.float32
        flat = self.buffer[start : start + plane].view(dtype)
        view = flat.reshape(cfg.heads, self.capacity, cfg.d_head)
        if self.shared:
            # Hard guard: writing through a COW child would corrupt the
            # parent (and every sibling) silently.  NumPy turns such a
            # write into an immediate ValueError instead.
            view.flags.writeable = False
        return view

    def _scales_view(self, layer: int, which: int) -> np.ndarray:
        """Float32 ``(capacity,)`` per-row scales for one K/V plane.

        Lives after the last payload plane; the payload region is a
        float32 multiple (``d_head % 4 == 0`` is enforced for int8), so
        the table starts 4-byte aligned within the 64-byte-aligned slab.
        """
        cfg = self.config
        self._guard(layer)
        base = self.offset_bytes + 2 * cfg.layers * self._plane_bytes
        start = base + (2 * layer + which) * self.capacity * 4
        view = self.buffer[start : start + self.capacity * 4].view(np.float32)
        if self.shared:
            view.flags.writeable = False
        return view

    def k(self, layer: int) -> np.ndarray:
        return self._view(layer, 0)

    def v(self, layer: int) -> np.ndarray:
        return self._view(layer, 1)

    # -- typed accessors (the decode/prefill API) ---------------------------
    def _read(self, layer: int, which: int) -> np.ndarray:
        view = self._view(layer, which)
        if not self.config.quantized:
            return view
        return dequantize_rows(view, self._scales_view(layer, which))

    def k_read(self, layer: int) -> np.ndarray:
        """Float32 ``(heads, capacity, d_head)`` K rows (dequant-on-read)."""
        return self._read(layer, 0)

    def v_read(self, layer: int) -> np.ndarray:
        """Float32 ``(heads, capacity, d_head)`` V rows (dequant-on-read)."""
        return self._read(layer, 1)

    def _write(self, layer: int, which: int, start: int, values: np.ndarray) -> None:
        values = np.asarray(values, np.float32)
        if values.ndim != 3:
            raise ValueError(f"expected (heads, rows, d_head) rows, got {values.shape}")
        rows = values.shape[1]
        view = self._view(layer, which)
        if not self.config.quantized:
            view[:, start : start + rows] = values
            return
        q, scales = quantize_rows(values)
        view[:, start : start + rows] = q
        self._scales_view(layer, which)[start : start + rows] = scales

    def write_k(self, layer: int, start: int, values: np.ndarray) -> None:
        """Store float32 K rows at ``start`` (quantize-on-write for int8)."""
        self._write(layer, 0, start, values)

    def write_v(self, layer: int, start: int, values: np.ndarray) -> None:
        """Store float32 V rows at ``start`` (quantize-on-write for int8)."""
        self._write(layer, 1, start, values)

    def reset_scales(self) -> None:
        """Zero the scales table after a fresh carve.

        Recycled pages hold whatever bytes the previous owner left, and
        scale 0.0 is the unwritten-row sentinel — zeroing here makes
        every unwritten row dequantize to exact zeros on every path
        (junk scales can even overflow to inf under the dequant
        multiply).  No-op geometry for fp32 arenas; callers skip it.
        """
        cfg = self.config
        base = self.offset_bytes + 2 * cfg.layers * self._plane_bytes
        self.buffer[base : base + 2 * cfg.layers * self.capacity * 4] = 0

    def copy_rows_from(self, src: "KVSlab", length: int) -> None:
        """Copy ``src``'s first ``length`` rows verbatim (scales included).

        This is the re-bucketing/materialize path: bytes move in the
        storage dtype, so quantized rows survive any number of
        grow/COW-materialize hops bit-identically — there is no
        dequantize→requantize round-trip anywhere in the slab lifecycle.
        """
        for layer in range(self.config.layers):
            for which in (0, 1):
                self._view(layer, which)[:, :length] = src._view(layer, which)[:, :length]
                if self.config.quantized:
                    self._scales_view(layer, which)[:length] = (
                        src._scales_view(layer, which)[:length]
                    )
        self.length = length

    @property
    def utilization(self) -> float:
        """Written tokens over bucketed capacity (bucketing's overhead)."""
        return self.length / self.capacity if self.capacity else 1.0


class KVCacheAllocator:
    """Page-granular slab allocator with bucketing, growth and eviction.

    Thread-safe; the continuous-batching scheduler allocates at admission
    time, grows at token boundaries, and either frees a finished slab or
    *retires* it (``release(evictable=True)``) so its pages can be
    reclaimed lazily under pressure — the KV analogue of the serving
    layer's pre-inference cache keeping warm artifacts around.

    Every allocation passes the ``kvcache.alloc`` fault point: injected
    transients are retried with backoff (``retry.attempts``), and hard
    failures — injected fatals or genuine exhaustion — walk the eviction
    ladder (``fallback.evict`` per absorbed injection, ``kvcache.evictions``
    for every reclaimed slab) before :class:`KVCacheOOM` escapes.
    """

    def __init__(
        self,
        config: KVCacheConfig,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        sanitizer: Optional[Sanitizer] = None,
    ) -> None:
        if config.total_pages <= 0:
            raise ValueError(
                f"arena of {config.capacity_tokens} tokens holds no "
                f"{config.page_tokens}-token page"
            )
        self.config = config
        self.metrics = metrics if metrics is not None else get_metrics()
        self.faults = faults if faults is not None else get_fault_plan()
        self.sanitizer = sanitizer if sanitizer is not None else get_sanitizer()
        self.scope = f"kvcache#{id(self):x}"
        self._buffer = np.zeros(config.total_pages * config.page_bytes, np.uint8)
        self._pages = ExtentFreeList(config.total_pages)
        self._live: Dict[str, KVSlab] = {}
        self._retired: "OrderedDict[str, KVSlab]" = OrderedDict()  # LRU order
        #: Reference count per shared extent, keyed by ``page_start``.
        #: Absent means 1 (sole owner).  ``share`` increments; every
        #: free site goes through ``_drop_ref``, which returns the pages
        #: to the free list only when the last reference drops — so
        #: evicting a retired parent while children still alias its
        #: prefix leaves the pages alive.  Guarded by ``_lock``.
        self._extent_refs: Dict[int, int] = {}
        self._lock = threading.RLock()

    # -- allocation ----------------------------------------------------------
    def _pages_for(self, capacity: int) -> int:
        return -(-capacity // self.config.page_tokens)

    def _try_alloc(self, seq_id: str, pages: int) -> int:
        self.faults.fire("kvcache.alloc", seq=seq_id, pages=pages)
        start = self._pages.alloc(pages)
        if start is None:
            raise KVCacheOOM(
                f"no {pages}-page extent for {seq_id!r} "
                f"(free {self._pages.free_units}, largest {self._pages.largest_extent})"
            )
        return start

    def alloc(self, seq_id: str, tokens: int) -> KVSlab:
        """Reserve a bucketed slab able to hold ``tokens`` tokens.

        Raises:
            KVCacheOOM: when no extent fits even with every retired slab
                evicted (admission control catches this and queues).
        """
        capacity = self.config.bucket_for(max(1, tokens))
        pages = self._pages_for(capacity)
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            if seq_id in self._live:
                raise ValueError(f"sequence {seq_id!r} already owns a slab")
            while True:
                try:
                    start = retry_transient(
                        lambda: self._try_alloc(seq_id, pages),
                        retries=self.config.retries,
                        rng=self.faults.rng_for("kvcache.alloc"),
                        label="kvcache.alloc",
                        transient=(TransientFault,),
                    )
                    break
                except (FatalFault, TransientFault, KVCacheOOM) as exc:
                    injected = not isinstance(exc, KVCacheOOM)
                    if not self._evict_one():
                        if injected:
                            mark_isolated(exc)
                        raise KVCacheOOM(
                            f"arena exhausted allocating {pages} pages for "
                            f"{seq_id!r} with nothing left to evict"
                        ) from exc
                    if injected:
                        # The injection was absorbed by degrading to
                        # eviction; account it like the other fallbacks.
                        self.metrics.counter("fallback.evict").inc()
            slab = KVSlab(seq_id, start, pages, capacity, self.config, self._buffer)
            if self.config.quantized:
                slab.reset_scales()
            if self.sanitizer.enabled:
                slab.sanitizer = self.sanitizer
                slab.scope = self.scope
                slab.generation = self.sanitizer.carve(
                    self.scope, slab.lifecycle_key, start, pages
                )
                self.sanitizer.probe(self, "tables", "w")
            self._live[seq_id] = slab
            self._update_gauges()
            return slab

    def grow(self, slab: KVSlab, tokens: int) -> KVSlab:
        """Return a slab holding ``tokens``, copying rows when re-bucketing.

        A no-op while the current bucket still fits; otherwise allocates
        the next bucket, copies the ``length`` written rows layer by
        layer, and frees the old pages — the sequence never re-plans its
        graph, it just moves to the next prepared bucket.

        A *shared* (COW) slab always materializes here, even when the
        bucket still fits: growth precedes every decode step, and decode
        writes the next row — this is the copy-on-write barrier.
        """
        if slab.shared:
            return self.materialize(slab, max(tokens, slab.length))
        if tokens <= slab.capacity:
            return slab
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            length = slab.length
            self._forget(slab.seq_id)
            try:
                bigger = self.alloc(slab.seq_id, tokens)
            except KVCacheOOM:
                # Put the original back so the caller still owns a slab.
                self._live[slab.seq_id] = slab
                raise
            bigger.copy_rows_from(slab, length)
            self._drop_ref(slab.page_start, slab.pages)
            slab.freed = True
            if self.sanitizer.enabled:
                self.sanitizer.free_extent(self.scope, slab.lifecycle_key)
                self.sanitizer.probe(self, "tables", "w")
            self._update_gauges()
            return bigger

    # -- copy-on-write prefix sharing ----------------------------------------
    def share(self, parent: KVSlab, seq_id: str, prefix_tokens: int) -> KVSlab:
        """Alias ``parent``'s pages as a read-only COW child slab.

        The child starts at ``length == prefix_tokens`` — those rows are
        the shared prompt prefix, served from the parent's pages without
        a copy.  The parent's extent gains a reference, so freeing or
        evicting the parent leaves the pages alive until the last child
        materializes.  The child is carved under its own lifecycle key
        (kind ``"kv-cow"``), so the sanitizer tracks its whole
        share→materialize→free arc independently of the parent's.

        Raises:
            KVCacheUseAfterFree: ``parent`` was already freed.
            ValueError: ``prefix_tokens`` exceeds the parent's written
                rows, or ``seq_id`` already owns a slab.
        """
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            if parent.freed:
                if self.sanitizer.enabled:
                    self.sanitizer.use_extent(
                        self.scope, parent.lifecycle_key, parent.generation
                    )
                raise KVCacheUseAfterFree(
                    f"cannot share freed slab {parent.seq_id!r} with {seq_id!r}"
                )
            if not 0 < prefix_tokens <= parent.length:
                raise ValueError(
                    f"prefix of {prefix_tokens} tokens outside the parent's "
                    f"{parent.length} written rows"
                )
            if seq_id in self._live:
                raise ValueError(f"sequence {seq_id!r} already owns a slab")
            child = KVSlab(
                seq_id, parent.page_start, parent.pages, parent.capacity,
                self.config, self._buffer, shared=True,
            )
            child.length = prefix_tokens
            self._extent_refs[parent.page_start] = (
                self._extent_refs.get(parent.page_start, 1) + 1
            )
            if self.sanitizer.enabled:
                child.sanitizer = self.sanitizer
                child.scope = self.scope
                child.generation = self.sanitizer.carve(
                    self.scope, child.lifecycle_key,
                    parent.page_start, parent.pages, kind="kv-cow",
                )
                self.sanitizer.probe(self, "tables", "w")
            self._live[seq_id] = child
            self.metrics.counter("kvcache.prefix_shares").inc()
            self._update_gauges()
            return child

    def materialize(self, slab: KVSlab, tokens: int = 0) -> KVSlab:
        """Give a COW child its own pages (the copy-on-write fault).

        Allocates a private slab holding ``max(tokens, length)``, copies
        the shared prefix rows out of the parent extent, and drops the
        child's reference on it — the parent's pages free only when the
        last reference is gone.  Non-shared slabs pass through untouched.

        Raises:
            KVCacheOOM: no room even after eviction; the caller still
                owns the original shared slab.
        """
        if not slab.shared:
            return slab
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            length = slab.length
            self._forget(slab.seq_id)
            try:
                own = self.alloc(slab.seq_id, max(tokens, length, 1))
            except KVCacheOOM:
                self._live[slab.seq_id] = slab
                raise
            # Copy while the shared views are still valid; the eviction
            # ladder inside alloc() cannot have freed the parent extent,
            # because this child's reference pins it.
            own.copy_rows_from(slab, length)
            slab.freed = True
            if self.sanitizer.enabled:
                self.sanitizer.free_extent(self.scope, slab.lifecycle_key)
                self.sanitizer.probe(self, "tables", "w")
            self._drop_ref(slab.page_start, slab.pages)
            self.metrics.counter("kvcache.cow_materializes").inc()
            self._update_gauges()
            return own

    def _drop_ref(self, page_start: int, pages: int) -> None:
        """Release one reference on an extent; free it on the last drop.

        Called with the lock held.  Extents never shared are implicitly
        at refcount 1 and free immediately.
        """
        refs = self._extent_refs.get(page_start, 1)
        if refs > 1:
            self._extent_refs[page_start] = refs - 1
            return
        self._extent_refs.pop(page_start, None)
        self._pages.free(page_start, pages)

    # -- release / eviction --------------------------------------------------
    def release(self, slab: KVSlab, evictable: bool = False) -> None:
        """Give the slab up: free its pages now, or retire it for lazy
        reclamation under pressure (LRU)."""
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            self._forget(slab.seq_id)
            if slab.freed:
                return
            if evictable:
                self._retired[slab.seq_id] = slab
                self._retired.move_to_end(slab.seq_id)
                if self.sanitizer.enabled:
                    self.sanitizer.retire_extent(self.scope, slab.lifecycle_key)
            else:
                self._drop_ref(slab.page_start, slab.pages)
                slab.freed = True
                if self.sanitizer.enabled:
                    self.sanitizer.free_extent(self.scope, slab.lifecycle_key)
            if self.sanitizer.enabled:
                self.sanitizer.probe(self, "tables", "w")
            self._update_gauges()

    def _forget(self, seq_id: str) -> None:
        """Drop the sequence from both tables.  Called with the lock held."""
        self._live.pop(seq_id, None)
        self._retired.pop(seq_id, None)

    def _evict_one(self) -> bool:
        """Reclaim the least-recently-retired slab; False when none left."""
        if not self._retired:
            return False
        _, slab = self._retired.popitem(last=False)
        self._drop_ref(slab.page_start, slab.pages)
        slab.freed = True
        if self.sanitizer.enabled:
            self.sanitizer.free_extent(self.scope, slab.lifecycle_key)
        self.metrics.counter("kvcache.evictions").inc()
        return True

    # -- teardown ------------------------------------------------------------
    def close(self) -> List[LifecycleFinding]:
        """Run the lifecycle leak check and return its findings.

        Live slabs at close are leaks (someone allocated and never
        released); *retired* slabs are not — they are the LRU-evictable
        warm set, reclaimed by design whenever pressure needs them.  The
        check only observes; it does not free anything, so a reported
        leak stays reproducible in the allocator's state.
        """
        if not self.sanitizer.enabled:
            return []
        with self.sanitizer.locked(self._lock, "kvcache.lock"):
            return self.sanitizer.close_scope(self.scope)

    # -- introspection -------------------------------------------------------
    @property
    def free_pages(self) -> int:
        with self._lock:
            return self._pages.free_units

    @property
    def used_pages(self) -> int:
        return self.config.total_pages - self.free_pages

    def page_utilization(self) -> float:
        """Fraction of arena pages owned by live or retired slabs."""
        return self.used_pages / self.config.total_pages

    def token_utilization(self) -> float:
        """Written tokens over bucketed capacity across live slabs."""
        with self._lock:
            cap = sum(s.capacity for s in self._live.values())
            used = sum(s.length for s in self._live.values())
        return used / cap if cap else 1.0

    def _update_gauges(self) -> None:
        self.metrics.gauge("kvcache.used_pages").set(
            self.config.total_pages - self._pages.free_units
        )
        self.metrics.gauge("kvcache.live_slabs").set(len(self._live))

    def to_memory_plan(self) -> MemoryPlan:
        """Snapshot the resident layout as a standard :class:`MemoryPlan`.

        Every slab (live and retired) is co-live at step 0, so the plan's
        own :meth:`~repro.core.memory.MemoryPlan.validate` and the
        graph-free sanitizer (:func:`repro.analysis.check_slab_plan`)
        prove the dynamic allocator alias-free exactly like the static
        planner's output.
        """
        with self._lock:
            # COW children alias a parent extent: including one would be
            # a false mem-overlap (the aliasing is the whole point).
            slabs = [
                s for s in list(self._live.values()) + list(self._retired.values())
                if not s.shared
            ]
            offsets = {s.seq_id: s.offset_bytes for s in slabs}
            lifetimes = {
                s.seq_id: TensorLifetime(s.seq_id, s.nbytes, 0, 0) for s in slabs
            }
            arena = self.config.total_pages * self.config.page_bytes
            return MemoryPlan(
                offsets=offsets,
                arena_bytes=arena,
                total_tensor_bytes=sum(s.nbytes for s in slabs),
                lifetimes=lifetimes,
            )

    def check(self):
        """Run the independent sanitizer over the current layout."""
        from ..analysis.memcheck import check_slab_plan

        plan = self.to_memory_plan()
        plan.validate()
        with self._lock:
            caps = {
                s.seq_id: s.capacity
                for s in list(self._live.values()) + list(self._retired.values())
                if not s.shared
            }
        return check_slab_plan(
            plan,
            page_bytes=self.config.page_bytes,
            per_token_bytes=self.config.per_token_bytes,
            token_capacities=caps,
        )
