"""Prefill: run a whole prompt through a bucketed, pre-prepared graph.

Autoregressive serving seems to contradict the paper's core premise —
pre-inference (Section 3.2) assumes fixed shapes, generation does not.
The resolution is *shape bucketing*: prompts run on the smallest prepared
``full``-mode graph whose length bucket fits, padded up.  Padding is free
correctness-wise because the decoder is causal — logits and K/V rows
``[:prompt_len]`` never see the padding positions — and cheap
latency-wise because buckets double, bounding overwork at 2x.

Each bucket's session is created once (the prepare/execute split of
Figure 3, amortized across every prompt that lands in the bucket),
warmed through the :class:`~repro.serving.PreInferenceCache`, and shared
through a :class:`~repro.serving.SessionPool`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.memory import MemoryPlan
from ..core.session import Session, SessionArtifacts, SessionConfig
from ..faults.errors import TransientFault
from ..faults.plan import FaultPlan, get_fault_plan
from ..faults.resilience import retry_transient
from ..ir.graph import Graph
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.tracer import Tracer, get_tracer
from ..serving.cache import PreInferenceArtifacts, PreInferenceCache
from ..serving.pool import SessionPool
from .kvcache import KVSlab

__all__ = ["length_buckets", "bucket_for_length", "PrefillRunner", "cached_session"]


def length_buckets(max_seq: int, smallest: int = 8) -> List[int]:
    """Doubling prompt-length buckets ending exactly at ``max_seq``."""
    buckets: List[int] = []
    cap = min(smallest, max_seq)
    while cap < max_seq:
        buckets.append(cap)
        cap *= 2
    buckets.append(max_seq)
    return buckets


def bucket_for_length(length: int, buckets: List[int]) -> int:
    """Smallest bucket >= ``length``; raises past the largest."""
    for cap in buckets:
        if cap >= length:
            return cap
    raise ValueError(f"length {length} exceeds largest bucket {buckets[-1]}")


def cached_session(
    graph: Graph,
    config: SessionConfig,
    cache: Optional[PreInferenceCache],
    tracer: Tracer,
    faults: FaultPlan,
    retries: int = 3,
    donor: Optional[MemoryPlan] = None,
) -> Session:
    """Build one session, warmed through the pre-inference cache.

    A per-bucket copy of ``Engine._create_session``'s contract: look the
    artifacts up by (graph, config) key, apply on hit, persist on miss,
    and degrade to cacheless on persistent cache IO faults
    (``fallback.cache``) — the cache can never take down preparation.

    ``donor`` optionally seeds the session with an adjacent bucket's
    memory plan: on a cache miss the session tries
    :func:`repro.core.memory.adapt_plan` (re-proven by memcheck) before
    planning from scratch, so sibling buckets share one arena layout.
    """

    def cache_io(fn, label: str):
        try:
            return retry_transient(
                fn, retries=retries, rng=faults.rng_for(label), label=label
            )
        except TransientFault:
            get_metrics().counter("fallback.cache").inc()
            return None

    artifacts = None
    hit = False
    if cache is not None:
        key = cache.key(graph, config)
        cached = cache_io(lambda: cache.load(key), "cache.load")
        if cached is not None:
            artifacts = cached.apply()
            hit = True
        tracer.instant("cache.hit" if hit else "cache.miss", "genai", key=key)
    if donor is not None:
        if artifacts is None:
            artifacts = SessionArtifacts(plan_donor=donor)
        elif artifacts.plan_donor is None:
            artifacts.plan_donor = donor
    session = Session(graph, config, artifacts=artifacts)
    if cache is not None and not hit:
        cache_io(
            lambda: cache.store(key, PreInferenceArtifacts.from_session(session)),
            "cache.store",
        )
    return session


class PrefillRunner:
    """Bucketed prompt execution writing K/V rows straight into a slab."""

    def __init__(
        self,
        build_graph: Callable[[int], Graph],
        max_seq: int,
        layers: int,
        pool_size: int = 1,
        smallest_bucket: int = 8,
        session_config: Optional[SessionConfig] = None,
        cache: Optional[PreInferenceCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultPlan] = None,
        retries: int = 3,
    ) -> None:
        self.build_graph = build_graph
        self.layers = layers
        self.buckets = length_buckets(max_seq, smallest_bucket)
        self.pool_size = pool_size
        self.session_config = session_config if session_config is not None else SessionConfig()
        self.cache = cache
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.faults = faults if faults is not None else get_fault_plan()
        self.retries = retries
        self._pools: Dict[int, SessionPool] = {}
        # Largest memory plan built by any bucket so far: donated to the
        # next bucket's sessions so adjacent buckets share one arena
        # layout instead of re-planning per bucket.
        self._donor_plan: Optional[MemoryPlan] = None

    def _offer_donor(self, plan: Optional[MemoryPlan]) -> None:
        if plan is None:
            return
        if self._donor_plan is None or plan.arena_bytes > self._donor_plan.arena_bytes:
            self._donor_plan = plan

    def _pool(self, bucket: int) -> SessionPool:
        pool = self._pools.get(bucket)
        if pool is None:
            graph = self.build_graph(bucket)
            config = replace(self.session_config, faults=self.faults)

            def factory(graph=graph, config=config) -> Session:
                session = cached_session(
                    graph, config, self.cache, self.tracer, self.faults,
                    self.retries, donor=self._donor_plan,
                )
                self._offer_donor(session.memory_plan)
                return session

            pool = SessionPool(
                factory,
                self.pool_size,
                metrics=self.metrics,
                tracer=self.tracer,
                faults=self.faults,
                retries=self.retries,
            )
            self._pools[bucket] = pool
        return pool

    def warm(self) -> None:
        """Prepare every bucket up front (the Figure-3 prepare phase).

        Largest bucket first: its memory plan becomes the donor every
        smaller bucket adapts (same tensors, same liveness intervals,
        smaller sizes), so the whole bucket ladder shares one arena
        layout and plans memory exactly once.
        """
        for bucket in reversed(self.buckets):
            self._pool(bucket)

    def run(self, prompt: List[int], slab: KVSlab) -> np.ndarray:
        """Execute the prompt; fill ``slab`` rows ``[:len(prompt)]``.

        Returns the last prompt token's logits row ``(vocab,)`` — the
        distribution the first generated token is sampled from.
        """
        n = len(prompt)
        if n < 1:
            raise ValueError("empty prompt")
        if slab.capacity < n:
            raise ValueError(
                f"slab capacity {slab.capacity} cannot hold a {n}-token prompt"
            )
        bucket = bucket_for_length(n, self.buckets)
        tokens = np.zeros((1, bucket), np.int32)
        tokens[0, :n] = np.asarray(prompt, np.int32)
        positions = np.arange(bucket, dtype=np.int32).reshape(1, bucket)
        with self.tracer.span("genai.prefill", "genai", tokens=n, bucket=bucket):
            with self._pool(bucket).acquire() as session:
                out = session.run({"tokens": tokens, "positions": positions})
        for layer in range(self.layers):
            slab.write_k(layer, 0, out[f"l{layer}_k"][0, :, :n, :])
            slab.write_v(layer, 0, out[f"l{layer}_v"][0, :, :n, :])
        slab.length = n
        self.metrics.counter("genai.prefill_tokens").inc(n)
        return out["logits"][0, n - 1]

    def close(self) -> None:
        self._pools.clear()
