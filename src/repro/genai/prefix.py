"""KV prefix cache: a token-id trie over retired sequences' slabs.

Serving workloads repeat prompt prefixes constantly — few-shot headers,
system prompts, chat history — and every repeat re-prefills K/V rows that
are a *deterministic function of the token prefix* (causal attention
never looks right, so rows ``[:p]`` depend only on tokens ``[:p]``).
MNN-LLM's biggest serving win is exploiting that: serve the common
prefix's rows from a finished sequence's retained slab and decode only
the suffix.

The trie maps token-id paths to retired :class:`~.kvcache.KVSlab`\\ s.  A
slab covering ``m`` tokens is registered at *every* depth ``1..m`` along
its path, so a new prompt sharing any prefix length finds the deepest
usable entry in one walk.  Matches are shared copy-on-write through
:meth:`~.kvcache.KVCacheAllocator.share`; a registered slab that was
since evicted (``freed``) is skipped and pruned lazily.

Bit-identity is the contract, not an aspiration: the shared rows are
byte-for-byte the rows prefill would have written (same tokens, same
deterministic kernels), and decode-equals-full is already proven at
every position by the genai test suite — so a prefix-hit generation is
token-identical to a cold one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .kvcache import KVSlab

__all__ = ["PrefixCache"]


class _Node:
    """One trie node: children by next token id, plus the best slab here."""

    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.entry: Optional[KVSlab] = None


class PrefixCache:
    """Token-id trie from prompt prefixes to retired KV slabs.

    Not thread-safe by itself: the continuous-batching scheduler (its
    only caller) is single-threaded by contract, and the allocator calls
    it delegates to take the allocator lock.

    Args:
        min_prefix: shortest prefix worth sharing — below this the COW
            bookkeeping costs more than re-prefilling a few tokens.
        max_entries: bound on registered slabs; inserting past it drops
            the oldest registration (its slab stays retired in the
            allocator's LRU, it just stops being prefix-discoverable).
    """

    def __init__(self, min_prefix: int = 4, max_entries: int = 128) -> None:
        if min_prefix < 1:
            raise ValueError(f"min_prefix must be >= 1, got {min_prefix}")
        self.min_prefix = min_prefix
        self.max_entries = max_entries
        self._root = _Node()
        self._order: List[Tuple[Tuple[int, ...], KVSlab]] = []

    def __len__(self) -> int:
        return len(self._order)

    def insert(self, tokens: Sequence[int], slab: KVSlab) -> None:
        """Register ``slab`` as covering ``tokens[:slab.length]``.

        The slab is recorded at every node along the path, so prompts
        sharing only part of it still find the entry at their divergence
        depth.  Later registrations overwrite earlier ones at shared
        nodes (fresher slabs are less likely to have been evicted).
        """
        path = list(tokens)[: slab.length]
        if len(path) < self.min_prefix or slab.freed:
            return
        node = self._root
        for token in path:
            node = node.children.setdefault(int(token), _Node())
            node.entry = slab
        self._order.append((tuple(path), slab))
        while len(self._order) > self.max_entries:
            old_path, old_slab = self._order.pop(0)
            self._remove(old_path, old_slab)

    def match(self, prompt: Sequence[int]) -> Optional[Tuple[KVSlab, int]]:
        """Deepest live slab covering a prefix of ``prompt``.

        Returns ``(slab, depth)`` with ``min_prefix <= depth <=
        len(prompt) - 1`` — never the whole prompt, because the caller
        must decode at least the last token to get sampling logits —
        or ``None``.  Freed (evicted) entries are skipped and unlinked
        lazily during the walk.
        """
        node = self._root
        best: Optional[Tuple[KVSlab, int]] = None
        limit = len(prompt) - 1
        for depth, token in enumerate(prompt, start=1):
            if depth > limit:
                break
            node = node.children.get(int(token))
            if node is None:
                break
            entry = node.entry
            if entry is not None and entry.freed:
                node.entry = entry = None
            if entry is not None and depth >= self.min_prefix:
                # Only rows actually written in the donor are reusable.
                usable = min(depth, entry.length)
                if usable >= self.min_prefix:
                    best = (entry, min(usable, limit))
        return best

    def _remove(self, path: Tuple[int, ...], slab: KVSlab) -> None:
        """Unlink one registration (only where it is still the entry)."""
        node = self._root
        for token in path:
            node = node.children.get(token)
            if node is None:
                return
            if node.entry is slab:
                node.entry = None
