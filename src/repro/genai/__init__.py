"""repro.genai — autoregressive decoding on a fixed-shape engine.

The paper's pre-inference pipeline (Section 3.2) assumes static shapes;
token-by-token generation is the workload that most obviously violates
that.  This package closes the gap with three ideas, each its own
module:

* **KV-cache memory planning** (:mod:`~repro.genai.kvcache`): per-
  sequence K/V lives in page-granular, capacity-bucketed slabs inside
  one pre-allocated arena, allocated best-fit and reclaimed by LRU
  eviction under pressure — the dynamic sibling of the static arena
  planner, provable by the same memory sanitizer.
* **Decode-step pre-inference** (:mod:`~repro.genai.prefill` /
  :mod:`~repro.genai.decode`): bucket every shape the loop can see
  (prompt length, batch size, KV capacity) and prepare one session per
  bucket, so the paper's prepare/execute split survives dynamic lengths.
* **Continuous batching** (:mod:`~repro.genai.scheduler`): requests
  join and leave the running batch at token boundaries, admitted only
  when the KV allocator can stake them a slab.

:class:`~repro.genai.GenerationEngine` ties them together behind one
``generate(prompts)`` call; :mod:`~repro.genai.sampling` keeps the only
intentionally random stage seeded per request.  Decoding with the cache
is *bit-identical* to full-sequence recompute (the kernels are strictly
per-row), which the acceptance tests assert for 32-token generations.
"""

from .decode import DecodeRunner, batch_buckets, bucket_for_batch
from .engine import GenerationConfig, GenerationEngine
from .kvcache import KVCacheAllocator, KVCacheConfig, KVCacheOOM, KVSlab
from .prefill import PrefillRunner, bucket_for_length, cached_session, length_buckets
from .prefix import PrefixCache
from .sampling import Sampler, SamplingParams, greedy
from .scheduler import ContinuousBatchScheduler, GenRequest, GenResult

__all__ = [
    "KVCacheAllocator",
    "KVCacheConfig",
    "KVCacheOOM",
    "KVSlab",
    "PrefillRunner",
    "DecodeRunner",
    "length_buckets",
    "bucket_for_length",
    "batch_buckets",
    "bucket_for_batch",
    "cached_session",
    "PrefixCache",
    "Sampler",
    "SamplingParams",
    "greedy",
    "ContinuousBatchScheduler",
    "GenRequest",
    "GenResult",
    "GenerationConfig",
    "GenerationEngine",
]
