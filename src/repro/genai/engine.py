"""GenerationEngine: the autoregressive front door.

Mirrors :class:`repro.serving.Engine`'s shape — one config object, one
entry point, shared observability/fault plumbing — but swaps the
request-in/logits-out contract for prompt-in/tokens-out.  Construction
is the prepare phase: the KV arena, the bucketed prefill pools and the
(batch, capacity) decode grid all come up before the first prompt, so
``generate`` is pure execute (paper Figure 3, stretched across the
decode loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from ..core.session import SessionConfig
from ..faults.plan import FaultPlan, get_fault_plan
from ..ir.graph import Graph
from ..models.text import tiny_decoder
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.requests import RequestTracker, resolve_request_tracker
from ..obs.resources import ResourceSampler
from ..obs.tracer import Tracer, get_tracer
from ..sanitize import Sanitizer, resolve_sanitizer
from ..serving.cache import PreInferenceCache
from .decode import DecodeRunner
from .kvcache import KVCacheAllocator, KVCacheConfig
from .prefill import PrefillRunner
from .prefix import PrefixCache
from .sampling import SamplingParams
from .scheduler import ContinuousBatchScheduler, GenRequest, GenResult

__all__ = ["GenerationConfig", "GenerationEngine"]


@dataclass
class GenerationConfig:
    """Everything the generation engine needs, in one place.

    The model fields parameterize :func:`repro.models.tiny_decoder`; the
    serving fields mirror :class:`repro.serving.EngineConfig`.
    ``capacity_tokens`` defaults to two full batches of ``max_seq`` —
    enough that admission control, not raw capacity, is the common case.
    """

    vocab: int = 256
    max_seq: int = 64
    d_model: int = 64
    heads: int = 4
    layers: int = 2
    seed: int = 0

    max_batch: int = 4
    page_tokens: int = 8
    capacity_tokens: Optional[int] = None
    prefill_pool: int = 1
    smallest_bucket: int = 8
    retain_kv: bool = True
    #: Serve common prompt prefixes from retired sequences' KV slabs
    #: (copy-on-write) instead of re-prefilling.  Opt-in; requires
    #: ``retain_kv`` to have anything to match against.  Token outputs
    #: are bit-identical with the cache on or off.
    prefix_cache: bool = False
    #: Shortest prefix worth sharing; shorter matches re-prefill.
    min_prefix_tokens: int = 4
    #: KV-cache storage dtype: ``"float32"`` (verbatim rows) or
    #: ``"int8"`` (per-row symmetric quantization, dequant-on-read —
    #: ~3-4x more tokens per arena byte; see :mod:`repro.quant.kv`).
    #: Quantized decode stays deterministic and seeded-replayable: the
    #: quantized bytes are a pure function of each row, and admission
    #: routes every sampled logit through the decode path so execution
    #: provenance is identical on every scheduling/fault path.
    kv_dtype: str = "float32"
    #: Quantize the decoder's MatMul weights to int8 at build time via
    #: :func:`repro.quant.quantize_graph` (weight-only; activations
    #: quantize dynamically per row inside the int8 GEMM).  Orthogonal
    #: to ``kv_dtype``.
    quantize_weights: bool = False

    session: SessionConfig = field(default_factory=SessionConfig)
    use_cache: bool = False
    cache_dir: Optional[str] = None
    trace: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    faults: Optional[FaultPlan] = None
    retries: int = 3
    #: ``True`` builds one enabled :class:`repro.sanitize.Sanitizer` and
    #: threads it through the allocator, scheduler, cache and every
    #: worker session, so races/lock cycles/KV lifecycle bugs across the
    #: whole generation stack land in a single report.
    sanitize: Union[bool, Sanitizer] = False
    #: Request-level observability: a :class:`repro.obs.RequestTracker`
    #: (attach a :class:`repro.obs.FlightRecorder` to it for postmortem
    #: dumps), ``True`` for a fresh tracker observing SLO histograms
    #: (queue wait / TTFT / TPOT / tokens-per-sec) into this engine's
    #: registry, or ``None`` for the process-wide tracker (disabled by
    #: default).
    requests: Union[bool, RequestTracker, None] = None


class GenerationEngine:
    """Continuous-batching generation over one decoder model."""

    def __init__(self, config: Optional[GenerationConfig] = None, **overrides) -> None:
        if config is None:
            config = GenerationConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides, not both")
        self.config = config
        self.metrics = config.metrics if config.metrics is not None else get_metrics()
        self.tracer = config.trace if config.trace is not None else get_tracer()
        self.faults = config.faults if config.faults is not None else get_fault_plan()
        self.sanitizer = resolve_sanitizer(config.sanitize, metrics=self.metrics)
        session_config = config.session
        if self.sanitizer.enabled and session_config.sanitize is False:
            # One detector spans the allocator, the scheduler and every
            # prefill/decode worker session — cross-component findings
            # need one shared vector-clock space.
            session_config = replace(session_config, sanitize=self.sanitizer)
        capacity = (
            config.capacity_tokens
            if config.capacity_tokens is not None
            else 2 * config.max_batch * config.max_seq
        )
        self.kv_config = KVCacheConfig(
            layers=config.layers,
            heads=config.heads,
            d_head=config.d_model // config.heads,
            page_tokens=config.page_tokens,
            capacity_tokens=capacity,
            max_seq=config.max_seq,
            retries=config.retries,
            kv_dtype=config.kv_dtype,
        )
        self.allocator = KVCacheAllocator(
            self.kv_config, metrics=self.metrics, faults=self.faults,
            sanitizer=self.sanitizer,
        )
        cache = (
            PreInferenceCache(
                config.cache_dir, metrics=self.metrics, faults=self.faults,
                sanitizer=self.sanitizer,
            )
            if config.use_cache else None
        )
        self.cache = cache
        self.prefill = PrefillRunner(
            self._full_graph,
            max_seq=config.max_seq,
            layers=config.layers,
            pool_size=config.prefill_pool,
            smallest_bucket=config.smallest_bucket,
            session_config=session_config,
            cache=cache,
            metrics=self.metrics,
            tracer=self.tracer,
            faults=self.faults,
            retries=config.retries,
        )
        self.decode = DecodeRunner(
            self._decode_graph,
            layers=config.layers,
            max_batch=config.max_batch,
            session_config=session_config,
            cache=cache,
            metrics=self.metrics,
            tracer=self.tracer,
            faults=self.faults,
            retries=config.retries,
        )
        self.prefix_cache = (
            PrefixCache(min_prefix=config.min_prefix_tokens)
            if config.prefix_cache else None
        )
        self.requests = resolve_request_tracker(config.requests, self.metrics)
        # KV/arena counter tracks for Perfetto and BENCH series, sampled
        # by the scheduler at every decode-step boundary; only built when
        # a tracker or tracer is actually watching.
        self.sampler: Optional[ResourceSampler] = None
        if self.requests.enabled or self.tracer.enabled:
            self.sampler = ResourceSampler(
                sources={
                    "res.kv.page_utilization": self.allocator.page_utilization,
                    "res.kv.token_utilization": self.allocator.token_utilization,
                    "res.kv.free_pages": (
                        lambda: float(self.allocator.free_pages)
                    ),
                    "res.prefix.hit_rate": self._prefix_hit_rate,
                },
                tracer=self.tracer,
                metrics=self.metrics,
            )
        self.scheduler = ContinuousBatchScheduler(
            self.prefill,
            self.decode,
            self.allocator,
            max_batch=config.max_batch,
            max_seq=config.max_seq,
            retain_kv=config.retain_kv,
            metrics=self.metrics,
            tracer=self.tracer,
            sanitizer=self.sanitizer,
            prefix_cache=self.prefix_cache,
            requests=self.requests,
            sampler=self.sampler,
        )

    def _prefix_hit_rate(self) -> float:
        served = self.metrics.value("genai.requests")
        hits = self.metrics.value("genai.prefix_hits")
        return hits / served if served else 0.0

    # -- graph variants (one weight set, many shapes) ------------------------
    def _model_kwargs(self) -> Dict[str, int]:
        c = self.config
        return dict(
            vocab=c.vocab, max_seq=c.max_seq, d_model=c.d_model,
            heads=c.heads, layers=c.layers, seed=c.seed,
        )

    def _maybe_quantize(self, graph: Graph) -> Graph:
        if not self.config.quantize_weights:
            return graph
        # Both the full and decode variants are built from the same seed,
        # so their shared weight constants quantize to identical int8
        # bytes and scales — and because the int8 GEMM accumulates in
        # exact int32, decode-vs-full bit-identity survives quantization.
        from ..quant import quantize_graph

        return quantize_graph(graph)

    def _full_graph(self, seq_len: int) -> Graph:
        return self._maybe_quantize(
            tiny_decoder(mode="full", seq_len=seq_len, batch=1, **self._model_kwargs())
        )

    def _decode_graph(self, batch: int, capacity: int) -> Graph:
        return self._maybe_quantize(tiny_decoder(
            mode="decode", batch=batch, cache_len=capacity, **self._model_kwargs()
        ))

    # -- the front door ------------------------------------------------------
    def generate(
        self,
        prompts: Sequence[Union[Sequence[int], GenRequest]],
        params: Optional[SamplingParams] = None,
    ) -> List[GenResult]:
        """Generate for every prompt; results in input order.

        ``prompts`` may be raw token lists (wrapped as requests
        ``req-0``, ``req-1``... sharing ``params``) or pre-built
        :class:`GenRequest` objects for per-request control.
        """
        shared = params if params is not None else SamplingParams()
        requests: List[GenRequest] = []
        for i, p in enumerate(prompts):
            if isinstance(p, GenRequest):
                requests.append(p)
            else:
                requests.append(GenRequest(f"req-{i}", list(p), shared))
        with self.tracer.span("genai.generate", "genai", requests=len(requests)):
            return self.scheduler.run(requests)

    def warm(self) -> None:
        """Prepare every prefill bucket eagerly (decode cells prepare on
        first use, since the grid depends on observed lengths)."""
        self.prefill.warm()

    def stats(self) -> Dict[str, float]:
        """KV-arena and throughput counters for dashboards/benchmarks."""
        return {
            "kv_page_utilization": self.allocator.page_utilization(),
            "kv_token_utilization": self.allocator.token_utilization(),
            "kv_free_pages": float(self.allocator.free_pages),
            "kv_bytes_per_token": float(self.kv_config.per_token_bytes),
            "prefill_tokens": float(self.metrics.value("genai.prefill_tokens")),
            "decode_tokens": float(self.metrics.value("genai.decode_tokens")),
            "requests": float(self.metrics.value("genai.requests")),
            "request_errors": float(self.metrics.value("genai.request_errors")),
            "evictions": float(self.metrics.value("kvcache.evictions")),
            "decode_sessions": float(len(self.decode.prepared)),
            "prefix_hits": float(self.metrics.value("genai.prefix_hits")),
            "prefix_hit_tokens": float(self.metrics.value("genai.prefix_hit_tokens")),
            "cow_materializes": float(self.metrics.value("kvcache.cow_materializes")),
        }

    def close(self) -> None:
        self.prefill.close()
        self.decode.close()
        # Leak check last: any slab still *live* here was allocated and
        # never released.  Findings land in self.sanitizer.report().
        self.allocator.close()
        if self.sanitizer.enabled and self.requests.enabled:
            report = self.sanitizer.report()
            findings = {
                "races": len(report.races),
                "lock_cycles": len(report.lock_cycles),
                "lifecycle": len(report.lifecycle),
            }
            if any(findings.values()):
                # A dirty sanitizer report is a postmortem trigger like
                # any fault: dump counts (not finding text, which embeds
                # run-varying object ids) so the artifact stays
                # deterministic.
                self.requests.dump("sanitizer", findings=findings)
