"""Host fingerprinting for benchmark provenance.

The device catalog (:mod:`repro.devices.catalog`) describes the *paper's*
phones; this module describes the machine actually running the
benchmarks.  Every ``BENCH_*.json`` record is stamped with the host
fingerprint so the regression gate (:mod:`repro.obs.regress`) can refuse
to compare wall-clock numbers measured on different machines — the
classic way a "regression" turns out to be a laptop-vs-CI artifact.

The fingerprint is intentionally coarse (platform, machine, CPU count,
python major.minor): stable across reboots and virtualenv rebuilds of
the same box, different across genuinely different hardware.
"""

from __future__ import annotations

import os
import platform
import sys
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["HostFingerprint", "host_fingerprint"]


@dataclass(frozen=True)
class HostFingerprint:
    """Coarse identity of the benchmarking host."""

    system: str
    machine: str
    cpu_count: int
    python: str

    @property
    def key(self) -> str:
        """Short stable id, e.g. ``linux-x86_64-c8-py3.11``."""
        return (
            f"{self.system.lower()}-{self.machine.lower()}"
            f"-c{self.cpu_count}-py{self.python}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "machine": self.machine,
            "cpu_count": self.cpu_count,
            "python": self.python,
            "key": self.key,
        }


_CACHED: Optional[HostFingerprint] = None


def host_fingerprint() -> HostFingerprint:
    """The current host's fingerprint (computed once per process)."""
    global _CACHED
    if _CACHED is None:
        _CACHED = HostFingerprint(
            system=platform.system() or "unknown",
            machine=platform.machine() or "unknown",
            cpu_count=os.cpu_count() or 1,
            python=f"{sys.version_info.major}.{sys.version_info.minor}",
        )
    return _CACHED
