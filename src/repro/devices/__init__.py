"""Device capability catalog (paper Appendix C constants)."""

from .specs import (
    DEFAULT_CPU_FLOPS,
    DEFAULT_GPU_FLOPS,
    GPU_FLOPS_TABLE,
    T_SCHEDULE_MS,
    DeviceSpec,
    GpuApi,
)
from .catalog import DEVICES, get_device

__all__ = [
    "DEFAULT_CPU_FLOPS",
    "DEFAULT_GPU_FLOPS",
    "GPU_FLOPS_TABLE",
    "T_SCHEDULE_MS",
    "DeviceSpec",
    "GpuApi",
    "DEVICES",
    "get_device",
]
