"""Device capability catalog (paper Appendix C constants)."""

from .specs import (
    DEFAULT_CPU_FLOPS,
    DEFAULT_GPU_FLOPS,
    GPU_FLOPS_TABLE,
    T_SCHEDULE_MS,
    DeviceSpec,
    GpuApi,
)
from .catalog import DEVICES, get_device
from .host import HostFingerprint, host_fingerprint

__all__ = [
    "HostFingerprint",
    "host_fingerprint",
    "DEFAULT_CPU_FLOPS",
    "DEFAULT_GPU_FLOPS",
    "GPU_FLOPS_TABLE",
    "T_SCHEDULE_MS",
    "DeviceSpec",
    "GpuApi",
    "DEVICES",
    "get_device",
]
