"""Catalog of the devices used throughout the paper's evaluation.

CPU core frequencies come from public SoC spec sheets; GPU FLOPS come from
the paper's own Appendix C table via :mod:`repro.devices.specs`.
"""

from __future__ import annotations

from typing import Dict

from .specs import DeviceSpec, GpuApi

__all__ = ["DEVICES", "get_device"]

_ANDROID_APIS = (GpuApi.OPENCL, GpuApi.OPENGL, GpuApi.VULKAN)

DEVICES: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in [
        # --- Figure 7 devices -------------------------------------------------
        DeviceSpec(
            name="iPhoneX",
            cpu_ipc=2.2,
            soc="Apple A11 Bionic",
            cpu_core_ghz=(2.39, 2.39, 1.42, 1.42, 1.42, 1.42),
            gpu="Apple A11 GPU",
            gpu_apis=(GpuApi.METAL,),
            os="ios",
        ),
        DeviceSpec(
            name="iPhone8",
            cpu_ipc=2.2,
            soc="Apple A11 Bionic",
            cpu_core_ghz=(2.39, 2.39, 1.42, 1.42, 1.42, 1.42),
            gpu="Apple A11 GPU",
            gpu_apis=(GpuApi.METAL,),
            os="ios",
        ),
        DeviceSpec(
            name="MI6",
            cpu_ipc=0.55,
            soc="Snapdragon 835",
            cpu_core_ghz=(2.45, 2.45, 2.45, 2.45, 1.9, 1.9, 1.9, 1.9),
            gpu="Adreno 540",
            gpu_apis=_ANDROID_APIS,
        ),
        DeviceSpec(
            name="Mate20",
            cpu_ipc=1.6,
            soc="Kirin 980",
            cpu_core_ghz=(2.6, 2.6, 1.92, 1.92, 1.8, 1.8, 1.8, 1.8),
            gpu="Mali-G76",
            gpu_apis=_ANDROID_APIS,
        ),
        # --- Table 2 -----------------------------------------------------------
        DeviceSpec(
            name="P10",
            cpu_ipc=0.9,
            soc="Kirin 960",
            cpu_core_ghz=(2.4, 2.4, 2.4, 2.4, 1.8, 1.8, 1.8, 1.8),
            gpu="Mali-G71",
            gpu_apis=_ANDROID_APIS,
        ),
        # --- Figures 8/9 -------------------------------------------------------
        DeviceSpec(
            name="P20",
            cpu_ipc=0.9,
            soc="Kirin 970",
            cpu_core_ghz=(2.36, 2.36, 2.36, 2.36, 1.8, 1.8, 1.8, 1.8),
            gpu="Mali-G72",
            gpu_apis=_ANDROID_APIS,
        ),
        DeviceSpec(
            name="P20Pro",
            cpu_ipc=0.9,
            soc="Kirin 970",
            cpu_core_ghz=(2.36, 2.36, 2.36, 2.36, 1.8, 1.8, 1.8, 1.8),
            gpu="Mali-G72",
            gpu_apis=_ANDROID_APIS,
        ),
        # --- Table 5 -----------------------------------------------------------
        DeviceSpec(
            name="GalaxyS8",
            cpu_ipc=0.8,
            soc="Snapdragon 835",
            cpu_core_ghz=(2.35, 2.35, 2.35, 2.35, 1.9, 1.9, 1.9, 1.9),
            gpu="Adreno 540",
            gpu_apis=_ANDROID_APIS,
        ),
        # --- Tables 7/8 --------------------------------------------------------
        DeviceSpec(
            name="Pixel2",
            cpu_ipc=0.8,
            soc="Snapdragon 835",
            cpu_core_ghz=(2.35, 2.35, 2.35, 2.35, 1.9, 1.9, 1.9, 1.9),
            gpu="Adreno 540",
            gpu_apis=_ANDROID_APIS,
        ),
        DeviceSpec(
            name="Pixel3",
            cpu_ipc=1.1,
            soc="Snapdragon 845",
            cpu_core_ghz=(2.5, 2.5, 2.5, 2.5, 1.6, 1.6, 1.6, 1.6),
            gpu="Adreno 630",
            gpu_apis=_ANDROID_APIS,
        ),
        # --- Table 6: top-5 production devices ---------------------------------
        DeviceSpec(
            name="EML-AL00",  # Huawei P20
            cpu_ipc=0.9,
            soc="Kirin 970",
            cpu_core_ghz=(2.36, 2.36, 2.36, 2.36, 1.8, 1.8, 1.8, 1.8),
            gpu="Mali-G72",
            gpu_apis=_ANDROID_APIS,
        ),
        DeviceSpec(
            name="PBEM00",  # OPPO R17
            cpu_ipc=1.1,
            soc="SDM670",
            cpu_core_ghz=(2.0, 2.0, 1.7, 1.7, 1.7, 1.7, 1.7, 1.7),
            gpu="Adreno 615",
            gpu_apis=_ANDROID_APIS,
        ),
        DeviceSpec(
            name="PACM00",  # OPPO R15
            cpu_ipc=0.9,
            soc="Helio P60",
            cpu_core_ghz=(2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0),
            gpu="Mali-G72",
            gpu_apis=_ANDROID_APIS,
        ),
        DeviceSpec(
            name="COL-AL10",  # Honor 10
            cpu_ipc=0.9,
            soc="Kirin 970",
            cpu_core_ghz=(2.36, 2.36, 2.36, 2.36, 1.8, 1.8, 1.8, 1.8),
            gpu="Mali-G72",
            gpu_apis=_ANDROID_APIS,
        ),
        DeviceSpec(
            name="OPPO R11",
            cpu_ipc=0.85,
            soc="Snapdragon 660",
            cpu_core_ghz=(2.2, 2.2, 2.2, 2.2, 1.8, 1.8, 1.8, 1.8),
            gpu="Adreno 512",
            gpu_apis=_ANDROID_APIS,
        ),
        # --- a neutral "host" device for real-time local runs ------------------
        DeviceSpec(
            name="host",
            cpu_ipc=1.0,
            soc="host CPU",
            cpu_core_ghz=(2.0, 2.0, 2.0, 2.0),
            gpu="unknown",
            gpu_apis=_ANDROID_APIS,
        ),
    ]
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name.

    Raises:
        KeyError: with the list of known devices, if not found.
    """
    try:
        return DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
