"""Device capability models (paper Appendix C).

The paper's backend cost evaluation (Eq. 5) needs two constants per backend:

* ``FLOPS`` — for CPUs, the sum of the top-k core frequencies (k = thread
  count); for GPUs, a measured per-model table (reproduced verbatim below
  from Appendix C), defaulting to 4 GFLOPS for unknown GPUs.
* ``t_schedule`` — per-dispatch command overhead: 0.05 ms for OpenCL and
  OpenGL, 0.01 ms for Vulkan.  Metal is not given in the paper; we use
  0.03 ms (between the published values) and mark it calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "GpuApi",
    "DeviceSpec",
    "GPU_FLOPS_TABLE",
    "DEFAULT_GPU_FLOPS",
    "DEFAULT_CPU_FLOPS",
    "T_SCHEDULE_MS",
]

#: Appendix C list: GPU model -> FLOPS (in units of 1e9).
GPU_FLOPS_TABLE: Dict[str, float] = {
    "Mali-T860": 6.83,
    "Mali-T880": 6.83,
    "Mali-G51": 6.83,
    "Mali-G52": 6.83,
    "Mali-G71": 31.61,
    "Mali-G72": 31.61,
    "Mali-G76": 31.61,
    "Adreno 505": 3.19,
    "Adreno 506": 4.74,
    "Adreno 512": 14.23,
    "Adreno 530": 25.40,
    "Adreno 540": 42.74,
    "Adreno 615": 16.77,
    "Adreno 616": 18.77,
    "Adreno 618": 18.77,
    "Adreno 630": 42.74,
    "Adreno 640": 42.74,
    # Not in the paper's list: Apple's GPUs (the paper's iPhone results use
    # Metal).  Calibrated to land Metal between MNN-CPU-4t and CoreML in
    # Figure 7; documented in DESIGN.md as a substitution constant.
    "Apple A11 GPU": 38.0,
    "Apple A12 GPU": 48.0,
}

#: Paper fallback when a GPU model is unknown: "faster than CPU".
DEFAULT_GPU_FLOPS = 4e9
#: Paper fallback for non-Linux/Android CPUs.
DEFAULT_CPU_FLOPS = 2e9

#: Per-API dispatch overhead in milliseconds (Appendix C).
T_SCHEDULE_MS: Dict[str, float] = {
    "opencl": 0.05,
    "opengl": 0.05,
    "vulkan": 0.01,
    "metal": 0.03,  # calibrated; not published in the paper
}


class GpuApi:
    """Graphics/compute API names usable as backend identifiers."""

    METAL = "metal"
    OPENCL = "opencl"
    OPENGL = "opengl"
    VULKAN = "vulkan"

    ALL = (METAL, OPENCL, OPENGL, VULKAN)


@dataclass(frozen=True)
class DeviceSpec:
    """A phone/SoC capability model.

    Attributes:
        name: marketing device name (e.g. ``"MI6"``).
        soc: SoC name (e.g. ``"Snapdragon 835"``).
        cpu_core_ghz: per-core maximum frequencies in GHz, any order.
        gpu: GPU model name, looked up in :data:`GPU_FLOPS_TABLE`.
        gpu_apis: APIs available on this device (Metal on iOS; subsets of
            OpenCL/OpenGL/Vulkan on Android).
        os: ``"ios"`` or ``"android"``.
        cpu_ipc: sustained instructions-per-cycle factor of the CPU
            microarchitecture relative to a baseline in-order-ish A73 core.
            The paper's frequency-sum FLOPS index (Appendix C) cannot
            distinguish an Apple Monsoon from a Cortex-A73 at equal clocks;
            this factor restores that, calibrated once against the paper's
            own MNN-CPU measurements (see EXPERIMENTS.md) and then held
            fixed for every engine.
    """

    name: str
    soc: str
    cpu_core_ghz: Tuple[float, ...]
    gpu: str
    gpu_apis: Tuple[str, ...]
    os: str = "android"
    cpu_ipc: float = 1.0

    def cpu_flops(self, threads: int) -> float:
        """Sum of the top-``threads`` core frequencies, in FLOPS (Appendix C)."""
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if not self.cpu_core_ghz:
            return DEFAULT_CPU_FLOPS
        top = sorted(self.cpu_core_ghz, reverse=True)[:threads]
        return sum(top) * 1e9

    def gpu_flops(self) -> float:
        """GPU FLOPS from the Appendix C table (default for unknown models)."""
        return GPU_FLOPS_TABLE.get(self.gpu, DEFAULT_GPU_FLOPS / 1e9) * 1e9 \
            if self.gpu in GPU_FLOPS_TABLE else DEFAULT_GPU_FLOPS

    def t_schedule_ms(self, api: str) -> float:
        """Per-dispatch scheduling overhead for ``api`` in milliseconds."""
        try:
            return T_SCHEDULE_MS[api]
        except KeyError:
            raise ValueError(f"unknown GPU API {api!r}") from None

    def supports_api(self, api: str) -> bool:
        return api in self.gpu_apis
