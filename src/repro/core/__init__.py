"""Core engine: pre-inference, cost model, memory planning, sessions."""

from .cost import BackendCostModel, node_muls, strassen_mul_factor, winograd_tile_cost
from .memory import Arena, MemoryPlan, TensorLifetime, compute_lifetimes, plan_memory
from .autotune import TuneReport, autotune_schemes
from .schemes import (
    SchemeConfig,
    SchemeDecision,
    select_conv_scheme,
    select_graph_schemes,
    winograd_plane_cost,
)
from .session import (
    OpProfile,
    RunStats,
    Session,
    SessionArtifacts,
    SessionConfig,
    choose_backend,
)

__all__ = [
    "BackendCostModel",
    "node_muls",
    "strassen_mul_factor",
    "winograd_tile_cost",
    "Arena",
    "MemoryPlan",
    "TensorLifetime",
    "compute_lifetimes",
    "plan_memory",
    "SchemeConfig",
    "SchemeDecision",
    "select_conv_scheme",
    "select_graph_schemes",
    "winograd_plane_cost",
    "TuneReport",
    "autotune_schemes",
    "OpProfile",
    "RunStats",
    "Session",
    "SessionArtifacts",
    "SessionConfig",
    "choose_backend",
]
