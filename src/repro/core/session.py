"""Inference sessions: pre-inference once, run many times (paper Section 3.2).

``Session`` performs the paper's full pre-inference pipeline at creation:

1. **Scheme selection** — every convolution gets its optimal algorithm from
   the scheme pool via the Eq. 2/3 cost search.
2. **Backend selection & hybrid placement** — the primary backend is chosen
   (optionally automatically, by minimizing Eq. 4 total cost); ops the
   primary backend does not support are placed on the CPU fallback, with
   inter-backend copies inserted automatically.
3. **Preparation/execution decoupling** — executions are created and
   prepared (Winograd kernels pre-transformed, GPU command buffers
   pre-recorded), and the memory planner lays every activation into one
   pre-allocated arena (Figure 3).

``run`` is then pure compute: no scheme search, no allocation, no command
recording.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backends.base import Backend, BackendError, BackendTransientError, StorageType
from ..backends.cpu import CPUBackend
from ..devices.specs import DeviceSpec, GpuApi
from ..faults import FaultPlan, InjectedFault, TransientFault, get_fault_plan, retry_transient
from ..faults.resilience import CircuitBreaker, Deadline
from ..ir.graph import Graph, GraphError, Node
from ..ir.ops import Op
from ..kernels import nonfinite_count
from ..obs.metrics import get_metrics
from ..obs.tracer import Tracer, get_tracer
from ..sanitize import Sanitizer, resolve_sanitizer
from ..sim.clock import VirtualClock
from .cost import BackendCostModel, node_muls
from .memory import Arena, MemoryPlan, adapt_plan, compute_lifetimes, plan_memory
from .schemes import SchemeConfig, SchemeDecision, select_graph_schemes

__all__ = [
    "SessionConfig",
    "SessionArtifacts",
    "RunStats",
    "OpProfile",
    "Session",
    "choose_backend",
]


@dataclass
class SessionConfig:
    """Session creation options.

    Attributes:
        backend: ``"cpu"`` (real host execution), ``"sim_cpu"`` (modeled
            phone CPU), a GPU API name (``"metal"``/``"opencl"``/
            ``"opengl"``/``"vulkan"``, all simulated), or a user-provided
            :class:`~repro.backends.Backend` *instance* — the extension
            point for NPU/FPGA-style accelerators; unsupported ops fall
            back to the CPU automatically.
        device: capability model; required for simulated backends.
        threads: CPU thread count for the cost model.
        decouple: enable preparation/execution decoupling (Figure 3).
            Disabling reproduces the "w/o" rows of Table 2.
        use_strassen: allow Strassen for large GEMMs.
        auto_backend: pick the cheapest backend by Eq. 4 among
            ``candidate_backends`` instead of ``backend``.
        candidate_backends: pool for auto selection.
        scheme_config: conv scheme-search tunables.
        scheme_overrides: per-conv-node scheme decisions that take
            precedence over the cost-model search — typically the output
            of :func:`repro.core.autotune.autotune_schemes`.
        parallel_branches: execute independent graph branches concurrently
            on a thread pool (real CPU backend only; NumPy's BLAS releases
            the GIL, so Inception-style parallel branches genuinely
            overlap).  Ignored for simulated backends, whose virtual
            clock is inherently sequential.
        arena_execution: land every activation in its planned arena slot
            at run time, making the memory plan load-bearing end-to-end.
            Off by default: MNN's kernels write into pre-allocated outputs
            for free, but NumPy kernels allocate internally, so landing
            costs one extra memcpy per op on this substrate (the plan is
            still built, validated, and used for Table 2's accounting).
        paranoid: run the independent memory-plan sanitizer
            (:func:`repro.analysis.check_memory_plan`) on every plan this
            session builds, and bounds/alignment-check every arena view
            handed out during execution.  A planner bug then fails loudly
            at prepare time instead of corrupting activations silently.
        trace: a :class:`repro.obs.Tracer` receiving spans for every
            pre-inference stage and every executed operator (serial and
            parallel paths, with worker-thread ids).  ``None`` falls back
            to the process-wide tracer, which defaults to a no-op — so an
            untraced session pays only an ``enabled`` check per run.
        faults: a :class:`repro.faults.FaultPlan` evaluated at this
            session's fault points (``session.prepare``,
            ``backend.dispatch``, ``kernel.execute``).  ``None`` falls
            back to the process-wide plan (``$REPRO_FAULTS``, default
            disabled — one ``enabled`` check per run).
        resilience: route every op through the resilient executor (retry
            with backoff, circuit breaker, per-op CPU fallback, numeric
            guards).  ``None`` = auto: on exactly when the fault plan is
            enabled; ``True`` forces it on for real backend failures
            (:class:`~repro.backends.BackendTransientError` and friends).
        numeric_guards: under the resilient executor, re-run an op whose
            output came back non-finite via its direct scheme
            (sliding-window conv / non-Strassen GEMM), once.
        sanitize: a :class:`repro.sanitize.Sanitizer` receiving data-race
            probes (session run/resize state, the parallel executor's
            tensor environment, arena slots), lock-order events and
            lifecycle events from this session.  ``True`` builds a fresh
            enabled sanitizer; ``None``/``False`` falls back to the
            process-wide one, which defaults to a no-op — an unsanitized
            run pays one ``enabled`` check.
        check_feeds: validate every feed's shape and dtype against the
            input descriptors on each run.  On by default; tight serving
            loops that construct feeds programmatically from already-
            validated buffers (``repro.genai``'s per-token decode steps)
            may turn it off to shave fixed overhead from ~ms-scale runs.
        retries: extra attempts for transient per-op failures before
            escalating to the backend fallback.
        breaker_threshold: consecutive op failures on the primary
            backend before its circuit breaker opens.
        breaker_cooldown_s: how long an open breaker short-circuits the
            primary before probing it again.
        prepare_workers: fan per-op scheme selection out over this many
            threads (the Eq. 2/3 searches are independent, so the result
            is identical to the serial walk).  ``0``/``1`` keeps the
            serial path.  Neither this nor ``lazy_prepare`` changes any
            pre-inference *decision*, so both are excluded from the
            serving cache's config fingerprint.
        lazy_prepare: defer per-execution preparation (Winograd weight
            pre-transform and friends) off the critical path of session
            creation: a background thread prepares executions in order
            while the first ``run`` prepares any op it reaches first
            on demand.  Cold time-to-first-inference drops because
            early ops execute while deep ops are still preparing; every
            run is bit-identical to the eager path.
    """

    backend: Union[str, Backend] = "cpu"
    device: Optional[DeviceSpec] = None
    threads: int = 4
    decouple: bool = True
    use_strassen: bool = True
    auto_backend: bool = False
    candidate_backends: Tuple[str, ...] = ()
    scheme_config: SchemeConfig = field(default_factory=SchemeConfig)
    scheme_overrides: Optional[Dict[str, SchemeDecision]] = None
    parallel_branches: bool = False
    arena_execution: bool = False
    paranoid: bool = False
    trace: Optional[Tracer] = None
    faults: Optional[FaultPlan] = None
    sanitize: Union[bool, Sanitizer] = False
    resilience: Optional[bool] = None
    numeric_guards: bool = True
    check_feeds: bool = True
    retries: int = 3
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.25
    prepare_workers: int = 0
    lazy_prepare: bool = False


@dataclass
class SessionArtifacts:
    """Reusable pre-inference results (paper Section 3.2's outputs).

    Everything here is a pure function of (graph structure, shapes,
    config) — not of weight values or run-time feeds — so it can be
    computed once, persisted, and replayed to skip the scheme search,
    Eq. 4 backend selection and memory planning on the next session over
    the same graph.  Produced by :meth:`Session.export_artifacts`,
    persisted/keyed by :class:`repro.serving.PreInferenceCache`, consumed
    via ``Session(graph, config, artifacts=...)``.

    A session never trusts artifacts blindly: scheme coverage and the
    memory plan are cheaply re-validated against the live graph, and any
    mismatch falls back to recomputation (stale-cache tolerance).
    """

    backend_kind: Optional[str] = None
    schemes: Optional[Dict[str, SchemeDecision]] = None
    memory_plan: Optional[MemoryPlan] = None
    #: A *donor* plan from an adjacent shape bucket (same graph
    #: structure, larger-or-equal tensor sizes).  Unlike ``memory_plan``
    #: it need not match this session's shapes exactly: the session
    #: tries :func:`repro.core.memory.adapt_plan` and re-proves the
    #: result with the independent memcheck before trusting it, falling
    #: back to planning from scratch on any mismatch.  Never persisted.
    plan_donor: Optional[MemoryPlan] = None


@dataclass
class RunStats:
    """Timing of one inference run.

    When the session is traced, these numbers are the ``session.run``
    span's view of the same clock readings; the trace additionally carries
    per-operator spans with thread attribution.
    """

    wall_ms: float
    virtual_ms: float
    copies: int
    copy_bytes: int


@dataclass
class OpProfile:
    """Per-operator timing from :meth:`Session.run_profiled`.

    A thin view over the run's ``"op"``-category trace spans: one row per
    recorded operator span, in recording order (execution order on the
    serial path, completion order on the parallel path).
    """

    node: str
    op_type: str
    backend: str
    wall_ms: float
    virtual_ms: float
    thread: Optional[int] = None


def choose_backend(
    graph: Graph,
    device: DeviceSpec,
    threads: int,
    candidates: Sequence[str],
) -> str:
    """Eq. 4 backend selection: pick the candidate with minimal total cost.

    Ops unsupported on a GPU candidate are costed on the CPU (the paper's
    fallback rule), so a GPU with poor coverage is penalized naturally.
    """
    from ..backends.simulated import GPU_OP_COVERAGE

    model = BackendCostModel(device, threads)
    best, best_cost = None, float("inf")
    for kind in candidates:
        if kind in ("cpu", "sim_cpu"):
            cost = model.graph_cost_ms(graph, "cpu")
        else:
            if not device.supports_api(kind):
                continue
            coverage = GPU_OP_COVERAGE[kind]
            cost = model.graph_cost_ms(graph, kind, supports=lambda op: op in coverage)
        if cost < best_cost:
            best, best_cost = kind, cost
    if best is None:
        raise BackendError(f"no viable backend among {list(candidates)} on {device.name}")
    return best


def _poison_outputs(outputs: List[np.ndarray]) -> List[np.ndarray]:
    """Corrupt one element of the first float output with NaN (``nan`` faults)."""
    poisoned: List[np.ndarray] = []
    done = False
    for arr in outputs:
        if not done and arr.dtype.kind == "f" and arr.size:
            arr = arr.copy()
            arr.flat[0] = np.nan
            done = True
        poisoned.append(arr)
    return poisoned


class Session:
    """A prepared inference instance over one graph (see module docstring)."""

    def __init__(
        self,
        graph: Graph,
        config: Optional[SessionConfig] = None,
        artifacts: Optional[SessionArtifacts] = None,
    ) -> None:
        self.graph = graph
        self.config = config or SessionConfig()
        self.tracer = self.config.trace if self.config.trace is not None else get_tracer()
        self.faults = (
            self.config.faults if self.config.faults is not None else get_fault_plan()
        )
        self.sanitizer = resolve_sanitizer(self.config.sanitize)
        self.clock = VirtualClock()
        self._order: List[Node] = []
        self._executions = {}
        self._placement: Dict[str, Backend] = {}
        self.schemes: Dict[str, SchemeDecision] = {}
        self.memory_plan: Optional[MemoryPlan] = None
        self._arena: Optional[Arena] = None
        self._artifacts = artifacts
        # Donor plan for adjacent-bucket adaptation: seeded from the
        # artifacts, refreshed by every plan this session builds (so a
        # resized session donates to itself across bucket changes).
        self._plan_donor: Optional[MemoryPlan] = (
            artifacts.plan_donor if artifacts is not None else None
        )
        # Lazy-prepare state (see _ensure_prepared): generation-local
        # objects shared between the background preparer and the run
        # path; replaced wholesale on resize so stale threads only ever
        # touch discarded executions.
        self._prepared: set = set()
        self._prepare_lock = threading.Lock()
        self._lazy_active = False
        self._lazy_ensure = None
        self.prepare_wall_ms = 0.0
        self.last_run: Optional[RunStats] = None
        # Resilient-executor state (see _run_resilient): lazily created
        # fallback executions / direct-scheme runners, the recovery
        # backend behind them, and the primary's circuit breaker.
        self._fallback_execs: Dict[str, object] = {}
        self._direct_runners: Dict[str, object] = {}
        self._recovery: Optional[Backend] = None
        self._breaker: Optional[CircuitBreaker] = None
        self._resilient = (
            self.config.resilience if self.config.resilience is not None
            else self.faults.enabled
        )
        self._prepare()

    # -- pre-inference -----------------------------------------------------
    def _make_backend(self, kind: str) -> Backend:
        # Imported here: backends.simulated pulls in repro.sim, whose
        # latency module needs repro.core — a cycle at import time.
        from ..backends.simulated import SimulatedCPUBackend, SimulatedGPUBackend

        cfg = self.config
        if kind == "cpu":
            return CPUBackend(cfg.threads, cfg.use_strassen)
        if cfg.device is None:
            raise BackendError(f"backend {kind!r} needs a DeviceSpec in the config")
        if kind == "sim_cpu":
            return SimulatedCPUBackend(
                cfg.device, cfg.threads, clock=self.clock,
                decouple=cfg.decouple, use_strassen=cfg.use_strassen,
            )
        if kind in GpuApi.ALL:
            return SimulatedGPUBackend(
                cfg.device, kind, clock=self.clock,
                decouple=cfg.decouple, use_strassen=cfg.use_strassen,
            )
        raise BackendError(f"unknown backend kind {kind!r}")

    def _prepare(self) -> None:
        start = time.perf_counter()
        cfg = self.config
        tracer = self.tracer
        with tracer.span("session.prepare", "session", graph=self.graph.name) as prep:
            if self.faults.enabled:
                # A transient/fatal fault here fails session creation —
                # or, mid-resize, exercises the snapshot/rollback path.
                self.faults.fire("session.prepare", graph=self.graph.name)
            with tracer.span("graph.validate", "pre_inference"):
                self.graph.validate()
                self._order = [
                    n for n in self.graph.toposort()
                    if n.op_type not in (Op.INPUT, Op.CONSTANT)
                ]

            artifacts = self._artifacts

            # (1) computation scheme selection (auto-tuned overrides win).
            # Cached decisions replace the Eq. 2/3 search when they cover every
            # conv in the live graph; partial/stale coverage falls back.
            with tracer.span("scheme_selection", "pre_inference") as sp:
                cached_schemes = artifacts.schemes if artifacts is not None else None
                conv_nodes = {n.name for n in self._order if n.op_type == Op.CONV2D}
                if cached_schemes is not None and conv_nodes <= set(cached_schemes):
                    self.schemes = dict(cached_schemes)
                    sp.set(cached=True)
                elif cfg.prepare_workers > 1 and len(conv_nodes) > 1:
                    # Per-layer Eq. 2/3 searches are independent; fan them
                    # out.  Identical output to the serial walk.
                    with tracer.span(
                        "prepare.parallel", "pre_inference",
                        workers=cfg.prepare_workers, convs=len(conv_nodes),
                    ):
                        self.schemes = select_graph_schemes(
                            self.graph, cfg.scheme_config,
                            workers=cfg.prepare_workers,
                        )
                    sp.set(cached=False, parallel=True)
                else:
                    self.schemes = select_graph_schemes(self.graph, cfg.scheme_config)
                    sp.set(cached=False)
                if cfg.scheme_overrides:
                    self.schemes.update(cfg.scheme_overrides)
                sp.set(convs=len(conv_nodes))

            # (2) backend selection + hybrid placement
            with tracer.span("backend_selection", "pre_inference") as sp:
                if isinstance(cfg.backend, Backend):
                    # user-supplied backend instance (NPU/FPGA extension point)
                    self.primary = cfg.backend
                    self.fallback = (
                        self._make_backend("sim_cpu") if cfg.device is not None
                        else self._make_backend("cpu")
                    )
                else:
                    primary_kind = cfg.backend
                    if cfg.auto_backend:
                        if cfg.device is None:
                            raise BackendError("auto_backend requires a DeviceSpec")
                        if artifacts is not None and artifacts.backend_kind:
                            # Cached Eq. 4 winner: skip re-costing every candidate.
                            primary_kind = artifacts.backend_kind
                        else:
                            candidates = (
                                cfg.candidate_backends
                                or ("sim_cpu",) + cfg.device.gpu_apis
                            )
                            primary_kind = choose_backend(
                                self.graph, cfg.device, cfg.threads, candidates
                            )
                    self.primary = self._make_backend(primary_kind)
                    if primary_kind in ("cpu", "sim_cpu"):
                        self.fallback = self.primary
                    elif cfg.device is not None:
                        self.fallback = self._make_backend("sim_cpu")
                    else:
                        self.fallback = self._make_backend("cpu")
                sp.set(primary=self.primary.forward_type)
                self._breaker = CircuitBreaker(
                    cfg.breaker_threshold, cfg.breaker_cooldown_s,
                    name=self.primary.forward_type,
                )

            lazy = cfg.lazy_prepare and cfg.decouple
            with tracer.span(
                "create_executions", "pre_inference",
                ops=len(self._order), deferred=lazy,
            ):
                for node in self._order:
                    backend = (
                        self.primary if self.primary.supports(node.op_type)
                        else self.fallback
                    )
                    if not backend.supports(node.op_type):
                        raise BackendError(
                            f"op {node.op_type!r} ({node.name!r}) unsupported "
                            f"on every backend"
                        )
                    self._placement[node.name] = backend
                    if not lazy:
                        # Creation is where the real cold work lives on the
                        # CPU backend (Winograd weight pre-transform happens
                        # in build_runner); the lazy path defers it per op.
                        scheme = self.schemes.get(node.name)
                        self._executions[node.name] = backend.on_create(
                            node, self.graph, scheme
                        )

            # (3) decoupling: prepare executions + plan memory up front
            if cfg.decouple:
                if lazy:
                    self._start_lazy_prepare(tracer)
                else:
                    self._lazy_active = False
                    self._lazy_ensure = None
                    with tracer.span("prepare_executions", "pre_inference"):
                        for node in self._order:
                            self._executions[node.name].prepare(self.graph)
                with tracer.span("memory_plan", "pre_inference") as sp:
                    cached_plan = (
                        artifacts.memory_plan if artifacts is not None else None
                    )
                    lifetimes = compute_lifetimes(self.graph, self._order)
                    if cached_plan is not None and cached_plan.matches(lifetimes):
                        self.memory_plan = cached_plan
                        sp.set(cached=True)
                    else:
                        self.memory_plan = self._adapt_or_plan(lifetimes, sp)
                    sp.set(arena_bytes=self.memory_plan.arena_bytes)
                # The biggest plan seen becomes the donor for later
                # resizes of this session (and, via offer_plan_donor,
                # for sibling sessions in adjacent shape buckets).
                if (
                    self._plan_donor is None
                    or self.memory_plan.arena_bytes >= self._plan_donor.arena_bytes
                ):
                    self._plan_donor = self.memory_plan
                if cfg.paranoid:
                    from ..analysis.memcheck import check_memory_plan

                    with tracer.span("memcheck", "pre_inference"):
                        check_memory_plan(
                            self.graph, self.memory_plan, self._order
                        ).raise_if_failed()
                self._arena = Arena(self.memory_plan, paranoid=cfg.paranoid)
                if self.sanitizer.enabled:
                    self._arena.sanitizer = self.sanitizer
            self.prepare_wall_ms = (time.perf_counter() - start) * 1000.0
            prep.set(wall_ms=self.prepare_wall_ms)
        metrics = get_metrics()
        metrics.counter("session.prepares").inc()
        metrics.histogram("session.prepare_ms").observe(self.prepare_wall_ms)

    def _start_lazy_prepare(self, tracer: Tracer) -> None:
        """Kick off deferred execution creation (``lazy_prepare``).

        A background daemon thread creates+prepares executions in
        topological order while the first ``run`` creates any op it
        reaches first on demand; both sides share one double-checked
        lock, so each op is built exactly once and every run is
        bit-identical to the eager path.  All state is captured in
        locals (generation-local): a thread that outlives a ``resize``
        keeps preparing only the discarded generation's objects.
        """
        executions = self._executions
        placement = self._placement
        schemes = self.schemes
        graph = self.graph
        order = list(self._order)
        prepared: set = set()
        lock = threading.Lock()

        def ensure(node: Node) -> None:
            name = node.name
            if name in prepared:
                return
            with lock:
                if name in prepared:
                    return
                execution = placement[name].on_create(
                    node, graph, schemes.get(name)
                )
                execution.prepare(graph)
                executions[name] = execution
                prepared.add(name)

        self._prepared = prepared
        self._prepare_lock = lock
        self._lazy_ensure = ensure
        self._lazy_active = True

        def background() -> None:
            for node in order:
                ensure(node)

        if tracer.enabled:
            tracer.instant("prepare.lazy", "pre_inference", ops=len(order))
        threading.Thread(
            target=background, name="session-lazy-prepare", daemon=True
        ).start()

    def _adapt_or_plan(self, lifetimes, sp) -> MemoryPlan:
        """Adapt a donor plan from an adjacent bucket, or plan from scratch.

        The adapted plan is never trusted on the donor's word alone: it
        is re-proven by the independent memcheck sanitizer, and any
        failure falls through to :func:`plan_memory`.
        """
        donor = self._plan_donor
        if donor is not None:
            adapted = adapt_plan(donor, lifetimes)
            if adapted is not None:
                from ..analysis.memcheck import check_memory_plan

                if check_memory_plan(self.graph, adapted, self._order).ok:
                    sp.set(cached=False, adapted=True)
                    get_metrics().counter("session.plan_adapted").inc()
                    return adapted
        sp.set(cached=False)
        return plan_memory(self.graph, self._order)

    def offer_plan_donor(self, plan: Optional[MemoryPlan]) -> None:
        """Offer a sibling bucket's memory plan as an adaptation donor.

        Serving layers call this before :meth:`resize` so the next
        re-prepare can reuse the donor's offsets (re-proven by memcheck)
        instead of re-planning.  The largest-arena donor seen wins;
        ``None`` is ignored.
        """
        if plan is None:
            return
        if self._plan_donor is None or plan.arena_bytes > self._plan_donor.arena_bytes:
            self._plan_donor = plan

    # -- resizing ----------------------------------------------------------------
    def resize(self, input_shapes: Dict[str, Sequence[int]]) -> None:
        """Change input shapes and re-run pre-inference (MNN's resizeSession).

        The paper's pre-inference relies on fixed input sizes; when the
        application *does* change them (e.g. a different camera aspect),
        the whole pipeline — shape inference, scheme selection, memory
        plan, command buffers — is recomputed once here, keeping ``run``
        pure compute afterwards.

        Resizing is **atomic** and **session-local**: shape inference runs
        on a shallow clone of the graph, so a failing resize leaves this
        session (and its current graph) fully usable at the old shapes,
        and other sessions sharing the same :class:`~repro.ir.Graph`
        object never observe the new descriptors.

        Raises:
            GraphError: for unknown inputs or shapes the graph cannot
                take; the session is unchanged when this is raised.
        """
        from ..ir.shape_inference import infer_shapes
        from ..ir.tensor import TensorDesc

        if self.sanitizer.enabled:
            self.sanitizer.probe(self, "run_state", "w")
        for name in input_shapes:
            if name not in self.graph.inputs:
                raise GraphError(f"{name!r} is not a graph input")
        # Re-infer on a clone: drop every derived descriptor, keep inputs
        # (updated) + constants.  The shared graph is never mutated.
        old_graph = self.graph
        new_graph = old_graph.shallow_clone()
        kept = {}
        for name in new_graph.inputs:
            old = old_graph.desc(name)
            shape = tuple(input_shapes.get(name, old.shape))
            kept[name] = TensorDesc(name, shape, old.dtype)
        for name in new_graph.constants:
            kept[name] = old_graph.tensor_descs[name]
        new_graph.tensor_descs = kept
        infer_shapes(new_graph)  # raises before any session state changes

        # Cached artifacts describe the old shapes; drop them for re-prepare.
        snapshot = (
            self._order, self._executions, self._placement, self.schemes,
            self.memory_plan, self._arena, self._artifacts,
            self.prepare_wall_ms, getattr(self, "primary", None),
            getattr(self, "fallback", None),
            self._fallback_execs, self._direct_runners, self._recovery,
            self._breaker,
            self._prepared, self._prepare_lock, self._lazy_active,
            self._lazy_ensure, self._plan_donor,
        )
        self.graph = new_graph
        self._placement = {}
        self._executions = {}
        self._artifacts = None
        self._fallback_execs = {}
        self._direct_runners = {}
        self._recovery = None
        self.clock.reset()
        try:
            self._prepare()
        except BaseException:
            # Restore every piece of pre-inference state so the session
            # keeps serving at the old shapes.
            self.graph = old_graph
            (self._order, self._executions, self._placement, self.schemes,
             self.memory_plan, self._arena, self._artifacts,
             self.prepare_wall_ms, self.primary, self.fallback,
             self._fallback_execs, self._direct_runners, self._recovery,
             self._breaker,
             self._prepared, self._prepare_lock, self._lazy_active,
             self._lazy_ensure, self._plan_donor) = snapshot
            raise

    def export_artifacts(self) -> SessionArtifacts:
        """Snapshot this session's pre-inference results for reuse.

        The returned :class:`SessionArtifacts` can be passed to a new
        ``Session`` over the same graph/config to skip the scheme search,
        backend selection and memory planning (the serving cache persists
        it to disk; see :mod:`repro.serving.cache`).
        """
        return SessionArtifacts(
            backend_kind=(
                None if isinstance(self.config.backend, Backend)
                else self.backend_kind
            ),
            schemes=dict(self.schemes),
            memory_plan=self.memory_plan,
        )

    # -- queries ---------------------------------------------------------------
    @property
    def backend_kind(self) -> str:
        return self.primary.forward_type

    def placement_summary(self) -> Dict[str, int]:
        """Count of ops per backend kind (hybrid scheduling report)."""
        counts: Dict[str, int] = {}
        for backend in self._placement.values():
            counts[backend.forward_type] = counts.get(backend.forward_type, 0) + 1
        return counts

    def scheme_summary(self) -> Dict[str, int]:
        """Count of convolutions per chosen scheme kind."""
        counts: Dict[str, int] = {}
        for decision in self.schemes.values():
            counts[decision.kind] = counts.get(decision.kind, 0) + 1
        return counts

    def modeled_cost_ms(self) -> float:
        """Eq. 4 total cost of this session's placement (modeled, not run)."""
        if self.config.device is None:
            raise BackendError("modeled cost needs a DeviceSpec")
        model = BackendCostModel(self.config.device, self.config.threads)
        total = 0.0
        for node in self._order:
            if self._lazy_active and self._lazy_ensure is not None:
                self._lazy_ensure(node)
            runner = getattr(self._executions.get(node.name), "runner", None)
            muls = runner.muls if runner is not None else node_muls(node, self.graph)
            backend = self._placement[node.name]
            kind = "cpu" if backend.forward_type in ("cpu", "sim_cpu") else backend.forward_type
            total += model.op_cost_ms(muls, kind)
        return total

    # -- inference --------------------------------------------------------------
    def _check_feeds(self, feeds: Dict[str, np.ndarray]) -> None:
        """Validate feeds against the input descriptors (shape *and* dtype)."""
        graph = self.graph
        for name in graph.inputs:
            if name not in feeds:
                raise GraphError(f"missing input {name!r}")
            desc = graph.desc(name)
            array = feeds[name]
            if tuple(array.shape) != desc.shape:
                raise GraphError(
                    f"input {name!r}: expected shape {desc.shape}, got {array.shape}"
                )
            if array.dtype != desc.dtype.np_dtype:
                raise GraphError(
                    f"input {name!r}: expected dtype {desc.dtype.value}, "
                    f"got {array.dtype}"
                )

    # -- resilient per-op execution ---------------------------------------------
    def _recovery_backend(self) -> Backend:
        """The backend behind per-op fallback executions (lazily built).

        The hybrid-placement fallback backend when it differs from the
        primary (the paper's CPU-fallback rule re-applied at execution
        time); for CPU-primary sessions, a *fresh* backend of the same
        kind — same NumPy numerics, so degraded outputs stay
        bit-identical — standing in for "restart the delegate".
        """
        if self._recovery is None:
            if self.fallback is not self.primary:
                self._recovery = self.fallback
            else:
                kind = (
                    "cpu" if self.fallback.forward_type == "cpu" else "sim_cpu"
                )
                self._recovery = self._make_backend(kind)
        return self._recovery

    def _fallback_op(
        self, node: Node, inputs: List[np.ndarray], reason: str
    ) -> List[np.ndarray]:
        """Re-dispatch one op onto the recovery backend (Parallax-style).

        The execution is created lazily per node, *preserving the scheme
        decision* of the original placement, and cached for later
        failures of the same op.  Counted in ``fallback.ops`` — except
        for breaker short-circuits, which fired no fault and are counted
        by the breaker itself.
        """
        execution = self._fallback_execs.get(node.name)
        if execution is None:
            backend = self._recovery_backend()
            execution = backend.on_create(node, self.graph, self.schemes.get(node.name))
            execution.prepare(self.graph)
            self._fallback_execs[node.name] = execution
        outputs = execution.run(inputs)
        if reason != "breaker_open":
            get_metrics().counter("fallback.ops").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "fallback.op", "session", node=node.name, reason=reason
            )
        return outputs

    def _direct_runner(self, node: Node):
        """The direct-scheme alternative for ``node`` (``None`` if none).

        Convolutions running Winograd/Strassen-flavoured schemes get a
        sliding-window (im2col) runner; Strassen GEMM/FC ops get a plain
        tiled GEMM.  Built on first use, cached (including the negative
        answer) per node.
        """
        if node.name in self._direct_runners:
            return self._direct_runners[node.name]
        from ..backends.op_runners import build_runner

        runner = None
        if node.op_type == Op.CONV2D:
            scheme = self.schemes.get(node.name)
            if scheme is not None and scheme.kind != "sliding":
                runner = build_runner(
                    node, self.graph, SchemeDecision(kind="sliding"),
                    use_strassen=False,
                )
        elif self.config.use_strassen and node.op_type in (
            Op.MATMUL, Op.FULLY_CONNECTED
        ):
            runner = build_runner(node, self.graph, None, use_strassen=False)
        self._direct_runners[node.name] = runner
        return runner

    def _numeric_fallback(
        self,
        node: Node,
        execution,
        inputs: List[np.ndarray],
        outputs: List[np.ndarray],
        injected: bool,
    ) -> List[np.ndarray]:
        """One-shot re-run of an op whose output came back non-finite.

        Eligible ops re-run via their direct scheme (the numerically
        plain path); an injected corruption on an op with no alternative
        scheme re-runs the original execution (the corruption was not
        the kernel's).  Genuine non-finite output with no alternative is
        returned as-is — the guard degrades, it never masks.
        """
        runner = self._direct_runner(node)
        if runner is not None:
            clean = runner.fn(inputs)
        elif injected:
            clean = execution.run(inputs)
        else:
            return outputs
        get_metrics().counter("fallback.numeric").inc()
        self.tracer.instant(
            "numeric_fallback", "session",
            node=node.name, op=node.op_type, injected=injected,
        )
        return clean

    def _run_resilient(
        self, node: Node, execution, inputs: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Run one op under the full resilience stack.

        Order of defenses: circuit breaker (skip a demoted primary) →
        fault-point evaluation + retry-with-backoff for transient
        failures → per-op fallback re-dispatch for persistent ones →
        numeric guard on the outputs.  The fallback path itself is not
        fault-injected: it is the trusted last resort, as in the paper's
        hybrid scheduling where CPU is assumed always-viable.
        """
        plan = self.faults
        cfg = self.config
        backend = self._placement[node.name]
        scheme = self.schemes.get(node.name)
        scheme_kind = scheme.kind if scheme is not None else None
        breaker = self._breaker
        nan_fault = [False]

        def attempt() -> List[np.ndarray]:
            nan_fault[0] = False
            fault = None
            if plan.enabled:
                ctx = dict(
                    op=node.op_type, node=node.name,
                    backend=backend.forward_type, scheme=scheme_kind,
                )
                plan.fire("backend.dispatch", **ctx)
                fault = plan.fire("kernel.execute", **ctx)
            outputs = execution.run(inputs)
            if fault is not None and fault.kind == "nan":
                nan_fault[0] = True
                outputs = _poison_outputs(outputs)
            return outputs

        if breaker is not None and not breaker.allow():
            return self._fallback_op(node, inputs, reason="breaker_open")
        try:
            outputs = retry_transient(
                attempt,
                retries=cfg.retries,
                rng=plan.rng_for("kernel.execute"),
                label=node.name,
                transient=(TransientFault, BackendTransientError),
            )
        except (InjectedFault, BackendError) as exc:
            if breaker is not None:
                breaker.record_failure()
            outputs = self._fallback_op(node, inputs, reason=type(exc).__name__)
        else:
            if breaker is not None:
                breaker.record_success()
            if cfg.numeric_guards and nonfinite_count(outputs):
                outputs = self._numeric_fallback(
                    node, execution, inputs, outputs, injected=nan_fault[0]
                )
        return outputs

    def _run_injected(
        self, node: Node, execution, inputs: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Fire the per-op fault points with every defense disabled.

        Used when a fault plan is enabled but the session was configured
        with ``resilience=False``: injected failures escape to the
        caller undefended — exactly what a test asserting raw failure
        modes wants.
        """
        plan = self.faults
        scheme = self.schemes.get(node.name)
        ctx = dict(
            op=node.op_type, node=node.name,
            backend=self._placement[node.name].forward_type,
            scheme=scheme.kind if scheme is not None else None,
        )
        plan.fire("backend.dispatch", **ctx)
        fault = plan.fire("kernel.execute", **ctx)
        outputs = execution.run(inputs)
        if fault is not None and fault.kind == "nan":
            outputs = _poison_outputs(outputs)
        return outputs

    def _op_executor(self):
        """The per-op run function, or ``None`` for the plain fast path."""
        if self._resilient:
            return self._run_resilient
        if self.faults.enabled:
            return self._run_injected
        return None

    def run(
        self,
        feeds: Dict[str, np.ndarray],
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute one inference.

        Args:
            feeds: input name -> array, matching the graph input
                descriptors exactly — shape and dtype (a float64 feed to a
                float32 input raises rather than silently widening every
                kernel downstream).
            deadline: optional remaining-budget deadline for this run;
                checked before every operator, so a stalled kernel makes
                the *next* checkpoint raise instead of the request
                hanging unboundedly.

        Returns:
            output name -> array.

        Raises:
            GraphError: on missing inputs or shape/dtype mismatches.
            DeadlineExceeded: when ``deadline``'s budget runs out.
        """
        if self.sanitizer.enabled:
            # A session is single-checkout state: concurrent (or merely
            # unsynchronized cross-thread) run/run and run/resize pairs
            # clobber the clock, arena and last_run.  One write probe per
            # run makes the detector prove the checkout discipline — the
            # pool's queue handoff provides the ordering edge.
            self.sanitizer.probe(self, "run_state", "w")
        if self._parallel_active():
            return self._execute_parallel(feeds, self.tracer, deadline)
        return self._execute(feeds, self.tracer, deadline)

    def _parallel_active(self) -> bool:
        """Whether ``run`` takes the thread-pool dataflow path."""
        return (
            self.config.parallel_branches
            and self.primary.forward_type == "cpu"
            and self.config.decouple
        )

    def _execute_parallel(
        self,
        feeds: Dict[str, np.ndarray],
        tracer: Tracer,
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, np.ndarray]:
        """Dataflow execution on a thread pool (independent branches overlap).

        Concurrency contract: ``env`` (the tensor environment) is only read
        and written while holding ``lock``; a first failure sets ``failed``
        so in-flight and queued nodes drain without doing further work, and
        *every* worker error is collected — multiple simultaneous failures
        raise one aggregate ``GraphError`` instead of silently dropping all
        but the first.
        """
        import concurrent.futures
        import threading

        graph = self.graph
        if self.config.check_feeds:
            self._check_feeds(feeds)
        run_op = self._op_executor()
        trace_on = tracer.enabled
        lazy_ensure = self._lazy_ensure if self._lazy_active else None
        sanitizer = self.sanitizer
        sanitize_on = sanitizer.enabled
        start_wall = time.perf_counter()
        env: Dict[str, np.ndarray] = dict(feeds)
        lock = threading.Lock()
        producers = graph.producer_map()
        pending: Dict[str, int] = {}
        dependents: Dict[str, List[Node]] = {}
        for node in self._order:
            deps = {
                inp for inp in node.inputs
                if inp in producers and inp not in graph.constants
            }
            pending[node.name] = len(deps)
            for dep in deps:
                dependents.setdefault(dep, []).append(node)

        errors: List[BaseException] = []
        done = threading.Event()
        failed = threading.Event()
        remaining = [len(self._order)]

        def run_node(node: Node, pool) -> None:
            if failed.is_set():  # drain: a sibling already failed
                return
            try:
                if sanitize_on:
                    # Executor submit happens-before the task runs; the
                    # channel carries the submitter's clock (main for the
                    # initial wave, the producing worker afterwards).
                    sanitizer.hb_recv(("session.parallel", id(self)))
                if deadline is not None:
                    deadline.check(node.name)
                if lazy_ensure is not None:
                    lazy_ensure(node)
                execution = self._executions[node.name]
                with lock:  # producers write env under this lock
                    if sanitize_on:
                        for name in execution.runner.dynamic_inputs:
                            sanitizer.probe(
                                self, f"env.{name}", "r",
                                lockset=("session.env_lock",),
                            )
                    inputs = [env[name] for name in execution.runner.dynamic_inputs]
                if trace_on:
                    # Per-op span from inside the worker: the recording
                    # thread id gives the trace its parallel lanes.
                    op_start = time.perf_counter()
                    outputs = (
                        run_op(node, execution, inputs)
                        if run_op is not None else execution.run(inputs)
                    )
                    tracer.record(
                        node.name, "op", op_start, time.perf_counter(),
                        op=node.op_type,
                        backend=self._placement[node.name].forward_type,
                        virtual_ms=0.0,
                    )
                else:
                    outputs = (
                        run_op(node, execution, inputs)
                        if run_op is not None else execution.run(inputs)
                    )
                ready: List[Node] = []
                with lock:
                    for name, value in zip(node.outputs, outputs):
                        if sanitize_on:
                            sanitizer.probe(
                                self, f"env.{name}", "w",
                                lockset=("session.env_lock",),
                            )
                        env[name] = value
                        for consumer in dependents.get(name, ()):  # unlock consumers
                            pending[consumer.name] -= 1
                            if pending[consumer.name] == 0:
                                ready.append(consumer)
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        done.set()
                if failed.is_set():
                    return
                if sanitize_on:
                    sanitizer.hb_send(("session.parallel", id(self)))
                for consumer in ready:
                    pool.submit(run_node, consumer, pool)
            except BaseException as exc:  # propagate to the caller
                with lock:
                    errors.append(exc)
                failed.set()
                done.set()

        # Named workers so short-lived executor threads land on labeled
        # "exec-worker" lanes in the Chrome trace, not ThreadPoolExecutor-N.
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.threads, thread_name_prefix="exec-worker"
        ) as pool:
            initial = [n for n in self._order if pending[n.name] == 0]
            if not initial and self._order:
                raise GraphError("no runnable node; graph inputs unresolved")
            if sanitize_on:
                sanitizer.hb_send(("session.parallel", id(self)))
            for node in initial:
                pool.submit(run_node, node, pool)
            done.wait()
        if sanitize_on:
            # The executor shutdown joined every worker: their writes
            # happen-before anything the caller does next.
            sanitizer.hb_recv(("session.parallel", id(self)))
        if errors:
            if len(errors) == 1:
                raise errors[0]
            aggregate = GraphError(
                f"parallel execution failed with {len(errors)} worker errors: "
                + "; ".join(f"{type(e).__name__}: {e}" for e in errors)
            )
            aggregate.errors = list(errors)
            raise aggregate from errors[0]
        end_wall = time.perf_counter()
        if trace_on:
            tracer.record(
                "session.run", "session", start_wall, end_wall,
                backend=self.backend_kind, parallel=True,
                threads=self.config.threads,
            )
        self.last_run = RunStats(
            wall_ms=(end_wall - start_wall) * 1000.0,
            virtual_ms=0.0,
            copies=0,
            copy_bytes=0,
        )
        metrics = get_metrics()
        metrics.counter("session.runs").inc()
        metrics.histogram("session.run_ms").observe(self.last_run.wall_ms)
        missing = [name for name in graph.outputs if name not in env]
        if missing:
            raise GraphError(f"outputs never produced: {missing}")
        return {name: env[name] for name in graph.outputs}

    def run_profiled(
        self, feeds: Dict[str, np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], List["OpProfile"]]:
        """Like :meth:`run` but also returns a per-operator time profile.

        The profile is a thin view over the run's ``"op"``-category trace
        spans.  With ``parallel_branches`` active, the run goes through
        the thread-pool path and every profile row carries the worker
        thread id that executed the operator (``OpProfile.thread``).
        When the session has no enabled tracer configured, an ephemeral
        one records just this run.
        """
        tracer = self.tracer if self.tracer.enabled else Tracer()
        mark = tracer.mark()
        if self._parallel_active():
            outputs = self._execute_parallel(feeds, tracer)
        else:
            outputs = self._execute(feeds, tracer)
        profile = [
            OpProfile(
                node=span.name,
                op_type=span.args["op"],
                backend=span.args["backend"],
                wall_ms=span.dur_ms,
                virtual_ms=span.args.get("virtual_ms", 0.0),
                thread=span.tid,
            )
            for span in tracer.spans_since(mark)
            if span.category == "op"
        ]
        return outputs, profile

    def _execute(
        self,
        feeds: Dict[str, np.ndarray],
        tracer: Tracer,
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, np.ndarray]:
        graph = self.graph
        if self.config.check_feeds:
            self._check_feeds(feeds)

        run_op = self._op_executor()
        trace_on = tracer.enabled
        start_wall = time.perf_counter()
        start_virtual = self.clock.now_ms
        copies = 0
        copy_bytes = 0
        decouple = self.config.decouple

        env: Dict[str, np.ndarray] = dict(feeds)
        location: Dict[str, Backend] = {}
        remaining_uses: Dict[str, int] = {}
        for node in self._order:
            for name in node.inputs:
                if name not in graph.constants:
                    remaining_uses[name] = remaining_uses.get(name, 0) + 1

        for backend in {id(b): b for b in self._placement.values()}.values():
            backend.on_execute_begin()

        lazy_ensure = self._lazy_ensure if self._lazy_active else None
        for node in self._order:
            if deadline is not None:
                deadline.check(node.name)
            backend = self._placement[node.name]
            if lazy_ensure is not None:
                lazy_ensure(node)
            execution = self._executions[node.name]
            runner = execution.runner
            inputs = []
            for name in runner.dynamic_inputs:
                array = env[name]
                producer = location.get(name)
                if producer is not None and producer is not backend:
                    array = producer.on_copy_buffer(array, backend)
                    copies += 1
                    copy_bytes += array.nbytes
                inputs.append(array)
            if not decouple:
                # Interleaved memory management (left-hand side of Figure 3).
                for out in node.outputs:
                    backend.on_acquire_buffer(graph.desc(out), StorageType.DYNAMIC)
            if trace_on:
                op_wall = time.perf_counter()
                op_virtual = self.clock.now_ms
                outputs = (
                    run_op(node, execution, inputs)
                    if run_op is not None else execution.run(inputs)
                )
                tracer.record(
                    node.name, "op", op_wall, time.perf_counter(),
                    op=node.op_type,
                    backend=backend.forward_type,
                    virtual_ms=self.clock.now_ms - op_virtual,
                )
            else:
                outputs = (
                    run_op(node, execution, inputs)
                    if run_op is not None else execution.run(inputs)
                )
            for name, value in zip(node.outputs, outputs):
                if (
                    self.config.arena_execution
                    and self._arena is not None
                    and name in self._arena.plan.offsets
                ):
                    # Land the activation in its planned arena slot: the
                    # memory plan is load-bearing, not just accounting.
                    # Lifetime soundness (plan.validate) guarantees the slot
                    # is not aliased by any still-live tensor.
                    desc = graph.desc(name)
                    if (
                        value.shape == desc.shape
                        and value.dtype == desc.dtype.np_dtype
                    ):
                        slot = self._arena.view(desc)
                        if np.may_share_memory(slot, value):
                            # view-producing op (reshape/slice/...) whose
                            # input's now-dead slot overlaps the destination
                            value = value.copy()
                        np.copyto(slot, value)
                        value = slot
                env[name] = value
                location[name] = backend
            if not decouple:
                for name in node.inputs:
                    if name in remaining_uses:
                        remaining_uses[name] -= 1
                        if remaining_uses[name] == 0 and name not in graph.inputs:
                            backend.on_release_buffer(graph.desc(name), StorageType.DYNAMIC)

        for backend in {id(b): b for b in self._placement.values()}.values():
            backend.on_execute_end()

        end_wall = time.perf_counter()
        if trace_on:
            tracer.record(
                "session.run", "session", start_wall, end_wall,
                backend=self.backend_kind, parallel=False,
                copies=copies,
            )
        self.last_run = RunStats(
            wall_ms=(end_wall - start_wall) * 1000.0,
            virtual_ms=self.clock.now_ms - start_virtual,
            copies=copies,
            copy_bytes=copy_bytes,
        )
        metrics = get_metrics()
        metrics.counter("session.runs").inc()
        metrics.histogram("session.run_ms").observe(self.last_run.wall_ms)
        missing = [name for name in graph.outputs if name not in env]
        if missing:
            raise GraphError(f"outputs never produced: {missing}")
        results = {}
        for name in graph.outputs:
            value = env[name]
            if (
                self.config.arena_execution
                and self._arena is not None
                and name in self._arena.plan.offsets
            ):
                value = value.copy()  # detach from the arena: the next run reuses it
            results[name] = value
        return results
