"""Measurement-based scheme auto-tuning (the paper's future work item 1:
"applying auto-tuning during backend evaluation").

Where pre-inference *predicts* the best convolution scheme from the Eq. 2
cost model, the auto-tuner *measures* every legal candidate on the actual
kernels with the layer's true shapes and picks the empirical winner.  This
recovers TVM-style measured quality while staying on-device and taking
milliseconds-to-seconds, not hours, because the candidate pool per layer
is the small scheme pool rather than an open schedule space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.ops import Op
from ..ir.shape_inference import resolve_padding
from ..kernels.conv import conv2d
from .schemes import SchemeConfig, SchemeDecision, select_conv_scheme

__all__ = ["TuneReport", "autotune_schemes"]


@dataclass
class TuneReport:
    """Result of auto-tuning one graph.

    Attributes:
        decisions: per-conv measured-best scheme (Session-compatible).
        measurements: per-conv candidate timings in ms.
        model_decisions: what the Eq. 2 cost model would have picked.
        tuning_ms: total wall time spent measuring.
    """

    decisions: Dict[str, SchemeDecision] = field(default_factory=dict)
    measurements: Dict[str, Dict[str, float]] = field(default_factory=dict)
    model_decisions: Dict[str, SchemeDecision] = field(default_factory=dict)
    tuning_ms: float = 0.0

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable form — lets ``cli warm``/the serving cache
        persist measured overrides next to the model-predicted schemes."""
        return {
            "decisions": {n: d.to_json() for n, d in self.decisions.items()},
            "measurements": {n: dict(t) for n, t in self.measurements.items()},
            "model_decisions": {
                n: d.to_json() for n, d in self.model_decisions.items()
            },
            "tuning_ms": self.tuning_ms,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TuneReport":
        """Inverse of :meth:`to_json`."""
        return cls(
            decisions={
                str(n): SchemeDecision.from_json(d)
                for n, d in dict(data.get("decisions", {})).items()
            },
            measurements={
                str(n): {str(k): float(v) for k, v in dict(t).items()}
                for n, t in dict(data.get("measurements", {})).items()
            },
            model_decisions={
                str(n): SchemeDecision.from_json(d)
                for n, d in dict(data.get("model_decisions", {})).items()
            },
            tuning_ms=float(data.get("tuning_ms", 0.0)),
        )

    def agreement_with_model(self) -> float:
        """Fraction of convs where measurement confirms the cost model."""
        if not self.decisions:
            return 1.0
        same = sum(
            1
            for name, d in self.decisions.items()
            if (d.kind, d.winograd_n)
            == (self.model_decisions[name].kind, self.model_decisions[name].winograd_n)
        )
        return same / len(self.decisions)


def _candidate_schemes(
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    dilation: Tuple[int, int],
    groups: int,
    config: SchemeConfig,
) -> List[Tuple[str, int, Tuple[int, int]]]:
    """The legal (kind, winograd_n, winograd_n_hw) candidates for one conv."""
    kh, kw = kernel
    if kh == 1 and kw == 1 and dilation == (1, 1) and groups == 1:
        return [("gemm1x1", 1, (1, 1)), ("sliding", 1, (1, 1))]
    candidates: List[Tuple[str, int, Tuple[int, int]]] = [("sliding", 1, (1, 1))]
    plain = stride == (1, 1) and dilation == (1, 1) and groups == 1
    if kh == kw and kh > 1 and plain:
        for n in config.winograd_candidates:
            if n > 1 and n + kh - 1 <= config.max_tile:
                candidates.append(("winograd", n, (n, n)))
    elif kh != kw and plain:
        h_opts = [n for n in config.winograd_candidates
                  if n + kh - 1 <= config.max_tile and (n > 1 or kh == 1)] or [1]
        w_opts = [n for n in config.winograd_candidates
                  if n + kw - 1 <= config.max_tile and (n > 1 or kw == 1)] or [1]
        for nh in h_opts:
            for nw in w_opts:
                if (nh, nw) != (1, 1):
                    candidates.append(("winograd_rect", 1, (nh, nw)))
    return candidates


def _measure(fn, repeats: int) -> float:
    fn()  # warm-up (also builds Winograd transforms once)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def autotune_schemes(
    graph: Graph,
    repeats: int = 2,
    config: Optional[SchemeConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> TuneReport:
    """Measure every conv layer's scheme candidates and pick the fastest.

    Args:
        graph: shape-inferred graph (weights are used as-is).
        repeats: timing repeats per candidate (min is kept).

    Returns:
        a :class:`TuneReport`; pass ``report.decisions`` to
        ``SessionConfig(scheme_overrides=...)``.
    """
    cfg = config or SchemeConfig()
    rng = rng or np.random.default_rng(0)
    report = TuneReport()
    start_all = time.perf_counter()

    for node in graph.nodes:
        if node.op_type != Op.CONV2D:
            continue
        x_desc = graph.desc(node.inputs[0])
        y_desc = graph.desc(node.outputs[0])
        weights = graph.constants.get(node.inputs[1])
        if weights is None or weights.dtype == np.int8:
            continue
        kernel = tuple(node.attrs["kernel"])
        stride = tuple(node.attrs["stride"])
        dilation = tuple(node.attrs["dilation"])
        groups = int(node.attrs["groups"])
        pads = resolve_padding(
            node.attrs["pad_mode"], node.attrs["pad"], x_desc.shape[2:],
            kernel, stride, dilation,
        )
        x = rng.standard_normal(x_desc.shape).astype(np.float32)

        timings: Dict[str, float] = {}
        labels: Dict[str, Tuple[str, int, Tuple[int, int]]] = {}
        for kind, n, n_hw in _candidate_schemes(kernel, stride, dilation, groups, cfg):
            if kind == "winograd":
                label = f"winograd_n{n}"
            elif kind == "winograd_rect":
                label = f"winograd_rect_n{n_hw[0]}x{n_hw[1]}"
            else:
                label = kind
            labels[label] = (kind, n, n_hw)
            try:
                timings[label] = _measure(
                    lambda k=kind, wn=n, whw=n_hw: conv2d(
                        x, weights, None, stride, pads, dilation, groups,
                        scheme=k, winograd_n=wn, winograd_n_hw=whw,
                    ),
                    repeats,
                )
            except (ValueError, MemoryError):
                continue
        if not timings:
            continue
        best_label = min(timings, key=timings.get)
        kind, n, n_hw = labels[best_label]
        best = SchemeDecision(kind, n, timings[best_label], timings,
                              winograd_n_hw=n_hw)
        report.decisions[node.name] = best
        report.measurements[node.name] = timings
        report.model_decisions[node.name] = select_conv_scheme(
            kernel, x_desc.shape[1], y_desc.shape[1], y_desc.shape[2:],
            stride, dilation, groups, cfg,
        )

    report.tuning_ms = (time.perf_counter() - start_all) * 1000.0
    return report
