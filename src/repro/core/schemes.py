"""Computation scheme selection (paper Section 3.2, Eq. 2-3).

For every convolution, pre-inference picks the cheapest scheme from the
pool {sliding window, Winograd F(n x n, k x k), Strassen-GEMM for 1x1}:

1. ``k == 1``  -> the conv is a matrix multiplication; Strassen applies.
2. ``k > 1``   -> search the Winograd output tile size ``n`` minimizing the
   *total* Eq. 2 cost over the output plane (tile count x per-tile cost —
   this captures boundary-tile waste, which is why the biggest block loses
   on small feature maps), and compare against sliding window.
3. The paper's Eq. 3: if the optimal ``n`` is 1, sliding window wins.

Transform terms are weighted by ``transform_weight`` (default 2.0) because
transforms are bandwidth-bound; DESIGN.md Section 4 documents this
interpretation and shows it reproduces every Table 1 winner.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.ops import Op
from .cost import winograd_tile_cost

__all__ = [
    "SchemeConfig",
    "SchemeDecision",
    "winograd_plane_cost",
    "select_conv_scheme",
    "select_graph_schemes",
    "clear_scheme_memo",
    "scheme_memo_size",
]


@dataclass(frozen=True)
class SchemeConfig:
    """Tunables of the scheme selector.

    Attributes:
        winograd_candidates: output tile sizes considered (1 = sliding).
        max_tile: upper bound on ``n + k - 1`` (numerical stability guard).
        transform_weight: bandwidth weight on Eq. 2's transform terms.
        sliding_weight: relative per-MUL cost of the sliding-window kernel
            (1.0 = same micro-kernel efficiency as the Hadamard GEMM).
        gemm_efficiency_u0: half-saturation constant of the Hadamard GEMM's
            efficiency in the parallel tile count ``U`` (the paper's Eq. 7
            multiplier): effective cost is scaled by ``(U + U0) / U``, so a
            handful of huge tiles cannot fully utilize the micro-kernel.
            This is what makes WinoMax lose on small feature maps (Table 1).
        int8_gemm_speedup: per-MUL throughput advantage of the int8
            micro-kernel over fp32 (4 lanes of 4x-narrower operands).
            Divides the *direct* scheme costs for quantized layers;
            Winograd/Strassen stay fp-only (their float transforms would
            forfeit exact int32 accumulation), so their entries remain at
            fp cost in the ranking — which is exactly why direct wins.
    """

    winograd_candidates: Tuple[int, ...] = (1, 2, 4, 6, 8)
    max_tile: int = 10
    transform_weight: float = 2.0
    sliding_weight: float = 1.0
    gemm_efficiency_u0: float = 16.0
    int8_gemm_speedup: float = 4.0


@dataclass(frozen=True)
class SchemeDecision:
    """The chosen scheme for one convolution.

    Attributes:
        kind: ``"sliding"`` | ``"winograd"`` | ``"winograd_rect"`` |
            ``"gemm1x1"``.
        winograd_n: chosen output tile size (square winograd only).
        winograd_n_hw: per-axis tile sizes (rectangular winograd only).
        cost: modeled arithmetic cost of the chosen scheme.
        alternatives: modeled cost per considered scheme (for reports).
    """

    kind: str
    winograd_n: int = 1
    cost: float = 0.0
    alternatives: Dict[str, float] = field(default_factory=dict)
    winograd_n_hw: Tuple[int, int] = (1, 1)

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable form (persisted by the serving cache)."""
        return {
            "kind": self.kind,
            "winograd_n": self.winograd_n,
            "cost": self.cost,
            "alternatives": dict(self.alternatives),
            "winograd_n_hw": list(self.winograd_n_hw),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "SchemeDecision":
        """Inverse of :meth:`to_json`."""
        return cls(
            kind=str(data["kind"]),
            winograd_n=int(data.get("winograd_n", 1)),
            cost=float(data.get("cost", 0.0)),
            alternatives={str(k): float(v)
                          for k, v in dict(data.get("alternatives", {})).items()},
            winograd_n_hw=tuple(data.get("winograd_n_hw", (1, 1))),
        )


def winograd_plane_cost(
    n: int,
    k: int,
    ic: int,
    oc: int,
    out_hw: Tuple[int, int],
    config: Optional[SchemeConfig] = None,
) -> float:
    """Weighted Eq. 2 cost of Winograd F(n x n) over a whole output plane.

    Includes tile-count boundary waste, the bandwidth weight on transform
    terms and the small-U GEMM de-rating — the same metric scheme selection
    minimizes, so selection and downstream latency modeling stay consistent.
    """
    cfg = config or SchemeConfig()
    oh, ow = out_hw
    tiles = (-(-oh // n)) * (-(-ow // n))
    t = n + k - 1
    transforms = winograd_tile_cost(n, k, ic, oc, cfg.transform_weight) - ic * oc * t**2
    hadamard = ic * oc * t**2 * (tiles + cfg.gemm_efficiency_u0) / tiles
    return tiles * (transforms + hadamard)


def winograd_rect_plane_cost(
    n_hw: Tuple[int, int],
    kernel: Tuple[int, int],
    ic: int,
    oc: int,
    out_hw: Tuple[int, int],
    config: Optional[SchemeConfig] = None,
) -> float:
    """Weighted cost of rectangular Winograd F(nh x nw, kh x kw).

    Generalizes :func:`winograd_plane_cost` per axis; a k = 1 axis has
    identity transforms (no transform cost along it).
    """
    cfg = config or SchemeConfig()
    nh, nw = n_hw
    kh, kw = kernel
    oh, ow = out_hw
    th, tw = nh + kh - 1, nw + kw - 1
    tiles = (-(-oh // nh)) * (-(-ow // nw))
    transform = 0.0
    if kh > 1:  # B_h^T X : th x th applied down columns of a th x tw tile
        transform += ic * th * th * tw + nh * th * tw  # input + output sides
    if kw > 1:
        transform += ic * th * tw * tw + nh * tw * nw
    hadamard = ic * oc * th * tw * (tiles + cfg.gemm_efficiency_u0) / tiles
    return tiles * (cfg.transform_weight * transform + hadamard)


#: Memo of geometry -> decision.  The Eq. 2/3 search is a pure function
#: of (layer geometry, tunables), and real networks repeat a handful of
#: geometries dozens of times (every fire/bottleneck block), so cold
#: scheme selection collapses to one genuine search per distinct layer
#: shape.  Decisions are frozen dataclasses, safe to share across
#: sessions and threads.
_SCHEME_MEMO: Dict[Tuple, SchemeDecision] = {}
_SCHEME_MEMO_LOCK = threading.Lock()


def clear_scheme_memo() -> None:
    """Drop every memoized decision (cold-start benchmarks/tests)."""
    with _SCHEME_MEMO_LOCK:
        _SCHEME_MEMO.clear()


def scheme_memo_size() -> int:
    return len(_SCHEME_MEMO)


def select_conv_scheme(
    kernel: Tuple[int, int],
    ic: int,
    oc: int,
    out_hw: Tuple[int, int],
    stride: Tuple[int, int] = (1, 1),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
    config: Optional[SchemeConfig] = None,
    quantized: bool = False,
) -> SchemeDecision:
    """Pick the cheapest convolution scheme for one layer (memoized).

    Follows Eq. 2/3 with total-cost normalization (see module docstring).
    Winograd is only legal for square kernels, stride 1, dilation 1 and
    groups 1; illegal layers fall back to sliding window (or 1x1-GEMM).

    ``quantized=True`` (int8 weights) restricts the legal pool to the
    direct schemes — sliding window and 1x1-GEMM — whose costs divide by
    ``int8_gemm_speedup``.  Winograd flavours are still *costed* into
    ``alternatives`` (at fp cost; their float transforms cannot run the
    int8 contract) so reports show the ranking, but are never selected.
    """
    cfg = config or SchemeConfig()
    memo_key = (
        tuple(kernel), ic, oc, tuple(out_hw), tuple(stride),
        tuple(dilation), groups, cfg, quantized,
    )
    cached = _SCHEME_MEMO.get(memo_key)
    if cached is not None:
        return cached
    decision = _search_conv_scheme(kernel, ic, oc, out_hw, stride, dilation,
                                   groups, cfg, quantized)
    with _SCHEME_MEMO_LOCK:
        return _SCHEME_MEMO.setdefault(memo_key, decision)


def _search_conv_scheme(
    kernel: Tuple[int, int],
    ic: int,
    oc: int,
    out_hw: Tuple[int, int],
    stride: Tuple[int, int],
    dilation: Tuple[int, int],
    groups: int,
    cfg: SchemeConfig,
    quantized: bool = False,
) -> SchemeDecision:
    kh, kw = kernel
    oh, ow = out_hw

    sliding_cost = cfg.sliding_weight * oh * ow * (ic // groups) * kh * kw * oc
    if quantized:
        sliding_cost /= cfg.int8_gemm_speedup
    alternatives = {"sliding": sliding_cost}

    if kh == 1 and kw == 1 and dilation == (1, 1) and groups == 1:
        # Case 1 of the paper: plain matrix multiplication, Strassen applies.
        return SchemeDecision("gemm1x1", 1, sliding_cost, {**alternatives, "gemm1x1": sliding_cost})

    stride_dilation_ok = stride == (1, 1) and dilation == (1, 1) and groups == 1
    if quantized:
        # Winograd's float transforms would forfeit the exact-int32
        # contract: cost every flavour for the report, select none.
        if kh == kw and kh > 1 and stride_dilation_ok:
            for n in cfg.winograd_candidates:
                if n <= 1 or n + kh - 1 > cfg.max_tile:
                    continue
                alternatives[f"winograd_n{n}"] = winograd_plane_cost(
                    n, kh, ic, oc, (oh, ow), cfg
                )
        return SchemeDecision("sliding", 1, sliding_cost, alternatives)
    square_legal = kh == kw and kh > 1 and stride_dilation_ok
    # Rectangular Winograd (generator extension): asymmetric kernels like
    # Inception's 1x7/7x1 get per-axis tile search instead of falling
    # straight back to sliding window.
    rect_legal = kh != kw and max(kh, kw) > 1 and stride_dilation_ok

    best_n, best_cost = 1, sliding_cost
    best_n_hw: Tuple[int, int] = (1, 1)
    best_kind = "sliding"
    if square_legal:
        for n in cfg.winograd_candidates:
            if n <= 1 or n + kh - 1 > cfg.max_tile:
                continue
            total = winograd_plane_cost(n, kh, ic, oc, (oh, ow), cfg)
            alternatives[f"winograd_n{n}"] = total
            if total < best_cost:
                best_n, best_cost, best_kind = n, total, "winograd"
    elif rect_legal:
        h_candidates = [n for n in cfg.winograd_candidates
                        if n + kh - 1 <= cfg.max_tile and (n > 1 or kh == 1)] or [1]
        w_candidates = [n for n in cfg.winograd_candidates
                        if n + kw - 1 <= cfg.max_tile and (n > 1 or kw == 1)] or [1]
        for nh in h_candidates:
            for nw in w_candidates:
                if nh == 1 and nw == 1:
                    continue
                total = winograd_rect_plane_cost((nh, nw), kernel, ic, oc, (oh, ow), cfg)
                alternatives[f"winograd_rect_n{nh}x{nw}"] = total
                if total < best_cost:
                    best_cost, best_kind = total, "winograd_rect"
                    best_n_hw = (nh, nw)

    if best_kind == "sliding":
        # Eq. 3: n-hat == 1 -> sliding window.
        return SchemeDecision("sliding", 1, sliding_cost, alternatives)
    if best_kind == "winograd_rect":
        return SchemeDecision("winograd_rect", 1, best_cost, alternatives,
                              winograd_n_hw=best_n_hw)
    return SchemeDecision("winograd", best_n, best_cost, alternatives)


def select_graph_schemes(
    graph: Graph, config: Optional[SchemeConfig] = None, workers: int = 0
) -> Dict[str, SchemeDecision]:
    """Run scheme selection for every Conv2D node; keyed by node name.

    Per-layer searches are independent (embarrassingly parallel), so with
    ``workers > 1`` they fan out over a thread pool; results are merged
    by node name, making the output identical to the serial walk.
    """
    jobs = []
    for node in graph.nodes:
        if node.op_type != Op.CONV2D:
            continue
        x = graph.desc(node.inputs[0])
        y = graph.desc(node.outputs[0])
        weights = graph.constants.get(node.inputs[1]) if len(node.inputs) > 1 else None
        jobs.append((node.name, dict(
            kernel=tuple(node.attrs["kernel"]),
            ic=x.shape[1],
            oc=y.shape[1],
            out_hw=y.shape[2:],
            stride=tuple(node.attrs["stride"]),
            dilation=tuple(node.attrs["dilation"]),
            groups=int(node.attrs["groups"]),
            config=config,
            quantized=weights is not None and weights.dtype == np.int8,
        )))
    if workers > 1 and len(jobs) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="prepare-scheme"
        ) as pool:
            picked = pool.map(lambda j: select_conv_scheme(**j[1]), jobs)
            return {name: d for (name, _), d in zip(jobs, picked)}
    return {name: select_conv_scheme(**kwargs) for name, kwargs in jobs}
