"""Reference graph executor: every intermediate tensor, no optimization.

Used by constant folding, quantization calibration and tests.  This is the
"gold standard" executor in the sense of the project's performance guide:
simple, allocation-happy, obviously correct.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..backends.op_runners import build_runner
from ..ir.graph import Graph, GraphError
from ..ir.ops import Op

__all__ = ["execute_reference"]


def execute_reference(graph: Graph, feeds: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Run ``graph`` on the CPU and return *all* intermediate tensors.

    Args:
        feeds: graph input name -> array.

    Returns:
        tensor name -> array for every produced tensor (inputs included).
    """
    env: Dict[str, np.ndarray] = dict(feeds)
    for name in graph.inputs:
        if name not in env:
            raise GraphError(f"missing input {name!r}")
    for node in graph.toposort():
        if node.op_type in (Op.INPUT, Op.CONSTANT):
            continue
        runner = build_runner(node, graph)
        inputs = [env[name] for name in runner.dynamic_inputs]
        for name, value in zip(node.outputs, runner.fn(inputs)):
            env[name] = value
    return env
