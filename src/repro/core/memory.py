"""Static memory planning and the pre-allocated arena (paper Figure 3).

Because input sizes are fixed, pre-inference can virtually walk the graph,
compute every tensor's lifetime, and lay all activations out in one arena
with aggressive reuse.  Inference then performs *pure compute* — no
allocation or freeing interleaved with kernels (the right-hand side of
Figure 3).

The planner is a classic greedy offset assigner: process tensors largest
first; place each at the lowest offset that does not overlap any
already-placed tensor with an intersecting lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import TensorDesc

__all__ = [
    "TensorLifetime",
    "MemoryPlan",
    "plan_memory",
    "adapt_plan",
    "Arena",
    "ExtentFreeList",
    "FreeListError",
]

#: Byte alignment for every tensor in the arena (cache-line friendly).
ALIGNMENT = 64


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class TensorLifetime:
    """Liveness interval of a tensor over the execution order.

    ``first`` is the step producing it; ``last`` the final step consuming
    it (inclusive).  Graph outputs stay live until the end.
    """

    name: str
    nbytes: int
    first: int
    last: int

    def overlaps(self, other: "TensorLifetime") -> bool:
        return self.first <= other.last and other.first <= self.last


@dataclass
class MemoryPlan:
    """Result of static planning.

    Attributes:
        offsets: tensor name -> byte offset in the arena.
        arena_bytes: total arena size.
        total_tensor_bytes: sum of all tensor sizes (the no-reuse cost).
        lifetimes: the computed liveness intervals.
    """

    offsets: Dict[str, int]
    arena_bytes: int
    total_tensor_bytes: int
    lifetimes: Dict[str, TensorLifetime]

    @property
    def reuse_ratio(self) -> float:
        """How much memory reuse saved vs. naive allocation (>= 1.0)."""
        if self.arena_bytes == 0:
            return 1.0
        return self.total_tensor_bytes / self.arena_bytes

    @property
    def peak_bytes(self) -> int:
        """Maximum sum of live tensor bytes over any execution step.

        This is the information-theoretic floor for the arena: no plan can
        use fewer bytes than the worst-step live set.  The gap between
        ``arena_bytes`` and ``peak_bytes`` is fragmentation introduced by
        the greedy offset assignment.
        """
        horizon = max((t.last for t in self.lifetimes.values()), default=-1) + 1
        deltas = [0] * (horizon + 1)
        for t in self.lifetimes.values():
            deltas[t.first] += t.nbytes
            if t.last + 1 <= horizon:
                deltas[t.last + 1] -= t.nbytes
        peak = running = 0
        for delta in deltas:
            running += delta
            peak = max(peak, running)
        return peak

    def utilization(self) -> float:
        """Fraction of the arena carrying live data at the worst step.

        ``peak_bytes / arena_bytes`` — 1.0 means a perfectly packed arena,
        lower values quantify fragmentation (used by ``cli benchmark`` and
        the memory-plan sanitizer's wasted-gap statistics).
        """
        if self.arena_bytes == 0:
            return 1.0
        return self.peak_bytes / self.arena_bytes

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable form (persisted by the serving cache)."""
        return {
            "offsets": dict(self.offsets),
            "arena_bytes": self.arena_bytes,
            "total_tensor_bytes": self.total_tensor_bytes,
            "lifetimes": {
                name: [t.nbytes, t.first, t.last]
                for name, t in self.lifetimes.items()
            },
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "MemoryPlan":
        """Inverse of :meth:`to_json`."""
        lifetimes = {
            str(name): TensorLifetime(str(name), int(nbytes), int(first), int(last))
            for name, (nbytes, first, last) in dict(data["lifetimes"]).items()
        }
        return cls(
            offsets={str(k): int(v) for k, v in dict(data["offsets"]).items()},
            arena_bytes=int(data["arena_bytes"]),
            total_tensor_bytes=int(data["total_tensor_bytes"]),
            lifetimes=lifetimes,
        )

    def matches(self, lifetimes: Dict[str, "TensorLifetime"]) -> bool:
        """Whether this plan covers exactly ``lifetimes`` (same tensors,
        sizes and liveness intervals).

        Used to validate a deserialized plan against the current graph
        before trusting it: a stale cache entry (changed shapes, changed
        execution order) is rejected in O(n) instead of corrupting
        activations.
        """
        if set(self.offsets) != set(lifetimes) or set(self.lifetimes) != set(lifetimes):
            return False
        return all(self.lifetimes[name] == life for name, life in lifetimes.items())

    def validate(self) -> None:
        """Check the plan's soundness invariant.

        No two tensors with overlapping lifetimes may overlap in the arena;
        every tensor must lie inside the arena.  Raises ``AssertionError``
        on violation (used by tests and failure injection).
        """
        items = [
            (name, self.offsets[name], self.lifetimes[name])
            for name in self.offsets
        ]
        for name, offset, life in items:
            assert offset + life.nbytes <= self.arena_bytes, f"{name} exceeds arena"
        for i, (name_a, off_a, life_a) in enumerate(items):
            for name_b, off_b, life_b in items[i + 1 :]:
                if life_a.overlaps(life_b):
                    disjoint = off_a + life_a.nbytes <= off_b or off_b + life_b.nbytes <= off_a
                    assert disjoint, f"live tensors {name_a} and {name_b} overlap in arena"


def compute_lifetimes(
    graph: Graph, order: Sequence[Node], skip: Optional[Set[str]] = None
) -> Dict[str, TensorLifetime]:
    """Liveness intervals of all intermediate tensors over ``order``.

    ``skip`` names tensors excluded from planning (graph inputs and
    constants — they are owned by the caller / constant table).
    """
    skip = skip if skip is not None else set(graph.inputs) | set(graph.constants)
    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    for step, node in enumerate(order):
        for out in node.outputs:
            if out not in skip:
                first.setdefault(out, step)
                last[out] = step
        for inp in node.inputs:
            if inp in first:
                last[inp] = step
    horizon = len(order)
    for out in graph.outputs:
        if out in first:
            last[out] = horizon  # outputs survive the whole run
    lifetimes = {}
    for name in first:
        desc = graph.desc(name)
        lifetimes[name] = TensorLifetime(name, desc.nbytes, first[name], last[name])
    return lifetimes


def plan_memory(
    graph: Graph, order: Optional[Sequence[Node]] = None, skip: Optional[Set[str]] = None
) -> MemoryPlan:
    """Assign arena offsets to every intermediate tensor (greedy best-fit)."""
    order = list(order) if order is not None else graph.toposort()
    lifetimes = compute_lifetimes(graph, order, skip)
    # Largest tensors first gives the classic 2-approximation behaviour.
    todo = sorted(lifetimes.values(), key=lambda t: (-t.nbytes, t.first))
    placed: List[Tuple[int, TensorLifetime]] = []
    offsets: Dict[str, int] = {}
    for tensor in todo:
        conflicts = sorted(
            (off, off + _align(other.nbytes))
            for off, other in placed
            if tensor.overlaps(other)
        )
        candidate = 0
        for start, end in conflicts:
            if candidate + tensor.nbytes <= start:
                break
            candidate = max(candidate, end)
        offsets[tensor.name] = candidate
        placed.append((candidate, tensor))
    arena = max((off + _align(life.nbytes) for off, life in placed), default=0)
    total = sum(t.nbytes for t in lifetimes.values())
    return MemoryPlan(offsets, arena, total, lifetimes)


def adapt_plan(
    donor: MemoryPlan, lifetimes: Dict[str, TensorLifetime]
) -> Optional[MemoryPlan]:
    """Reuse a donor plan's offsets for an adjacent shape bucket.

    Serving layers prepare one session per shape bucket (micro-batch
    sizes, prompt-length buckets).  Adjacent buckets share graph
    structure — same tensors, same execution order, only sizes differ —
    so the largest bucket's plan can back the smaller ones directly: keep
    every offset, swap in the new (smaller-or-equal) lifetimes.

    Soundness carries over from the donor: identical liveness intervals
    with ``nbytes`` no larger than the donor's cannot introduce a new
    overlap.  Any mismatch — different tensor set, shifted intervals, a
    tensor that *grew* past its donor slot (the aligned donor extent is
    the reuse budget) — returns ``None`` and the caller re-plans from
    scratch.  Callers are expected to re-prove the adapted plan with
    :func:`repro.analysis.check_memory_plan` before trusting it.
    """
    if set(donor.offsets) != set(lifetimes):
        return None
    for name, life in lifetimes.items():
        old = donor.lifetimes.get(name)
        if old is None or old.first != life.first or old.last != life.last:
            return None
        if life.nbytes > _align(old.nbytes):
            return None
    return MemoryPlan(
        offsets=dict(donor.offsets),
        arena_bytes=donor.arena_bytes,
        total_tensor_bytes=sum(t.nbytes for t in lifetimes.values()),
        lifetimes=dict(lifetimes),
    )


class FreeListError(ValueError):
    """A misuse of :class:`ExtentFreeList` (double/wild/out-of-range free).

    A ``ValueError`` subclass for backward compatibility; additionally
    carries a typed rule id and converts to a structured
    :class:`repro.analysis.Diagnostic` for the sanitizer/CLI reports.
    """

    def __init__(self, rule: str, message: str) -> None:
        super().__init__(message)
        self.rule = rule

    def as_diagnostic(self):
        # Imported lazily: repro.analysis.memcheck imports this module.
        from ..analysis.diagnostics import error

        return error(self.rule, str(self))


class ExtentFreeList:
    """Best-fit allocator over ``[start, end)`` unit extents with coalescing.

    The static planner above assigns offsets once, before inference; a KV
    cache (``repro.genai.kvcache``) instead allocates and frees slabs
    *while serving*, so it needs a dynamic allocator over the same arena
    abstraction.  Units are deliberately abstract (the KV cache uses
    fixed-size pages, keeping every returned offset aligned by
    construction); the free list stays sorted and adjacent extents merge
    on :meth:`free`, so fragmentation is bounded by genuine interleaving,
    not by allocator bookkeeping.

    Frees are verified, not trusted: every outstanding allocation is
    tracked by its start unit, and :meth:`free` raises a typed
    :class:`FreeListError` on out-of-range ranges, frees of never-
    allocated extents, size-mismatched frees, and double frees — *even
    when the pages have since been handed to another caller*, the case
    the old overlap-with-free-extent check could not see.
    """

    def __init__(self, total_units: int) -> None:
        if total_units < 0:
            raise ValueError(f"total_units must be >= 0, got {total_units}")
        self.total_units = total_units
        self._free: List[Tuple[int, int]] = [(0, total_units)] if total_units else []
        self._allocated: Dict[int, int] = {}  # start unit -> extent size

    def alloc(self, units: int) -> Optional[int]:
        """Reserve ``units`` contiguous units; ``None`` when nothing fits.

        Best-fit: the smallest extent that fits is carved, which keeps
        large holes intact for large future slabs.
        """
        if units <= 0:
            raise ValueError(f"units must be > 0, got {units}")
        best = None
        for i, (start, end) in enumerate(self._free):
            size = end - start
            if size >= units and (best is None or size < best[1]):
                best = (i, size)
        if best is None:
            return None
        i, _ = best
        start, end = self._free[i]
        if end - start == units:
            del self._free[i]
        else:
            self._free[i] = (start + units, end)
        self._allocated[start] = units
        return start

    def free(self, start: int, units: int) -> None:
        """Return ``[start, start + units)``, merging adjacent extents.

        Raises:
            FreeListError: (a ``ValueError``) with a typed rule id —
                ``mem-free-out-of-range`` for ranges outside the arena,
                ``mem-double-free`` for extents not currently allocated
                (freed twice, or never allocated), and
                ``mem-free-mismatched`` when the size does not match the
                original allocation (partial frees corrupt coalescing).
        """
        if units <= 0 or start < 0 or start + units > self.total_units:
            raise FreeListError(
                "mem-free-out-of-range",
                f"bad free of [{start}, {start + units}) over {self.total_units} units",
            )
        owned = self._allocated.get(start)
        if owned is None:
            raise FreeListError(
                "mem-double-free",
                f"double free (or free of a never-allocated extent): "
                f"[{start}, {start + units}) is not an outstanding allocation",
            )
        if owned != units:
            raise FreeListError(
                "mem-free-mismatched",
                f"mismatched free of [{start}, {start + units}): "
                f"the allocation at {start} spans {owned} units",
            )
        del self._allocated[start]
        new = (start, start + units)
        merged: List[Tuple[int, int]] = []
        inserted = False
        for ext in self._free:
            if ext[1] < new[0] or new[1] < ext[0]:
                if not inserted and ext[0] > new[1]:
                    merged.append(new)
                    inserted = True
                merged.append(ext)
            elif ext[1] == new[0] or new[1] == ext[0]:
                new = (min(ext[0], new[0]), max(ext[1], new[1]))
            else:
                raise ValueError(
                    f"double free: [{start}, {start + units}) overlaps free "
                    f"extent [{ext[0]}, {ext[1]})"
                )
        if not inserted:
            merged.append(new)
        merged.sort()
        self._free = merged

    @property
    def free_units(self) -> int:
        return sum(end - start for start, end in self._free)

    @property
    def largest_extent(self) -> int:
        return max((end - start for start, end in self._free), default=0)

    def extents(self) -> List[Tuple[int, int]]:
        """The sorted free extents (introspection/tests)."""
        return list(self._free)


class Arena:
    """One pre-allocated byte buffer backing all planned tensors.

    ``view`` hands out numpy views into the buffer — acquiring a tensor
    during inference is pointer arithmetic, not allocation.
    """

    def __init__(self, plan: MemoryPlan, paranoid: bool = False) -> None:
        self.plan = plan
        self.paranoid = paranoid
        #: Optional repro.sanitize.Sanitizer; the owning session installs
        #: its own when sanitizing, so concurrent slot handouts from
        #: unsynchronized threads surface as races.
        self.sanitizer = None
        self._buffer = np.zeros(max(plan.arena_bytes, 1), dtype=np.uint8)

    def view(self, desc: TensorDesc) -> np.ndarray:
        """A writable array view for ``desc`` at its planned offset.

        Raises:
            KeyError: if the tensor was not part of the plan.
            GraphError: in paranoid mode, if the slot is misaligned or
                falls outside the arena.
        """
        offset = self.plan.offsets[desc.name]
        sanitizer = self.sanitizer
        if sanitizer is not None and sanitizer.enabled:
            # Each slot has exactly one producer per run; a second
            # unordered writer means two runs share this arena.
            sanitizer.probe(self, f"slot.{desc.name}", "w")
        if self.paranoid:
            from ..ir.graph import GraphError

            if offset % ALIGNMENT != 0:
                raise GraphError(
                    f"arena slot for {desc.name!r} at offset {offset} "
                    f"is not {ALIGNMENT}-byte aligned"
                )
            if offset < 0 or offset + desc.nbytes > self.plan.arena_bytes:
                raise GraphError(
                    f"arena slot for {desc.name!r} spans "
                    f"[{offset}, {offset + desc.nbytes}) outside arena "
                    f"of {self.plan.arena_bytes} bytes"
                )
        count = desc.size
        flat = self._buffer[offset : offset + desc.nbytes].view(desc.dtype.np_dtype)
        return flat[:count].reshape(desc.shape)

    @property
    def nbytes(self) -> int:
        return self.plan.arena_bytes
