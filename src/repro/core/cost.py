"""The pre-inference cost model (paper Eq. 1, 4, 5).

Total cost of a computation scheme is ``C_total = C_algorithm + C_backend``
(Eq. 1).  The backend term sums per-operator costs (Eq. 4) where each op is

    C_op = MUL / FLOPS * 1000            (CPU, milliseconds)
    C_op = MUL / FLOPS * 1000 + t_sched  (GPU — extra command overhead)

``MUL`` is the operator's multiply count *under its chosen algorithm*:
Winograd genuinely lowers the count (that is the point of scheme search),
and Strassen shaves large 1x1-conv GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..devices.specs import DeviceSpec
from ..ir.graph import Graph, Node
from ..ir.ops import Op, get_schema
from ..kernels.matmul import strassen_should_recurse
from ..kernels.winograd import generate_transforms  # noqa: F401  (re-export convenience)

__all__ = ["node_muls", "winograd_tile_cost", "strassen_mul_factor", "BackendCostModel"]

#: Strassen recursion bottoms out at the micro-kernel tile size (see
#: repro.kernels.matmul); the cost model mirrors that floor.
_STRASSEN_MIN_DIM = 256


def strassen_mul_factor(n: int, k: int, m: int) -> float:
    """Fraction of direct MULs Strassen performs on an [n,k]x[k,m] GEMM.

    Each recursion level multiplies the count by 7/8; the level count
    follows the paper's Eq. 9 gate plus the micro-kernel floor.
    """
    factor = 1.0
    while min(n, k, m) > _STRASSEN_MIN_DIM and strassen_should_recurse(n, k, m):
        factor *= 7.0 / 8.0
        n, k, m = n // 2, k // 2, m // 2
    return factor


def winograd_tile_cost(n: int, k: int, ic: int, oc: int, transform_weight: float = 1.0) -> float:
    """Per-tile arithmetic cost of Winograd F(n x n, k x k) — paper Eq. 2.

    ``C(n) = 2*ic*(n+k-1)^3  +  ic*oc*(n+k-1)^2  +  n*(n+k-1)*(2n+k-1)``

    The first and last terms are the input/output transforms; the middle is
    the Hadamard-as-GEMM stage.  ``transform_weight`` (the lambda of
    DESIGN.md Section 4) scales the transform terms to account for their
    bandwidth-bound nature; 1.0 gives the literal Eq. 2.
    """
    t = n + k - 1
    input_tf = 2.0 * ic * t**3
    hadamard = float(ic) * oc * t**2
    output_tf = float(n) * t * (2 * n + k - 1)
    return transform_weight * (input_tf + output_tf) + hadamard


def node_muls(
    node: Node,
    graph: Graph,
    scheme_kind: Optional[str] = None,
    winograd_n: int = 2,
    winograd_n_hw: tuple = (1, 2),
) -> int:
    """Multiply count of ``node`` under an optional conv scheme.

    Without a scheme this is the schema's direct count (what a naive engine
    executes); with ``scheme_kind`` the count reflects the chosen algorithm.
    """
    schema = get_schema(node.op_type)
    if schema.mul_count is None:
        return 0
    input_shapes = [graph.desc(name).shape for name in node.inputs]
    output_shape = graph.desc(node.outputs[0]).shape
    direct = schema.mul_count(input_shapes, output_shape, node.attrs)
    if node.op_type != Op.CONV2D or scheme_kind in (None, "sliding"):
        return direct

    n_batch, oc, oh, ow = output_shape
    ic = input_shapes[0][1]
    k = node.attrs["kernel"][0]
    if scheme_kind == "gemm1x1":
        factor = strassen_mul_factor(n_batch * oh * ow, ic, oc)
        return int(direct * factor)
    if scheme_kind == "winograd":
        tiles = -(-oh // winograd_n) * (-(-ow // winograd_n))
        per_tile = winograd_tile_cost(winograd_n, k, ic, oc)
        return int(n_batch * tiles * per_tile)
    if scheme_kind == "winograd_rect":
        nh, nw = winograd_n_hw
        kh, kw = node.attrs["kernel"]
        th, tw = nh + kh - 1, nw + kw - 1
        tiles = -(-oh // nh) * (-(-ow // nw))
        transform = 0
        if kh > 1:
            transform += ic * th * th * tw + nh * th * tw
        if kw > 1:
            transform += ic * th * tw * tw + nh * tw * nw
        per_tile = transform + ic * oc * th * tw
        return int(n_batch * tiles * per_tile)
    raise ValueError(f"unknown scheme kind {scheme_kind!r}")


@dataclass(frozen=True)
class BackendCostModel:
    """Eq. 5 evaluated against a concrete device.

    Attributes:
        device: the capability model supplying FLOPS and t_schedule.
        threads: CPU thread count (selects top-k core frequencies).
    """

    device: DeviceSpec
    threads: int = 4

    def cpu_cost_ms(self, muls: int) -> float:
        return muls / self.device.cpu_flops(self.threads) * 1000.0

    def gpu_cost_ms(self, muls: int, api: str) -> float:
        return muls / self.device.gpu_flops() * 1000.0 + self.device.t_schedule_ms(api)

    def op_cost_ms(self, muls: int, backend_kind: str) -> float:
        """Cost of one op on ``backend_kind`` ("cpu" or a GPU API name)."""
        if backend_kind == "cpu":
            return self.cpu_cost_ms(muls)
        return self.gpu_cost_ms(muls, backend_kind)

    def graph_cost_ms(self, graph: Graph, backend_kind: str, supports=None) -> float:
        """Eq. 4: total backend cost, falling back to CPU for unsupported ops.

        Args:
            supports: optional predicate ``op_type -> bool``; ops it rejects
                are costed on the CPU (the paper's fallback rule).
        """
        total = 0.0
        for node in graph.nodes:
            muls = node_muls(node, graph)
            if backend_kind != "cpu" and supports is not None and not supports(node.op_type):
                total += self.cpu_cost_ms(muls)
            else:
                total += self.op_cost_ms(muls, backend_kind)
        return total
