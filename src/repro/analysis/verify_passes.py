"""Optimizer pass verifier: catch the pass that broke the graph.

SoftNeuro-style routine selection and MNN-style offline optimization share a
failure mode: a rewrite pass that is *plausible* but wrong produces a graph
that still runs — just computes something else.  This wrapper makes every
pass prove itself.  After each pass application that reports a change, the
verifier re-checks

1. **structure** — :meth:`Graph.check` plus the full lint rule set
   (errors only),
2. **shapes** — shape inference must still succeed and graph outputs must
   keep their descriptors' shapes/dtypes,
3. **numerics** — a reference execution on a fixed random input must match
   the pre-optimization baseline within tolerance,

and a failure is attributed to the exact pass (and round) that introduced
it via :class:`PassVerificationError`.

Usage::

    from repro.analysis import VerifyingPassManager
    VerifyingPassManager().run(graph)          # raises on a broken pass

    from repro.converter import optimize
    optimize(graph, verify=True)               # same, via the converter API
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..converter.optimizer.passes import Pass, PassManager
from ..ir.graph import Graph, GraphError
from ..ir.shape_inference import infer_shapes
from .diagnostics import Diagnostic, Severity, error, format_diagnostics
from .lint import lint_graph

__all__ = ["PassVerificationError", "VerifyingPassManager", "random_feeds"]


class PassVerificationError(GraphError):
    """An optimizer pass produced a broken graph.

    Attributes:
        pass_name: the pass that introduced the problem.
        round_idx: the fixpoint round it happened in.
    """

    def __init__(
        self,
        pass_name: str,
        round_idx: int,
        message: str,
        diagnostics: Optional[Sequence[Diagnostic]] = None,
    ) -> None:
        super().__init__(
            f"pass {pass_name!r} (round {round_idx}) broke the graph: {message}",
            diagnostics,
        )
        self.pass_name = pass_name
        self.round_idx = round_idx


def random_feeds(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """Deterministic random inputs matching the graph's input descriptors.

    Integer inputs (embedding indices and the like) draw from ``{0, 1}`` so
    they stay valid for any gather table with at least two rows.
    """
    rng = np.random.default_rng(seed)
    feeds: Dict[str, np.ndarray] = {}
    for name in graph.inputs:
        desc = graph.desc(name)
        if np.issubdtype(desc.dtype.np_dtype, np.integer):
            feeds[name] = rng.integers(0, 2, desc.shape).astype(desc.dtype.np_dtype)
        else:
            feeds[name] = rng.standard_normal(desc.shape).astype(desc.dtype.np_dtype)
    return feeds


class VerifyingPassManager(PassManager):
    """A :class:`PassManager` that validates the graph after every pass.

    Args:
        passes: pass pipeline (default: the converter's standard one).
        max_rounds: fixpoint bound, as in :class:`PassManager`.
        atol: numerical tolerance for the equivalence spot-check.  The
            default absorbs the float32 reassociation that legitimate
            fusions (Conv+BN) introduce on deep nets.
        seed: RNG seed for the spot-check input.
        check_numerics: set ``False`` to skip the reference executions
            (structure and shape checks still run) — useful when inputs
            cannot be synthesized meaningfully.
    """

    def __init__(
        self,
        passes: Optional[Sequence[Pass]] = None,
        max_rounds: int = 4,
        atol: float = 5e-2,
        seed: int = 0,
        check_numerics: bool = True,
    ) -> None:
        super().__init__(passes, max_rounds)
        self.atol = atol
        self.seed = seed
        self.check_numerics = check_numerics

    # -- checks ------------------------------------------------------------
    def _baseline(self, graph: Graph) -> Optional[Dict[str, np.ndarray]]:
        from ..core.reference import execute_reference

        if not self.check_numerics or not graph.inputs or not graph.outputs:
            return None
        feeds = random_feeds(graph, self.seed)
        env = execute_reference(graph, feeds)
        return {name: np.asarray(env[name]) for name in graph.outputs}

    def _check_after(
        self,
        graph: Graph,
        p: Pass,
        round_idx: int,
        baseline: Optional[Dict[str, np.ndarray]],
    ) -> None:
        from ..core.reference import execute_reference

        # (1) structure: aggregate validation + lint errors.
        diags = list(graph.check())
        if not diags:
            diags = [d for d in lint_graph(graph) if d.severity is Severity.ERROR]
        if diags:
            raise PassVerificationError(
                p.name, round_idx, format_diagnostics(diags), diags
            )
        # (2) shapes: re-inference must succeed and keep output descriptors.
        before = {
            name: graph.tensor_descs.get(name) for name in graph.outputs
        }
        try:
            infer_shapes(graph)
        except GraphError as exc:
            raise PassVerificationError(
                p.name, round_idx, f"shape inference failed: {exc}",
                [error("shape-mismatch", str(exc))],
            ) from exc
        for name, old in before.items():
            new = graph.tensor_descs.get(name)
            if old is not None and new is not None and old.shape != new.shape:
                raise PassVerificationError(
                    p.name, round_idx,
                    f"output {name!r} changed shape {old.shape} -> {new.shape}",
                    [error("shape-mismatch",
                           f"output {name!r} changed shape {old.shape} -> {new.shape}",
                           tensor=name)],
                )
        # (3) numerics: spot-check against the pre-optimization baseline.
        if baseline is not None:
            feeds = random_feeds(graph, self.seed)
            env = execute_reference(graph, feeds)
            for name, want in baseline.items():
                got = np.asarray(env[name])
                if got.shape != want.shape:
                    raise PassVerificationError(
                        p.name, round_idx,
                        f"output {name!r} changed shape {want.shape} -> {got.shape}",
                    )
                err = float(np.max(np.abs(got.astype(np.float64)
                                          - want.astype(np.float64)))) if got.size else 0.0
                if not np.isfinite(err) or err > self.atol:
                    raise PassVerificationError(
                        p.name, round_idx,
                        f"output {name!r} diverged: max |delta| = {err:.3e} "
                        f"(tolerance {self.atol:.1e})",
                        [error("numeric-divergence",
                               f"output {name!r} max |delta| = {err:.3e}",
                               tensor=name)],
                    )

    # -- driver ------------------------------------------------------------
    def run(self, graph: Graph) -> Graph:
        """Apply passes to fixpoint, verifying the graph after each change.

        Raises:
            PassVerificationError: naming the pass (and round) that broke
                structure, shapes, or numerics.
        """
        from ..obs.tracer import get_tracer

        tracer = self.tracer if self.tracer is not None else get_tracer()
        with tracer.span("optimizer.verified", "optimizer", graph=graph.name):
            baseline = self._baseline(graph)
            for round_idx in range(self.max_rounds):
                changed = 0
                for p in self.passes:
                    result = self._apply(p, graph, round_idx)
                    if result:
                        self.log.append(
                            f"round {round_idx}: {p.name} changed {result.changed}"
                        )
                        with tracer.span(f"verify:{p.name}", "optimizer",
                                         round=round_idx):
                            self._check_after(graph, p, round_idx, baseline)
                    changed += result.changed
                if not changed:
                    break
            graph.validate()
            infer_shapes(graph)
        return graph
