"""Graph linter: static rules over the IR producing structured diagnostics.

The paper's pre-inference pipeline (Section 3.2) assumes every static fact
about a graph — shapes, dtypes, layouts, attribute domains — is consistent
before the first run.  This linter *checks* those facts.  Each rule is a
small function registered under a stable rule id; :func:`lint_graph` runs
them all (or a chosen subset) and returns :class:`Diagnostic` records.

Rules
=====

========================  ========  ==================================================
rule id                   severity  checks
========================  ========  ==================================================
``dangling-input``        error     node reads a tensor nobody defines
``unproduced-output``     error     graph output is never produced
``double-producer``       error     tensor written by two nodes
``duplicate-node-name``   error     two nodes share a name
``output-shadowing``      error     node output shadows a graph input / constant
``cycle``                 error     graph is not a DAG
``shape-mismatch``        error     recorded descriptors disagree with re-inference
``dtype-mismatch``        error     edge dtypes inconsistent (binary ops, concat)
``layout-mismatch``       error     NCHW/NC4HW4/NC inconsistency along an edge
``attr-domain``           error     attribute outside its domain (stride < 1, ...)
``quant-boundary``        error     int8 tensor feeds a float-only op, and friends
``dead-node``             warning   node cannot reach any graph output
``unused-constant``       warning   constant consumed by nothing
========================  ========  ==================================================

Usage::

    from repro.analysis import lint_graph, has_errors
    diags = lint_graph(graph)
    if has_errors(diags):
        ...
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..ir.graph import Graph, GraphError, Node
from ..ir.ops import Op, get_schema
from ..ir.shape_inference import infer_node_outputs
from ..ir.tensor import DataType, Layout, TensorDesc
from .diagnostics import Diagnostic, Severity, error, sort_diagnostics, warning

__all__ = ["LintRule", "LintContext", "lint_graph", "all_rules", "rule"]


class LintContext:
    """Precomputed graph facts shared by every rule.

    Tolerant by construction: double producers, missing descriptors and
    cycles do not stop context building — the corresponding rules report
    them instead.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        #: first-writer-wins producer map (double producers are diagnosed
        #: by the ``double-producer`` rule, not here).
        self.producers: Dict[str, Node] = {}
        for node in graph.nodes:
            for out in node.outputs:
                self.producers.setdefault(out, node)
        self.consumers: Dict[str, List[Node]] = {}
        for node in graph.nodes:
            for inp in node.inputs:
                self.consumers.setdefault(inp, []).append(node)
        self.available = set(graph.inputs) | set(graph.constants)
        self.order = self._toposort_tolerant()

    def desc(self, tensor: str) -> Optional[TensorDesc]:
        return self.graph.tensor_descs.get(tensor)

    def _toposort_tolerant(self) -> List[Node]:
        """Kahn's algorithm over the first-wins producer map.

        Nodes stuck in a cycle are omitted (the ``cycle`` rule compares
        lengths).
        """
        graph = self.graph
        index = {id(node): i for i, node in enumerate(graph.nodes)}
        indegree: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        for i, node in enumerate(graph.nodes):
            deps = {
                id(self.producers[inp])
                for inp in node.inputs
                if inp in self.producers and self.producers[inp] is not node
            }
            indegree[i] = len(deps)
            for dep in deps:
                dependents.setdefault(index[dep], []).append(i)
        ready = deque(i for i, deg in indegree.items() if deg == 0)
        order: List[Node] = []
        seen = set()
        while ready:
            i = ready.popleft()
            if i in seen:
                continue
            seen.add(i)
            order.append(graph.nodes[i])
            for j in dependents.get(i, ()):
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
        return order


RuleFn = Callable[[LintContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """A registered lint rule: stable id, description, checker function."""

    rule_id: str
    description: str
    fn: RuleFn


_RULES: Dict[str, LintRule] = {}


def rule(rule_id: str, description: str) -> Callable[[RuleFn], RuleFn]:
    """Register a lint rule under ``rule_id`` (decorator)."""

    def deco(fn: RuleFn) -> RuleFn:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} already registered")
        _RULES[rule_id] = LintRule(rule_id, description, fn)
        return fn

    return deco


def all_rules() -> Tuple[LintRule, ...]:
    """All registered rules, sorted by id."""
    return tuple(_RULES[k] for k in sorted(_RULES))


# ---------------------------------------------------------------------------
# Structural rules (shared with Graph.check — re-emitted here so the linter
# is a one-stop report even on structurally broken graphs).
# ---------------------------------------------------------------------------

@rule("dangling-input", "node reads a tensor nobody defines")
def _dangling_input(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.graph.nodes:
        for inp in node.inputs:
            if inp not in ctx.producers and inp not in ctx.available:
                yield error(
                    "dangling-input",
                    f"reads undefined tensor {inp!r}",
                    node=node.name, tensor=inp,
                )


@rule("unproduced-output", "graph output is never produced")
def _unproduced_output(ctx: LintContext) -> Iterator[Diagnostic]:
    for tensor in ctx.graph.outputs:
        if tensor not in ctx.producers and tensor not in ctx.available:
            yield error(
                "unproduced-output",
                f"graph output {tensor!r} is never produced",
                tensor=tensor,
            )


@rule("double-producer", "tensor written by two nodes")
def _double_producer(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.graph.nodes:
        for out in node.outputs:
            first = ctx.producers.get(out)
            if first is not None and first is not node:
                yield error(
                    "double-producer",
                    f"tensor {out!r} produced by both {first.name!r} and {node.name!r}",
                    node=node.name, tensor=out,
                    hint="rename one of the outputs",
                )


@rule("duplicate-node-name", "two nodes share a name")
def _duplicate_node_name(ctx: LintContext) -> Iterator[Diagnostic]:
    seen: Dict[str, Node] = {}
    for node in ctx.graph.nodes:
        if node.name in seen and seen[node.name] is not node:
            yield error(
                "duplicate-node-name",
                f"node name {node.name!r} used by two nodes "
                f"({seen[node.name].op_type} and {node.op_type})",
                node=node.name,
            )
        else:
            seen[node.name] = node


@rule("output-shadowing", "node output shadows a graph input or constant")
def _output_shadowing(ctx: LintContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph.nodes:
        for out in node.outputs:
            if out in graph.inputs:
                yield error(
                    "output-shadowing",
                    f"output {out!r} shadows a graph input",
                    node=node.name, tensor=out,
                    hint="rename the node output",
                )
            elif out in graph.constants:
                yield error(
                    "output-shadowing",
                    f"output {out!r} shadows a constant",
                    node=node.name, tensor=out,
                    hint="rename the node output",
                )


@rule("cycle", "graph is not a DAG")
def _cycle(ctx: LintContext) -> Iterator[Diagnostic]:
    if len(ctx.order) != len(ctx.graph.nodes):
        ordered = {id(n) for n in ctx.order}
        stuck = [n.name for n in ctx.graph.nodes if id(n) not in ordered]
        yield error(
            "cycle",
            f"graph contains a cycle through {len(stuck)} node(s): "
            + ", ".join(repr(s) for s in stuck[:5])
            + ("..." if len(stuck) > 5 else ""),
        )


# ---------------------------------------------------------------------------
# Reachability rules.
# ---------------------------------------------------------------------------

@rule("dead-node", "node cannot reach any graph output")
def _dead_node(ctx: LintContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    if not graph.outputs:
        return
    live: set = set()
    frontier = deque(t for t in graph.outputs)
    seen_tensors = set(frontier)
    while frontier:
        tensor = frontier.popleft()
        node = ctx.producers.get(tensor)
        if node is None or id(node) in live:
            continue
        live.add(id(node))
        for inp in node.inputs:
            if inp not in seen_tensors:
                seen_tensors.add(inp)
                frontier.append(inp)
    for node in graph.nodes:
        if id(node) not in live:
            yield warning(
                "dead-node",
                f"{node.op_type} node does not contribute to any graph output",
                node=node.name,
                hint="remove it or mark one of its outputs as a graph output",
            )


@rule("unused-constant", "constant consumed by nothing")
def _unused_constant(ctx: LintContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for name in graph.constants:
        if name not in ctx.consumers and name not in graph.outputs:
            yield warning(
                "unused-constant",
                f"constant {name!r} ({graph.constants[name].nbytes} bytes) is never used",
                tensor=name,
                hint="drop it to shrink the model file",
            )


# ---------------------------------------------------------------------------
# Descriptor consistency rules.
# ---------------------------------------------------------------------------

@rule("shape-mismatch", "recorded descriptors disagree with re-inference")
def _shape_mismatch(ctx: LintContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in ctx.order:
        if node.op_type in (Op.INPUT, Op.CONSTANT):
            continue
        try:
            results = infer_node_outputs(graph, node)
        except GraphError as exc:
            yield error("shape-mismatch", str(exc), node=node.name)
            continue
        except Exception as exc:  # malformed attrs can break inference math
            yield error(
                "shape-mismatch",
                f"shape inference crashed: {exc}",
                node=node.name,
            )
            continue
        for out, (shape, dtype) in zip(node.outputs, results):
            recorded = ctx.desc(out)
            if recorded is None:
                continue
            if recorded.shape != tuple(shape):
                yield error(
                    "shape-mismatch",
                    f"descriptor for {out!r} records shape {recorded.shape} "
                    f"but inference derives {tuple(shape)}",
                    node=node.name, tensor=out,
                    hint="re-run infer_shapes after mutating the graph",
                )
            elif recorded.dtype is not dtype:
                yield error(
                    "shape-mismatch",
                    f"descriptor for {out!r} records dtype {recorded.dtype.value} "
                    f"but inference derives {dtype.value}",
                    node=node.name, tensor=out,
                )


_BINARY_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.ELTWISE_MAX)


@rule("dtype-mismatch", "edge dtypes inconsistent across an op")
def _dtype_mismatch(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.graph.nodes:
        if node.op_type not in _BINARY_OPS and node.op_type != Op.CONCAT:
            continue
        descs = [(inp, ctx.desc(inp)) for inp in node.inputs]
        known = [(inp, d) for inp, d in descs if d is not None]
        if len(known) < 2:
            continue
        base_name, base = known[0]
        for inp, d in known[1:]:
            if d.dtype is not base.dtype:
                yield error(
                    "dtype-mismatch",
                    f"inputs {base_name!r} ({base.dtype.value}) and "
                    f"{inp!r} ({d.dtype.value}) have different dtypes",
                    node=node.name, tensor=inp,
                    hint="insert a cast/Dequantize so both sides agree",
                )
                break


_SPATIAL_OPS = (
    Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.CONV_TRANSPOSE2D,
    Op.MAX_POOL, Op.AVG_POOL, Op.RESIZE,
)


@rule("layout-mismatch", "NCHW/NC4HW4/NC inconsistency along an edge")
def _layout_mismatch(ctx: LintContext) -> Iterator[Diagnostic]:
    for name, desc in ctx.graph.tensor_descs.items():
        if desc.layout is Layout.NC4HW4 and desc.rank != 4:
            yield error(
                "layout-mismatch",
                f"tensor {name!r} is NC4HW4 but has rank {desc.rank} "
                f"(layout requires rank 4)",
                tensor=name,
            )
    for node in ctx.graph.nodes:
        if node.op_type in _SPATIAL_OPS and node.inputs:
            d = ctx.desc(node.inputs[0])
            if d is not None and d.layout is Layout.NC:
                yield error(
                    "layout-mismatch",
                    f"spatial op fed flat NC tensor {node.inputs[0]!r}",
                    node=node.name, tensor=node.inputs[0],
                    hint="repack to NCHW/NC4HW4 before spatial ops",
                )
        if node.op_type in _BINARY_OPS or node.op_type == Op.CONCAT:
            layouts = {}
            for inp in node.inputs:
                d = ctx.desc(inp)
                if d is not None:
                    layouts.setdefault(d.layout, inp)
            if len(layouts) > 1:
                pretty = ", ".join(
                    f"{t!r}={lay.value}" for lay, t in sorted(layouts.items(), key=lambda kv: kv[0].value)
                )
                yield error(
                    "layout-mismatch",
                    f"inputs mix layouts: {pretty}",
                    node=node.name,
                    hint="insert a layout conversion so all inputs match",
                )


# ---------------------------------------------------------------------------
# Attribute-domain rules (beyond schema __post_init__, which only checks
# attribute *names* and arity).
# ---------------------------------------------------------------------------

def _check_pair(node: Node, attr: str, minimum: int) -> Iterator[Diagnostic]:
    value = node.attrs.get(attr)
    if value is None:
        return
    pair = value if isinstance(value, (tuple, list)) else (value, value)
    if any(int(v) < minimum for v in pair):
        yield error(
            "attr-domain",
            f"{attr}={tuple(pair)} must be >= {minimum} in every component",
            node=node.name,
            hint=f"set {attr} to positive integers",
        )


@rule("attr-domain", "attribute value outside its legal domain")
def _attr_domain(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.graph.nodes:
        attrs = node.attrs
        if node.op_type in (Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.CONV_TRANSPOSE2D,
                            Op.MAX_POOL, Op.AVG_POOL):
            yield from _check_pair(node, "kernel", 1)
            yield from _check_pair(node, "stride", 1)
            yield from _check_pair(node, "dilation", 1)
            pad = attrs.get("pad") or ()
            if any(int(p) < 0 for p in pad):
                yield error(
                    "attr-domain",
                    f"pad={tuple(pad)} has negative entries",
                    node=node.name,
                )
        if node.op_type in (Op.CONV2D, Op.CONV_TRANSPOSE2D):
            groups = int(attrs.get("groups", 1))
            if groups < 1:
                yield error("attr-domain", f"groups={groups} must be >= 1", node=node.name)
            else:
                d = ctx.desc(node.inputs[0]) if node.inputs else None
                if d is not None and d.rank == 4 and d.shape[1] % groups != 0:
                    yield error(
                        "attr-domain",
                        f"groups={groups} does not divide input channels {d.shape[1]}",
                        node=node.name,
                        hint="pick a group count dividing the channel dim",
                    )
        if node.op_type == Op.SPLIT:
            sizes = attrs.get("sizes") or ()
            if any(int(s) < 1 for s in sizes):
                yield error(
                    "attr-domain",
                    f"split sizes {tuple(sizes)} must all be >= 1",
                    node=node.name,
                )
        if node.op_type == Op.DROPOUT:
            ratio = float(attrs.get("ratio", 0.5))
            if not (0.0 <= ratio < 1.0):
                yield error(
                    "attr-domain",
                    f"dropout ratio {ratio} outside [0, 1)",
                    node=node.name,
                )
        if node.op_type == Op.RESIZE:
            scale = attrs.get("scale") or ()
            if any(float(s) <= 0 for s in scale):
                yield error(
                    "attr-domain",
                    f"resize scale {tuple(scale)} must be positive",
                    node=node.name,
                )
        if node.op_type in (Op.SOFTMAX, Op.FLATTEN, Op.CONCAT):
            d = ctx.desc(node.inputs[0]) if node.inputs else None
            if d is not None:
                axis = int(attrs.get("axis", 1))
                limit = d.rank + (1 if node.op_type == Op.FLATTEN else 0)
                if not (-d.rank <= axis < max(limit, 1)):
                    yield error(
                        "attr-domain",
                        f"axis={axis} outside rank-{d.rank} input",
                        node=node.name,
                    )


# ---------------------------------------------------------------------------
# Quantization-boundary rules.
# ---------------------------------------------------------------------------

#: ops with no int8 kernel path in this engine — an int8 activation
#: reaching one of these is a miscompile, not a slowdown.
_FLOAT_ONLY_OPS = (
    Op.SOFTMAX, Op.SIGMOID, Op.TANH, Op.GELU, Op.LAYER_NORM, Op.LSTM,
    Op.BATCH_NORM,
)

_QUANT_DTYPES = (DataType.INT8, DataType.UINT8)


@rule("quant-boundary", "int8/float boundary violations")
def _quant_boundary(ctx: LintContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph.nodes:
        if node.op_type in _FLOAT_ONLY_OPS:
            d = ctx.desc(node.inputs[0]) if node.inputs else None
            if d is not None and d.dtype in _QUANT_DTYPES:
                yield error(
                    "quant-boundary",
                    f"{d.dtype.value} tensor {node.inputs[0]!r} feeds "
                    f"float-only op {node.op_type}",
                    node=node.name, tensor=node.inputs[0],
                    hint="insert a Dequantize before this op",
                )
        if node.op_type in (Op.CONV2D, Op.FULLY_CONNECTED):
            # int8 weights are only valid with calibration scales attached.
            if len(node.inputs) > 1:
                w = graph.constants.get(node.inputs[1])
                if w is not None and w.dtype.name == "int8" and \
                        node.attrs.get("input_scale") is None:
                    yield error(
                        "quant-boundary",
                        f"int8 weights {node.inputs[1]!r} without input_scale "
                        "(quantized weights need calibration scales)",
                        node=node.name, tensor=node.inputs[1],
                        hint="run repro.converter.quantize_model to attach scales",
                    )
            d = ctx.desc(node.inputs[0]) if node.inputs else None
            if d is not None and d.dtype in _QUANT_DTYPES:
                yield error(
                    "quant-boundary",
                    f"{d.dtype.value} activation {node.inputs[0]!r} feeds "
                    f"{node.op_type} (this engine quantizes weights, not activations)",
                    node=node.name, tensor=node.inputs[0],
                    hint="insert a Dequantize before this op",
                )
        if node.op_type == Op.QUANTIZE:
            d = ctx.desc(node.inputs[0]) if node.inputs else None
            if d is not None and d.dtype in _QUANT_DTYPES:
                yield warning(
                    "quant-boundary",
                    f"Quantize applied to already-quantized tensor {node.inputs[0]!r}",
                    node=node.name, tensor=node.inputs[0],
                )
        if node.op_type == Op.DEQUANTIZE:
            d = ctx.desc(node.inputs[0]) if node.inputs else None
            if d is not None and d.dtype not in _QUANT_DTYPES:
                yield warning(
                    "quant-boundary",
                    f"Dequantize applied to {d.dtype.value} tensor {node.inputs[0]!r}",
                    node=node.name, tensor=node.inputs[0],
                )


# ---------------------------------------------------------------------------
# Quantization-metadata rules (Q0xx): the scale attrs stamped by
# repro.quant.quantize_graph are load-bearing numerics — a corrupt or
# missing scale is a silent miscompile, so these land as typed
# diagnostics instead of downstream garbage.
# ---------------------------------------------------------------------------

def _scale_values(raw) -> List[float]:
    """Flatten a scale attr (scalar or sequence) to a float list.

    Raises ``(TypeError, ValueError)`` on non-numeric junk — callers
    diagnose that as its own finding.
    """
    if isinstance(raw, (list, tuple)):
        return [float(v) for v in raw]
    return [float(raw)]


@rule("Q001", "quantization scale overflow / degenerate scale")
def _q001_scale_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.graph.nodes:
        for attr in ("scale", "input_scale", "weight_scales"):
            raw = node.attrs.get(attr)
            if raw is None:
                continue
            try:
                values = _scale_values(raw)
            except (TypeError, ValueError):
                yield error(
                    "Q001",
                    f"attr {attr!r} is not numeric: {raw!r}",
                    node=node.name,
                    hint="scale metadata was corrupted; re-run quantization",
                )
                continue
            for i, v in enumerate(values):
                if not math.isfinite(v):
                    yield error(
                        "Q001",
                        f"attr {attr!r}[{i}] is non-finite ({v!r}) — "
                        f"dequantization would overflow every element",
                        node=node.name,
                    )
                elif v <= 0.0:
                    yield error(
                        "Q001",
                        f"attr {attr!r}[{i}] is {v!r}; symmetric scales must "
                        f"be positive (zero collapses the channel, negative "
                        f"flips its sign)",
                        node=node.name,
                    )


@rule("Q002", "zero-point outside int8 range / asymmetric zero-point")
def _q002_zero_point(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.graph.nodes:
        if node.op_type not in (Op.QUANTIZE, Op.DEQUANTIZE):
            continue
        raw = node.attrs.get("zero_point")
        if raw is None:
            continue
        try:
            zp = int(raw)
        except (TypeError, ValueError):
            yield error(
                "Q002",
                f"zero_point is not an integer: {raw!r}",
                node=node.name,
            )
            continue
        if not -128 <= zp <= 127:
            yield error(
                "Q002",
                f"zero_point {zp} outside the int8 range [-128, 127]",
                node=node.name,
            )
        elif zp != 0:
            yield warning(
                "Q002",
                f"zero_point {zp} != 0: this engine's kernels are symmetric "
                f"(zero-point 0) and will ignore the offset",
                node=node.name,
            )


#: GEMM-family ops whose int8 weights carry per-output-channel scales.
_SCALED_WEIGHT_OPS = (Op.MATMUL, Op.CONV2D, Op.FULLY_CONNECTED)


@rule("Q003", "int8 weights with missing or mismatched scale metadata")
def _q003_weight_scales(ctx: LintContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph.nodes:
        if node.op_type not in _SCALED_WEIGHT_OPS or len(node.inputs) < 2:
            continue
        w = graph.constants.get(node.inputs[1])
        if w is None or w.dtype.name != "int8":
            continue
        raw = node.attrs.get("weight_scales")
        if raw is None:
            yield error(
                "Q003",
                f"int8 weights {node.inputs[1]!r} without weight_scales "
                f"(the int8 kernels cannot dequantize the accumulator)",
                node=node.name, tensor=node.inputs[1],
                hint="run repro.quant.quantize_graph to attach per-channel scales",
            )
            continue
        if node.op_type == Op.MATMUL:
            if w.ndim != 2:
                continue  # shape rules own this
            out_axis = 0 if node.attrs.get("transpose_b") else 1
            oc = w.shape[out_axis]
        else:
            oc = w.shape[0]
        try:
            count = len(_scale_values(raw))
        except (TypeError, ValueError):
            continue  # Q001 owns non-numeric junk
        if count != oc:
            yield error(
                "Q003",
                f"weight_scales has {count} entries but {node.inputs[1]!r} "
                f"has {oc} output channels",
                node=node.name, tensor=node.inputs[1],
                hint="per-channel scales must match the output-channel axis",
            )


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def lint_graph(
    graph: Graph,
    rules: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Run lint rules over ``graph`` and return sorted diagnostics.

    Args:
        graph: the graph to check (shape inference need not have run; rules
            degrade gracefully when descriptors are missing).
        rules: optional subset of rule ids to run (default: all).

    Returns:
        diagnostics sorted errors-first; empty list means a clean bill.

    Raises:
        KeyError: if ``rules`` names an unregistered rule id.
    """
    ctx = LintContext(graph)
    selected = (
        [_RULES[r] for r in rules] if rules is not None else list(all_rules())
    )
    diags: List[Diagnostic] = []
    for lint_rule in selected:
        try:
            diags.extend(lint_rule.fn(ctx))
        except Exception as exc:  # a crashing rule must not mask other findings
            diags.append(error(
                "lint-internal",
                f"rule {lint_rule.rule_id!r} crashed: {exc!r}",
            ))
    return sort_diagnostics(diags)
