"""Structured diagnostics shared by the static-analysis subsystem.

Every checker in :mod:`repro.analysis` (the graph linter, the memory-plan
sanitizer, the optimizer-pass verifier) and :meth:`repro.ir.Graph.validate`
reports problems as :class:`Diagnostic` records instead of bare strings:
a severity, a stable rule id, the offending node/tensor, a human message
and an optional fix hint.  Tooling (the ``lint`` CLI command, pytest
fixtures, CI hooks) filters and formats them uniformly.

This module deliberately imports nothing from the rest of the package so
that low-level IR code can attach diagnostics to exceptions without
creating import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "Severity",
    "Diagnostic",
    "has_errors",
    "format_diagnostics",
    "summarize",
]


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the artifact is unsound (wrong answers or crashes are
    possible); ``WARNING`` flags smells that are legal but suspicious.
    """

    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a static check.

    Attributes:
        severity: :class:`Severity` of the finding.
        rule: stable rule id, e.g. ``"double-producer"`` or ``"mem-overlap"``.
        message: human-readable description of the problem.
        node: name of the offending node, when one exists.
        tensor: name of the offending tensor, when one exists.
        hint: optional suggestion for fixing the problem.
    """

    severity: Severity
    rule: str
    message: str
    node: Optional[str] = None
    tensor: Optional[str] = None
    hint: Optional[str] = None

    def format(self) -> str:
        """Render as ``severity[rule] subject: message (hint: ...)``."""
        subject = ""
        if self.node is not None:
            subject = f" node {self.node!r}"
        elif self.tensor is not None:
            subject = f" tensor {self.tensor!r}"
        text = f"{self.severity.value}[{self.rule}]{subject}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


def error(rule: str, message: str, **kwargs) -> Diagnostic:
    """Shorthand constructor for an error diagnostic."""
    return Diagnostic(Severity.ERROR, rule, message, **kwargs)


def warning(rule: str, message: str, **kwargs) -> Diagnostic:
    """Shorthand constructor for a warning diagnostic."""
    return Diagnostic(Severity.WARNING, rule, message, **kwargs)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True if any diagnostic is :attr:`Severity.ERROR`."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Errors first, then by rule id and subject for stable output."""
    return sorted(
        diagnostics,
        key=lambda d: (d.severity.rank, d.rule, d.node or "", d.tensor or ""),
    )


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line, severity-sorted rendering of ``diagnostics``."""
    return "\n".join(d.format() for d in sort_diagnostics(diagnostics))


def summarize(diagnostics: Sequence[Diagnostic]) -> str:
    """A one-line count summary, e.g. ``"2 errors, 1 warning"``."""
    n_err = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    n_warn = len(list(diagnostics)) - n_err
    parts = []
    if n_err:
        parts.append(f"{n_err} error{'s' if n_err != 1 else ''}")
    if n_warn:
        parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
    return ", ".join(parts) if parts else "no problems"
