"""Memory-plan sanitizer: an independent prover for arena soundness.

The greedy planner in :mod:`repro.core.memory` assigns every activation a
byte range in one pre-allocated arena (paper Figure 3).  An aliasing bug
there — two simultaneously-live tensors sharing bytes — is the
single-process analogue of a data race: silent, input-dependent corruption.

This module re-derives everything from first principles instead of trusting
the plan: tensor lifetimes are recomputed from the topological order, byte
sizes from the graph's own descriptors, and the checker then proves

* no two live tensors share arena bytes (``mem-overlap``),
* every tensor lies inside the arena (``mem-out-of-bounds``),
* every offset is 64-byte aligned (``mem-misaligned``),
* every live tensor was actually planned (``mem-unplanned``) with a
  lifetime at least as wide as the derived one (``mem-lifetime``) and the
  right byte size (``mem-size``),

and reports fragmentation statistics (peak live bytes, utilization, wasted
gap) on the side.  ``Session(config=SessionConfig(paranoid=True))`` runs
this checker on every plan it builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.graph import Graph, GraphError, Node
from ..core.memory import ALIGNMENT, MemoryPlan
from .diagnostics import Diagnostic, Severity, error, has_errors, sort_diagnostics, warning

__all__ = [
    "Interval",
    "MemCheckReport",
    "derive_lifetimes",
    "check_memory_plan",
    "check_slab_plan",
]


@dataclass(frozen=True)
class Interval:
    """An independently derived liveness interval (steps, inclusive)."""

    name: str
    nbytes: int
    first: int
    last: int

    def overlaps(self, other: "Interval") -> bool:
        return self.first <= other.last and other.first <= self.last


@dataclass
class MemCheckReport:
    """Verdict of :func:`check_memory_plan`.

    Attributes:
        diagnostics: findings, errors first; empty means the plan is proven
            sound against the re-derived lifetimes.
        arena_bytes: the plan's arena size.
        peak_bytes: maximum sum of live tensor bytes over any step — the
            information-theoretic floor for the arena.
        utilization: ``peak_bytes / arena_bytes`` (1.0 for an empty plan);
            low values mean fragmentation.
        wasted_bytes: ``arena_bytes - peak_bytes`` — the planner's gap cost.
        checked_tensors: how many tensors were verified.
        checked_pairs: how many live-overlapping pairs were proven disjoint.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    arena_bytes: int = 0
    peak_bytes: int = 0
    utilization: float = 1.0
    wasted_bytes: int = 0
    checked_tensors: int = 0
    checked_pairs: int = 0

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding exists."""
        return not has_errors(self.diagnostics)

    def raise_if_failed(self) -> None:
        """Raise :class:`GraphError` carrying the diagnostics on failure."""
        if not self.ok:
            errors = [d for d in self.diagnostics if d.severity is Severity.ERROR]
            raise GraphError(
                "memory plan failed sanitization: "
                + "; ".join(d.message for d in errors),
                self.diagnostics,
            )

    def summary(self) -> str:
        return (
            f"{self.checked_tensors} tensors, {self.checked_pairs} live pairs checked; "
            f"arena {self.arena_bytes} B, peak {self.peak_bytes} B "
            f"({self.utilization * 100:.0f}% utilized, {self.wasted_bytes} B gap)"
        )


def derive_lifetimes(
    graph: Graph,
    order: Optional[Sequence[Node]] = None,
    skip: Optional[Set[str]] = None,
) -> Dict[str, Interval]:
    """Recompute liveness intervals from scratch (no planner code reused).

    Mirrors the planner's contract — graph inputs and constants are owned
    by the caller, graph outputs survive to the horizon — but is written
    independently so a planner bug cannot hide behind shared code.
    """
    order = list(order) if order is not None else graph.toposort()
    skip = skip if skip is not None else set(graph.inputs) | set(graph.constants)
    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    for step, node in enumerate(order):
        for inp in node.inputs:
            if inp in first:
                last[inp] = max(last[inp], step)
        for out in node.outputs:
            if out not in skip and out not in first:
                first[out] = step
                last[out] = step
    horizon = len(order)
    for out in graph.outputs:
        if out in first:
            last[out] = horizon
    intervals: Dict[str, Interval] = {}
    for name, start in first.items():
        desc = graph.desc(name)
        intervals[name] = Interval(name, desc.nbytes, start, last[name])
    return intervals


def check_slab_plan(
    plan: MemoryPlan,
    page_bytes: int = 0,
    per_token_bytes: int = 0,
    token_capacities: Optional[Dict[str, int]] = None,
) -> MemCheckReport:
    """Verify a *dynamic* slab plan (no graph, every slab co-live).

    The KV-cache allocator (:mod:`repro.genai.kvcache`) snapshots its live
    slabs as a :class:`MemoryPlan` whose lifetimes all cover step 0 — the
    "execution order" of a serving arena is a single eternal step, because
    every resident sequence's cache must coexist.  This checker reuses the
    same proofs as :func:`check_memory_plan` minus the graph-derived parts:

    * no two slabs share arena bytes (``mem-overlap``),
    * every slab lies inside the arena (``mem-out-of-bounds``),
    * every offset is 64-byte aligned (``mem-misaligned``) and, when
      ``page_bytes`` is given, page-granular (``mem-unpaged``),
    * when ``per_token_bytes`` and ``token_capacities`` (slab name ->
      bucketed token capacity) are given, every slab's byte extent
      actually holds its advertised capacity — payload *and*, for
      quantized arenas, the per-row scales table (``mem-quant-extent``).
      The same rule flags an extent more than ~2x oversized, which is
      what an allocator still accounting fp32 bytes for an int8 arena
      looks like,

    plus the usual fragmentation statistics (peak here is simply the sum
    of live slab bytes).
    """
    diags: List[Diagnostic] = []
    items: List[Tuple[str, int, int]] = []
    capacities = token_capacities or {}
    for name, offset in plan.offsets.items():
        life = plan.lifetimes.get(name)
        if life is None:
            diags.append(error(
                "mem-unplanned",
                f"slab {name!r} has an offset but no lifetime record",
                tensor=name,
            ))
            continue
        items.append((name, offset, life.nbytes))
        if per_token_bytes and name in capacities:
            need = capacities[name] * per_token_bytes
            if life.nbytes < need:
                diags.append(error(
                    "mem-quant-extent",
                    f"slab {name!r} holds {life.nbytes} B but its "
                    f"{capacities[name]}-token capacity needs {need} B "
                    f"({per_token_bytes} B/token incl. scales) — the "
                    f"scales table would spill into the next extent",
                    tensor=name,
                ))
            elif page_bytes and life.nbytes >= 2 * need + page_bytes:
                diags.append(error(
                    "mem-quant-extent",
                    f"slab {name!r} holds {life.nbytes} B for a "
                    f"{capacities[name]}-token capacity needing only "
                    f"{need} B — capacity accounting is not using the "
                    f"arena's storage dtype (fp bytes for an int8 arena?)",
                    tensor=name,
                ))
        if offset % ALIGNMENT != 0:
            diags.append(error(
                "mem-misaligned",
                f"slab {name!r} at offset {offset} is not {ALIGNMENT}-byte aligned",
                tensor=name,
            ))
        if page_bytes and offset % page_bytes != 0:
            diags.append(error(
                "mem-unpaged",
                f"slab {name!r} at offset {offset} is not {page_bytes}-byte "
                f"page granular",
                tensor=name,
            ))
        if offset < 0 or offset + life.nbytes > plan.arena_bytes:
            diags.append(error(
                "mem-out-of-bounds",
                f"slab {name!r} spans [{offset}, {offset + life.nbytes}) "
                f"outside arena of {plan.arena_bytes} B",
                tensor=name,
            ))

    checked_pairs = 0
    by_offset = sorted(items, key=lambda it: it[1])
    for (name_a, off_a, nb_a), (name_b, off_b, nb_b) in zip(by_offset, by_offset[1:]):
        checked_pairs += 1
        if off_a + nb_a > off_b:
            diags.append(error(
                "mem-overlap",
                f"live slabs {name_a!r} and {name_b!r} overlap in arena bytes "
                f"[{off_b}, {min(off_a + nb_a, off_b + nb_b)})",
                tensor=name_b,
                hint="the allocator handed out aliasing extents — free-list bug",
            ))

    peak = sum(nb for _, _, nb in items)
    return MemCheckReport(
        diagnostics=sort_diagnostics(diags),
        arena_bytes=plan.arena_bytes,
        peak_bytes=peak,
        utilization=(peak / plan.arena_bytes) if plan.arena_bytes else 1.0,
        wasted_bytes=max(0, plan.arena_bytes - peak),
        checked_tensors=len(items),
        checked_pairs=checked_pairs,
    )


def check_memory_plan(
    graph: Graph,
    plan: MemoryPlan,
    order: Optional[Sequence[Node]] = None,
    skip: Optional[Set[str]] = None,
) -> MemCheckReport:
    """Independently verify ``plan`` against ``graph`` (see module docstring).

    Args:
        graph: the graph the plan was built for (descriptors required).
        plan: the plan under test.
        order: the execution order the plan assumed (default: toposort).
        skip: tensors excluded from planning (default: inputs + constants).

    Returns:
        a :class:`MemCheckReport`; ``report.ok`` is the verdict and
        ``report.raise_if_failed()`` converts it into a :class:`GraphError`.
    """
    derived = derive_lifetimes(graph, order, skip)
    diags: List[Diagnostic] = []

    # 1. Coverage: every live tensor must be planned, sized correctly, and
    #    covered by a lifetime at least as wide as the derived one.
    for name, interval in derived.items():
        if name not in plan.offsets:
            diags.append(error(
                "mem-unplanned",
                f"live tensor {name!r} has no arena offset",
                tensor=name,
            ))
            continue
        planned = plan.lifetimes.get(name)
        if planned is None:
            diags.append(error(
                "mem-unplanned",
                f"tensor {name!r} has an offset but no planned lifetime",
                tensor=name,
            ))
        else:
            if planned.nbytes != interval.nbytes:
                diags.append(error(
                    "mem-size",
                    f"tensor {name!r} planned at {planned.nbytes} B but the "
                    f"descriptor needs {interval.nbytes} B",
                    tensor=name,
                ))
            if planned.first > interval.first or planned.last < interval.last:
                diags.append(error(
                    "mem-lifetime",
                    f"tensor {name!r} planned live [{planned.first}, {planned.last}] "
                    f"but is actually live [{interval.first}, {interval.last}]",
                    tensor=name,
                ))
    for name in plan.offsets:
        if name not in derived:
            diags.append(warning(
                "mem-unplanned",
                f"planned tensor {name!r} is never live in this order",
                tensor=name,
            ))

    # 2. Alignment and bounds, from the graph's own byte sizes.
    for name, interval in derived.items():
        offset = plan.offsets.get(name)
        if offset is None:
            continue
        if offset % ALIGNMENT != 0:
            diags.append(error(
                "mem-misaligned",
                f"tensor {name!r} at offset {offset} is not {ALIGNMENT}-byte aligned",
                tensor=name,
            ))
        if offset < 0 or offset + interval.nbytes > plan.arena_bytes:
            diags.append(error(
                "mem-out-of-bounds",
                f"tensor {name!r} spans [{offset}, {offset + interval.nbytes}) "
                f"outside arena of {plan.arena_bytes} B",
                tensor=name,
            ))

    # 3. The core soundness proof: live-overlapping tensors are byte-disjoint.
    #    Sweep by derived first-step so only genuinely co-live pairs compare.
    placed = sorted(
        (interval for interval in derived.values() if interval.name in plan.offsets),
        key=lambda iv: iv.first,
    )
    checked_pairs = 0
    active: List[Interval] = []
    for interval in placed:
        active = [a for a in active if a.last >= interval.first]
        off_b = plan.offsets[interval.name]
        for other in active:
            checked_pairs += 1
            off_a = plan.offsets[other.name]
            disjoint = (
                off_a + other.nbytes <= off_b or off_b + interval.nbytes <= off_a
            )
            if not disjoint:
                lo = max(off_a, off_b)
                hi = min(off_a + other.nbytes, off_b + interval.nbytes)
                diags.append(error(
                    "mem-overlap",
                    f"live tensors {other.name!r} and {interval.name!r} overlap "
                    f"in arena bytes [{lo}, {hi}) during steps "
                    f"[{max(other.first, interval.first)}, "
                    f"{min(other.last, interval.last)}]",
                    tensor=interval.name,
                    hint="the plans for these two tensors alias — re-plan",
                ))
        active.append(interval)

    # 4. Fragmentation statistics (peak live bytes via an event sweep).
    horizon = max((iv.last for iv in derived.values()), default=-1) + 1
    deltas = [0] * (horizon + 1)
    for iv in derived.values():
        deltas[iv.first] += iv.nbytes
        if iv.last + 1 <= horizon:
            deltas[iv.last + 1] -= iv.nbytes
    peak = running = 0
    for delta in deltas:
        running += delta
        peak = max(peak, running)
    report = MemCheckReport(
        diagnostics=sort_diagnostics(diags),
        arena_bytes=plan.arena_bytes,
        peak_bytes=peak,
        utilization=(peak / plan.arena_bytes) if plan.arena_bytes else 1.0,
        wasted_bytes=max(0, plan.arena_bytes - peak),
        checked_tensors=len(derived),
        checked_pairs=checked_pairs,
    )
    return report
