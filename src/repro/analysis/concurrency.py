"""Static concurrency lint over Python source (rule family ``C0xx``).

The dynamic sanitizer (:mod:`repro.sanitize`) only sees interleavings a
run actually exercises; this pass reads the source of ``src/repro``
itself and flags locking-discipline violations that hold on *every*
interleaving:

========  ==========================================================
 rule      meaning (and the one-line fix)
========  ==========================================================
 C001      two lock attributes are acquired in inconsistent nesting
           orders somewhere in the tree — impose one global order
           (error: this is a real deadlock on the wrong interleaving).
 C002      an attribute is mutated both inside and outside ``with
           self.<lock>`` blocks of its class — move the bare mutation
           under the lock, or mark the single-threaded path with a
           ``# sanitize: single-thread`` comment.
 C003      ``with self.<lock>`` lexically nested inside another ``with``
           on the *same* non-reentrant lock attribute — deadlock unless
           the attribute is a ``threading.RLock``; hoist the inner
           acquire or switch to an RLock.
 C004      a blocking call (``time.sleep``, ``.join()``, ``.result()``)
           while holding a lock — shrink the critical section
           (``Condition.wait`` is exempt: releasing is its point).
 C005      bare ``lock.acquire()`` outside ``try/finally`` — an
           exception leaks the lock; use ``with`` or add the finally.
========  ==========================================================

Lock attributes are recognized by construction (``self.x =
threading.Lock() / RLock() / Condition()``) or, for ``with`` targets
only, by name (``*lock*`` / ``*cond*`` / ``*mutex*``).  A ``Condition``
built over an existing lock attribute aliases it — holding the condition
*is* holding the lock.  Any finding can be suppressed by a ``# sanitize:
<reason>`` comment on its line; ``__init__`` is exempt from C002 because
construction happens-before every other access.

Entry points: :func:`lint_source_text` (one module, used by tests on
planted sources) and :func:`lint_source_tree` (a package directory, used
by ``cli sanitize`` and the self-lint gate).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..sanitize.lockorder import LockOrderRecorder
from .diagnostics import Diagnostic, error, sort_diagnostics, warning

__all__ = ["C_RULES", "lint_source_text", "lint_source_tree"]

#: Rule id -> short description (the README catalog is generated from the
#: same wording).
C_RULES: Dict[str, str] = {
    "C001": "inconsistent lock acquisition order across code paths (deadlock risk)",
    "C002": "attribute mutated both inside and outside `with self.<lock>` blocks",
    "C003": "nested acquisition of the same non-reentrant lock attribute",
    "C004": "blocking call while holding a lock",
    "C005": "bare lock.acquire() without a try/finally release",
}

_LOCKISH_NAME = re.compile(r"lock|cond|mutex", re.IGNORECASE)
_SUPPRESS = "# sanitize:"
_LOCK_HELD_DOC = re.compile(r"called with .*lock held", re.IGNORECASE)

#: Attribute calls that mutate their receiver (for C002's purposes).
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end",
}

#: Blocking calls under a lock (C004).  ``wait`` is exempt by design.
_BLOCKING_METHODS = {"join", "result"}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``"x"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _threading_ctor(node: ast.AST) -> Optional[ast.Call]:
    """The call node if ``node`` is ``threading.Lock()``-shaped, else None."""
    if not isinstance(node, ast.Call):
        return None
    fn = node.func
    name = None
    if isinstance(fn, ast.Attribute):
        name = fn.attr
    elif isinstance(fn, ast.Name):
        name = fn.id
    return node if name in ("Lock", "RLock", "Condition") else None


@dataclass
class _ClassLocks:
    """Lock attributes of one class, with RLock-ness and Condition aliases."""

    attrs: Set[str] = field(default_factory=set)
    reentrant: Set[str] = field(default_factory=set)
    alias: Dict[str, str] = field(default_factory=dict)  # cond attr -> lock attr

    def canonical(self, attr: str) -> str:
        return self.alias.get(attr, attr)

    def is_lock(self, attr: str) -> bool:
        return attr in self.attrs or bool(_LOCKISH_NAME.search(attr))


def _collect_locks(cls: ast.ClassDef) -> _ClassLocks:
    locks = _ClassLocks()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        attr = _self_attr(node.targets[0])
        ctor = _threading_ctor(node.value)
        if attr is None or ctor is None:
            continue
        locks.attrs.add(attr)
        fn = ctor.func
        ctor_name = fn.attr if isinstance(fn, ast.Attribute) else fn.id
        if ctor_name == "RLock":
            locks.reentrant.add(attr)
        elif ctor_name == "Condition" and ctor.args:
            inner = _self_attr(ctor.args[0])
            if inner is not None:
                locks.alias[attr] = inner
                locks.reentrant.discard(attr)
    return locks


@dataclass
class _ModuleFindings:
    """Raw per-module results, merged tree-wide for C001."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    # (outer, inner) canonical lock-node pairs with one example site each.
    order_edges: Dict[Tuple[str, str], str] = field(default_factory=dict)


class _ClassChecker:
    """Walks one class body tracking the lexically-held lock set."""

    def __init__(
        self, cls: ast.ClassDef, filename: str, lines: List[str],
        out: _ModuleFindings,
    ) -> None:
        self.cls = cls
        self.filename = filename
        self.lines = lines
        self.out = out
        self.locks = _collect_locks(cls)
        self.mutated_inside: Set[str] = set()
        self.mutated_outside: List[Tuple[str, int, str]] = []

    # -- helpers -------------------------------------------------------------
    def _suppressed(self, lineno: int) -> bool:
        if 1 <= lineno <= len(self.lines):
            return _SUPPRESS in self.lines[lineno - 1]
        return False

    def _site(self, lineno: int) -> str:
        return f"{self.filename}:{lineno}"

    def _emit(self, make, rule: str, lineno: int, message: str, hint: str) -> None:
        if self._suppressed(lineno):
            return
        self.out.diagnostics.append(
            make(rule, message, node=self._site(lineno), hint=hint)
        )

    # -- the walk ------------------------------------------------------------
    def check(self) -> None:
        for node in self.cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                doc = ast.get_docstring(node) or ""
                exempt = node.name == "__init__" or bool(_LOCK_HELD_DOC.search(doc))
                self._walk(node.body, held=[], func=node.name, exempt=exempt)
        inside = {self.locks.canonical(a) for a in self.mutated_inside}
        if not inside:
            return
        for attr, lineno, func in self.mutated_outside:
            self._emit(
                warning, "C002", lineno,
                f"{self.cls.name}.{attr} is mutated under a lock elsewhere "
                f"but written without one in {func}()",
                hint="move this mutation under the lock, or annotate the "
                     "single-threaded path with `# sanitize: single-thread`",
            )

    def _walk(self, body, held: List[str], func: str, exempt: bool) -> None:
        for node in body:
            self._visit(node, held, func, exempt)

    def _visit(self, node: ast.AST, held: List[str], func: str, exempt: bool) -> None:
        if isinstance(node, ast.With):
            lock_names: List[str] = []
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and self.locks.is_lock(attr):
                    canonical = self.locks.canonical(attr)
                    if (
                        canonical in held
                        and attr not in self.locks.reentrant
                        and canonical not in self.locks.reentrant
                    ):
                        self._emit(
                            warning, "C003", node.lineno,
                            f"{self.cls.name}.{attr} acquired while already "
                            f"held in {func}() (deadlock unless it is an RLock)",
                            hint="hoist the inner `with`, or make the "
                                 "attribute a threading.RLock",
                        )
                    for outer in held:
                        if outer != canonical:
                            edge = (
                                f"{self.cls.name}.{outer}",
                                f"{self.cls.name}.{canonical}",
                            )
                            self.out.order_edges.setdefault(
                                edge, self._site(node.lineno)
                            )
                    lock_names.append(canonical)
            self._walk(node.body, held + lock_names, func, exempt)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later, possibly on another thread:
            # the lexically held set does not transfer.
            doc = ast.get_docstring(node) or ""
            nested_exempt = exempt or bool(_LOCK_HELD_DOC.search(doc))
            self._walk(node.body, held=[], func=node.name, exempt=nested_exempt)
            return
        if isinstance(node, ast.ClassDef):
            return  # nested classes get their own checker pass
        self._check_mutation(node, held, func, exempt)
        self._check_calls(node, held, func)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, func, exempt)

    def _check_mutation(
        self, node: ast.AST, held: List[str], func: str, exempt: bool
    ) -> None:
        attr: Optional[str] = None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = attr or self._mutation_target(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = self._mutation_target(node.target)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            fn = node.value.func
            if isinstance(fn, ast.Attribute) and fn.attr in _MUTATORS:
                attr = _self_attr(fn.value)
        if attr is None or self.locks.is_lock(attr):
            return
        if held:
            self.mutated_inside.add(attr)
        elif not exempt and not self._suppressed(node.lineno):
            self.mutated_outside.append((attr, node.lineno, func))

    def _mutation_target(self, target: ast.AST) -> Optional[str]:
        attr = _self_attr(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            return _self_attr(target.value)
        return None

    def _check_calls(self, node: ast.AST, held: List[str], func: str) -> None:
        if not isinstance(node, ast.Call):
            return
        fn = node.func
        # C004: blocking call under a lock.
        if held:
            blocking = None
            if isinstance(fn, ast.Attribute):
                if fn.attr == "sleep" and isinstance(fn.value, ast.Name) \
                        and fn.value.id == "time":
                    blocking = "time.sleep"
                elif fn.attr in _BLOCKING_METHODS:
                    blocking = f".{fn.attr}()"
            if blocking is not None:
                self._emit(
                    warning, "C004", node.lineno,
                    f"{blocking} called in {func}() while holding "
                    f"{', '.join(sorted(set(held)))}",
                    hint="move the blocking call outside the critical section",
                )
        # C005: bare acquire() without try/finally (checked via source text
        # because matching finally-release pairs needs the Try ancestry).
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "acquire"
            and not node.args  # Lock.acquire() is argless; recorders are not
            and _self_attr(fn.value) is not None
            and self.locks.is_lock(fn.value.attr)
        ):
            if not self._released_in_finally(fn.value.attr, node.lineno):
                self._emit(
                    warning, "C005", node.lineno,
                    f"bare {self.cls.name}.{fn.value.attr}.acquire() in "
                    f"{func}() without a try/finally release",
                    hint="use `with self.%s:` or release in a finally block"
                         % fn.value.attr,
                )

    def _released_in_finally(self, attr: str, acquire_line: int) -> bool:
        """True if a Try releasing ``attr`` in its finalbody contains the
        acquire — or starts just after it (the ``acquire(); try: ...
        finally: release()`` idiom puts the acquire one line before)."""
        for node in ast.walk(self.cls):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            end = getattr(node, "end_lineno", node.lineno)
            if not (node.lineno - 2 <= acquire_line <= end):
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and _self_attr(sub.func.value) == attr
                    ):
                        return True
        return False


def _lint_module(source: str, filename: str) -> _ModuleFindings:
    out = _ModuleFindings()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        out.diagnostics.append(
            error("C000", f"syntax error: {exc.msg}", node=f"{filename}:{exc.lineno}")
        )
        return out
    lines = source.splitlines()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _ClassChecker(node, filename, lines, out).check()
    return out


def _order_cycles(edges: Dict[Tuple[str, str], str]) -> List[Diagnostic]:
    """C001 over the merged acquired-after graph (reusing the runtime
    recorder's Tarjan pass)."""
    recorder = LockOrderRecorder()
    for (outer, inner) in edges:
        recorder.acquire(0, outer)
        recorder.acquire(0, inner)
        recorder.release(0, inner)
        recorder.release(0, outer)
    out: List[Diagnostic] = []
    for cycle in recorder.cycles():
        sites = sorted(
            site for (a, b), site in edges.items()
            if a in cycle.names and b in cycle.names
        )
        out.append(
            error(
                "C001", cycle.describe(), node=sites[0] if sites else None,
                hint="pick one global acquisition order for these locks "
                     "and restructure the violating path",
            )
        )
    return out


def lint_source_text(source: str, filename: str = "<memory>") -> List[Diagnostic]:
    """Run every C0xx rule over one module's source."""
    findings = _lint_module(source, filename)
    return sort_diagnostics(findings.diagnostics + _order_cycles(findings.order_edges))


def lint_source_tree(root: Path) -> List[Diagnostic]:
    """Run every C0xx rule over all ``*.py`` under ``root``.

    C001's lock-order graph is merged across modules before cycle
    detection, so an inversion split between two files is still caught.
    """
    root = Path(root)
    diagnostics: List[Diagnostic] = []
    edges: Dict[Tuple[str, str], str] = {}
    for path in sorted(root.rglob("*.py")):
        rel = str(path.relative_to(root.parent if root.parent != path else root))
        findings = _lint_module(path.read_text(encoding="utf-8"), rel)
        diagnostics.extend(findings.diagnostics)
        for edge, site in findings.order_edges.items():
            edges.setdefault(edge, site)
    return sort_diagnostics(diagnostics + _order_cycles(edges))
