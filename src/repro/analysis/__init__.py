"""Static analysis over the IR and pre-inference artifacts.

Three pluggable checkers guard the pipeline the paper's pre-inference
mechanism (Section 3.2) depends on:

* :mod:`repro.analysis.lint` — a graph linter (~13 rules) producing
  structured :class:`Diagnostic` records;
* :mod:`repro.analysis.memcheck` — an independent sanitizer proving the
  static memory plan alias-free, aligned and in-bounds;
* :mod:`repro.analysis.verify_passes` — a pass manager that re-checks
  structure, shapes and numerics after every optimizer pass and names the
  pass that broke the graph;
* :mod:`repro.analysis.concurrency` — a static AST lint (rule family
  ``C0xx``) over ``src/repro`` itself for locking-discipline violations,
  the compile-time companion of the dynamic :mod:`repro.sanitize`.

CLI entry points: ``python -m repro.tools.cli lint model.rmnn [--strict]``
and ``python -m repro.tools.cli sanitize``.
"""

from .diagnostics import (
    Diagnostic,
    Severity,
    format_diagnostics,
    has_errors,
    sort_diagnostics,
    summarize,
)
from .concurrency import C_RULES, lint_source_text, lint_source_tree
from .lint import LintContext, LintRule, all_rules, lint_graph, rule
from .memcheck import (
    Interval,
    MemCheckReport,
    check_memory_plan,
    check_slab_plan,
    derive_lifetimes,
)
from .verify_passes import PassVerificationError, VerifyingPassManager, random_feeds

__all__ = [
    "Diagnostic",
    "Severity",
    "format_diagnostics",
    "has_errors",
    "sort_diagnostics",
    "summarize",
    "C_RULES",
    "lint_source_text",
    "lint_source_tree",
    "LintContext",
    "LintRule",
    "all_rules",
    "lint_graph",
    "rule",
    "Interval",
    "MemCheckReport",
    "check_memory_plan",
    "check_slab_plan",
    "derive_lifetimes",
    "PassVerificationError",
    "VerifyingPassManager",
    "random_feeds",
]
