r"""Worker supervision: spawn, heartbeat, detect, replace.

The :class:`Supervisor` owns the process lifecycle of every worker slot
so the router never has to reason about half-dead children.  Its state
machine per slot (DESIGN §14):

::

    SPAWNING --ready--> UP --crash/hang--> DOWN --respawn--> SPAWNING
        \--slow-start/crash-at-start--> (retry, bounded) --> SPAWNING

* **Crash** detection is ``Process.is_alive()`` going false (also
  surfaced synchronously to the router as a broken pipe mid-RPC — both
  paths funnel into the idempotent :meth:`report_down`).
* **Hang** detection is a stale heartbeat: each worker stamps
  ``time.monotonic()`` into a shared ``Value`` from a daemon thread; a
  stamp older than ``hang_timeout_s`` gets the worker SIGKILLed and
  replaced.  Hangs are counted separately from crashes.
* **Slow start** is a worker that does not report ready within
  ``start_timeout_s``; it is killed and respawned up to
  ``start_retries`` times before the slot is declared failed.

Epochs make replacement unambiguous: every spawn of a slot gets a fresh
monotonically-increasing epoch, ``report_down(slot, epoch)`` is a no-op
for any epoch but the current one (a racing crash report about an
already-replaced worker cannot kill its successor), and per-epoch
shared-memory segment names mean a replacement never aliases its
predecessor's mappings.

Health is exported as per-slot gauges — ``cluster.worker.<slot>.up``
and ``.restarts`` — in whatever registry the router passes in, which
the existing Prometheus exposition picks up unchanged.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Callable, Dict, List, Optional

import multiprocessing

from .worker import worker_main

__all__ = ["Supervisor", "WorkerHandle", "fork_available"]


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerHandle:
    """One live (or just-deceased) worker process for a slot."""

    __slots__ = ("slot", "epoch", "proc", "conn", "hb", "up")

    def __init__(self, slot: int, epoch: int, proc, conn, hb) -> None:
        self.slot = slot
        self.epoch = epoch
        self.proc = proc
        self.conn = conn
        self.hb = hb
        self.up = True

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid


class Supervisor:
    """Keeps ``slots`` worker processes alive, replacing any that die."""

    def __init__(
        self,
        spawn_cfg: Callable[[int, int], Dict[str, object]],
        slots: int,
        *,
        metrics=None,
        heartbeat_interval_s: float = 0.05,
        hang_timeout_s: float = 5.0,
        start_timeout_s: float = 60.0,
        start_retries: int = 2,
        on_down: Optional[Callable[[int, int, str], None]] = None,
        on_up: Optional[Callable[[int, "WorkerHandle"], None]] = None,
    ) -> None:
        if not fork_available():  # pragma: no cover - POSIX-only repo
            raise RuntimeError(
                "repro.cluster requires the 'fork' start method "
                "(POSIX); it is unavailable on this platform"
            )
        self.spawn_cfg = spawn_cfg
        self.slots = int(slots)
        self.metrics = metrics
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.hang_timeout_s = float(hang_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self.start_retries = int(start_retries)
        self.on_down = on_down
        self.on_up = on_up
        self._ctx = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self._handles: Dict[int, WorkerHandle] = {}
        self._epochs: Dict[int, int] = {slot: 0 for slot in range(self.slots)}
        self._pending: List[int] = []  # slots awaiting respawn
        self._failed: set = set()  # slots the supervisor gave up on
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- metrics helpers -----------------------------------------------------
    def _gauge(self, slot: int, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(f"cluster.worker.{slot}.{name}").set(value)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Spawn every slot (synchronously) and start the monitor."""
        for slot in range(self.slots):
            self._spawn(slot)
        self._monitor = threading.Thread(  # sanitize: single-thread (start)
            target=self._monitor_loop, name="cluster-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self, join_timeout_s: float = 5.0) -> None:
        """Stop monitoring, ask workers to exit, escalate to SIGKILL."""
        self._stopping.set()
        self._wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout=join_timeout_s)
        with self._lock:
            handles = list(self._handles.values())
        for h in handles:
            try:
                h.conn.send({"kind": "stop"})
            except Exception:
                pass
        for h in handles:
            h.proc.join(timeout=join_timeout_s)
            if h.proc.is_alive():
                h.proc.kill()
                h.proc.join(timeout=join_timeout_s)
            try:
                h.conn.close()
            except Exception:
                pass
            self._gauge(h.slot, "up", 0)

    # -- queries -------------------------------------------------------------
    def handle(self, slot: int) -> Optional[WorkerHandle]:
        """The current handle for ``slot`` if it is up, else ``None``."""
        with self._lock:
            h = self._handles.get(slot)
            return h if h is not None and h.up else None

    def is_up(self, slot: int) -> bool:
        return self.handle(slot) is not None

    def slot_failed(self, slot: int) -> bool:
        """Whether the supervisor gave up respawning ``slot`` (start
        retries exhausted); requests parked there must fail, not wait."""
        with self._lock:
            return slot in self._failed

    def live_slots(self) -> List[int]:
        with self._lock:
            return [s for s, h in self._handles.items() if h.up]

    def restarts(self, slot: int) -> int:
        """Completed restarts for ``slot`` (0 for a never-replaced worker)."""
        with self._lock:
            return self._epochs.get(slot, 0) - 1 if self._epochs.get(slot) else 0

    # -- fault reporting -----------------------------------------------------
    def report_down(self, slot: int, epoch: int, reason: str = "crash") -> bool:
        """Mark ``slot``'s worker of ``epoch`` dead; schedule a replacement.

        Idempotent and epoch-guarded: duplicate reports, or reports about
        a worker that has already been replaced, are no-ops.  Returns
        whether this call was the one that took the worker down.
        """
        with self._lock:
            h = self._handles.get(slot)
            if h is None or not h.up or h.epoch != epoch:
                return False
            h.up = False
            if slot not in self._pending:
                self._pending.append(slot)
        self._gauge(slot, "up", 0)
        self._count(f"cluster.down.{reason}")
        if self.on_down is not None:
            try:
                self.on_down(slot, epoch, reason)
            except Exception:
                pass
        self._wake.set()
        return True

    def kill(self, slot: int) -> Optional[int]:
        """SIGKILL ``slot``'s worker (test/selftest hook).

        Returns the killed pid, or ``None`` if the slot was already down.
        The monitor notices the death and replaces the worker exactly as
        it would for an organic crash.
        """
        h = self.handle(slot)
        if h is None or h.pid is None:
            return None
        try:
            os.kill(h.pid, signal.SIGKILL)
        except ProcessLookupError:
            return None
        return h.pid

    # -- internals -----------------------------------------------------------
    def _spawn(self, slot: int) -> WorkerHandle:
        """Spawn ``slot``'s worker and wait for its ready message."""
        last_error = "unknown"
        for attempt in range(self.start_retries + 1):
            with self._lock:
                self._epochs[slot] += 1
                epoch = self._epochs[slot]
            cfg = self.spawn_cfg(slot, epoch)
            parent_conn, child_conn = self._ctx.Pipe()
            hb = self._ctx.Value("d", time.monotonic())
            proc = self._ctx.Process(
                target=worker_main,
                args=(slot, cfg, child_conn, hb),
                name=f"repro-worker-{slot}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            deadline = time.monotonic() + self.start_timeout_s
            msg = None
            while time.monotonic() < deadline:
                if parent_conn.poll(0.02):
                    try:
                        msg = parent_conn.recv()
                    except (EOFError, OSError):
                        msg = None
                    break
                if not proc.is_alive():
                    break
            if msg is not None and msg[0] == "ready":
                handle = WorkerHandle(slot, epoch, proc, parent_conn, hb)
                with self._lock:
                    old = self._handles.get(slot)
                    self._handles[slot] = handle
                if old is not None:
                    try:
                        old.conn.close()
                    except Exception:
                        pass
                self._gauge(slot, "up", 1)
                self._gauge(slot, "restarts", epoch - 1)
                if self.on_up is not None:
                    try:
                        self.on_up(slot, handle)
                    except Exception:
                        pass
                return handle
            # Startup failed: typed report, organic crash, or slow start.
            if msg is not None and msg[0] == "start_failed":
                last_error = f"{msg[2]}: {msg[3]}"
                self._count("cluster.start_failed")
            elif proc.is_alive():
                last_error = f"no ready within {self.start_timeout_s:.1f}s"
                self._count("cluster.slow_starts")
            else:
                last_error = f"exited with code {proc.exitcode} before ready"
                self._count("cluster.start_crashes")
            proc.kill()
            proc.join(timeout=5.0)
            try:
                parent_conn.close()
            except Exception:
                pass
        raise RuntimeError(
            f"worker slot {slot} failed to start after "
            f"{self.start_retries + 1} attempts: {last_error}"
        )

    def _monitor_loop(self) -> None:
        interval = min(self.heartbeat_interval_s, 0.05)
        while not self._stopping.is_set():
            self._wake.wait(timeout=interval)
            self._wake.clear()  # sanitize: monitor thread is the only clearer
            if self._stopping.is_set():
                return
            with self._lock:
                handles = list(self._handles.values())
            now = time.monotonic()
            for h in handles:
                if not h.up:
                    continue
                if not h.proc.is_alive():
                    self.report_down(h.slot, h.epoch, reason="crash")
                elif now - h.hb.value > self.hang_timeout_s:
                    # Hung: heartbeats stopped but the process lives.
                    if h.pid is not None:
                        try:
                            os.kill(h.pid, signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                    self.report_down(h.slot, h.epoch, reason="hang")
            while not self._stopping.is_set():
                with self._lock:
                    if not self._pending:
                        break
                    slot = self._pending.pop(0)
                try:
                    self._spawn(slot)
                    self._count("cluster.replacements")
                except RuntimeError:
                    # Slot declared failed; leave it down. New requests
                    # fail over via the ring's liveness filter, parked
                    # ones get WorkerLost via slot_failed().
                    with self._lock:
                        self._failed.add(slot)
                    self._count("cluster.slot_failed")
