"""The router: one front door, N supervised worker shards.

:class:`Cluster` is the process users talk to.  It owns admission
control, placement, transport and failure policy; the workers own the
engines.  The contract, piece by piece:

**Placement.**  Requests carrying a ``session_key`` hash onto the
consistent ring (:mod:`repro.cluster.ring`) — a generation session's KV
slabs live in exactly one worker's arena, so its requests must keep
landing there.  Keyless requests go to the least-loaded live worker.

**Admission** (one lock, checked before anything is queued):

* a session-affine request whose sticky worker is at the per-worker
  queue-depth bound is shed with typed :class:`Backpressure` — it
  cannot be rerouted, its state lives on that worker;
* a keyless request finding *every* worker at the bound is shed with
  typed :class:`Overloaded`;
* both are load answers, distinguishable by type from fault answers
  (:class:`WorkerLost`, :class:`WorkerError`), and both emit a
  flight-recorder postmortem when a recorder is attached.

**Deadlines across the boundary.**  A request's
:class:`~repro.faults.resilience.Deadline` lives router-side and is
serialized as *milliseconds remaining* at send; the worker re-arms a
fresh deadline from that number (no shared clock needed).  A request
that expires while queued — including while parked on a dead worker
slot waiting for its replacement — surfaces ``DeadlineExceeded``, never
``WorkerLost``: expiry is checked *before* the loss outcome is decided.

**Worker loss.**  The slot's dispatch thread detects death synchronously
(broken pipe / dead process mid-RPC), reports it to the supervisor
(idempotent, epoch-guarded), and resolves the in-flight request by its
per-request ``on_worker_lost`` policy:

* ``"replay"`` (default): transparently re-admit on the next live
  worker in the ring's preference order — a full re-prefill, since the
  dead arena is gone — up to ``replay_budget`` times;
* ``"error"``: fail fast with typed :class:`WorkerLost`.

**Fault accounting.**  The ninth fault site ``worker.crash`` fires
*router-side* at dispatch: a planned ``transient`` kills the worker
before it starts ("early"), a planned ``fatal`` kills it mid-decode
("mid" — the worker really decodes half its budget first).  Every
injected crash is resolved as exactly one ``fallback.replay`` (policy
replayed it) or one ``cluster.worker_lost`` (policy failed it) in the
process-wide registry — the same registry ``faults.injected`` lives in
— which is what keeps the chaos storm's closed equation balanced.
Crashes from other causes (``Supervisor.kill``, hangs, real bugs) are
deliberately counted elsewhere (``cluster.replays`` /
``cluster.lost``): the equation tallies only what the plan injected.
"""

from __future__ import annotations

import itertools
import os
import queue
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..faults.errors import DeadlineExceeded, FatalFault, TransientFault
from ..faults.plan import FaultPlan, get_fault_plan
from ..faults.resilience import Deadline
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.requests import RequestTracker, resolve_request_tracker
from ..obs.tracer import Tracer, get_tracer
from ..sanitize import Sanitizer, resolve_sanitizer
from .errors import Backpressure, Overloaded, WorkerError, WorkerLost
from .ring import HashRing
from .shm import ShmSegment, payload_bytes
from .supervisor import Supervisor

__all__ = ["Cluster", "ClusterConfig", "RemoteGenResult"]

_STOP = object()


class _WorkerDied(Exception):
    """Internal: the RPC's worker died before answering."""


@dataclass
class ClusterConfig:
    """Everything the router and its workers need.

    Attributes:
        workers: worker process count (ring slots).
        pool_size: per-worker session-pool size (infer mode).
        max_queue_depth: per-worker admission bound (queued + in flight).
        replay_budget: max transparent replays per request under the
            ``"replay"`` loss policy.
        on_worker_lost: default per-request loss policy, ``"replay"`` or
            ``"error"``.
        deadline_ms: default per-request deadline (``None`` = none).
        segment_bytes: initial size of each request/response shm segment.
        vnodes: virtual nodes per worker on the hash ring.
        device_dwell_ms: per-request simulated accelerator dwell inside
            the worker (models an offloaded backend's device wait; this
            is what makes multi-worker scaling observable on a
            single-CPU host).
        genai: ``GenerationConfig`` kwargs for generation-mode workers
            (``None`` = infer-only cluster).
        use_cache / cache_dir: worker engine cache settings.
        heartbeat_interval_s / hang_timeout_s / start_timeout_s:
            supervision timing (see :class:`Supervisor`).
        metrics / trace / faults / requests / sanitize: the usual
            observability and fault-injection plumbing, resolved exactly
            like ``EngineConfig`` resolves them.
    """

    workers: int = 2
    pool_size: int = 1
    max_queue_depth: int = 8
    replay_budget: int = 2
    on_worker_lost: str = "replay"
    deadline_ms: Optional[float] = None
    segment_bytes: int = 1 << 20
    vnodes: int = 64
    device_dwell_ms: float = 0.0
    genai: Optional[Dict[str, object]] = None
    use_cache: bool = False
    cache_dir: Optional[str] = None
    heartbeat_interval_s: float = 0.05
    hang_timeout_s: float = 5.0
    start_timeout_s: float = 120.0
    metrics: Optional[MetricsRegistry] = None
    trace: Optional[Tracer] = None
    faults: Optional[FaultPlan] = None
    requests: Union[bool, RequestTracker, None] = None
    sanitize: Union[bool, Sanitizer] = False


@dataclass
class RemoteGenResult:
    """A generation outcome marshalled back across the process boundary."""

    request_id: str
    tokens: List[int]
    finish_reason: str


class _Pending:
    """One admitted request, from submission to future resolution."""

    __slots__ = (
        "id", "kind", "payload", "session_key", "deadline", "policy",
        "future", "slot", "replays", "injected_crash", "timeline", "done",
    )

    def __init__(self, rid, kind, payload, session_key, deadline, policy, timeline):
        self.id = rid
        self.kind = kind
        self.payload = payload
        self.session_key = session_key
        self.deadline = deadline
        self.policy = policy
        self.future: Future = Future()
        self.slot = -1
        self.replays = 0
        self.injected_crash = False
        self.timeline = timeline
        self.done = False


class Cluster:
    """Router + supervisor + N worker processes behind one object."""

    def __init__(self, graph=None, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        if graph is None and self.config.genai is None:
            raise ValueError("Cluster needs a graph (infer mode), a genai "
                             "config (generation mode), or both")
        if self.config.workers < 1:
            raise ValueError("Cluster needs at least one worker")
        if self.config.on_worker_lost not in ("replay", "error"):
            raise ValueError(
                f"unknown on_worker_lost policy {self.config.on_worker_lost!r}")
        self.metrics = (
            self.config.metrics if self.config.metrics is not None else get_metrics()
        )
        self.tracer = (
            self.config.trace if self.config.trace is not None else get_tracer()
        )
        self.faults = (
            self.config.faults if self.config.faults is not None else get_fault_plan()
        )
        self.sanitizer = resolve_sanitizer(self.config.sanitize, metrics=self.metrics)
        self.requests = resolve_request_tracker(self.config.requests, self.metrics)

        self._model_dir: Optional[str] = None
        self._model_path: Optional[str] = None
        if graph is not None:
            # Workers load the graph from disk: with fork they *could*
            # inherit it, but the serialized round trip is the honest
            # path (it is how a spawn-started or remote worker would get
            # it) and exercises repro.ir every time.
            from ..ir import save_model

            self._model_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            self._model_path = os.path.join(self._model_dir, "model.rmnn")
            save_model(graph, self._model_path)

        n = self.config.workers
        self._uid = f"rc{os.getpid():x}-{id(self) & 0xFFFF:x}"
        self._ring = HashRing(range(n), vnodes=self.config.vnodes)
        self._admission = threading.Lock()
        self._depths: Dict[int, int] = {s: 0 for s in range(n)}
        self._slot_locks: Dict[int, threading.Lock] = {s: threading.Lock() for s in range(n)}
        self._segments: Dict[int, Dict[str, ShmSegment]] = {}
        self._graveyard: Dict[int, List[ShmSegment]] = {s: [] for s in range(n)}
        self._gens: Dict[int, "itertools.count"] = {s: itertools.count(1) for s in range(n)}
        self._grow_seq = itertools.count(1)
        self._req_seq = itertools.count(1)
        self._seg_bytes: Dict[int, Dict[str, int]] = {
            s: {"req": self.config.segment_bytes, "resp": self.config.segment_bytes}
            for s in range(n)
        }
        self._queues: Dict[int, "queue.Queue"] = {s: queue.Queue() for s in range(n)}
        self._closed = False

        self.supervisor = Supervisor(
            self._spawn_cfg,
            n,
            metrics=self.metrics,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            hang_timeout_s=self.config.hang_timeout_s,
            start_timeout_s=self.config.start_timeout_s,
        )
        self._threads: List[threading.Thread] = []
        try:
            self.supervisor.start()
        except Exception:
            self._cleanup_segments()
            self._cleanup_model()
            raise
        for s in range(n):
            # Thread names become the labelled per-worker lanes in the
            # Chrome trace export.
            t = threading.Thread(target=self._slot_loop, args=(s,),
                                 name=f"cluster-w{s}", daemon=True)
            t.start()
            self._threads.append(t)

    # -- spawn plumbing ------------------------------------------------------
    def _spawn_cfg(self, slot: int, epoch: int) -> Dict[str, object]:
        """Supervisor callback: fresh per-epoch segments + worker config."""
        cfg: Dict[str, object] = {
            "model_path": self._model_path,
            "pool_size": self.config.pool_size,
            "use_cache": self.config.use_cache,
            "cache_dir": self.config.cache_dir,
            "genai": self.config.genai,
            "heartbeat_interval_s": self.config.heartbeat_interval_s,
            "device_dwell_ms": self.config.device_dwell_ms,
        }
        if self._model_path is not None:
            with self._slot_locks[slot]:
                old = self._segments.get(slot)
                if old is not None:
                    # Defer unmapping to the slot thread (it may hold
                    # live views); the generation guard covers stragglers.
                    self._graveyard[slot].extend(old.values())
                segs = {}
                for role in ("req", "resp"):
                    name = f"{self._uid}-w{slot}e{epoch}-{role}"
                    segs[role] = ShmSegment.create(
                        name, self._seg_bytes[slot][role], sanitizer=self.sanitizer
                    )
                self._segments[slot] = segs  # sanitize: slot lock held (self._slot_locks[slot])
                cfg["req_segment"] = segs["req"].name
                cfg["resp_segment"] = segs["resp"].name
        return cfg

    def _drain_graveyard(self, slot: int) -> None:
        """Unlink superseded segments; slot-lock held, slot thread only."""
        for seg in self._graveyard[slot]:
            seg.unlink()
        self._graveyard[slot].clear()

    def _grow(self, slot: int, handle, role: str, needed: int) -> None:
        """Replace ``role``'s segment with a bigger one; slot-lock held."""
        size = max(int(needed) * 2, self._seg_bytes[slot][role])
        name = f"{self._uid}-w{slot}g{next(self._grow_seq)}-{role}"
        seg = ShmSegment.create(name, size, sanitizer=self.sanitizer)
        self._graveyard[slot].append(self._segments[slot][role])
        self._segments[slot][role] = seg
        self._seg_bytes[slot][role] = size
        self.metrics.counter("cluster.shm.grows").inc()
        try:
            handle.conn.send({"kind": "segment", "role": role, "name": name})
        except (BrokenPipeError, OSError):
            raise _WorkerDied()

    # -- submission ----------------------------------------------------------
    def submit_infer(self, feeds: Dict[str, np.ndarray], *,
                     session_key: Optional[str] = None,
                     deadline_ms: Optional[float] = None,
                     on_worker_lost: Optional[str] = None) -> Future:
        """Queue one inference; returns a future of the output dict."""
        if self._model_path is None:
            raise RuntimeError("this cluster has no model graph; infer "
                               "requires Cluster(graph, ...)")
        return self._submit("infer", dict(feeds), session_key, deadline_ms,
                            on_worker_lost)

    def submit_generate(self, prompt, params=None, *,
                        session_key: Optional[str] = None,
                        deadline_ms: Optional[float] = None,
                        on_worker_lost: Optional[str] = None) -> Future:
        """Queue one generation; returns a future of :class:`RemoteGenResult`."""
        if self.config.genai is None:
            raise RuntimeError("this cluster has no genai config; generate "
                               "requires ClusterConfig(genai=...)")
        if params is None:
            payload_params: Dict[str, object] = {}
        elif isinstance(params, dict):
            payload_params = dict(params)
        else:  # SamplingParams
            payload_params = asdict(params)
        payload = {"prompt": list(prompt), "params": payload_params}
        return self._submit("generate", payload, session_key, deadline_ms,
                            on_worker_lost)

    def infer(self, feeds, **kw) -> Dict[str, np.ndarray]:
        """Synchronous :meth:`submit_infer`."""
        return self.submit_infer(feeds, **kw).result()

    def generate(self, prompt, params=None, **kw) -> RemoteGenResult:
        """Synchronous :meth:`submit_generate`."""
        return self.submit_generate(prompt, params, **kw).result()

    def _submit(self, kind, payload, session_key, deadline_ms, policy) -> Future:
        if self._closed:
            raise RuntimeError("cluster is closed")
        if policy is None:
            policy = self.config.on_worker_lost
        if policy not in ("replay", "error"):
            raise ValueError(f"unknown on_worker_lost policy {policy!r}")
        budget = deadline_ms if deadline_ms is not None else self.config.deadline_ms
        deadline = Deadline.from_ms(budget)
        if deadline is not None:
            deadline.check("cluster.submit")
        rid = f"clu-{next(self._req_seq)}"
        timeline = self.requests.start(rid, kind=f"cluster.{kind}",
                                       session=session_key or "")
        item = _Pending(rid, kind, payload, session_key, deadline, policy, timeline)
        slot = self._admit(item)
        item.slot = slot
        timeline.admitted(worker=slot)
        self.metrics.counter("router.requests").inc()
        self._queues[slot].put(item)
        return item.future

    def _admit(self, item: _Pending) -> int:
        """Place + bound-check under the admission lock; sheds typed."""
        bound = self.config.max_queue_depth
        with self._admission:
            live = set(self.supervisor.live_slots())
            if item.session_key is not None:
                slot = self._ring.assign(
                    item.session_key,
                    live=(lambda s: s in live) if live else None,
                )
                if self._depths[slot] >= bound:
                    self.metrics.counter("router.shed.backpressure").inc()
                    err = Backpressure(slot, self._depths[slot], bound)
                    self._shed(item, slot, err)
                    raise err
            else:
                pool = sorted(live) if live else list(range(self.config.workers))
                slot = min(pool, key=lambda s: (self._depths[s], s))
                if self._depths[slot] >= bound:
                    total = sum(self._depths.values())
                    self.metrics.counter("router.shed.overloaded").inc()
                    err = Overloaded(total, bound * self.config.workers)
                    self._shed(item, slot, err)
                    raise err
            self._depths[slot] += 1
            self.metrics.gauge(f"cluster.worker.{slot}.queue_depth").set(
                self._depths[slot])
            return slot

    def _shed(self, item: _Pending, slot: int, err) -> None:
        """Timeline + postmortem bookkeeping for a load-shed request."""
        item.done = True
        item.timeline.finish("shed", error=type(err).__name__, worker=slot)
        self.requests.dump(type(err).__name__, item.id,
                           worker=slot, error=str(err))

    # -- dispatch ------------------------------------------------------------
    def _slot_loop(self, slot: int) -> None:
        q = self._queues[slot]
        while True:
            item = q.get()
            if item is _STOP:
                return
            self._dispatch(slot, item)

    def _maybe_crash(self, slot: int, item: _Pending) -> Optional[str]:
        """Evaluate the ``worker.crash`` fault site for this dispatch.

        A planned ``transient`` becomes an "early" kill (accepted, never
        started); a planned ``fatal`` becomes a "mid" kill (dies
        mid-decode).  The injection is decided and counted router-side so
        the accounting equation never depends on a process that is about
        to die.
        """
        if not self.faults.enabled:
            return None
        try:
            self.faults.fire("worker.crash", worker=slot, request=item.id)
        except TransientFault:
            item.injected_crash = True
            return "early"
        except FatalFault:
            item.injected_crash = True
            return "mid"
        return None

    def _dispatch(self, slot: int, item: _Pending) -> None:
        try:
            crash = self._maybe_crash(slot, item)
            while True:
                handle = self._wait_live(slot, item)
                try:
                    with self.tracer.span("cluster.rpc", "cluster",
                                          worker=slot, request=item.id):
                        reply, resp_seg = self._rpc(slot, handle, item, crash)
                    if reply[0] == "grow":
                        with self._slot_locks[slot]:
                            self._grow(slot, handle, "resp", reply[2])
                        crash = None  # the worker survived its window
                        continue
                except _WorkerDied:
                    self.supervisor.report_down(slot, handle.epoch, "crash")
                    self._on_lost(slot, item)
                    return
                if reply[0] == "ok":
                    self._finish(item, result=self._decode_ok(slot, item, reply,
                                                              resp_seg))
                else:
                    self._finish(item, exc=self._decode_err(slot, reply))
                return
        except BaseException as exc:
            self._finish(item, exc=exc)

    def _wait_live(self, slot: int, item: _Pending):
        """Block until ``slot`` has a live worker (deadline-checked).

        The deadline check comes first: a request that expires while
        parked on a dead slot surfaces ``DeadlineExceeded``, never
        ``WorkerLost`` — the budget ran out, which worker was going to
        serve it is an implementation detail.
        """
        while True:
            if item.deadline is not None:
                item.deadline.check("cluster.queue")
            handle = self.supervisor.handle(slot)
            if handle is not None:
                return handle
            if self._closed or self.supervisor.slot_failed(slot):
                raise WorkerLost(slot, item.id, item.replays)
            time.sleep(0.005)

    def _rpc(self, slot: int, handle, item: _Pending, crash: Optional[str]):
        """Send one request and wait for its answer (or the worker's death)."""
        deadline_ms = (item.deadline.remaining_s() * 1000.0
                       if item.deadline is not None else None)
        resp_seg = None
        with self._slot_locks[slot]:
            self._drain_graveyard(slot)
            if item.kind == "infer":
                req_seg = self._segments[slot]["req"]
                resp_seg = self._segments[slot]["resp"]
                gen = next(self._gens[slot])
                try:
                    specs = req_seg.write_tensors(item.payload, gen)
                except ValueError:
                    self._grow(slot, handle, "req", payload_bytes(item.payload))
                    req_seg = self._segments[slot]["req"]
                    specs = req_seg.write_tensors(item.payload, gen)
                msg = {"kind": "infer", "id": item.id, "gen": gen,
                       "specs": specs, "deadline_ms": deadline_ms,
                       "crash": crash}
            else:
                msg = {"kind": "generate", "id": item.id,
                       "prompt": item.payload["prompt"],
                       "params": item.payload["params"],
                       "deadline_ms": deadline_ms, "crash": crash}
            try:
                handle.conn.send(msg)
            except (BrokenPipeError, OSError):
                raise _WorkerDied()
        while True:
            try:
                if handle.conn.poll(0.02):
                    reply = handle.conn.recv()
                    if reply[1] != item.id:
                        # A straggler answer to a request this thread
                        # already abandoned on deadline; drop it.
                        self.metrics.counter("cluster.stale_replies").inc()
                        continue
                    return reply, resp_seg
            except (EOFError, OSError):
                raise _WorkerDied()
            if not handle.proc.is_alive():
                # Drain anything flushed before death, then give up.
                try:
                    while handle.conn.poll(0):
                        reply = handle.conn.recv()
                        if reply[1] == item.id:
                            return reply, resp_seg
                except (EOFError, OSError):
                    pass
                raise _WorkerDied()
            if item.deadline is not None:
                item.deadline.check("cluster.rpc")

    def _decode_ok(self, slot: int, item: _Pending, reply, resp_seg):
        if item.kind == "infer":
            with self._slot_locks[slot]:
                # Read from the segment captured at send time: even if
                # the worker died right after answering and the slot was
                # re-provisioned, the bytes it wrote are still mapped
                # (the graveyard only drains on this same thread).
                return resp_seg.read_tensors(reply[2]["specs"],
                                             reply[2]["gen"], copy=True)
        payload = reply[2]
        if payload["finish_reason"] == "error":
            raise WorkerError("GenerationError",
                              "generation finished with reason 'error'", slot)
        return RemoteGenResult(item.id, list(payload["tokens"]),
                               payload["finish_reason"])

    def _decode_err(self, slot: int, reply) -> BaseException:
        etype, message, extra = reply[2], reply[3], reply[4]
        if etype == "DeadlineExceeded":
            return DeadlineExceeded(
                float(extra.get("budget_ms", 0.0)),
                float(extra.get("elapsed_ms", 0.0)),
                str(extra.get("where", "worker")),
            )
        return WorkerError(etype, message, slot)

    # -- worker-loss policy --------------------------------------------------
    def _on_lost(self, slot: int, item: _Pending) -> None:
        """Resolve a request whose worker died holding it."""
        injected = item.injected_crash
        item.injected_crash = False
        if item.deadline is not None and item.deadline.expired:
            # Satellite rule: expiry wins over loss. (An injected crash
            # resolving this way is impossible in the chaos storm, which
            # runs its cluster phase deadline-free.)
            try:
                item.deadline.check("cluster.worker_lost")
            except DeadlineExceeded as exc:
                self._finish(item, exc=exc)
            return
        if item.policy == "replay" and item.replays < self.config.replay_budget:
            item.replays += 1
            if injected:
                get_metrics().counter("fallback.replay").inc()
            self.metrics.counter("cluster.replays").inc()
            item.timeline.event("replay", worker=slot, attempt=item.replays)
            new_slot = self._reroute(slot, item)
            self._queues[new_slot].put(item)
            return
        err = WorkerLost(slot, item.id, item.replays)
        if injected:
            get_metrics().counter("cluster.worker_lost").inc()
        self.metrics.counter("cluster.lost").inc()
        self._finish(item, exc=err, dump=True)

    def _reroute(self, slot: int, item: _Pending) -> int:
        """Move a replayed request to the next-preference live worker.

        Replays bypass the admission bound: the request was already
        admitted once, and failing it *now* because its failover target
        is busy would turn one worker's crash into spurious shed errors.
        """
        with self._admission:
            live = set(self.supervisor.live_slots())
            if item.session_key is not None:
                new_slot = self._ring.assign(
                    item.session_key,
                    live=(lambda s: s in live) if live else None,
                )
            else:
                pool = sorted(live) if live else [slot]
                new_slot = min(pool, key=lambda s: (self._depths[s], s))
            self._depths[slot] -= 1
            self._depths[new_slot] += 1
            self.metrics.gauge(f"cluster.worker.{slot}.queue_depth").set(
                self._depths[slot])
            self.metrics.gauge(f"cluster.worker.{new_slot}.queue_depth").set(
                self._depths[new_slot])
            item.slot = new_slot
            return new_slot

    def _finish(self, item: _Pending, result=None, exc=None, dump=False) -> None:
        if item.done:
            return
        item.done = True
        with self._admission:
            self._depths[item.slot] -= 1
            self.metrics.gauge(f"cluster.worker.{item.slot}.queue_depth").set(
                self._depths[item.slot])
        if exc is None:
            item.timeline.finish("ok", worker=item.slot)
            item.future.set_result(result)
        else:
            item.timeline.finish("error", error=type(exc).__name__,
                                 worker=item.slot)
            if dump:
                self.requests.dump(type(exc).__name__, item.id,
                                   worker=item.slot, error=str(exc))
            item.future.set_exception(exc)

    # -- health & lifecycle --------------------------------------------------
    def health(self) -> Dict[int, Dict[str, object]]:
        """Per-worker liveness/queue/restart snapshot (mirrors the gauges)."""
        out: Dict[int, Dict[str, object]] = {}
        with self._admission:
            depths = dict(self._depths)
        for slot in range(self.config.workers):
            out[slot] = {
                "up": self.supervisor.is_up(slot),
                "queue_depth": depths[slot],
                "restarts": self.supervisor.restarts(slot),
            }
        return out

    def _cleanup_segments(self) -> None:
        for slot, segs in list(self._segments.items()):
            with self._slot_locks[slot]:
                for seg in self._graveyard[slot]:
                    seg.unlink()
                self._graveyard[slot].clear()
                for seg in segs.values():
                    seg.unlink()
        self._segments.clear()  # sanitize: single-thread (close path, workers joined)

    def _cleanup_model(self) -> None:
        if self._model_dir is not None:
            shutil.rmtree(self._model_dir, ignore_errors=True)
            self._model_dir = None  # sanitize: single-thread (close path)

    def close(self) -> None:
        """Drain, stop workers, unlink segments (idempotent)."""
        if self._closed:
            return
        self._closed = True  # sanitize: monotonic latch, checked not cleared
        for q in self._queues.values():
            q.put(_STOP)
        for t in self._threads:
            t.join(timeout=30.0)
        self.supervisor.stop()
        self._cleanup_segments()
        self._cleanup_model()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
