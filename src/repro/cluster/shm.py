"""Zero-copy tensor transport over ``multiprocessing.shared_memory``.

Control messages (request ids, shapes, deadlines) travel over a pipe;
tensor payloads travel through a :class:`ShmSegment` so the bytes cross
the process boundary exactly once — written in place by the sender,
mapped (not copied) by the receiver.

Ownership and recycling rules (DESIGN §14):

* The **router owns every segment**: it creates, grows and unlinks them.
  Workers only ever attach.  A worker crash therefore can never leak a
  segment — dead workers own nothing.
* Each worker slot gets one request and one response segment, recycled
  request after request (workers execute serially, so one in-flight
  payload per direction is the invariant, not an optimization).
* **Generation guard**: the first 8 bytes of every segment hold a
  generation counter.  The writer stamps the header with the request's
  generation before the control message is sent; the reader re-reads
  the header and refuses (typed :class:`~repro.cluster.StaleSegment`)
  when it disagrees with the generation the message named.  A recycled
  — or replaced-after-crash — segment can therefore never serve a stale
  read: the bytes may be gone, the *check* survives in the header.
* Growth replaces, never resizes: a bigger segment is created under a
  new (epoch-suffixed) name, the worker is told to re-attach, and the
  old name is unlinked.  The generation guard also covers any
  straggling reference to the unlinked mapping.

The owner side threads every create/use/free through
:meth:`repro.sanitize.Sanitizer.carve` / ``use_extent`` / ``free_extent``
(scope ``"cluster.shm"``), so under ``sanitize=True`` a
use-after-unlink or double-unlink is a lifecycle finding with the same
machinery that guards the KV arena.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .errors import StaleSegment

__all__ = ["TensorSpec", "ShmSegment", "payload_bytes", "HEADER_BYTES"]

#: Segment header: an 8-byte generation counter, padded to one cache line.
HEADER_BYTES = 64
_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class TensorSpec:
    """Where one tensor lives inside a segment (picklable, sent on the pipe)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int
    nbytes: int


def payload_bytes(arrays: Dict[str, np.ndarray]) -> int:
    """Segment bytes needed to hold ``arrays`` (header + aligned tensors)."""
    total = HEADER_BYTES
    for arr in arrays.values():
        total += _aligned(int(arr.nbytes))
    return total


class ShmSegment:
    """One owned-or-attached shared-memory segment with a generation header."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        owner: bool,
        sanitizer=None,
    ) -> None:
        self._shm = shm
        self.owner = owner
        self.sanitizer = sanitizer
        self._closed = False

    # -- construction --------------------------------------------------------
    @classmethod
    def create(cls, name: str, size: int, sanitizer=None) -> "ShmSegment":
        """Create (and own) a segment of at least ``size`` bytes."""
        size = max(int(size), HEADER_BYTES + _ALIGN)
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        shm.buf[:HEADER_BYTES] = b"\0" * HEADER_BYTES
        seg = cls(shm, owner=True, sanitizer=sanitizer)
        if sanitizer is not None and sanitizer.enabled:
            sanitizer.carve("cluster.shm", name, 0, size, kind="shm-segment")
        return seg

    @classmethod
    def attach(cls, name: str, sanitizer=None) -> "ShmSegment":
        """Attach to an existing segment by name (never owns it).

        Works around the pre-3.13 resource-tracker behaviour where an
        *attaching* process registers the segment with the (shared)
        tracker daemon too: the daemon's cache is a set, so the router's
        own unlink-time unregister would then hit a double-remove
        KeyError — and a dying worker could take the segment down with
        it.  Attaching must leave tracking entirely to the owner.
        """
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track flag; mute register
            orig = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = orig
        return cls(shm, owner=False, sanitizer=sanitizer)

    # -- introspection -------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    @property
    def generation(self) -> int:
        """The generation currently stamped in the segment header."""
        return int.from_bytes(self._shm.buf[:8], "little")

    def stamp(self, generation: int) -> None:
        """Stamp ``generation`` into the header (writer side)."""
        self._shm.buf[:8] = int(generation).to_bytes(8, "little")

    # -- payload I/O ---------------------------------------------------------
    def write_tensors(
        self, arrays: Dict[str, np.ndarray], generation: int
    ) -> List[TensorSpec]:
        """Lay ``arrays`` out in the segment and stamp ``generation``.

        Returns the specs to send on the control channel.  Raises
        ``ValueError`` when the payload does not fit — the caller grows
        the segment (a new name, a re-attach message) and retries.
        """
        if self.sanitizer is not None and self.sanitizer.enabled:
            self.sanitizer.use_extent("cluster.shm", self.name)
        needed = payload_bytes(arrays)
        if needed > self.size:
            raise ValueError(
                f"payload of {needed} bytes exceeds segment {self.name!r} "
                f"({self.size} bytes)"
            )
        specs: List[TensorSpec] = []
        offset = HEADER_BYTES
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            view = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=self._shm.buf, offset=offset)
            view[...] = arr
            specs.append(TensorSpec(
                name=name, shape=tuple(int(d) for d in arr.shape),
                dtype=arr.dtype.str, offset=offset, nbytes=int(arr.nbytes),
            ))
            offset += _aligned(int(arr.nbytes))
        self.stamp(generation)
        return specs

    def read_tensors(
        self,
        specs: Sequence[TensorSpec],
        generation: int,
        copy: bool = False,
    ) -> Dict[str, np.ndarray]:
        """Map the tensors ``specs`` describe, guarding the generation.

        ``copy=True`` detaches the result from the segment (the router
        does this for responses, since the segment is recycled for the
        next request the moment this call returns); ``copy=False``
        returns zero-copy views valid until the segment is reused
        (workers compute straight out of the mapping).

        Raises:
            StaleSegment: the header generation does not match —
                recycled or replaced bytes were about to be served.
        """
        if self.sanitizer is not None and self.sanitizer.enabled:
            self.sanitizer.use_extent("cluster.shm", self.name)
        found = self.generation
        if found != generation:
            raise StaleSegment(self.name, generation, found)
        out: Dict[str, np.ndarray] = {}
        for spec in specs:
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                              buffer=self._shm.buf, offset=spec.offset)
            out[spec.name] = np.array(view, copy=True) if copy else view
        return out

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent)."""
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(Exception):
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent).

        Unlinking while a worker still has the old mapping is safe —
        POSIX keeps the mapping alive until the last close — and the
        generation guard turns any such straggler read into a typed
        :class:`StaleSegment` instead of silent garbage.
        """
        if not self.owner:
            raise RuntimeError(f"segment {self.name!r} is attached, not owned")
        self.close()
        if self.sanitizer is not None and self.sanitizer.enabled:
            self.sanitizer.retire_extent("cluster.shm", self.name)
            self.sanitizer.free_extent("cluster.shm", self.name)
        with contextlib.suppress(Exception):
            self._shm.unlink()
