"""Consistent-hash ring: deterministic session -> worker placement.

Generation sessions are sticky — a session's KV slabs live in exactly
one worker's arena, so its requests must keep landing on that worker.
A consistent hash over virtual nodes gives three properties the router
leans on:

1. **Determinism.**  Placement is a pure function of ``(key, slots)``
   (sha256, no process-local salt), so a restarted router — or the
   chaos storm's replay run — maps every session to the same worker.
2. **Balance.**  ``vnodes`` virtual points per slot smooth the
   distribution; with the default 64 the per-slot load spread on random
   keys stays within a few percent of uniform.
3. **Minimal movement on loss.**  :meth:`order` walks the ring from the
   key's position, yielding every slot in preference order.  When a
   worker dies, only *its* sessions move — each to the next live slot
   on its ring walk — and they deterministically come back when the
   replacement reports ready (the ring itself never changes; liveness
   filtering happens at lookup time).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["HashRing"]


def _point(data: str) -> int:
    """A stable 64-bit ring coordinate for ``data``."""
    return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """A fixed set of integer slots placed on a 64-bit hash ring."""

    def __init__(self, slots: Sequence[int], vnodes: int = 64) -> None:
        if not slots:
            raise ValueError("hash ring needs at least one slot")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.slots = sorted(set(slots))
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for slot in self.slots:
            for v in range(vnodes):
                points.append((_point(f"w{slot}:v{v}"), slot))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def order(self, key: str) -> List[int]:
        """Every slot, in this key's deterministic preference order.

        The first entry is the primary placement; subsequent entries are
        where the key's sessions fail over to, one worker loss at a
        time.  Every slot appears exactly once.
        """
        start = bisect.bisect_left(self._points, _point(key))
        seen: List[int] = []
        n = len(self._owners)
        for i in range(n):
            owner = self._owners[(start + i) % n]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.slots):
                    break
        return seen

    def assign(
        self, key: str, live: Optional[Callable[[int], bool]] = None
    ) -> int:
        """The slot serving ``key``: its primary, or — when ``live`` says
        the primary is down — the first live slot on its ring walk.

        With no live slot at all the primary is returned anyway; the
        caller then queues on it until the supervisor's replacement
        reports ready (requests on a fully-down cluster wait, they do
        not scatter).
        """
        preference = self.order(key)
        if live is not None:
            for slot in preference:
                if live(slot):
                    return slot
        return preference[0]
