"""The cluster tier's typed error taxonomy.

Every way a request can fail at the router is a distinct type, because
callers react differently to each one:

* :class:`Backpressure` / :class:`Overloaded` are *load* answers — the
  request was never admitted, nothing is broken, retrying later (or
  elsewhere) is reasonable.  They are **not** faults: a storm of shed
  requests under overload is the admission controller doing its job.
* :class:`WorkerLost` is a *fault* answer — the worker holding this
  request died mid-flight and the request's policy forbade (or
  exhausted) transparent replay.  The supervisor has already scheduled
  a replacement by the time the caller sees this.
* :class:`WorkerError` re-materializes a typed failure that happened
  *inside* a worker process (the worker stayed up; the request failed
  alone there) on the router side of the process boundary.
* :class:`StaleSegment` is the shared-memory generation guard firing: a
  tensor payload was about to be read from a segment generation other
  than the one the control message named.  This must never happen in a
  correct engine — it is raised (and counted) rather than silently
  serving recycled bytes.

All of them extend :class:`~repro.faults.ResilienceError`, so existing
"typed failure, engine keeps serving" handling catches cluster failures
too — but the backpressure pair can always be distinguished from the
fault kinds by ``isinstance``.
"""

from __future__ import annotations

from ..faults.errors import ResilienceError

__all__ = [
    "ClusterError",
    "Backpressure",
    "Overloaded",
    "WorkerLost",
    "WorkerError",
    "StaleSegment",
]


class ClusterError(ResilienceError):
    """Base class for every typed failure of the router/worker tier."""


class Backpressure(ClusterError):
    """The sticky worker for this session is at its queue-depth bound.

    Session-affine requests cannot be rerouted (their KV state lives on
    one worker), so the router sheds them instead of queueing without
    bound.  Retry after a backoff; the session stays valid.

    Attributes:
        worker: the worker slot the session is pinned to.
        depth: that worker's queue depth at admission time.
        bound: the configured per-worker queue-depth bound.
    """

    def __init__(self, worker: int, depth: int, bound: int) -> None:
        self.worker = worker
        self.depth = depth
        self.bound = bound
        super().__init__(
            f"worker {worker} is at its queue bound ({depth}/{bound}); "
            f"session-affine request shed"
        )


class Overloaded(ClusterError):
    """Every worker is at its queue-depth bound; the cluster sheds load.

    Attributes:
        depth: total queued + in-flight requests across the cluster.
        capacity: total admission capacity (workers x bound).
    """

    def __init__(self, depth: int, capacity: int) -> None:
        self.depth = depth
        self.capacity = capacity
        super().__init__(
            f"cluster overloaded: {depth} in flight against an admission "
            f"capacity of {capacity}; request shed"
        )


class WorkerLost(ClusterError):
    """The worker died while holding this request, and replay was not an
    option (policy ``"error"``, or the replay budget ran out).

    Attributes:
        worker: the slot that died.
        request_id: the router-assigned request id.
        replays: transparent replays already attempted for this request.
    """

    def __init__(self, worker: int, request_id: str, replays: int = 0) -> None:
        self.worker = worker
        self.request_id = request_id
        self.replays = replays
        extra = f" after {replays} replay(s)" if replays else ""
        super().__init__(
            f"worker {worker} was lost while serving request "
            f"{request_id!r}{extra}"
        )


class WorkerError(ClusterError):
    """A typed failure raised inside a worker, re-raised at the router.

    Attributes:
        etype: the worker-side exception type name (``"KVCacheOOM"``...).
        worker: the slot it happened on.
    """

    def __init__(self, etype: str, message: str, worker: int) -> None:
        self.etype = etype
        self.worker = worker
        super().__init__(f"worker {worker} failed request: {etype}: {message}")


class StaleSegment(ClusterError):
    """Shared-memory generation mismatch: a recycled segment was about to
    serve bytes from a different request generation.

    Attributes:
        name: the shared-memory segment name.
        expected: the generation the control message promised.
        found: the generation the segment header actually holds.
    """

    def __init__(self, name: str, expected: int, found: int) -> None:
        self.name = name
        self.expected = expected
        self.found = found
        super().__init__(
            f"stale shared-memory read on {name!r}: header generation "
            f"{found} != expected {expected}"
        )
