"""``repro.cluster``: the crash-tolerant multi-process serving tier.

One front-door :class:`Cluster` (router) shards requests across N
supervised worker processes, each owning its own SessionPool / arena /
KV allocator.  Headline contracts:

* consistent-hash **session affinity** with deterministic
  rehash-and-replay on worker loss (:class:`HashRing`);
* a :class:`Supervisor` that heartbeats workers, detects crash / hang /
  slow-start, and replaces the dead;
* **admission control** with typed, distinguishable load answers
  (:class:`Backpressure`, :class:`Overloaded`) and fault answers
  (:class:`WorkerLost`, :class:`WorkerError`);
* **deadline propagation** across the process boundary (remaining-ms at
  send, re-armed on the worker);
* zero-copy tensor transport over shared memory with generation-counter
  guards (:class:`ShmSegment`, typed :class:`StaleSegment`);
* the ``worker.crash`` fault site, so the chaos storm can kill workers
  mid-decode and prove the fault-accounting equation still closes.

See DESIGN.md §14 for the full design.
"""

from .errors import (
    Backpressure,
    ClusterError,
    Overloaded,
    StaleSegment,
    WorkerError,
    WorkerLost,
)
from .ring import HashRing
from .router import Cluster, ClusterConfig, RemoteGenResult
from .shm import ShmSegment, TensorSpec, payload_bytes
from .supervisor import Supervisor, WorkerHandle, fork_available
from .worker import CRASH_EXIT_CODE, worker_main

__all__ = [
    "Backpressure",
    "CRASH_EXIT_CODE",
    "Cluster",
    "ClusterConfig",
    "ClusterError",
    "HashRing",
    "Overloaded",
    "RemoteGenResult",
    "ShmSegment",
    "StaleSegment",
    "Supervisor",
    "TensorSpec",
    "WorkerError",
    "WorkerHandle",
    "WorkerLost",
    "fork_available",
    "payload_bytes",
    "worker_main",
]
