"""The worker process: one engine, one request at a time, own everything.

``worker_main`` is the ``multiprocessing.Process`` target.  Each worker
is a full, isolated engine instance — its own
:class:`~repro.serving.SessionPool`, arena and (in generation mode) KV
allocator — so a worker crash loses exactly one shard's state and
nothing else.  The contract with the router:

* **Serial execution.**  The worker handles one request end to end
  before reading the next control message; the router's per-slot queue
  is the only queue.  This is what makes one request/response segment
  pair per worker sufficient and the crash blast radius exactly one
  in-flight request.
* **Fresh process-wide state.**  The worker is forked from a router
  that may carry live fault plans, metrics and tracers; the first thing
  it does is install clean ones.  Workers never self-inject faults —
  crash injection is decided (and counted) router-side, deterministic
  under the plan seed, and delivered as a ``crash`` marker on the
  request message.
* **Crash markers.**  ``crash="early"`` exits before touching the
  payload (the request was accepted, never started); ``crash="mid"``
  does real work first — for generation it prefills and decodes half
  the token budget, mutating the KV arena, *then* dies without replying
  — so supervision and replay are exercised against a worker that died
  mid-decode, not one that died conveniently idle.
* **Deadline re-arming.**  The router serializes a deadline as
  milliseconds-remaining at send time; the worker re-arms a fresh
  :class:`~repro.faults.resilience.Deadline` on receipt, so the budget
  spans the process boundary without requiring synchronized clocks.
* **Heartbeats.**  A daemon thread stamps ``time.monotonic()`` into a
  shared ``Value`` on a fixed interval; the supervisor treats a stale
  stamp as a hang (the GIL is released during kernel work and sleeps,
  so a busy worker still beats).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from ..faults.errors import ResilienceError
from ..faults.plan import FaultPlan, set_fault_plan
from ..faults.resilience import Deadline
from ..obs.metrics import MetricsRegistry, set_metrics
from .shm import ShmSegment

__all__ = ["worker_main", "CRASH_EXIT_CODE"]

#: Exit code for injected crashes (distinguishes them from real bugs in
#: supervisor logs; the supervisor replaces the worker either way).
CRASH_EXIT_CODE = 13


class _Heartbeat(threading.Thread):
    """Stamps the shared heartbeat value until told to play dead."""

    def __init__(self, hb, interval_s: float) -> None:
        super().__init__(name="worker-heartbeat", daemon=True)
        self.hb = hb
        self.interval_s = interval_s
        self.stopped = threading.Event()

    def run(self) -> None:
        while not self.stopped.wait(self.interval_s):
            self.hb.value = time.monotonic()


def _build_engines(cfg: Dict[str, object]):
    """Construct the worker's serving and/or generation engine from cfg."""
    engine = None
    gen_engine = None
    model_path = cfg.get("model_path")
    if model_path:
        from ..ir import load_model
        from ..serving.engine import Engine, EngineConfig

        graph = load_model(model_path)
        engine = Engine(graph, EngineConfig(
            pool_size=int(cfg.get("pool_size", 1)),
            use_cache=bool(cfg.get("use_cache", False)),
            cache_dir=cfg.get("cache_dir"),
        ))
    genai_cfg = cfg.get("genai")
    if genai_cfg:
        from ..genai import GenerationConfig, GenerationEngine

        gen_engine = GenerationEngine(GenerationConfig(**genai_cfg))
    return engine, gen_engine


def _reply_error(conn, request_id: str, exc: BaseException) -> None:
    extra: Dict[str, object] = {}
    for attr in ("budget_ms", "elapsed_ms", "where", "site", "kind"):
        value = getattr(exc, attr, None)
        if value is not None:
            extra[attr] = value
    conn.send(("err", request_id, type(exc).__name__, str(exc), extra))


def worker_main(slot: int, cfg: Dict[str, object], conn, hb) -> None:
    """Process target: build engines, report ready, serve until ``stop``."""
    # Forked children inherit the router's plan/metrics/tracer; replace
    # them so worker-side accounting can never pollute the router's
    # reconciliation equation (faults are counted where they're decided).
    os.environ.pop("REPRO_FAULTS", None)
    set_fault_plan(FaultPlan())
    set_metrics(MetricsRegistry())

    try:
        engine, gen_engine = _build_engines(cfg)
        req_seg = ShmSegment.attach(cfg["req_segment"]) if cfg.get("req_segment") else None
        resp_seg = ShmSegment.attach(cfg["resp_segment"]) if cfg.get("resp_segment") else None
    except Exception as exc:  # startup failure: tell the supervisor why
        try:
            conn.send(("start_failed", slot, type(exc).__name__, str(exc)))
        except Exception:
            pass
        return

    beat = _Heartbeat(hb, float(cfg.get("heartbeat_interval_s", 0.05)) / 2.0)
    beat.start()
    dwell_ms = float(cfg.get("device_dwell_ms", 0.0))
    conn.send(("ready", slot, os.getpid()))

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # router went away; exit quietly
        kind = msg.get("kind")
        if kind == "stop":
            break
        if kind == "segment":
            # The router replaced a segment (growth or post-crash respawn
            # never reaches here — respawned workers attach fresh).
            seg = ShmSegment.attach(msg["name"])
            if msg["role"] == "req":
                if req_seg is not None:
                    req_seg.close()
                req_seg = seg
            else:
                if resp_seg is not None:
                    resp_seg.close()
                resp_seg = seg
            continue
        if kind == "hang":
            # Test/selftest hook: stop heartbeating and stall forever;
            # the supervisor's hang detector must kill and replace us.
            beat.stopped.set()
            while True:
                time.sleep(3600.0)

        request_id = msg.get("id", "?")
        crash = msg.get("crash")
        if crash == "early":
            os._exit(CRASH_EXIT_CODE)
        deadline = Deadline.from_ms(msg.get("deadline_ms"))
        try:
            if kind == "infer":
                feeds = req_seg.read_tensors(msg["specs"], msg["gen"])
                if dwell_ms > 0:
                    # Simulated device dwell: stands in for the
                    # accelerator wait of an offloaded backend (cf.
                    # repro.sim's virtual-clock devices) so worker
                    # occupancy matches an accelerator-backed deployment.
                    time.sleep(dwell_ms / 1000.0)
                out = engine.infer(
                    feeds,
                    deadline_ms=deadline.remaining_s() * 1000.0 if deadline else None,
                )
                if crash == "mid":
                    os._exit(CRASH_EXIT_CODE)  # computed, never answered
                try:
                    specs = resp_seg.write_tensors(out, msg["gen"])
                except ValueError:
                    from .shm import payload_bytes

                    conn.send(("grow", request_id, payload_bytes(out)))
                    continue
                conn.send(("ok", request_id, {"specs": specs, "gen": msg["gen"]}))
            elif kind == "generate":
                from ..genai import GenRequest, SamplingParams

                params = SamplingParams(**msg.get("params", {}))
                if crash == "mid":
                    # Die mid-decode: really prefill and decode half the
                    # budget (mutating this worker's KV arena), then exit
                    # without replying.
                    half = max(1, params.max_tokens // 2)
                    partial = SamplingParams(
                        max_tokens=half,
                        temperature=params.temperature,
                        top_k=params.top_k,
                        seed=params.seed,
                        stop_tokens=params.stop_tokens,
                    )
                    gen_engine.generate(
                        [GenRequest(request_id, list(msg["prompt"]), partial)]
                    )
                    os._exit(CRASH_EXIT_CODE)
                if dwell_ms > 0:
                    time.sleep(dwell_ms / 1000.0)
                result = gen_engine.generate(
                    [GenRequest(request_id, list(msg["prompt"]), params)]
                )[0]
                conn.send(("ok", request_id, {
                    "tokens": list(result.tokens),
                    "finish_reason": result.finish_reason,
                }))
            else:
                conn.send(("err", request_id, "ProtocolError",
                           f"unknown message kind {kind!r}", {}))
        except ResilienceError as exc:
            _reply_error(conn, request_id, exc)
        except Exception as exc:  # worker survives; request fails typed
            _reply_error(conn, request_id, exc)

    # Graceful exit: close engines (runs KV leak checks) and mappings.
    try:
        if gen_engine is not None:
            gen_engine.close()
        if engine is not None:
            engine.close()
    except Exception:
        pass
    for seg in (req_seg, resp_seg):
        if seg is not None:
            seg.close()
