"""Cross-engine / cross-device latency estimation.

This is the substrate behind the paper's comparative experiments (Figures
7, 8, 9 and Tables 6, 8): given a *real* graph (real per-op MUL counts from
shape inference), an :class:`~repro.baselines.profiles.EngineProfile`
(which decides the *algorithm* each engine runs per op) and a
:class:`~repro.devices.specs.DeviceSpec` (Appendix-C capability constants),
it predicts inference latency as

    compute-bound ops:  MULs_engine(op) / (peak MACs/s x efficiency)
    memory-bound ops:   bytes_touched / memory bandwidth
    GPU ops:            + t_schedule per dispatch
    library engines:    + per-op dispatch overhead

The comparison *shape* — who wins where, NCNN's Inception-v3 cliff, MNN's
cross-backend consistency — emerges from each engine's decision procedure,
not from transcribed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines.profiles import SIMD_LANES, EngineProfile
from ..core.cost import node_muls
from ..core.schemes import SchemeConfig, select_graph_schemes, winograd_plane_cost
from ..devices.specs import DeviceSpec
from ..ir.graph import Graph, Node
from ..ir.ops import Op

__all__ = ["OpLatency", "LatencyEstimate", "estimate_latency", "MEM_BANDWIDTH_CPU", "MEM_BANDWIDTH_GPU"]

#: Effective LPDDR4-class memory bandwidth available to the CPU (bytes/s).
MEM_BANDWIDTH_CPU = 12e9
#: Effective bandwidth for GPU-side elementwise work.
MEM_BANDWIDTH_GPU = 20e9

#: Ops that are memory-bound: cost is bytes moved, not multiplications.
_MEMORY_BOUND = {
    Op.BATCH_NORM, Op.RELU, Op.RELU6, Op.PRELU, Op.SIGMOID, Op.TANH,
    Op.SOFTMAX, Op.ADD, Op.SUB, Op.MUL, Op.ELTWISE_MAX, Op.CONCAT,
    Op.MAX_POOL, Op.AVG_POOL, Op.GLOBAL_AVG_POOL, Op.SCALE, Op.PAD,
    Op.RESIZE, Op.REDUCE_MEAN, Op.FLATTEN, Op.RESHAPE, Op.SLICE,
    Op.DROPOUT, Op.IDENTITY, Op.QUANTIZE, Op.DEQUANTIZE,
    Op.TRANSPOSE, Op.GATHER, Op.LAYER_NORM, Op.GELU, Op.SPLIT,
}
_COMPUTE_BOUND = {
    Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.CONV_TRANSPOSE2D, Op.MATMUL,
    Op.FULLY_CONNECTED, Op.LSTM,
}
#: Fused-away by engines that fold BN/activations into the preceding conv.
_FUSABLE = {Op.BATCH_NORM, Op.RELU, Op.RELU6, Op.SCALE, Op.DROPOUT, Op.IDENTITY}


@dataclass(frozen=True)
class OpLatency:
    """Modeled latency of a single operator."""

    node: str
    op_type: str
    ms: float
    muls: float  # effective (weighted) multiply count under the chosen algorithm
    algorithm: str  # "direct" | "winograd_nX" | "strassen" | "fallback" | "memory" | "fused"


@dataclass
class LatencyEstimate:
    """Total modeled latency plus a per-op breakdown."""

    engine: str
    device: str
    mode: str  # "cpu2", "cpu4", "vulkan", ...
    total_ms: float
    per_op: List[OpLatency] = field(default_factory=list)

    def by_op_type(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for op in self.per_op:
            out[op.op_type] = out.get(op.op_type, 0.0) + op.ms
        return out

    def slowest(self, k: int = 5) -> List[OpLatency]:
        return sorted(self.per_op, key=lambda o: -o.ms)[:k]

    def fallback_share(self) -> float:
        """Fraction of time spent in un-optimized fallback kernels."""
        fb = sum(o.ms for o in self.per_op if o.algorithm == "fallback")
        return fb / self.total_ms if self.total_ms else 0.0


def _tensor_bytes(graph: Graph, names) -> int:
    total = 0
    for name in names:
        desc = graph.tensor_descs.get(name)
        if desc is not None and name not in graph.constants:
            total += desc.nbytes
    return total


def _conv_algorithm(
    node: Node, graph: Graph, profile: EngineProfile, schemes,
    scheme_config: Optional[SchemeConfig],
) -> Tuple[float, str, bool]:
    """(effective weighted MULs, algorithm label, is_optimized) for a Conv2D.

    All engines are costed with the *same* weighted metric
    (:func:`~repro.core.schemes.winograd_plane_cost` for Winograd paths),
    so an engine that blindly applies a fixed Winograd tile pays that
    metric's transform and small-map penalties, while MNN's searched
    scheme is by construction the metric's argmin.
    """
    kernel = tuple(node.attrs["kernel"])
    stride = tuple(node.attrs["stride"])
    dilation = tuple(node.attrs["dilation"])
    batch = graph.desc(node.outputs[0]).shape[0]
    optimized = profile.conv_is_optimized(kernel, stride, dilation)
    direct = node_muls(node, graph)

    if profile.scheme_search:
        decision = schemes[node.name]
        if decision.kind == "winograd":
            return batch * decision.cost, f"winograd_n{decision.winograd_n}", True
        if decision.kind == "winograd_rect":
            nh, nw = decision.winograd_n_hw
            return batch * decision.cost, f"winograd_rect_n{nh}x{nw}", True
        if decision.kind == "gemm1x1" and profile.uses_strassen:
            return node_muls(node, graph, "gemm1x1"), "strassen", True
        return direct, "direct", True

    if not optimized:
        return direct, "fallback", False

    # Manual/auto engines: hard-coded Winograd on plain 3x3 stride-1 convs.
    if (
        profile.winograd_fixed_n
        and kernel == (3, 3)
        and stride == (1, 1)
        and dilation == (1, 1)
        and int(node.attrs["groups"]) == 1
    ):
        n = profile.winograd_fixed_n
        x = graph.desc(node.inputs[0])
        y = graph.desc(node.outputs[0])
        cost = winograd_plane_cost(
            n, kernel[0], x.shape[1], y.shape[1], y.shape[2:], scheme_config
        )
        return batch * cost, f"winograd_n{n}", True
    return direct, "direct", True


def estimate_latency(
    graph: Graph,
    profile: EngineProfile,
    device: DeviceSpec,
    backend: str = "cpu",
    threads: int = 4,
    scheme_config: Optional[SchemeConfig] = None,
) -> LatencyEstimate:
    """Model one engine running one graph on one device.

    Args:
        backend: ``"cpu"`` or a GPU API name the engine supports.
        threads: CPU thread count (``"cpu"`` backend only).

    Raises:
        ValueError: if the engine does not support the device OS or the
            requested GPU API.
    """
    if not profile.supports_os(device.os):
        raise ValueError(f"{profile.name} does not ship on {device.os}")
    is_gpu = backend != "cpu"
    if is_gpu:
        if backend not in profile.gpu_efficiency:
            raise ValueError(f"{profile.name} has no {backend} backend")
        if not device.supports_api(backend):
            raise ValueError(f"{device.name} does not expose {backend}")
        gpu_peak = device.gpu_flops() * profile.gpu_efficiency[backend]
        t_schedule = device.t_schedule_ms(backend)
    else:
        cpu_peak_base = device.cpu_flops(threads) * SIMD_LANES * device.cpu_ipc

    schemes = (
        select_graph_schemes(graph, scheme_config) if profile.scheme_search else {}
    )

    per_op: List[OpLatency] = []
    for node in graph.toposort():
        if node.op_type in (Op.INPUT, Op.CONSTANT):
            continue
        if node.op_type in _FUSABLE and profile.fuses_elementwise:
            per_op.append(OpLatency(node.name, node.op_type, 0.0, 0, "fused"))
            continue

        if node.op_type in _COMPUTE_BOUND:
            if node.op_type == Op.CONV2D:
                muls, algorithm, optimized = _conv_algorithm(
                    node, graph, profile, schemes, scheme_config
                )
            else:
                muls, algorithm, optimized = node_muls(node, graph), "direct", True
            if is_gpu:
                ms = muls / gpu_peak * 1000.0 + t_schedule
            else:
                if node.op_type == Op.DEPTHWISE_CONV2D:
                    eff = profile.depthwise_eff(device.os)
                elif optimized:
                    eff = profile.cpu_eff(device.os)
                else:
                    eff = profile.fallback_efficiency
                ms = muls / (cpu_peak_base * eff) * 1000.0
        else:
            bytes_touched = _tensor_bytes(graph, list(node.inputs) + list(node.outputs))
            muls, algorithm = 0, "memory"
            if is_gpu:
                ms = bytes_touched / MEM_BANDWIDTH_GPU * 1000.0 + t_schedule
            else:
                ms = bytes_touched / MEM_BANDWIDTH_CPU * 1000.0
        ms += profile.per_op_overhead_ms
        per_op.append(OpLatency(node.name, node.op_type, ms, muls, algorithm))

    mode = backend if is_gpu else f"cpu{threads}"
    total = sum(op.ms for op in per_op)
    return LatencyEstimate(profile.name, device.name, mode, total, per_op)
