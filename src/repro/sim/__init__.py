"""Simulation substrate: virtual time and cross-device latency estimation."""

from .clock import VirtualClock
from .latency import (
    LatencyEstimate,
    MEM_BANDWIDTH_CPU,
    MEM_BANDWIDTH_GPU,
    OpLatency,
    estimate_latency,
)

__all__ = [
    "VirtualClock",
    "LatencyEstimate",
    "MEM_BANDWIDTH_CPU",
    "MEM_BANDWIDTH_GPU",
    "OpLatency",
    "estimate_latency",
]
