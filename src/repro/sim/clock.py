"""Virtual time for simulated backends.

Simulated GPU/device backends compute real numerics on the host CPU but
account *modeled* execution time on a :class:`VirtualClock` using the
paper's cost model (Eq. 5).  Benchmarks that compare devices or engines
read the clock instead of the wall clock.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing simulated clock, in milliseconds."""

    def __init__(self) -> None:
        self._now_ms = 0.0

    @property
    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, delta_ms: float) -> None:
        """Advance the clock; negative deltas are a programming error."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by {delta_ms} ms")
        self._now_ms += delta_ms

    def reset(self) -> None:
        self._now_ms = 0.0

    def elapsed_since(self, mark_ms: float) -> float:
        return self._now_ms - mark_ms
