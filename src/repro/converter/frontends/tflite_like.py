"""Frontend for a TFLite-style model description.

TFLite models are flatbuffers with an explicit tensor table and operators
referring to tensors *by index*; activations default to NHWC and conv
weights to OHWI.  This frontend accepts the equivalent dict form and
performs the layout normalization a real TFLite importer must do
(NHWC -> NCHW shapes, OHWI -> OIHW kernels, fused activation attributes).

Model schema::

    {
      "name": str,
      "tensors": [{"name": str, "shape": [..(NHWC)..],
                   "data": np.ndarray | None}, ...],
      "inputs":  [tensor indices],
      "outputs": [tensor indices],
      "operators": [{"opcode": "CONV_2D", "inputs": [idx..],
                     "outputs": [idx..], "options": {..}}],
    }
"""

from __future__ import annotations

from typing import Any, List, Mapping

import numpy as np

from ...ir.graph import Graph
from ...ir.ops import Op
from ...ir.shape_inference import infer_shapes
from .onnx_like import ConversionError

__all__ = ["convert_tflite_like"]

_FUSED = {"NONE": None, "RELU": "relu", "RELU6": "relu6"}


def _nhwc_to_nchw(shape) -> tuple:
    if len(shape) == 4:
        n, h, w, c = shape
        return (n, c, h, w)
    return tuple(shape)


def _padding(options, in_hw, kernel, stride) -> dict:
    mode = options.get("padding", "SAME")
    if mode == "SAME":
        return {"pad_mode": "same"}
    if mode == "VALID":
        return {"pad_mode": "valid"}
    raise ConversionError(f"unknown padding {mode!r}")


def convert_tflite_like(model: Mapping[str, Any]) -> Graph:
    """Convert a TFLite-style dict model to an IR graph (NCHW).

    Raises:
        ConversionError: on unknown opcodes or malformed tensors.
    """
    graph = Graph(model.get("name", "tflite_model"))
    tensors: List[Mapping[str, Any]] = list(model.get("tensors", ()))
    names: List[str] = []
    for i, spec in enumerate(tensors):
        names.append(spec.get("name") or f"t{i}")

    input_ids = set(model.get("inputs", ()))
    for i in sorted(input_ids):
        graph.add_input(names[i], _nhwc_to_nchw(tensors[i]["shape"]))

    def tensor_data(i: int) -> np.ndarray:
        data = tensors[i].get("data")
        if data is None:
            raise ConversionError(f"tensor {names[i]!r} has no constant data")
        return np.asarray(data)

    for op_index, operator in enumerate(model.get("operators", ())):
        opcode = operator["opcode"]
        op_inputs = list(operator["inputs"])
        op_outputs = list(operator["outputs"])
        options = dict(operator.get("options", {}))
        out_name = names[op_outputs[0]]
        try:
            _convert(graph, opcode, op_inputs, op_outputs, options, names,
                     tensor_data, out_name)
        except (KeyError, ValueError, IndexError) as exc:
            raise ConversionError(f"operator #{op_index} ({opcode}): {exc}") from exc

    for i in model.get("outputs", ()):
        graph.mark_output(names[i])
    graph.validate()
    infer_shapes(graph)
    return graph


def _convert(graph, opcode, op_inputs, op_outputs, options, names,
             tensor_data, out_name) -> None:
    if opcode in ("CONV_2D", "DEPTHWISE_CONV_2D"):
        depthwise = opcode == "DEPTHWISE_CONV_2D"
        weights = tensor_data(op_inputs[1])
        if depthwise:
            # TFLite DW kernels: (1, kh, kw, C) -> (C, 1, kh, kw)
            _, kh, kw, c = weights.shape
            w = np.ascontiguousarray(weights.transpose(3, 0, 1, 2))
        else:
            # OHWI -> OIHW
            oc, kh, kw, ic = weights.shape
            w = np.ascontiguousarray(weights.transpose(0, 3, 1, 2))
        w_name = graph.add_constant(f"{out_name}_weight", w)
        inputs = [names[op_inputs[0]], w_name]
        if len(op_inputs) > 2:
            inputs.append(graph.add_constant(f"{out_name}_bias", tensor_data(op_inputs[2])))
        fused = _FUSED.get(options.get("fused_activation", "NONE"), None)
        attrs = {
            "kernel": (kh, kw),
            "stride": (int(options.get("stride_h", 1)), int(options.get("stride_w", 1))),
            "dilation": (int(options.get("dilation_h", 1)), int(options.get("dilation_w", 1))),
            "has_bias": len(op_inputs) > 2,
            "activation": fused,
            **_padding(options, None, None, None),
        }
        if depthwise:
            attrs["groups"] = w.shape[0]
            graph.add_node(Op.DEPTHWISE_CONV2D, inputs, [out_name], attrs)
        else:
            graph.add_node(Op.CONV2D, inputs, [out_name], attrs)
    elif opcode == "FULLY_CONNECTED":
        weights = tensor_data(op_inputs[1])  # (units, in_features) already
        w_name = graph.add_constant(f"{out_name}_weight", weights)
        inputs = [names[op_inputs[0]], w_name]
        if len(op_inputs) > 2:
            inputs.append(graph.add_constant(f"{out_name}_bias", tensor_data(op_inputs[2])))
        graph.add_node(Op.FULLY_CONNECTED, inputs, [out_name],
                       {"units": weights.shape[0]})
    elif opcode in ("MAX_POOL_2D", "AVERAGE_POOL_2D"):
        attrs = {
            "kernel": (int(options.get("filter_h", 2)), int(options.get("filter_w", 2))),
            "stride": (int(options.get("stride_h", 2)), int(options.get("stride_w", 2))),
            **_padding(options, None, None, None),
        }
        mapped = Op.MAX_POOL if opcode == "MAX_POOL_2D" else Op.AVG_POOL
        graph.add_node(mapped, [names[op_inputs[0]]], [out_name], attrs)
    elif opcode == "MEAN":
        # TFLite's global-average-pool idiom: MEAN over the spatial axes.
        axes = tuple(options.get("axes", (1, 2)))
        if set(axes) != {1, 2}:
            raise ConversionError(f"MEAN axes {axes} is not spatial pooling")
        graph.add_node(Op.GLOBAL_AVG_POOL, [names[op_inputs[0]]], [out_name], {})
    elif opcode in ("RELU", "RELU6", "LOGISTIC", "TANH", "SOFTMAX"):
        mapped = {"RELU": Op.RELU, "RELU6": Op.RELU6, "LOGISTIC": Op.SIGMOID,
                  "TANH": Op.TANH, "SOFTMAX": Op.SOFTMAX}[opcode]
        attrs = {"axis": 1} if opcode == "SOFTMAX" else {}
        graph.add_node(mapped, [names[op_inputs[0]]], [out_name], attrs)
    elif opcode == "ADD":
        graph.add_node(Op.ADD, [names[i] for i in op_inputs], [out_name], {})
    elif opcode == "MUL":
        graph.add_node(Op.MUL, [names[i] for i in op_inputs], [out_name], {})
    elif opcode == "CONCATENATION":
        axis = int(options.get("axis", 3))
        # NHWC channel axis 3 -> NCHW axis 1
        nchw_axis = {0: 0, 1: 2, 2: 3, 3: 1}.get(axis, axis)
        graph.add_node(Op.CONCAT, [names[i] for i in op_inputs], [out_name],
                       {"axis": nchw_axis})
    elif opcode == "RESHAPE":
        shape = options.get("new_shape")
        if shape is None:
            shape = tensor_data(op_inputs[1]).tolist()
        graph.add_node(Op.RESHAPE, [names[op_inputs[0]]], [out_name],
                       {"shape": tuple(int(s) for s in shape)})
    else:
        raise ConversionError(f"unsupported TFLite opcode {opcode!r}")
