"""Frontend for an ONNX-style model description.

The paper's converter ingests TensorFlow/Caffe/ONNX models.  With no
network access, we define the closest synthetic equivalent: a dict-based
model whose node vocabulary and attribute conventions mirror ONNX
(``Conv`` with ``group``/``pads``/``strides``, ``Gemm``, ``Clip`` for
ReLU6, ``BatchNormalization`` ...).  ``convert_onnx_like`` maps it onto the
repro IR, exercising the same normalization work a real ONNX importer
does: attribute translation, depthwise detection, op-name mapping.

Model schema::

    {
      "name": str,
      "inputs":  [{"name": str, "shape": [..]}],
      "outputs": [str],
      "initializers": {name: np.ndarray},
      "nodes": [{"op_type": str, "inputs": [..], "outputs": [..],
                 "attrs": {..}}],
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from ...ir.graph import Graph, GraphError
from ...ir.ops import Op
from ...ir.shape_inference import infer_shapes

__all__ = ["convert_onnx_like", "ConversionError"]


class ConversionError(ValueError):
    """Raised when an external model cannot be mapped to the IR."""


def _pair(value, default) -> tuple:
    if value is None:
        return (default, default)
    if isinstance(value, (int, float)):
        return (int(value), int(value))
    return (int(value[0]), int(value[1]))


def _onnx_pads(pads) -> tuple:
    """ONNX pads are (top, left, bottom, right); IR wants (t, b, l, r)."""
    if pads is None:
        return (0, 0, 0, 0)
    t, l, b, r = (int(p) for p in pads)
    return (t, b, l, r)


def convert_onnx_like(model: Mapping[str, Any]) -> Graph:
    """Convert an ONNX-style dict model to an IR graph.

    Raises:
        ConversionError: on unknown op types or malformed attributes.
    """
    graph = Graph(model.get("name", "onnx_model"))
    for spec in model.get("inputs", ()):
        graph.add_input(spec["name"], tuple(spec["shape"]))
    for name, value in model.get("initializers", {}).items():
        graph.add_constant(name, np.asarray(value))

    for i, node in enumerate(model.get("nodes", ())):
        op = node["op_type"]
        inputs = list(node["inputs"])
        outputs = list(node["outputs"])
        attrs = dict(node.get("attrs", {}))
        name = node.get("name", outputs[0] if outputs else f"node_{i}")
        try:
            _convert_node(graph, op, inputs, outputs, attrs, name)
        except (KeyError, GraphError, ValueError) as exc:
            raise ConversionError(f"node {name!r} ({op}): {exc}") from exc

    for out in model.get("outputs", ()):
        graph.mark_output(out)
    graph.validate()
    infer_shapes(graph)
    return graph


def _convert_node(graph: Graph, op: str, inputs: List[str], outputs: List[str],
                  attrs: Dict[str, Any], name: str) -> None:
    if op == "Conv":
        weights = graph.constants.get(inputs[1])
        if weights is None:
            raise ConversionError("Conv weights must be an initializer")
        group = int(attrs.get("group", 1))
        ic_total = weights.shape[1] * group
        kernel = tuple(attrs.get("kernel_shape", weights.shape[2:]))
        conv_attrs = {
            "kernel": kernel,
            "stride": _pair(attrs.get("strides"), 1),
            "dilation": _pair(attrs.get("dilations"), 1),
            "pad": _onnx_pads(attrs.get("pads")),
            "pad_mode": "same" if attrs.get("auto_pad") == "SAME_UPPER" else "explicit",
            "groups": group,
            "has_bias": len(inputs) > 2,
        }
        depthwise = group > 1 and weights.shape[1] == 1 and weights.shape[0] == ic_total
        graph.add_node(
            Op.DEPTHWISE_CONV2D if depthwise else Op.CONV2D,
            inputs, outputs, conv_attrs, name=name,
        )
    elif op == "ConvTranspose":
        weights = graph.constants[inputs[1]]
        graph.add_node(
            Op.CONV_TRANSPOSE2D, inputs, outputs,
            {
                "kernel": tuple(attrs.get("kernel_shape", weights.shape[2:])),
                "stride": _pair(attrs.get("strides"), 1),
                "dilation": _pair(attrs.get("dilations"), 1),
                "pad": _onnx_pads(attrs.get("pads")),
                "pad_mode": "explicit",
                "has_bias": len(inputs) > 2,
                "output_padding": _pair(attrs.get("output_padding"), 0),
            },
            name=name,
        )
    elif op == "Gemm":
        weights = graph.constants.get(inputs[1])
        if weights is None or not attrs.get("transB", 1):
            raise ConversionError("Gemm requires transB=1 with constant weights")
        graph.add_node(Op.FULLY_CONNECTED, inputs, outputs,
                       {"units": weights.shape[0]}, name=name)
    elif op == "MatMul":
        graph.add_node(Op.MATMUL, inputs, outputs, {}, name=name)
    elif op == "BatchNormalization":
        graph.add_node(Op.BATCH_NORM, inputs, outputs,
                       {"epsilon": float(attrs.get("epsilon", 1e-5))}, name=name)
    elif op == "Relu":
        graph.add_node(Op.RELU, inputs, outputs, {}, name=name)
    elif op == "Clip":
        lo = float(attrs.get("min", 0.0))
        hi = float(attrs.get("max", 6.0))
        if (lo, hi) != (0.0, 6.0):
            raise ConversionError(f"Clip({lo}, {hi}) is not a ReLU6")
        graph.add_node(Op.RELU6, inputs, outputs, {}, name=name)
    elif op == "Sigmoid":
        graph.add_node(Op.SIGMOID, inputs, outputs, {}, name=name)
    elif op == "Tanh":
        graph.add_node(Op.TANH, inputs, outputs, {}, name=name)
    elif op == "PRelu":
        graph.add_node(Op.PRELU, inputs, outputs, {}, name=name)
    elif op == "Softmax":
        graph.add_node(Op.SOFTMAX, inputs, outputs,
                       {"axis": int(attrs.get("axis", 1))}, name=name)
    elif op in ("MaxPool", "AveragePool"):
        pool_attrs = {
            "kernel": tuple(attrs["kernel_shape"]),
            "stride": _pair(attrs.get("strides"), 1),
            "pad": _onnx_pads(attrs.get("pads")),
            "pad_mode": "explicit",
            "ceil_mode": bool(attrs.get("ceil_mode", False)),
        }
        if op == "AveragePool":
            pool_attrs["count_include_pad"] = bool(attrs.get("count_include_pad", False))
        graph.add_node(Op.MAX_POOL if op == "MaxPool" else Op.AVG_POOL,
                       inputs, outputs, pool_attrs, name=name)
    elif op == "GlobalAveragePool":
        graph.add_node(Op.GLOBAL_AVG_POOL, inputs, outputs, {}, name=name)
    elif op in ("Add", "Sub", "Mul", "Max"):
        mapped = {"Add": Op.ADD, "Sub": Op.SUB, "Mul": Op.MUL, "Max": Op.ELTWISE_MAX}[op]
        graph.add_node(mapped, inputs, outputs, {}, name=name)
    elif op == "Split":
        sizes = attrs.get("split")
        if sizes is None:
            raise ConversionError("Split requires explicit 'split' sizes")
        graph.add_node(Op.SPLIT, inputs, outputs,
                       {"axis": int(attrs.get("axis", 0)),
                        "sizes": tuple(int(s) for s in sizes)}, name=name)
    elif op == "Concat":
        graph.add_node(Op.CONCAT, inputs, outputs,
                       {"axis": int(attrs.get("axis", 1))}, name=name)
    elif op == "Reshape":
        shape = attrs.get("shape")
        if shape is None and len(inputs) > 1:
            shape = graph.constants[inputs[1]].tolist()
            inputs = inputs[:1]
        graph.add_node(Op.RESHAPE, inputs, outputs, {"shape": tuple(shape)}, name=name)
    elif op == "Flatten":
        graph.add_node(Op.FLATTEN, inputs, outputs,
                       {"axis": int(attrs.get("axis", 1))}, name=name)
    elif op == "Pad":
        pads = attrs["pads"]
        rank = len(pads) // 2
        interleaved = []
        for axis in range(rank):  # ONNX: all befores then all afters
            interleaved += [int(pads[axis]), int(pads[axis + rank])]
        graph.add_node(Op.PAD, inputs, outputs,
                       {"pads": tuple(interleaved),
                        "value": float(attrs.get("value", 0.0))}, name=name)
    elif op in ("Upsample", "Resize"):
        graph.add_node(Op.RESIZE, inputs, outputs,
                       {"scale": _pair(attrs.get("scales"), 2),
                        "mode": attrs.get("mode", "nearest")}, name=name)
    elif op == "ReduceMean":
        graph.add_node(Op.REDUCE_MEAN, inputs, outputs,
                       {"axes": tuple(attrs["axes"]),
                        "keepdims": bool(attrs.get("keepdims", 1))}, name=name)
    elif op == "Dropout":
        graph.add_node(Op.DROPOUT, inputs, outputs,
                       {"ratio": float(attrs.get("ratio", 0.5))}, name=name)
    elif op == "Identity":
        graph.add_node(Op.IDENTITY, inputs, outputs, {}, name=name)
    else:
        raise ConversionError(f"unsupported ONNX op type {op!r}")
