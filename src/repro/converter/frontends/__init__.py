"""Model-format frontends for the offline converter."""

from .onnx_like import ConversionError, convert_onnx_like
from .caffe_like import convert_caffe_like
from .tflite_like import convert_tflite_like

__all__ = [
    "ConversionError",
    "convert_onnx_like",
    "convert_caffe_like",
    "convert_tflite_like",
]
