"""Frontend for a Caffe-style model description.

Caffe models are a layer list with ``bottom``/``top`` tensor wiring and a
separate weight store.  This frontend accepts the equivalent dict form::

    {
      "name": str,
      "inputs": [{"name": str, "shape": [..]}],
      "layers": [{"name": str, "type": "Convolution", "bottom": [..],
                  "top": [..], ...layer params...}],
      "blobs": {layer_name: [np.ndarray, ...]},   # weights, then bias
    }

Layer types mirror Caffe: Convolution, InnerProduct, Pooling (MAX/AVE with
``global_pooling``), ReLU, BatchNorm, Scale, Eltwise (SUM/PROD/MAX),
Concat, Softmax, Dropout, Deconvolution.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from ...ir.graph import Graph, GraphError
from ...ir.ops import Op
from ...ir.shape_inference import infer_shapes
from .onnx_like import ConversionError

__all__ = ["convert_caffe_like"]


def _pair(layer: Mapping[str, Any], base: str, default: int) -> tuple:
    """Caffe convention: `pad` or `pad_h`/`pad_w`."""
    if f"{base}_h" in layer or f"{base}_w" in layer:
        return (int(layer.get(f"{base}_h", default)), int(layer.get(f"{base}_w", default)))
    v = layer.get(base, default)
    return (int(v), int(v))


def convert_caffe_like(model: Mapping[str, Any]) -> Graph:
    """Convert a Caffe-style dict model to an IR graph.

    Raises:
        ConversionError: on unknown layer types or missing blobs.
    """
    graph = Graph(model.get("name", "caffe_model"))
    for spec in model.get("inputs", ()):
        graph.add_input(spec["name"], tuple(spec["shape"]))
    blobs: Mapping[str, List[np.ndarray]] = model.get("blobs", {})

    last_top: str = model["inputs"][0]["name"] if model.get("inputs") else ""
    for layer in model.get("layers", ()):
        ltype = layer["type"]
        name = layer["name"]
        bottoms = list(layer.get("bottom", [last_top]))
        tops = list(layer.get("top", [name]))
        params = blobs.get(name, [])
        try:
            _convert_layer(graph, ltype, name, bottoms, tops, layer, params)
        except (KeyError, GraphError, ValueError, IndexError) as exc:
            raise ConversionError(f"layer {name!r} ({ltype}): {exc}") from exc
        last_top = tops[0]

    outputs = model.get("outputs")
    if not outputs:
        # Caffe convention: tensors never consumed are the net outputs.
        consumed = {b for layer in model.get("layers", ()) for b in layer.get("bottom", [])}
        outputs = [
            top
            for layer in model.get("layers", ())
            for top in layer.get("top", [layer["name"]])
            if top not in consumed
        ]
    for out in outputs:
        graph.mark_output(out)
    graph.validate()
    infer_shapes(graph)
    return graph


def _convert_layer(graph: Graph, ltype: str, name: str, bottoms: List[str],
                   tops: List[str], layer: Mapping[str, Any],
                   params: List[np.ndarray]) -> None:
    if ltype in ("Convolution", "Deconvolution"):
        if not params:
            raise ConversionError("missing weight blob")
        weights = np.asarray(params[0])
        w_name = graph.add_constant(f"{name}_weight", weights)
        inputs = bottoms[:1] + [w_name]
        has_bias = len(params) > 1
        if has_bias:
            inputs.append(graph.add_constant(f"{name}_bias", np.asarray(params[1])))
        group = int(layer.get("group", 1))
        kernel = _pair(layer, "kernel_size", weights.shape[-1])
        attrs = {
            "kernel": kernel,
            "stride": _pair(layer, "stride", 1),
            "dilation": _pair(layer, "dilation", 1),
            "pad": (*_pair(layer, "pad", 0), *_pair(layer, "pad", 0))[:4]
            if "pad_h" not in layer
            else (layer.get("pad_h", 0), layer.get("pad_h", 0),
                  layer.get("pad_w", 0), layer.get("pad_w", 0)),
            "pad_mode": "explicit",
            "groups": group,
            "has_bias": has_bias,
        }
        # normalize symmetric caffe pad (pad, pad) -> (t, b, l, r)
        ph, pw = _pair(layer, "pad", 0)
        attrs["pad"] = (ph, ph, pw, pw)
        if ltype == "Deconvolution":
            attrs["output_padding"] = (0, 0)
            graph.add_node(Op.CONV_TRANSPOSE2D, inputs, tops, attrs, name=name)
        else:
            depthwise = group > 1 and weights.shape[1] == 1 and weights.shape[0] == group
            graph.add_node(
                Op.DEPTHWISE_CONV2D if depthwise else Op.CONV2D,
                inputs, tops, attrs, name=name,
            )
    elif ltype == "InnerProduct":
        weights = np.asarray(params[0])
        w_name = graph.add_constant(f"{name}_weight", weights)
        inputs = bottoms[:1] + [w_name]
        if len(params) > 1:
            inputs.append(graph.add_constant(f"{name}_bias", np.asarray(params[1])))
        graph.add_node(Op.FULLY_CONNECTED, inputs, tops,
                       {"units": weights.shape[0]}, name=name)
    elif ltype == "Pooling":
        if layer.get("global_pooling"):
            if layer.get("pool", "MAX") != "AVE":
                raise ConversionError("global pooling only supported for AVE")
            graph.add_node(Op.GLOBAL_AVG_POOL, bottoms, tops, {}, name=name)
            return
        pool = layer.get("pool", "MAX")
        kernel = _pair(layer, "kernel_size", 2)
        ph, pw = _pair(layer, "pad", 0)
        attrs = {
            "kernel": kernel,
            "stride": _pair(layer, "stride", kernel[0]),
            "pad": (ph, ph, pw, pw),
            "pad_mode": "explicit",
            "ceil_mode": bool(layer.get("ceil_mode", True)),  # Caffe default
        }
        if pool == "MAX":
            graph.add_node(Op.MAX_POOL, bottoms, tops, attrs, name=name)
        elif pool == "AVE":
            attrs["count_include_pad"] = True  # Caffe semantics
            graph.add_node(Op.AVG_POOL, bottoms, tops, attrs, name=name)
        else:
            raise ConversionError(f"unknown pool kind {pool!r}")
    elif ltype == "ReLU":
        graph.add_node(Op.RELU, bottoms, tops, {}, name=name)
    elif ltype == "ReLU6":
        graph.add_node(Op.RELU6, bottoms, tops, {}, name=name)
    elif ltype == "Sigmoid":
        graph.add_node(Op.SIGMOID, bottoms, tops, {}, name=name)
    elif ltype == "TanH":
        graph.add_node(Op.TANH, bottoms, tops, {}, name=name)
    elif ltype == "BatchNorm":
        mean = np.asarray(params[0])
        var = np.asarray(params[1])
        scale = float(params[2]) if len(params) > 2 else 1.0
        if scale not in (0.0, 1.0):
            mean = mean / scale
            var = var / scale
        c = mean.shape[0]
        inputs = bottoms[:1] + [
            graph.add_constant(f"{name}_gamma", np.ones(c, np.float32)),
            graph.add_constant(f"{name}_beta", np.zeros(c, np.float32)),
            graph.add_constant(f"{name}_mean", mean.astype(np.float32)),
            graph.add_constant(f"{name}_var", var.astype(np.float32)),
        ]
        graph.add_node(Op.BATCH_NORM, inputs, tops,
                       {"epsilon": float(layer.get("eps", 1e-5))}, name=name)
    elif ltype == "Scale":
        inputs = bottoms[:1] + [graph.add_constant(f"{name}_scale", np.asarray(params[0]))]
        if len(params) > 1:
            inputs.append(graph.add_constant(f"{name}_shift", np.asarray(params[1])))
        graph.add_node(Op.SCALE, inputs, tops, {}, name=name)
    elif ltype == "Eltwise":
        operation = layer.get("operation", "SUM")
        mapped = {"SUM": Op.ADD, "PROD": Op.MUL, "MAX": Op.ELTWISE_MAX}.get(operation)
        if mapped is None:
            raise ConversionError(f"unknown eltwise operation {operation!r}")
        graph.add_node(mapped, bottoms, tops, {}, name=name)
    elif ltype == "Concat":
        graph.add_node(Op.CONCAT, bottoms, tops,
                       {"axis": int(layer.get("axis", 1))}, name=name)
    elif ltype == "Softmax":
        graph.add_node(Op.SOFTMAX, bottoms, tops,
                       {"axis": int(layer.get("axis", 1))}, name=name)
    elif ltype == "Dropout":
        graph.add_node(Op.DROPOUT, bottoms, tops,
                       {"ratio": float(layer.get("dropout_ratio", 0.5))}, name=name)
    elif ltype == "Flatten":
        graph.add_node(Op.FLATTEN, bottoms, tops,
                       {"axis": int(layer.get("axis", 1))}, name=name)
    else:
        raise ConversionError(f"unsupported Caffe layer type {ltype!r}")
