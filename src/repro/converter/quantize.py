"""Post-training int8 quantization (the converter's model compressor).

Pipeline (all offline, matching Figure 2's "Model Compressor" stage):

1. **Calibrate** — run the float graph on representative inputs and record
   the maximum absolute value of every convolution input.
2. **Quantize** — per-output-channel symmetric int8 weights plus one
   activation scale per conv; weights in the model file shrink ~4x.
3. At inference the conv runner detects int8 weights and takes the exact
   int32-accumulation path (:mod:`repro.kernels.quantized`).

Depthwise convolutions are left in float: they are memory-bound (no GEMM
to accelerate) and quantization there costs accuracy for no speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.reference import execute_reference
from ..ir.graph import Graph, GraphError
from ..ir.ops import Op
from ..ir.serialization import dumps, loads
from ..kernels.quantized import quantize_weights_per_channel

__all__ = ["CalibrationResult", "calibrate", "quantize_model", "weight_bytes"]


@dataclass
class CalibrationResult:
    """Per-tensor activation scales measured on calibration data."""

    scales: Dict[str, float]

    def scale_for(self, tensor: str) -> float:
        try:
            return self.scales[tensor]
        except KeyError:
            raise GraphError(f"tensor {tensor!r} was not calibrated") from None


def calibrate(graph: Graph, feeds_batches: Sequence[Dict[str, np.ndarray]]) -> CalibrationResult:
    """Measure activation ranges by running the float graph.

    Args:
        feeds_batches: one feed dict per calibration sample (>= 1 required).
    """
    if not feeds_batches:
        raise ValueError("calibration requires at least one input batch")
    max_abs: Dict[str, float] = {}
    for feeds in feeds_batches:
        env = execute_reference(graph, feeds)
        for name, value in env.items():
            if not np.issubdtype(np.asarray(value).dtype, np.floating):
                continue
            peak = float(np.abs(value).max()) if value.size else 0.0
            max_abs[name] = max(max_abs.get(name, 0.0), peak)
    scales = {
        name: (peak / 127.0 if peak > 0 else 1.0) for name, peak in max_abs.items()
    }
    return CalibrationResult(scales)


def quantize_model(
    graph: Graph,
    feeds_batches: Sequence[Dict[str, np.ndarray]],
    quantize_fc: bool = True,
) -> Graph:
    """Produce an int8 copy of ``graph`` (the original is untouched).

    Standard ``Conv2D`` layers are always quantized; ``FullyConnected``
    layers too unless ``quantize_fc=False`` (see module docstring for why
    depthwise stays float).
    """
    from ..ir.tensor import DataType, TensorDesc

    calibration = calibrate(graph, feeds_batches)
    quantized = loads(dumps(graph))  # deep copy through the model format
    count = 0
    for node in quantized.nodes:
        if node.op_type == Op.CONV2D:
            weights_name = node.inputs[1]
            weights = quantized.constants.get(weights_name)
            if weights is None or weights.dtype == np.int8:
                continue
            wq, w_scales = quantize_weights_per_channel(weights)
        elif node.op_type == Op.FULLY_CONNECTED and quantize_fc:
            weights_name = node.inputs[1]
            weights = quantized.constants.get(weights_name)
            if weights is None or weights.dtype == np.int8:
                continue
            # (units, in_features) quantizes per-unit via the same helper
            wq4, w_scales = quantize_weights_per_channel(
                weights.reshape(weights.shape[0], weights.shape[1], 1, 1)
            )
            wq = wq4.reshape(weights.shape)
        else:
            continue
        quantized.constants[weights_name] = wq
        desc = quantized.tensor_descs[weights_name]
        quantized.tensor_descs[weights_name] = TensorDesc(
            weights_name, desc.shape, DataType.INT8
        )
        node.attrs["input_scale"] = calibration.scale_for(node.inputs[0])
        node.attrs["weight_scales"] = [float(s) for s in w_scales]
        count += 1
    if count == 0:
        raise GraphError("graph contains no quantizable Conv2D layers")
    return quantized


def weight_bytes(graph: Graph) -> int:
    """Total bytes of all constants — the model-size metric quantization shrinks."""
    return sum(int(v.nbytes) for v in graph.constants.values())
