"""Magnitude pruning — the paper's future work item 2 ("integrating model
compression tools (e.g. pruning) to slim the model on the fly").

Unstructured global magnitude pruning of conv/FC weights to a target
sparsity, plus a sparsity report and a compressed-size estimate (sparse
tensors stored as value+index pairs, the standard CSR-style accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..ir.graph import Graph
from ..ir.ops import Op
from ..ir.serialization import dumps, loads

__all__ = ["PruneReport", "prune_model", "sparsity_report"]

#: Ops whose weight input (index 1) participates in pruning.
_PRUNABLE_OPS = (Op.CONV2D, Op.FULLY_CONNECTED)


@dataclass
class PruneReport:
    """What pruning did to a model.

    Attributes:
        target_sparsity: requested global fraction of zeroed weights.
        achieved_sparsity: actual fraction over prunable weights.
        per_tensor: tensor name -> sparsity.
        dense_bytes: weight bytes stored densely.
        sparse_bytes: estimated bytes under value+int32-index storage.
    """

    target_sparsity: float
    achieved_sparsity: float
    per_tensor: Dict[str, float] = field(default_factory=dict)
    dense_bytes: int = 0
    sparse_bytes: int = 0

    @property
    def compression(self) -> float:
        return self.dense_bytes / self.sparse_bytes if self.sparse_bytes else 1.0


def _prunable_weights(graph: Graph) -> Dict[str, np.ndarray]:
    names = {}
    for node in graph.nodes:
        if node.op_type in _PRUNABLE_OPS and len(node.inputs) > 1:
            weights = graph.constants.get(node.inputs[1])
            if weights is not None and np.issubdtype(weights.dtype, np.floating):
                names[node.inputs[1]] = weights
    return names


def prune_model(
    graph: Graph,
    sparsity: float,
    protect: Sequence[str] = (),
) -> tuple[Graph, PruneReport]:
    """Globally magnitude-prune conv/FC weights to ``sparsity``.

    The threshold is one global magnitude quantile over all prunable
    weights, so easy (low-magnitude-heavy) layers absorb more of the
    budget — standard global pruning behaviour.

    Args:
        graph: source graph (untouched; a pruned copy is returned).
        sparsity: fraction of prunable weights to zero, in [0, 1).
        protect: weight tensor names excluded from pruning (e.g. the
            first conv, which is classically sensitive).

    Raises:
        ValueError: for sparsity outside [0, 1) or no prunable weights.
    """
    if not (0.0 <= sparsity < 1.0):
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    pruned = loads(dumps(graph))
    weights = {
        name: w for name, w in _prunable_weights(pruned).items() if name not in protect
    }
    if not weights:
        raise ValueError("graph has no prunable conv/FC weights")

    all_magnitudes = np.concatenate([np.abs(w).ravel() for w in weights.values()])
    if sparsity == 0.0:
        threshold = -1.0
    else:
        threshold = float(np.quantile(all_magnitudes, sparsity))

    report = PruneReport(target_sparsity=sparsity, achieved_sparsity=0.0)
    zeroed = 0
    total = 0
    for name, w in weights.items():
        mask = np.abs(w) > threshold
        pruned.constants[name] = (w * mask).astype(w.dtype)
        layer_sparsity = 1.0 - mask.mean()
        report.per_tensor[name] = float(layer_sparsity)
        zeroed += int((~mask).sum())
        total += w.size
    report.achieved_sparsity = zeroed / total

    report.dense_bytes = sum(w.nbytes for w in weights.values())
    nnz = total - zeroed
    report.sparse_bytes = nnz * (4 + 4)  # float32 value + int32 index
    return pruned, report


def sparsity_report(graph: Graph) -> Dict[str, float]:
    """Per-weight-tensor sparsity of an existing model."""
    return {
        name: float((w == 0).mean()) for name, w in _prunable_weights(graph).items()
    }
