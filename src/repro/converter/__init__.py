"""Offline conversion: frontends, graph optimizer, quantization (Figure 2)."""

from .frontends.onnx_like import ConversionError, convert_onnx_like
from .frontends.caffe_like import convert_caffe_like
from .frontends.tflite_like import convert_tflite_like
from .optimizer.passes import (
    FoldConstants,
    FuseConvActivation,
    FuseConvBatchNorm,
    Pass,
    PassManager,
    RemoveIdentity,
    ReplaceOps,
    default_passes,
    optimize,
)
from .quantize import CalibrationResult, calibrate, quantize_model, weight_bytes
from .prune import PruneReport, prune_model, sparsity_report
from .fp16 import convert_to_fp16, fp16_savings

__all__ = [
    "PruneReport",
    "prune_model",
    "sparsity_report",
    "convert_to_fp16",
    "fp16_savings",
    "ConversionError",
    "convert_onnx_like",
    "convert_caffe_like",
    "convert_tflite_like",
    "FoldConstants",
    "FuseConvActivation",
    "FuseConvBatchNorm",
    "Pass",
    "PassManager",
    "RemoveIdentity",
    "ReplaceOps",
    "default_passes",
    "optimize",
    "CalibrationResult",
    "calibrate",
    "quantize_model",
    "weight_bytes",
]
