"""Float16 weight compression.

Stores all floating-point constants as fp16 (halving the model file) while
computing in fp32: the runner path upcasts on first touch.  This is the
"fp16 model" option every mobile engine (MNN included) ships.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..ir.graph import Graph
from ..ir.ops import Op
from ..ir.serialization import dumps, loads
from ..ir.tensor import DataType, TensorDesc

__all__ = ["convert_to_fp16", "fp16_savings"]


def convert_to_fp16(graph: Graph) -> Graph:
    """Return a copy of ``graph`` with float32 constants stored as fp16.

    Constants feeding ``BatchNorm`` keep fp32 (variance epsilon arithmetic
    is precision-sensitive); everything else is halved.
    """
    converted = loads(dumps(graph))
    keep_fp32 = set()
    for node in converted.nodes:
        if node.op_type == Op.BATCH_NORM:
            keep_fp32.update(node.inputs[1:])
    for name, value in converted.constants.items():
        if name in keep_fp32 or value.dtype != np.float32:
            continue
        half = value.astype(np.float16)
        converted.constants[name] = half
        converted.tensor_descs[name] = TensorDesc(name, value.shape, DataType.FLOAT16)
    return converted


def fp16_savings(graph: Graph, converted: Graph) -> Tuple[int, int]:
    """(original bytes, fp16 bytes) over all constants."""
    before = sum(v.nbytes for v in graph.constants.values())
    after = sum(v.nbytes for v in converted.constants.values())
    return before, after
