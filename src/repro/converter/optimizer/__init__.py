"""Graph optimization passes for the offline converter."""

from .passes import (
    FoldConstants,
    FuseConvActivation,
    FuseConvBatchNorm,
    Pass,
    PassManager,
    PassResult,
    RemoveIdentity,
    ReplaceOps,
    default_passes,
    optimize,
)

__all__ = [
    "FoldConstants",
    "FuseConvActivation",
    "FuseConvBatchNorm",
    "Pass",
    "PassManager",
    "PassResult",
    "RemoveIdentity",
    "ReplaceOps",
    "default_passes",
    "optimize",
]
