"""Offline graph optimizer: the converter's rewrite passes (paper Figure 2).

The converter performs "basic graph optimizations, such as operator fusion,
replacement, and model quantization".  This module implements the pass
manager and the structural passes:

* ``FoldConstants``      — evaluate nodes whose inputs are all constant;
* ``FuseConvBatchNorm``  — fold BatchNorm (and Scale) into conv weights;
* ``FuseConvActivation`` — absorb ReLU/ReLU6 into the conv's fused activation;
* ``RemoveIdentity``     — drop Dropout/Identity nodes and rewire;
* ``ReplaceOps``         — operator replacement (ReduceMean(2,3) -> GlobalAvgPool,
                           Flatten-like Reshape -> Flatten).

Quantization lives in :mod:`repro.converter.quantize`.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...ir.graph import Graph, GraphError, Node
from ...ir.ops import Op
from ...ir.shape_inference import infer_shapes
from ...obs.metrics import get_metrics
from ...obs.tracer import Tracer, get_tracer

__all__ = [
    "Pass",
    "PassResult",
    "PassManager",
    "FoldConstants",
    "FuseConvBatchNorm",
    "FuseConvActivation",
    "RemoveIdentity",
    "ReplaceOps",
    "optimize",
    "default_passes",
]


@dataclass
class PassResult:
    """Outcome of one pass application."""

    changed: int = 0

    def __bool__(self) -> bool:
        return self.changed > 0


class Pass(abc.ABC):
    """A graph-to-graph rewrite; mutates in place and reports changes."""

    name = "pass"

    @abc.abstractmethod
    def run(self, graph: Graph) -> PassResult:
        ...


def _remove_node(graph: Graph, node: Node, replacement: str) -> None:
    """Delete ``node``, rewiring consumers of its output to ``replacement``."""
    out = node.outputs[0]
    for other in graph.nodes:
        if other is node:
            continue
        other.inputs = [replacement if name == out else name for name in other.inputs]
    graph.outputs = [replacement if name == out else name for name in graph.outputs]
    graph.nodes.remove(node)
    graph.tensor_descs.pop(out, None)


class FoldConstants(Pass):
    """Evaluate nodes whose inputs are all constants at conversion time."""

    name = "fold-constants"

    def run(self, graph: Graph) -> PassResult:
        from ...backends.op_runners import build_runner

        result = PassResult()
        for node in list(graph.nodes):
            if node.op_type in (Op.INPUT, Op.CONSTANT):
                continue
            if not node.inputs or not all(name in graph.constants for name in node.inputs):
                continue
            runner = build_runner(node, graph)
            values = runner.fn([])
            graph.nodes.remove(node)
            for name, value in zip(node.outputs, values):
                graph.tensor_descs.pop(name, None)
                graph.add_constant(name, np.asarray(value))
            result.changed += 1
        return result


class FuseConvBatchNorm(Pass):
    """Fold BatchNorm/Scale into the preceding convolution's weights.

    BN(conv(x, W) + b) == conv(x, W') + b' with ``W' = W * s`` and
    ``b' = (b - mean) * s + beta`` where ``s = gamma / sqrt(var + eps)``.
    Only fuses when the conv output has a single consumer.
    """

    name = "fuse-conv-bn"

    def run(self, graph: Graph) -> PassResult:
        result = PassResult()
        consumers = graph.consumer_map()
        producers = graph.producer_map()
        for bn in list(graph.nodes):
            if bn.op_type not in (Op.BATCH_NORM, Op.SCALE):
                continue
            conv = producers.get(bn.inputs[0])
            if conv is None or conv.op_type not in (Op.CONV2D, Op.DEPTHWISE_CONV2D):
                continue
            if len(consumers.get(conv.outputs[0], [])) != 1:
                continue
            if not all(name in graph.constants for name in bn.inputs[1:]):
                continue
            if bn.op_type == Op.BATCH_NORM:
                gamma, beta, mean, var = (graph.constants[n] for n in bn.inputs[1:5])
                s = gamma / np.sqrt(var + float(bn.attrs["epsilon"]))
                shift = beta - mean * s
            else:  # Scale
                s = graph.constants[bn.inputs[1]]
                shift = (
                    graph.constants[bn.inputs[2]]
                    if len(bn.inputs) > 2
                    else np.zeros_like(s)
                )
            weights_name = conv.inputs[1]
            weights = graph.constants[weights_name]
            if conv.op_type == Op.CONV2D:
                scaled = weights * s.reshape(-1, 1, 1, 1)
            else:  # depthwise: weights are (C, 1, kh, kw)
                scaled = weights * s.reshape(-1, 1, 1, 1)
            graph.constants[weights_name] = scaled.astype(weights.dtype)
            if len(conv.inputs) > 2:
                bias_name = conv.inputs[2]
                bias = graph.constants[bias_name]
                graph.constants[bias_name] = ((bias - 0.0) * s + shift).astype(bias.dtype)
            else:
                bias_name = f"{conv.name}_fused_bias"
                graph.add_constant(bias_name, shift.astype(weights.dtype))
                conv.inputs.append(bias_name)
                conv.attrs["has_bias"] = True
            _remove_node(graph, bn, conv.outputs[0])
            consumers = graph.consumer_map()
            producers = graph.producer_map()
            result.changed += 1
        return result


class FuseConvActivation(Pass):
    """Absorb a following ReLU/ReLU6 into the conv's fused activation."""

    name = "fuse-conv-activation"

    _FUSABLE = {Op.RELU: "relu", Op.RELU6: "relu6"}

    def run(self, graph: Graph) -> PassResult:
        result = PassResult()
        consumers = graph.consumer_map()
        producers = graph.producer_map()
        for act in list(graph.nodes):
            fused_kind = self._FUSABLE.get(act.op_type)
            if fused_kind is None:
                continue
            conv = producers.get(act.inputs[0])
            if conv is None or conv.op_type not in (Op.CONV2D, Op.DEPTHWISE_CONV2D):
                continue
            if conv.attrs.get("activation") is not None:
                continue
            if len(consumers.get(conv.outputs[0], [])) != 1:
                continue
            conv.attrs["activation"] = fused_kind
            _remove_node(graph, act, conv.outputs[0])
            consumers = graph.consumer_map()
            producers = graph.producer_map()
            result.changed += 1
        return result


class RemoveIdentity(Pass):
    """Drop inference-time no-ops (Dropout, Identity)."""

    name = "remove-identity"

    def run(self, graph: Graph) -> PassResult:
        result = PassResult()
        for node in list(graph.nodes):
            if node.op_type not in (Op.DROPOUT, Op.IDENTITY):
                continue
            _remove_node(graph, node, node.inputs[0])
            result.changed += 1
        return result


class ReplaceOps(Pass):
    """Operator replacement rules.

    * ``ReduceMean(axes=(2,3), keepdims)`` -> ``GlobalAvgPool`` (+ reshape
      handled by keepdims semantics matching);
    * ``AvgPool`` covering the whole feature map -> ``GlobalAvgPool``.
    """

    name = "replace-ops"

    def run(self, graph: Graph) -> PassResult:
        result = PassResult()
        for node in graph.nodes:
            if node.op_type == Op.REDUCE_MEAN:
                axes = tuple(sorted(a % 4 for a in node.attrs["axes"]))
                if axes == (2, 3) and node.attrs["keepdims"]:
                    node.op_type = Op.GLOBAL_AVG_POOL
                    node.attrs = {}
                    result.changed += 1
            elif node.op_type == Op.AVG_POOL:
                in_desc = graph.tensor_descs.get(node.inputs[0])
                if in_desc is None or in_desc.rank != 4:
                    continue
                if (
                    tuple(node.attrs["kernel"]) == tuple(in_desc.shape[2:])
                    and tuple(node.attrs["pad"]) == (0, 0, 0, 0)
                    and node.attrs["pad_mode"] in ("explicit", "valid")
                ):
                    node.op_type = Op.GLOBAL_AVG_POOL
                    node.attrs = {}
                    result.changed += 1
        return result


def default_passes() -> List[Pass]:
    """The converter's standard pipeline, in application order."""
    return [
        RemoveIdentity(),
        FoldConstants(),
        ReplaceOps(),
        FuseConvBatchNorm(),
        FuseConvActivation(),
    ]


class PassManager:
    """Applies passes to fixpoint (bounded), re-inferring shapes after.

    Every pass application is traced (``"pass:<name>"`` spans in the
    ``optimizer`` category, carrying round index and change count) and its
    latency lands in the ``optimizer.pass_ms`` histogram of the process
    metrics registry — so ``cli trace`` over an unoptimized model shows
    the converter's cost next to pre-inference's.
    """

    def __init__(
        self,
        passes: Optional[Sequence[Pass]] = None,
        max_rounds: int = 4,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.passes = list(passes) if passes is not None else default_passes()
        self.max_rounds = max_rounds
        self.tracer = tracer
        self.log: List[str] = []

    def _apply(self, p: Pass, graph: Graph, round_idx: int) -> PassResult:
        """Run one pass with span + metrics accounting."""
        tracer = self.tracer if self.tracer is not None else get_tracer()
        start = time.perf_counter()
        result = p.run(graph)
        end = time.perf_counter()
        tracer.record(
            f"pass:{p.name}", "optimizer", start, end,
            round=round_idx, changed=result.changed,
        )
        metrics = get_metrics()
        metrics.histogram("optimizer.pass_ms").observe((end - start) * 1000.0)
        if result.changed:
            metrics.counter(f"optimizer.changed.{p.name}").inc(result.changed)
        return result

    def run(self, graph: Graph) -> Graph:
        tracer = self.tracer if self.tracer is not None else get_tracer()
        with tracer.span("optimizer", "optimizer", graph=graph.name):
            for round_idx in range(self.max_rounds):
                changed = 0
                for p in self.passes:
                    result = self._apply(p, graph, round_idx)
                    if result:
                        self.log.append(
                            f"round {round_idx}: {p.name} changed {result.changed}"
                        )
                    changed += result.changed
                if not changed:
                    break
            graph.validate()
            with tracer.span("shape_inference", "optimizer"):
                infer_shapes(graph)
        return graph


def optimize(
    graph: Graph,
    passes: Optional[Sequence[Pass]] = None,
    verify: bool = False,
    atol: float = 5e-2,
) -> Graph:
    """Run the default (or given) optimization pipeline on ``graph``.

    Args:
        passes: pass pipeline override (default: :func:`default_passes`).
        verify: re-check structure, shapes and numerical equivalence after
            every pass via :class:`repro.analysis.VerifyingPassManager`;
            a broken pass raises
            :class:`repro.analysis.PassVerificationError` naming it.
        atol: numerical tolerance for ``verify=True`` spot-checks.
    """
    if verify:
        from ...analysis.verify_passes import VerifyingPassManager

        return VerifyingPassManager(passes, atol=atol).run(graph)
    return PassManager(passes).run(graph)
