"""Baseline engines: the design paradigms the paper compares against."""

from .profiles import SIMD_LANES, ConvPattern, ENGINES, EngineProfile, get_engine
from .casebycase import CoverageReport, analyze_kernel_coverage
from .tvm_like import (
    AutoSearchEngine,
    TuningCostModel,
    unique_conv_workloads,
)

__all__ = [
    "SIMD_LANES",
    "ConvPattern",
    "ENGINES",
    "EngineProfile",
    "get_engine",
    "CoverageReport",
    "analyze_kernel_coverage",
    "AutoSearchEngine",
    "TuningCostModel",
    "unique_conv_workloads",
]
