"""Manual-search (NCNN/MACE-style) engine: kernel-table coverage analysis.

The paper's Figure 8 shows the failure mode of case-by-case optimization:
Inception-v3's 1x7 and 7x1 convolutions have no hand-written kernel in
NCNN, fall back to a naive path, and dominate the runtime.  This module
makes that analysis a first-class object: which ops hit the fast table,
which fall through, and what share of compute the fallbacks carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.cost import node_muls
from ..ir.graph import Graph, Node
from ..ir.ops import Op
from .profiles import EngineProfile

__all__ = ["CoverageReport", "analyze_kernel_coverage"]


@dataclass
class CoverageReport:
    """How a manual engine's kernel table covers one graph."""

    engine: str
    optimized_convs: List[str] = field(default_factory=list)
    fallback_convs: List[str] = field(default_factory=list)
    optimized_muls: int = 0
    fallback_muls: int = 0
    fallback_kernels: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of convolutions with a hand-written kernel."""
        total = len(self.optimized_convs) + len(self.fallback_convs)
        return len(self.optimized_convs) / total if total else 1.0

    @property
    def fallback_mul_share(self) -> float:
        """Fraction of conv compute stuck on the naive path."""
        total = self.optimized_muls + self.fallback_muls
        return self.fallback_muls / total if total else 0.0


def analyze_kernel_coverage(graph: Graph, profile: EngineProfile) -> CoverageReport:
    """Classify every convolution by whether ``profile`` hand-optimizes it."""
    report = CoverageReport(engine=profile.name)
    for node in graph.nodes:
        if node.op_type != Op.CONV2D:
            continue
        kernel = tuple(node.attrs["kernel"])
        muls = node_muls(node, graph)
        if profile.conv_is_optimized(
            kernel, tuple(node.attrs["stride"]), tuple(node.attrs["dilation"])
        ):
            report.optimized_convs.append(node.name)
            report.optimized_muls += muls
        else:
            report.fallback_convs.append(node.name)
            report.fallback_muls += muls
            report.fallback_kernels[kernel] = report.fallback_kernels.get(kernel, 0) + 1
    return report
