"""Automated-search (TVM-style) deployment cost model.

The paper's Table 5 measures what the automated-search paradigm costs at
deployment time: per-model auto-tuning and compilation, repeated for every
(model, device) pair, producing a *model-specific* runtime artifact.

We model the mechanism: auto-tuning measures ``trials`` schedule candidates
on-device for every unique convolution workload in the graph, each
measurement costing a roughly constant wall time; compilation lowers every
op once.  Constants are fitted to Table 5 (ResNet-18 on Galaxy S8:
355/1477/4583 s at 1/10/30 trials; compile ~40 s) and documented here —
the *scaling law* (linear in trials x workloads) is the claim under test,
and it transfers to the other networks via their true workload counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..ir.graph import Graph
from ..ir.ops import Op

__all__ = ["TuningCostModel", "AutoSearchEngine", "unique_conv_workloads"]

#: Seconds to benchmark one schedule candidate on-device (flash + run + read).
T_MEASURE_S = 12.15
#: Per-workload tuner setup cost (search-space construction, first flash).
T_SETUP_S = 17.4
#: Base compile cost and per-trial increment (Table 5's compile column).
T_COMPILE_BASE_S = 39.5
T_COMPILE_PER_TRIAL_S = 0.05


def unique_conv_workloads(graph: Graph) -> FrozenSet[Tuple]:
    """The distinct convolution workloads a tuner must optimize.

    A workload is (op, in-shape, kernel, stride, dilation, groups, out-ch) —
    two convs sharing all of these reuse one tuned schedule.
    """
    workloads = set()
    for node in graph.nodes:
        if node.op_type not in (Op.CONV2D, Op.DEPTHWISE_CONV2D):
            continue
        x = graph.desc(node.inputs[0])
        y = graph.desc(node.outputs[0])
        workloads.add(
            (
                node.op_type,
                x.shape,
                tuple(node.attrs["kernel"]),
                tuple(node.attrs["stride"]),
                tuple(node.attrs["dilation"]),
                int(node.attrs["groups"]),
                y.shape[1],
            )
        )
    return frozenset(workloads)


@dataclass
class TuningCostModel:
    """Deployment-time cost of the automated-search paradigm."""

    t_measure_s: float = T_MEASURE_S
    t_setup_s: float = T_SETUP_S
    t_compile_base_s: float = T_COMPILE_BASE_S
    t_compile_per_trial_s: float = T_COMPILE_PER_TRIAL_S

    def tuning_seconds(self, graph: Graph, trials: int) -> float:
        """Wall time to auto-tune ``graph`` with ``trials`` per workload."""
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        n = len(unique_conv_workloads(graph))
        return n * (self.t_setup_s + trials * self.t_measure_s)

    def compile_seconds(self, graph: Graph, trials: int) -> float:
        """Wall time to compile the tuned model into a runtime library."""
        return self.t_compile_base_s + trials * self.t_compile_per_trial_s


@dataclass
class Artifact:
    """A compiled, model-specific runtime library (what TVM emits)."""

    model_name: str
    device_name: str
    trials: int
    workloads: int


class AutoSearchEngine:
    """TVM-style engine: must tune+compile per (model, device) before running.

    Captures the paper's deployment-cost argument: the artifact registry is
    keyed by (model, device), so shipping M models to D device types costs
    M x D tuning runs, and *updating a model invalidates its artifacts*.
    """

    def __init__(self, cost_model: TuningCostModel | None = None) -> None:
        self.cost_model = cost_model or TuningCostModel()
        self.artifacts: Dict[Tuple[str, str], Artifact] = {}
        self.total_tuning_seconds = 0.0

    def deploy(self, graph: Graph, device_name: str, trials: int = 10) -> Artifact:
        """Tune + compile ``graph`` for one device; returns the artifact."""
        seconds = self.cost_model.tuning_seconds(graph, trials)
        seconds += self.cost_model.compile_seconds(graph, trials)
        self.total_tuning_seconds += seconds
        artifact = Artifact(
            model_name=graph.name,
            device_name=device_name,
            trials=trials,
            workloads=len(unique_conv_workloads(graph)),
        )
        self.artifacts[(graph.name, device_name)] = artifact
        return artifact

    def can_run(self, graph: Graph, device_name: str) -> bool:
        """An automated-search engine only runs models it has compiled."""
        return (graph.name, device_name) in self.artifacts

    def invalidate_model(self, model_name: str) -> int:
        """A model update drops every device artifact (the re-release cost)."""
        stale = [key for key in self.artifacts if key[0] == model_name]
        for key in stale:
            del self.artifacts[key]
        return len(stale)
