"""Engine profiles: the design paradigms the paper compares (Figure 6).

Each competitor is modeled by *how it decides what code runs* — that is the
paper's actual comparison axis — rather than by hard-coding its published
numbers:

* **manual search** (NCNN, MACE): a fixed table of hand-written kernels for
  common conv configurations; anything outside the table hits a naive
  fallback that is two orders of magnitude slower (Figure 8's bottleneck).
* **library** (TF-Lite, CoreML): general BLAS-style kernels; every op runs,
  none at hand-tuned efficiency, plus per-op framework dispatch overhead.
* **automated search** (TVM): near-hand-tuned efficiency on every op, but
  only after a per-model tuning+compile step (Table 5's deployment cost).
* **semi-automated search** (MNN): runtime scheme selection over the shared
  micro-kernel — this profile's algorithm choice is delegated to the real
  :mod:`repro.core.schemes` selector.

``simd_lanes`` converts the paper's frequency-sum FLOPS index into MACs
(one NEON FMA retires 4 MACs/cycle); ``*_efficiency`` is the fraction of
that peak an engine's kernels achieve.  Efficiencies are calibrated once,
globally (EXPERIMENTS.md) — per-network numbers then *emerge* from each
graph's op mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..ir.ops import Op

__all__ = ["ConvPattern", "EngineProfile", "ENGINES", "get_engine"]

#: MACs retired per cycle per "frequency unit" (128-bit NEON FMA).
SIMD_LANES = 4


@dataclass(frozen=True)
class ConvPattern:
    """A convolution configuration a manual engine hand-optimizes.

    ``kernel`` is (kh, kw); ``stride``/``dilation`` of ``None`` match any.
    """

    kernel: Tuple[int, int]
    stride: Optional[Tuple[int, int]] = None
    dilation: Tuple[int, int] = (1, 1)

    def matches(self, kernel, stride, dilation) -> bool:
        if tuple(kernel) != self.kernel:
            return False
        if self.stride is not None and tuple(stride) != self.stride:
            return False
        return tuple(dilation) == self.dilation


#: The kernel tables real manual-search engines ship (case-by-case ARM
#: assembly): 1x1, 3x3 (s1/s2), 5x5, 7x7 — but NOT 1x7/7x1 or dilated
#: convolutions, which is what Figure 8 exploits.
_MANUAL_KERNEL_TABLE = frozenset(
    [
        ConvPattern((1, 1)),
        ConvPattern((3, 3), (1, 1)),
        ConvPattern((3, 3), (2, 2)),
        ConvPattern((5, 5), (1, 1)),
        ConvPattern((5, 5), (2, 2)),
        ConvPattern((7, 7), (2, 2)),
    ]
)


@dataclass(frozen=True)
class EngineProfile:
    """Performance model of one inference engine.

    Attributes:
        name: display name.
        paradigm: ``manual`` | ``library`` | ``auto`` | ``semi-auto``.
        cpu_efficiency: fraction of peak (FLOPS x SIMD_LANES) achieved by
            the engine's optimized CPU kernels.
        fallback_efficiency: efficiency of the naive path taken when a
            manual engine lacks a kernel (irrelevant for other paradigms).
        gpu_efficiency: achieved fraction of the Appendix-C GPU FLOPS,
            per API; an API missing here is unsupported by the engine.
        kernel_table: conv configs with hand-written kernels (manual only;
            ``None`` = every config is optimized).
        scheme_search: delegate algorithm choice to MNN's pre-inference
            selector (the semi-automated paradigm).
        winograd_fixed_n: engines with a hard-coded Winograd (e.g. NCNN's
            F(4x4, 3x3)) get its MUL reduction on matching convs only.
        uses_strassen: large-GEMM Strassen acceleration (MNN only, 3.3.2).
        fuses_elementwise: BN/activation fused into convs (skips their
            memory pass).
        per_op_overhead_ms: framework dispatch cost per operator.
        os_support: which OSes the engine ships on.
    """

    name: str
    paradigm: str
    cpu_efficiency: float
    fallback_efficiency: float = 0.015
    gpu_efficiency: Dict[str, float] = field(default_factory=dict)
    kernel_table: Optional[FrozenSet[ConvPattern]] = None
    scheme_search: bool = False
    winograd_fixed_n: Optional[int] = None
    uses_strassen: bool = False
    fuses_elementwise: bool = True
    per_op_overhead_ms: float = 0.0
    os_support: Tuple[str, ...] = ("ios", "android")
    #: per-OS overrides of cpu_efficiency (e.g. 2019-era TF-Lite shipped
    #: well-tuned iOS kernels but slow generic Android ones).
    cpu_efficiency_by_os: Dict[str, float] = field(default_factory=dict)
    #: efficiency of the engine's depthwise-conv kernels when they differ
    #: from the dense ones (TF-Lite's Android depthwise path was notorious).
    depthwise_efficiency_by_os: Dict[str, float] = field(default_factory=dict)

    def conv_is_optimized(self, kernel, stride, dilation) -> bool:
        """Whether a conv config has a fast path in this engine."""
        if self.kernel_table is None:
            return True
        return any(p.matches(kernel, stride, dilation) for p in self.kernel_table)

    def cpu_eff(self, os: str) -> float:
        return self.cpu_efficiency_by_os.get(os, self.cpu_efficiency)

    def depthwise_eff(self, os: str) -> float:
        return self.depthwise_efficiency_by_os.get(os, self.cpu_eff(os))

    def supports_os(self, os: str) -> bool:
        return os in self.os_support


ENGINES: Dict[str, EngineProfile] = {
    "MNN": EngineProfile(
        name="MNN",
        paradigm="semi-auto",
        cpu_efficiency=0.60,
        gpu_efficiency={"metal": 0.50, "opencl": 0.42, "opengl": 0.40, "vulkan": 0.45},
        scheme_search=True,
        uses_strassen=True,
        fuses_elementwise=True,
    ),
    "NCNN": EngineProfile(
        name="NCNN",
        paradigm="manual",
        cpu_efficiency=0.50,
        fallback_efficiency=0.012,  # scalar naive loop (Figure 8's cliff)
        gpu_efficiency={"vulkan": 0.28},
        kernel_table=_MANUAL_KERNEL_TABLE,
        winograd_fixed_n=4,  # NCNN hardcodes F(4x4, 3x3) transforms
        fuses_elementwise=True,
    ),
    "MACE": EngineProfile(
        name="MACE",
        paradigm="manual",
        cpu_efficiency=0.48,
        fallback_efficiency=0.10,  # generic (vectorized but untuned) fallback
        gpu_efficiency={"opencl": 0.36},
        kernel_table=_MANUAL_KERNEL_TABLE,
        winograd_fixed_n=2,
        fuses_elementwise=True,
        os_support=("android",),
    ),
    "TF-Lite": EngineProfile(
        name="TF-Lite",
        paradigm="library",
        cpu_efficiency=0.42,
        cpu_efficiency_by_os={"ios": 0.55, "android": 0.22},
        depthwise_efficiency_by_os={"android": 0.06},  # pre-XNNPACK dw path
        gpu_efficiency={"metal": 0.30, "opengl": 0.18},
        fuses_elementwise=False,  # interpreter executes BN/ReLU as ops
        per_op_overhead_ms=0.01,
    ),
    "CoreML": EngineProfile(
        name="CoreML",
        paradigm="library",
        cpu_efficiency=0.55,
        gpu_efficiency={"metal": 0.55},  # Apple's own Metal stack wins on iOS
        fuses_elementwise=True,
        per_op_overhead_ms=0.005,
        os_support=("ios",),
    ),
    "TVM": EngineProfile(
        name="TVM",
        paradigm="auto",
        cpu_efficiency=0.52,  # auto-tuned: close to, not quite, hand-tuned
        gpu_efficiency={"opencl": 0.40},
        winograd_fixed_n=2,
        fuses_elementwise=True,
    ),
}


def get_engine(name: str) -> EngineProfile:
    """Look up an engine profile by name.

    Raises:
        KeyError: listing known engines.
    """
    try:
        return ENGINES[name]
    except KeyError:
        raise KeyError(f"unknown engine {name!r}; known: {sorted(ENGINES)}") from None
