"""repro.quant: the int8 quantized inference subsystem.

One package threading a second dtype through every layer of the engine
(grounded in MNN's quantized kernels sharing the fp packed-layout
substrate, and MNN-LLM's int8 weights + quantized KV cache):

* :mod:`repro.quant.convert` — converter-time per-channel symmetric int8
  weight quantization (:func:`quantize_graph`) stamping scale metadata
  into node attrs, plus :func:`quantization_fingerprint`, the per-tensor
  dtype/scale digest the pre-inference cache keys on.
* :mod:`repro.quant.kv` — the deterministic KV-cache codec: per-row
  symmetric int8 quantize/dequantize used by the dequant-on-read
  quantized KV mode (``GenerationConfig(kv_dtype="int8")``).
* :mod:`repro.quant.accuracy` — the max-abs-error accuracy contract vs
  the fp kernels, asserted in tests and recorded in BENCH trajectories.

The int8 GEMM micro-kernels themselves live beside the fp kernels in
:mod:`repro.kernels.qgemm`; the Q0xx lint rules and the int8 slab-extent
memcheck live in :mod:`repro.analysis` — this package holds the
conversion, codec and contract pieces that tie them together.
"""

from .accuracy import max_abs_error
from .convert import quantization_fingerprint, quantize_graph
from .kv import (
    KV_DTYPES,
    dequantize_rows,
    kv_itemsize,
    quantize_rows,
)

__all__ = [
    "KV_DTYPES",
    "dequantize_rows",
    "kv_itemsize",
    "max_abs_error",
    "quantization_fingerprint",
    "quantize_graph",
    "quantize_rows",
]
