"""Converter-time weight quantization and the quantization fingerprint.

:func:`quantize_graph` is the one entry point for producing an int8
model: per-channel symmetric weight quantization for ``MatMul`` (the
decoder/GEMM path — weight-only, activations are quantized dynamically
per row inside :mod:`repro.kernels.qgemm`) and, when calibration feeds
are supplied, for ``Conv2D``/``FullyConnected`` (which need a static
activation scale).  Scale metadata is stamped into node attrs
(``weight_scales``, and ``input_scale`` for the calibrated ops) and the
result is pushed through a full serialization round-trip, so every
quantized graph is by construction one the RMNN format can persist and
reload losslessly.

:func:`quantization_fingerprint` summarizes exactly the facts that make
a quantized graph a *different computation* from its fp twin — every
tensor's dtype plus a digest of all scale metadata — and is folded into
the pre-inference cache key so the two variants can never collide.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..ir.graph import Graph, GraphError
from ..ir.ops import Op
from ..ir.serialization import dumps, loads
from ..ir.tensor import DataType, TensorDesc

__all__ = ["quantize_graph", "quantization_fingerprint"]


def _quantize_matmul_weights(graph: Graph) -> int:
    """Quantize every eligible 2-D MatMul weight constant in place.

    Eligible means: a rank-2 float constant consumed *only* by MatMul
    nodes that agree on ``transpose_b`` (the output-channel axis must be
    unambiguous).  Scales are per output channel; every consumer gets
    the same ``weight_scales`` attr.
    """
    matmul_consumers: Dict[str, List] = {}
    other_consumers = set()
    for node in graph.nodes:
        for i, name in enumerate(node.inputs):
            if name not in graph.constants:
                continue
            if node.op_type == Op.MATMUL and i == 1:
                matmul_consumers.setdefault(name, []).append(node)
            else:
                other_consumers.add(name)

    count = 0
    for wname, nodes in matmul_consumers.items():
        if wname in other_consumers:
            continue  # shared with a non-GEMM consumer: stays float
        weights = graph.constants[wname]
        if weights.ndim != 2 or weights.dtype == np.int8:
            continue
        if not np.issubdtype(weights.dtype, np.floating):
            continue
        transposes = {bool(n.attrs.get("transpose_b", False)) for n in nodes}
        if len(transposes) != 1:
            continue  # ambiguous output-channel axis
        out_axis = 0 if transposes.pop() else 1
        in_axis = 1 - out_axis
        max_abs = np.abs(weights).max(axis=in_axis)
        scales = np.where(max_abs > 0, max_abs / 127.0, 1.0).astype(np.float32)
        shape = [1, 1]
        shape[out_axis] = scales.shape[0]
        q = np.clip(
            np.rint(weights / scales.reshape(shape)), -127, 127
        ).astype(np.int8)
        graph.constants[wname] = q
        desc = graph.tensor_descs[wname]
        graph.tensor_descs[wname] = TensorDesc(wname, desc.shape, DataType.INT8)
        scale_list = [float(s) for s in scales]
        for node in nodes:
            node.attrs["weight_scales"] = scale_list
        count += 1
    return count


def _quantize_calibrated(graph: Graph, original: Graph,
                         feeds_batches: Sequence[Dict[str, np.ndarray]]) -> int:
    """Conv2D/FullyConnected weight quantization (needs activation scales)."""
    from ..converter.quantize import calibrate
    from ..kernels.quantized import quantize_weights_per_channel

    calibration = calibrate(original, feeds_batches)
    count = 0
    for node in graph.nodes:
        if node.op_type not in (Op.CONV2D, Op.FULLY_CONNECTED):
            continue
        weights_name = node.inputs[1]
        weights = graph.constants.get(weights_name)
        if weights is None or weights.dtype == np.int8:
            continue
        if node.op_type == Op.CONV2D:
            wq, w_scales = quantize_weights_per_channel(weights)
        else:
            wq4, w_scales = quantize_weights_per_channel(
                weights.reshape(weights.shape[0], weights.shape[1], 1, 1)
            )
            wq = wq4.reshape(weights.shape)
        graph.constants[weights_name] = wq
        desc = graph.tensor_descs[weights_name]
        graph.tensor_descs[weights_name] = TensorDesc(
            weights_name, desc.shape, DataType.INT8
        )
        node.attrs["input_scale"] = calibration.scale_for(node.inputs[0])
        node.attrs["weight_scales"] = [float(s) for s in w_scales]
        count += 1
    return count


def quantize_graph(
    graph: Graph,
    feeds_batches: Optional[Sequence[Dict[str, np.ndarray]]] = None,
) -> Graph:
    """Per-channel symmetric int8 weight quantization (original untouched).

    MatMul weights are always quantized (their activations quantize
    dynamically at run time, so no calibration is needed); Conv2D and
    FullyConnected weights are quantized only when ``feeds_batches``
    supplies calibration data for their static ``input_scale``.

    Returns a **serialization round-tripped** copy: the quantized graph
    you get back has been through :func:`repro.ir.dumps` /
    :func:`repro.ir.loads`, proving the int8 constants and scale attrs
    survive the model format.

    Raises:
        GraphError: nothing in the graph was quantizable.
    """
    quantized = loads(dumps(graph))  # deep copy through the model format
    count = _quantize_matmul_weights(quantized)
    if feeds_batches:
        count += _quantize_calibrated(quantized, graph, feeds_batches)
    if count == 0:
        raise GraphError(
            "graph contains no quantizable weights (2-D MatMul constants, "
            "or Conv2D/FullyConnected with calibration feeds)"
        )
    return loads(dumps(quantized))  # the round-trip is part of the contract


def quantization_fingerprint(graph: Graph) -> Dict[str, Any]:
    """Digest of everything that distinguishes a quantized graph variant.

    Two components:

    * ``dtypes`` — every tensor's dtype, explicitly (a quantized and an
      fp variant of the same topology differ here by construction);
    * ``scales`` — a sha256 over all per-node scale metadata
      (``input_scale`` / ``weight_scales``), so even two int8 variants
      quantized with different calibration never collide.

    The pre-inference cache folds this into its key payload.
    """
    dtypes = {
        name: desc.dtype.value
        for name, desc in sorted(graph.tensor_descs.items())
    }
    h = hashlib.sha256()
    for node in graph.nodes:
        input_scale = node.attrs.get("input_scale")
        weight_scales = node.attrs.get("weight_scales")
        if input_scale is None and weight_scales is None:
            continue
        h.update(json.dumps(
            [node.name, input_scale,
             list(weight_scales) if weight_scales is not None else None],
            separators=(",", ":"), sort_keys=True,
        ).encode())
    return {"dtypes": dtypes, "scales": h.hexdigest()}
