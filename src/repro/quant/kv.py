"""The quantized KV-cache codec: deterministic per-row symmetric int8.

The quantized KV mode stores K/V rows as int8 payload plus one float32
scale per (layer, k|v, token row).  The scale granularity is the *row*,
not the page, for one load-bearing reason: a row's quantized bytes must
be a pure function of that row's float content alone.  Coarser scales
(per page, per slab) make the stored bytes depend on *write history* —
which rows happened to land in the same page first — and that breaks
the engine's path-invariance contracts: copy-on-write prefix sharing,
preemption replay and the chaos storm all compare token streams across
different allocation histories and expect them equal.

Determinism: ``np.rint`` (round-half-to-even) over a float32 scale that
is itself stored and re-read as float32, so quantize and dequantize see
bit-identical scale values on every path (write, grow-copy, COW
materialize, replay).

A row of zeros gets scale 0.0 — the "unwritten" sentinel — and
dequantizes to exact zeros, which is also what an unwritten row reads
as.  That coincidence is sound: the decode kernels mask by ``lengths``,
so rows at or past a sequence's length are never attended.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["KV_DTYPES", "kv_itemsize", "quantize_rows", "dequantize_rows"]

#: KV-cache storage dtypes the allocator accepts.
KV_DTYPES = ("float32", "int8")

_ITEMSIZE = {"float32": 4, "int8": 1}


def kv_itemsize(kv_dtype: str) -> int:
    """Payload bytes per stored K/V element for ``kv_dtype``.

    Raises:
        ValueError: for a dtype outside :data:`KV_DTYPES`.
    """
    try:
        return _ITEMSIZE[kv_dtype]
    except KeyError:
        raise ValueError(
            f"unsupported kv_dtype {kv_dtype!r}; expected one of {KV_DTYPES}"
        ) from None


def quantize_rows(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row symmetric int8 quantization of K/V rows.

    Args:
        values: ``(heads, rows, d_head)`` float array; axis 1 is the
            token-row axis that owns the scales.

    Returns:
        ``(q, scales)``: int8 payload of the same shape and one float32
        scale per row (``max_abs / 127``; all-zero rows get scale 0.0).
    """
    vals = np.asarray(values, dtype=np.float32)
    if vals.ndim != 3:
        raise ValueError(f"expected (heads, rows, d_head), got shape {vals.shape}")
    max_abs = np.max(np.abs(vals), axis=(0, 2)) if vals.size else np.zeros(
        vals.shape[1], np.float32
    )
    scales = (max_abs / 127.0).astype(np.float32)
    # Quantize with the float32-rounded scale the table will store, so a
    # later dequant multiplies by bit-identically the same value.
    safe = np.where(scales > 0, scales, np.float32(1.0)).astype(np.float32)
    q = np.clip(np.rint(vals / safe.reshape(1, -1, 1)), -127, 127).astype(np.int8)
    return q, scales


def dequantize_rows(q: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_rows`: int8 payload back to float32.

    ``scales`` broadcasts over axis 1 (the token-row axis); scale-0.0
    rows come back as exact zeros.
    """
    return q.astype(np.float32) * np.asarray(scales, np.float32).reshape(1, -1, 1)
