"""The quantized-vs-fp accuracy contract: max-abs-error over real kernels.

Quantization trades bits for bytes; this module makes the trade
measurable and enforceable.  :func:`max_abs_error` runs the reference
(fp) and candidate (quantized) graphs through full sessions — real
prepared kernels, not the reference interpreter — and returns the worst
absolute output divergence.  Tests assert it under a bound;
``benchmarks/bench_quant.py`` records it as a headline metric so the
regression gate catches accuracy drift, not just speed drift.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..ir.graph import Graph

__all__ = ["max_abs_error"]


def max_abs_error(
    reference: Graph,
    candidate: Graph,
    feeds: Dict[str, np.ndarray],
    outputs: Optional[Iterable[str]] = None,
) -> float:
    """Worst absolute divergence between two graphs' outputs on ``feeds``.

    Args:
        reference: the fp graph (ground truth).
        candidate: typically the :func:`repro.quant.quantize_graph` copy.
        feeds: input arrays both graphs accept.
        outputs: output names to compare (default: all shared outputs).

    Raises:
        ValueError: the graphs share no outputs to compare.
    """
    from ..core.session import Session  # late: keep repro.quant import-light

    ref = Session(reference).run(feeds)
    out = Session(candidate).run(feeds)
    names = list(outputs) if outputs is not None else sorted(set(ref) & set(out))
    if not names:
        raise ValueError("graphs share no outputs to compare")
    worst = 0.0
    for name in names:
        a = np.asarray(ref[name], np.float32)
        b = np.asarray(out[name], np.float32)
        if a.shape != b.shape:
            raise ValueError(
                f"output {name!r} shapes diverge: {a.shape} vs {b.shape}"
            )
        if a.size:
            worst = max(worst, float(np.max(np.abs(a - b))))
    return worst
