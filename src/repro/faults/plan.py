"""Deterministic, seedable fault injection (the chaos side of resilience).

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s evaluated at named
**fault points** — fixed injection sites compiled into the engine (see
:data:`FAULT_SITES`).  Each site calls :meth:`FaultPlan.fire` with a
little context; the first matching rule with budget left decides whether
a fault happens and of what kind:

* ``transient`` / ``fatal`` — raise a typed
  :class:`~repro.faults.TransientFault` / :class:`~repro.faults.FatalFault`;
* ``delay``   — sleep ``delay_ms`` (exercises deadlines);
* ``nan``     — return a :class:`Fault` the caller uses to corrupt the
  op's output with non-finite values (exercises the numeric guard);
* ``corrupt`` / ``torn`` — cache-entry corruption: pretend the entry is
  unreadable, or write a truncated entry as if the process died mid-write.

Determinism: every site draws from its own ``random.Random`` seeded with
``(plan seed, site name)``, so the injection sequence at a site is a pure
function of the seed and that site's call order — independent of thread
interleaving *across* sites.  The full sequence is recorded in
:attr:`FaultPlan.log` for replay tests.

Activation: ``SessionConfig(faults=...)`` / ``EngineConfig(faults=...)``
pin a plan per session/engine; otherwise components fall back to the
process-wide plan, which is parsed once from ``$REPRO_FAULTS`` (see
:func:`parse_fault_spec` for the grammar) and defaults to a disabled
no-op — a disabled plan costs one attribute check per guarded site.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import get_metrics
from .errors import FatalFault, TransientFault

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULT_SITES",
    "FAULT_KINDS",
    "Fault",
    "FaultRule",
    "FaultPlan",
    "parse_fault_spec",
    "get_fault_plan",
    "set_fault_plan",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The fault-point catalog: every named injection site compiled into the
#: engine, and what a fault there simulates.
FAULT_SITES: Dict[str, str] = {
    "session.prepare": "pre-inference pipeline failure (exercises resize rollback)",
    "backend.dispatch": "the placed backend rejects the op at dispatch time",
    "kernel.execute": "kernel failure: flaky (transient), broken (fatal), "
                      "slow (delay) or numerically corrupt (nan)",
    "cache.load": "pre-inference cache read: IO error (transient) or "
                  "unreadable entry (corrupt)",
    "cache.store": "pre-inference cache write: IO error (transient) or "
                   "mid-write crash leaving a truncated entry (torn)",
    "pool.checkout": "session-pool checkout failure (transient) or stall (delay)",
    "batch.assemble": "micro-batch assembly/run failure (exercises bisection)",
    "kvcache.alloc": "KV-cache slab allocation failure: flaky arena (transient) "
                     "or hard OOM (fatal, exercises eviction + retry)",
    "worker.crash": "cluster worker process death, decided router-side at "
                    "dispatch: killed before starting (transient) or "
                    "mid-decode (fatal); exercises supervision + replay",
}

FAULT_KINDS: Tuple[str, ...] = ("transient", "fatal", "delay", "nan", "corrupt", "torn")

#: Kinds that raise from ``fire`` itself; the rest are returned to the
#: caller, which applies the corruption (nan/corrupt/torn) or has already
#: been delayed (delay).
_RAISING_KINDS = {"transient", "fatal"}


@dataclass(frozen=True)
class Fault:
    """One fired injection, as seen by the call site."""

    site: str
    kind: str
    seq: int
    delay_ms: float = 0.0


@dataclass
class FaultRule:
    """One line of a fault plan.

    Attributes:
        site: fault-point name; ``fnmatch`` globs allowed (``"cache.*"``).
        kind: one of :data:`FAULT_KINDS`.
        p: probability of firing per eligible evaluation (seeded RNG).
        times: total fire budget; ``None`` is unlimited.
        skip: let this many eligible evaluations pass before arming
            (e.g. ``skip=1`` at ``session.prepare`` spares construction
            and hits the first resize).
        delay_ms: sleep length for ``delay`` faults.
        match: optional exact-match filter on the call-site context
            (value may be a tuple of alternatives), e.g.
            ``{"scheme": ("winograd", "winograd_rect")}``.
    """

    site: str
    kind: str
    p: float = 1.0
    times: Optional[int] = None
    skip: int = 0
    delay_ms: float = 5.0
    match: Optional[Dict[str, object]] = None
    seen: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        plain = not any(ch in self.site for ch in "*?[")
        if plain and self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {sorted(FAULT_SITES)}"
            )

    def matches(self, site: str, ctx: Dict[str, object]) -> bool:
        if not fnmatch.fnmatchcase(site, self.site):
            return False
        if self.match:
            for key, want in self.match.items():
                have = ctx.get(key)
                if isinstance(want, (tuple, list, set, frozenset)):
                    if have not in want:
                        return False
                elif have != want:
                    return False
        return True

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


class FaultPlan:
    """A deterministic schedule of injected faults over the named sites.

    ``FaultPlan()`` (no rules) is the disabled no-op used as the
    process-wide default; guarded sites check :attr:`enabled` and skip
    the machinery entirely.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self.enabled = bool(self.rules)
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {}
        self.log: List[Fault] = []

    def rng_for(self, site: str) -> random.Random:
        """The per-site RNG (``(seed, site)``-derived, creation on demand).

        Also used by resilience handlers for backoff jitter, so retry
        timing is reproducible under a fixed seed.
        """
        with self._lock:
            rng = self._rngs.get(site)
            if rng is None:
                rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
            return rng

    # -- firing --------------------------------------------------------------
    def fire(self, site: str, **ctx) -> Optional[Fault]:
        """Evaluate the plan at ``site``; inject at most one fault.

        Raises:
            TransientFault/FatalFault: for the raising kinds.

        Returns:
            The :class:`Fault` for data-corruption kinds (``nan``,
            ``corrupt``, ``torn``) and for ``delay`` (after sleeping),
            or ``None`` when nothing fired.
        """
        if not self.enabled:
            return None
        with self._lock:
            fault = self._decide(site, ctx)
        if fault is None:
            return None
        if fault.kind == "transient":
            raise TransientFault(site, fault.kind, fault.seq)
        if fault.kind == "fatal":
            raise FatalFault(site, fault.kind, fault.seq)
        if fault.kind == "delay" and fault.delay_ms > 0:
            time.sleep(fault.delay_ms / 1000.0)
        return fault

    def _decide(self, site: str, ctx: Dict[str, object]) -> Optional[Fault]:
        """Pick the firing rule, if any.  Called with the lock held."""
        for index, rule in enumerate(self.rules):
            if rule.exhausted or not rule.matches(site, ctx):
                continue
            rule.seen += 1
            if rule.seen <= rule.skip:
                continue
            if rule.p < 1.0:
                rng = self._rngs.get(site)
                if rng is None:
                    rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
                if rng.random() >= rule.p:
                    return None  # the armed rule declined; no cascading
            rule.fired += 1
            fault = Fault(
                site=site, kind=rule.kind, seq=len(self.log), delay_ms=rule.delay_ms
            )
            self.log.append(fault)
            metrics = get_metrics()
            metrics.counter("faults.injected").inc()
            metrics.counter(f"faults.injected.{rule.kind}").inc()
            return fault
        return None

    # -- introspection -------------------------------------------------------
    @property
    def injected(self) -> int:
        """Total faults this plan has fired."""
        with self._lock:
            return len(self.log)

    def events(self) -> List[Tuple[str, str]]:
        """The ``(site, kind)`` injection sequence (for replay tests)."""
        with self._lock:
            return [(f.site, f.kind) for f in self.log]

    def site_counts(self) -> Dict[str, int]:
        """Fired-fault count per site."""
        counts: Dict[str, int] = {}
        with self._lock:
            for fault in self.log:
                counts[fault.site] = counts.get(fault.site, 0) + 1
        return counts

    def describe(self) -> str:
        parts = [
            f"{r.site}:{r.kind} fired {r.fired}"
            + (f"/{r.times}" if r.times is not None else "")
            for r in self.rules
        ]
        return f"FaultPlan(seed={self.seed}, {len(self.log)} injected; " \
               + "; ".join(parts) + ")"


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse a ``$REPRO_FAULTS``-style spec string into a plan.

    Grammar (clauses separated by ``;`` or ``,``)::

        spec    ::= clause (";" clause)*
        clause  ::= "seed=" INT | rule
        rule    ::= site ":" kind modifiers*
        mod     ::= "@" FLOAT    -- probability        (default 1.0)
                  | "x" INT      -- total fire budget  (default unlimited)
                  | "+" INT      -- skip first N       (default 0)
                  | "~" FLOAT    -- delay_ms           (default 5.0)

    Example::

        REPRO_FAULTS="seed=7;kernel.execute:transient@0.2x10;cache.load:corrupt x2"
    """
    seed = 0
    rules: List[FaultRule] = []
    for raw in text.replace(",", ";").split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = int(clause[len("seed="):])
            continue
        if ":" not in clause:
            raise ValueError(f"bad fault clause {clause!r}: expected site:kind")
        site, rest = clause.split(":", 1)
        rest = rest.replace(" ", "")
        kind = rest
        mods = ""
        for i, ch in enumerate(rest):
            if ch in "@x+~":
                kind, mods = rest[:i], rest[i:]
                break
        kwargs: Dict[str, object] = {}
        while mods:
            tag, mods = mods[0], mods[1:]
            number = ""
            while mods and (mods[0].isdigit() or mods[0] == "."):
                number, mods = number + mods[0], mods[1:]
            if not number:
                raise ValueError(f"bad fault clause {clause!r}: dangling {tag!r}")
            if tag == "@":
                kwargs["p"] = float(number)
            elif tag == "x":
                kwargs["times"] = int(number)
            elif tag == "+":
                kwargs["skip"] = int(number)
            else:  # "~"
                kwargs["delay_ms"] = float(number)
        rules.append(FaultRule(site=site.strip(), kind=kind, **kwargs))
    return FaultPlan(rules, seed=seed)


#: Process-wide default plan; ``None`` until first resolved so tests can
#: manipulate ``$REPRO_FAULTS`` before anything asks for it.
_GLOBAL_PLAN: Optional[FaultPlan] = None
_GLOBAL_LOCK = threading.Lock()


def get_fault_plan() -> FaultPlan:
    """The process-wide plan: ``$REPRO_FAULTS`` if set, else a disabled no-op."""
    global _GLOBAL_PLAN
    if _GLOBAL_PLAN is None:
        with _GLOBAL_LOCK:
            if _GLOBAL_PLAN is None:
                spec = os.environ.get(FAULTS_ENV_VAR)
                _GLOBAL_PLAN = parse_fault_spec(spec) if spec else FaultPlan()
    return _GLOBAL_PLAN


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide; returns the previous one (restore it).

    Passing ``None`` resets to "unresolved", so the next
    :func:`get_fault_plan` re-reads ``$REPRO_FAULTS``.
    """
    global _GLOBAL_PLAN
    with _GLOBAL_LOCK:
        previous = _GLOBAL_PLAN
        _GLOBAL_PLAN = plan
    return previous
