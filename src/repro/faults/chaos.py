"""The chaos self-test: a seeded fault storm the engine must survive.

``run_chaos_storm`` drives seven phases — four over a small CNN, two
over the autoregressive generation stack, one over the multi-process
cluster tier — each activating a different slice of the fault-point
catalog, and checks three things:

1. **No crashes** — every request either returns or fails alone with a
   typed :class:`~repro.faults.ResilienceError`; the engine keeps
   serving.
2. **Degraded ≡ correct** — every response produced under injection
   matches a fault-free gold run: bit-identically in the cache, pool and
   numeric phases (the gold is the *same* computation, so CPU fallback
   re-dispatch and the direct-scheme rerun are exact), and to a tight
   numeric tolerance in the batch phase, where bisection legitimately
   re-runs requests in a different batch composition (batched BLAS GEMM
   is not bitwise batch-invariant; observed drift is ~1e-12).
3. **The books balance** — every injected fault is absorbed by exactly
   one resilience counter::

       faults.injected == retry.attempts + fallback.ops
                        + fallback.numeric + fallback.cache
                        + fallback.evict + faults.isolated
                        + fallback.replay + cluster.worker_lost

Phases (repeated with per-round seeds until ``target_faults`` is met):

* **cache**  — transient/corrupt loads, transient/torn stores during
  engine warm-up; later engines read the torn entries back.
* **pool+dispatch** — transient pool checkouts (retried, occasionally
  escalating to an isolated request), fatal backend dispatches and
  flaky kernels absorbed by per-op CPU fallback under the breaker.
* **batch** — fatal batch assembly cascading through bisect-and-retry
  until poison requests fail alone; flaky kernels inside batch runs.
* **numeric** — every Winograd-eligible convolution forced onto
  Winograd and its output poisoned with NaN, forcing the one-shot
  direct-scheme re-run (gold: the same model with sliding-window
  schemes on those convs).
* **generate** — flaky and OOM-ing KV-slab allocations during
  continuous-batching generation; transients retry, fatals degrade to
  LRU eviction or preemption+requeue, and completed requests must emit
  exactly the fault-free gold tokens (alloc faults may move memory
  around, never change arithmetic).
* **prefix** — the same alloc faults, but over prompts sharing a long
  prefix served copy-on-write from retired slabs.  Faults during the
  extra share/materialize allocations may evict COW parents (the trie
  falls back to a cold prefill) or release half-built children — tokens
  must still equal the *cold* fault-free gold, and under ``sanitize``
  every shared page must be provably released exactly once.
* **cluster** — ``worker.crash`` faults at the router's dispatch point
  kill supervised worker processes before starting (transient) or
  mid-decode (fatal).  The router must never crash: each injected kill
  resolves as exactly one transparent replay on the next ring-preference
  worker (``fallback.replay``) or one typed ``WorkerLost``
  (``cluster.worker_lost``), the supervisor replaces every dead worker,
  and surviving generations stay bit-identical to the local fault-free
  gold — served from a different process, through shared memory.

Determinism: all request loops are single-threaded, breakers run with
``cooldown_s=0`` (every post-open call probes, so no wall-clock-dependent
short circuits), and batches are submitted in full ``max_batch`` rounds —
the injection sequence is a pure function of the seed, which the replay
test exploits.

This module imports ``repro.core``/``repro.serving`` and is therefore
*not* re-exported from ``repro.faults`` (import cycle); import it lazily,
as the CLI and tests do.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.schemes import SchemeDecision
from ..core.session import Session, SessionConfig
from ..ir.graph import Graph, GraphBuilder
from ..ir.ops import Op
from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics
from ..obs.recorder import FlightRecorder
from ..obs.requests import RequestTracker
from ..sanitize import Sanitizer
from .errors import DeadlineExceeded, ResilienceError
from .plan import FaultPlan, FaultRule, set_fault_plan

__all__ = ["PhaseResult", "ChaosReport", "run_chaos_storm", "default_chaos_graph"]

#: The sites the storm must demonstrably cover (the tentpole's five
#: fault-point groups; cache load and store are distinct sites).
STORM_SITES = (
    "backend.dispatch",
    "kernel.execute",
    "cache.load",
    "cache.store",
    "pool.checkout",
    "batch.assemble",
    "kvcache.alloc",
    "worker.crash",
)


def default_chaos_graph(batch: int = 1, size: int = 16) -> Graph:
    """A small CNN with Winograd-eligible 3x3 convs (the storm's model)."""
    b = GraphBuilder("chaosnet")
    x = b.input("data", (batch, 3, size, size))
    y = b.conv(x, 8, kernel=3, name="conv1")
    y = b.relu(y)
    y = b.conv(y, 8, kernel=3, name="conv2")
    y = b.max_pool(y, 2)
    y = b.conv(y, 16, kernel=1, name="conv3")
    y = b.global_avg_pool(y)
    y = b.flatten(y)
    y = b.fc(y, 10, name="fc")
    y = b.softmax(y)
    b.output(y)
    return b.finish()


@dataclass
class PhaseResult:
    """Per-phase tally of one storm round."""

    phase: str
    requests: int = 0
    failed: int = 0       # requests that failed alone, with a typed error
    mismatched: int = 0   # responses that were not bit-identical to gold
    crashes: int = 0      # untyped exceptions — the thing that must not happen
    injected: int = 0     # faults this phase's plan fired


@dataclass
class ChaosReport:
    """The storm's verdict: counters, coverage and the balance check."""

    seed: int
    target: int
    rounds: int = 0
    requests: int = 0
    failed: int = 0
    mismatched: int = 0
    crashes: int = 0
    injected: int = 0
    retries: int = 0
    fallback_ops: int = 0
    fallback_numeric: int = 0
    fallback_cache: int = 0
    fallback_evict: int = 0
    isolated: int = 0
    breaker_opens: int = 0
    short_circuits: int = 0
    cache_corrupt: int = 0
    #: Sanitizer verdict (``run_chaos_storm(sanitize=True)``): the storm
    #: then also asserts zero races, lock cycles and lifecycle findings
    #: while every fault path fires — resilience code is exactly where
    #: ad-hoc locking grows.
    sanitized: bool = False
    races: int = 0
    lock_cycles: int = 0
    leaks: int = 0
    #: Flight-recorder wiring (``run_chaos_storm(postmortem_dir=...)``):
    #: how many deadline-probe requests tripped :class:`DeadlineExceeded`
    #: and how many postmortem artifacts the recorder dumped.  Purely
    #: additive — ``ok`` does not depend on them, so reports built
    #: without the recorder are unaffected.
    deadline_trips: int = 0
    dumps: int = 0
    #: Cluster-phase tallies: injected ``worker.crash`` faults resolve as
    #: transparent replays (``fallback.replay``) or typed ``WorkerLost``
    #: outcomes (``cluster.worker_lost``) — both absorb into the
    #: equation.  ``replacements`` counts supervisor respawns (outside
    #: the equation: one crash may be observed by both the monitor and
    #: an in-flight RPC, but is replaced exactly once).
    replays: int = 0
    worker_lost: int = 0
    replacements: int = 0
    site_counts: Dict[str, int] = field(default_factory=dict)
    events: List[Tuple[str, str]] = field(default_factory=list)
    phases: List[PhaseResult] = field(default_factory=list)

    @property
    def absorbed(self) -> int:
        """Faults accounted for by exactly one resilience mechanism."""
        return (
            self.retries + self.fallback_ops + self.fallback_numeric
            + self.fallback_cache + self.fallback_evict + self.isolated
            + self.replays + self.worker_lost
        )

    @property
    def reconciled(self) -> bool:
        return self.injected == self.absorbed

    @property
    def sites_covered(self) -> bool:
        return all(self.site_counts.get(site, 0) > 0 for site in STORM_SITES)

    @property
    def sanitize_clean(self) -> bool:
        return self.races == 0 and self.lock_cycles == 0 and self.leaks == 0

    @property
    def ok(self) -> bool:
        return (
            self.crashes == 0
            and self.mismatched == 0
            and self.reconciled
            and self.sites_covered
            and self.injected >= self.target
            and (not self.sanitized or self.sanitize_clean)
        )

    def describe(self) -> str:
        lines = [
            f"chaos storm: seed={self.seed} rounds={self.rounds} "
            f"requests={self.requests}",
            f"  injected   {self.injected} (target {self.target}) across "
            + ", ".join(
                f"{site}={self.site_counts.get(site, 0)}" for site in STORM_SITES
            ),
            f"  absorbed   {self.absorbed} = retries {self.retries} "
            f"+ op fallbacks {self.fallback_ops} "
            f"+ numeric fallbacks {self.fallback_numeric} "
            f"+ cache fallbacks {self.fallback_cache} "
            f"+ evictions {self.fallback_evict} "
            f"+ isolated {self.isolated} "
            f"+ crash replays {self.replays} "
            f"+ workers lost {self.worker_lost}",
            f"  breaker    {self.breaker_opens} opens, "
            f"{self.short_circuits} short circuits (outside the equation)",
            f"  cluster    {self.replacements} worker replacements "
            f"(outside the equation)",
        ]
        if self.sanitized:
            lines.append(
                f"  sanitize   {self.races} races, {self.lock_cycles} lock "
                f"cycles, {self.leaks} lifecycle findings"
            )
        if self.dumps or self.deadline_trips:
            lines.append(
                f"  recorder   {self.dumps} postmortems dumped, "
                f"{self.deadline_trips} deadline probe trips"
            )
        lines += [
            f"  requests   {self.requests - self.failed} served bit-identical, "
            f"{self.failed} failed alone (typed), {self.mismatched} mismatched, "
            f"{self.crashes} crashes",
            f"  reconciled {'yes' if self.reconciled else 'NO'}; "
            f"verdict {'OK' if self.ok else 'FAILED'}",
        ]
        return "\n".join(lines)


def _bit_identical(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]
) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def _numerically_equal(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]
) -> bool:
    """Equality up to batch-recomposition noise (used by the batch phase).

    Bisection re-runs a request at batch sizes 2/1 instead of 4, and
    batched BLAS GEMM is not bitwise batch-invariant — fault-free drift
    is ~1e-12, so this tolerance still catches any real corruption.
    """
    return set(a) == set(b) and all(
        np.isfinite(a[k]).all()
        and np.allclose(a[k], b[k], rtol=1e-6, atol=1e-9)
        for k in a
    )


def _finish_phase(result: PhaseResult, plan: FaultPlan, report: ChaosReport) -> None:
    result.injected = plan.injected
    for site, count in plan.site_counts().items():
        report.site_counts[site] = report.site_counts.get(site, 0) + count
    report.events.extend(plan.events())
    report.requests += result.requests
    report.failed += result.failed
    report.mismatched += result.mismatched
    report.crashes += result.crashes
    report.phases.append(result)


def _phase_cache(
    graph, feeds, gold, seed, cache_dir, report, sanitizer, tracker
) -> None:
    """Cache storm: engine warm-ups under IO faults and torn entries."""
    from ..serving.engine import Engine, EngineConfig

    plan = FaultPlan([
        FaultRule("cache.load", "transient", times=3),
        FaultRule("cache.load", "corrupt", times=2),
        FaultRule("cache.store", "torn", times=2),
        FaultRule("cache.store", "transient", times=2),
    ], seed=seed)
    result = PhaseResult("cache")
    for _ in range(3):  # each engine: pool_size load/store cycles
        engine = Engine(graph, EngineConfig(
            session=SessionConfig(breaker_cooldown_s=0.0),
            pool_size=2, use_cache=True, cache_dir=cache_dir,
            faults=plan, metrics=get_metrics(), sanitize=sanitizer,
            requests=tracker,
        ))
        with engine:
            result.requests += 1
            try:
                out = engine.infer(feeds)
            except ResilienceError:
                result.failed += 1
            except Exception:
                result.crashes += 1
            else:
                if not _bit_identical(out, gold):
                    result.mismatched += 1
    _finish_phase(result, plan, report)


def _phase_pool_dispatch(
    graph, feeds, gold, seed, report, sanitizer, tracker
) -> None:
    """Pool checkout + backend dispatch + kernel faults, serial requests."""
    from ..serving.engine import Engine, EngineConfig

    plan = FaultPlan([
        FaultRule("pool.checkout", "transient", p=0.5, times=10),
        FaultRule("backend.dispatch", "fatal", times=8),
        FaultRule("kernel.execute", "transient", p=0.3, times=12),
    ], seed=seed)
    result = PhaseResult("pool+dispatch")
    engine = Engine(graph, EngineConfig(
        session=SessionConfig(breaker_cooldown_s=0.0),
        pool_size=2, use_cache=False,
        faults=plan, metrics=get_metrics(), sanitize=sanitizer,
        requests=tracker,
    ))
    with engine:
        for _ in range(12):
            result.requests += 1
            try:
                out = engine.infer(feeds)
            except ResilienceError:
                result.failed += 1  # typed, counted, engine still up
            except Exception:
                result.crashes += 1
            else:
                if not _bit_identical(out, gold):
                    result.mismatched += 1
    _finish_phase(result, plan, report)


def _phase_batch(graph, request_feeds, golds, seed, report, sanitizer) -> None:
    """Batch storm: poison cohorts bisected until they fail alone."""
    from ..serving.engine import Engine, EngineConfig

    plan = FaultPlan([
        FaultRule("batch.assemble", "fatal", times=7),
        FaultRule("kernel.execute", "transient", p=0.25, times=10),
    ], seed=seed)
    result = PhaseResult("batch")
    engine = Engine(graph, EngineConfig(
        session=SessionConfig(breaker_cooldown_s=0.0),
        pool_size=1, use_cache=False,
        batching=True, max_batch=4, batch_timeout_ms=500.0,
        faults=plan, metrics=get_metrics(), sanitize=sanitizer,
    ))
    with engine:
        # Full rounds of max_batch from one thread, resolved before the
        # next round: batch composition (and so the cascade) is
        # deterministic.
        for round_feeds in request_feeds:
            futures = [engine.batcher.submit(f) for f in round_feeds]
            for future, feeds in zip(futures, round_feeds):
                result.requests += 1
                try:
                    out = future.result(timeout=60.0)
                except ResilienceError:
                    result.failed += 1
                except Exception:
                    result.crashes += 1
                else:
                    key = next(iter(feeds.values())).tobytes()
                    if not _numerically_equal(out, golds[key]):
                        result.mismatched += 1
    _finish_phase(result, plan, report)


def _phase_numeric(graph, feeds, gold_direct, seed, overrides, report, sanitizer) -> None:
    """NaN-poison every Winograd conv; outputs must match the direct run."""
    plan = FaultPlan([
        FaultRule(
            "kernel.execute", "nan",
            match={"scheme": ("winograd", "winograd_rect")},
        ),
    ], seed=seed)
    result = PhaseResult("numeric")
    session = Session(graph, SessionConfig(
        scheme_overrides=overrides, faults=plan, breaker_cooldown_s=0.0,
        sanitize=sanitizer,
    ))
    for _ in range(10):
        result.requests += 1
        try:
            out = session.run(feeds)
        except ResilienceError:
            result.failed += 1
        except Exception:
            result.crashes += 1
        else:
            if not np.isfinite(next(iter(out.values()))).all():
                result.mismatched += 1
            elif not _bit_identical(out, gold_direct):
                result.mismatched += 1
    _finish_phase(result, plan, report)


def _generation_config(
    plan: Optional[FaultPlan], sanitizer=False, prefix=False, tracker=None,
    kv_dtype="float32",
):
    """The generation phases' engine config (gold and storm share it).

    Gold runs never get the tracker — like the sanitizer, it observes
    the storm, and gold defines expected output only.  ``kv_dtype``
    flows to gold and storm alike: quantized decode is deterministic
    and path-invariant, so the bit-identity contract is the same — a
    quantized storm must match its quantized gold exactly.
    """
    from ..genai import GenerationConfig

    return GenerationConfig(
        vocab=64, max_seq=24, d_model=16, heads=2, layers=1, seed=11,
        max_batch=2, page_tokens=4, capacity_tokens=64, smallest_bucket=8,
        prefix_cache=prefix,
        session=SessionConfig(breaker_cooldown_s=0.0),
        metrics=get_metrics(), faults=plan, retain_kv=True,
        sanitize=sanitizer, requests=tracker, kv_dtype=kv_dtype,
    )


def _phase_generate(
    prompts, gold_tokens, seed, report, sanitizer, tracker, kv_dtype="float32"
) -> None:
    """Generation storm: flaky and OOM-ing KV-slab allocations.

    Transients are retried; fatals degrade to LRU eviction of retired
    slabs (or preemption+requeue when nothing is evictable).  None of it
    touches arithmetic, so every *completed* request's tokens must equal
    the fault-free gold generation exactly.
    """
    from ..genai import GenerationEngine, GenRequest, SamplingParams

    plan = FaultPlan([
        FaultRule("kvcache.alloc", "transient", times=3),
        FaultRule("kvcache.alloc", "fatal", p=0.5, times=3),
    ], seed=seed)
    result = PhaseResult("generate")
    engine = GenerationEngine(_generation_config(
        plan, sanitizer, tracker=tracker, kv_dtype=kv_dtype
    ))
    params = SamplingParams(max_tokens=8)
    requests = [
        GenRequest(f"gen-{i}", prompt, params) for i, prompt in enumerate(prompts)
    ]
    try:
        outcomes = engine.generate(requests)
    except Exception:
        result.requests += len(requests)
        result.crashes += 1
    else:
        for outcome, gold in zip(outcomes, gold_tokens):
            result.requests += 1
            if outcome.finish_reason == "error":
                result.failed += 1  # typed, isolated to this request
            elif outcome.tokens != gold:
                result.mismatched += 1
    finally:
        # Closing runs the KV lifecycle leak check: a storm that loses
        # track of a slab fails sanitize, not just utilization stats.
        engine.close()
    _finish_phase(result, plan, report)


def _phase_prefix(
    prompts, gold_tokens, seed, report, sanitizer, tracker, kv_dtype="float32"
) -> None:
    """Prefix storm: COW prefix sharing under flaky/fatal slab allocs.

    Same fault site as the generate phase (``kvcache.alloc``), but the
    engine serves the prompts' long shared prefix copy-on-write from
    retired slabs, so faults also land inside ``share``/``materialize``
    allocations.  A fault there may evict a COW parent (the trie prunes
    it and the request falls back to cold prefill) or abort a half-built
    child — either way completed requests must emit the *cold*
    fault-free gold tokens, and the refcounted pages must all come back.
    """
    from ..genai import GenerationEngine, GenRequest, SamplingParams

    plan = FaultPlan([
        FaultRule("kvcache.alloc", "transient", times=3),
        FaultRule("kvcache.alloc", "fatal", p=0.5, times=3),
    ], seed=seed)
    result = PhaseResult("prefix")
    engine = GenerationEngine(_generation_config(
        plan, sanitizer, prefix=True, tracker=tracker, kv_dtype=kv_dtype
    ))
    params = SamplingParams(max_tokens=8)
    requests = [
        GenRequest(f"pfx-{i}", prompt, params) for i, prompt in enumerate(prompts)
    ]
    try:
        outcomes = engine.generate(requests)
    except Exception:
        result.requests += len(requests)
        result.crashes += 1
    else:
        for outcome, gold in zip(outcomes, gold_tokens):
            result.requests += 1
            if outcome.finish_reason == "error":
                result.failed += 1  # typed, isolated to this request
            elif outcome.tokens != gold:
                result.mismatched += 1
    finally:
        engine.close()
    _finish_phase(result, plan, report)


#: Worker-side generation config for the cluster phase (plain kwargs —
#: it crosses the process boundary).  The phase's gold engine is built
#: from the *same* dict, so "bit-identical" compares a cross-process,
#: shared-memory-transported generation against a local in-process one.
_CLUSTER_GENAI: Dict[str, object] = dict(
    vocab=64, max_seq=24, d_model=16, heads=2, layers=1, seed=11,
    max_batch=2, page_tokens=4, capacity_tokens=64, smallest_bucket=8,
)


def _phase_cluster(cluster, prompts, gold_tokens, seed, report) -> None:
    """Cluster storm: supervised workers killed early and mid-decode.

    The ``worker.crash`` site fires router-side at dispatch, so the
    injection sequence is a pure function of the seed even though the
    victims are separate processes.  Requests alternate loss policy:
    even indices replay transparently (full re-prefill on the next live
    ring-preference worker), odd ones fail fast with typed
    ``WorkerLost``.  Either way the router must keep serving, the
    supervisor must replace every corpse, and completed requests must
    emit exactly the local fault-free gold tokens.
    """
    from ..cluster import WorkerLost

    plan = FaultPlan([
        FaultRule("worker.crash", "fatal", times=1),
        FaultRule("worker.crash", "transient", p=0.5, times=2),
    ], seed=seed)
    result = PhaseResult("cluster")
    # Crash injection is decided (and counted) in the router process;
    # workers never see the plan, so one long-lived cluster can serve
    # every round with that round's plan swapped in.
    cluster.faults = plan
    try:
        for i, prompt in enumerate(prompts):
            result.requests += 1
            policy = "replay" if i % 2 == 0 else "error"
            try:
                outcome = cluster.generate(
                    prompt, {"max_tokens": 8},
                    session_key=f"storm-{i}", on_worker_lost=policy,
                )
            except WorkerLost:
                result.failed += 1  # typed, isolated to this request
            except Exception:
                result.crashes += 1
            else:
                if outcome.finish_reason == "error":
                    result.failed += 1
                elif outcome.tokens != gold_tokens[i]:
                    result.mismatched += 1
    finally:
        cluster.faults = FaultPlan()
    _finish_phase(result, plan, report)


def _probe_deadline(graph, feeds, tracker: RequestTracker) -> int:
    """Deadline probe: a stalled checkout under a tight budget must trip
    :class:`DeadlineExceeded` and leave a postmortem in the recorder.

    Delay faults increment ``faults.injected`` but have no absorbing
    resilience counter (nothing retries or falls back — the request just
    runs out of budget), so the probe runs under a temporarily-installed
    private registry to keep the storm's reconciliation equation closed.
    The tracker carries its own registry reference, so the probe's SLO
    observations and the postmortem artifact still land with the storm's.
    """
    from ..serving.engine import Engine, EngineConfig

    plan = FaultPlan(
        [FaultRule("pool.checkout", "delay", delay_ms=30.0)], seed=0
    )
    probe_metrics = MetricsRegistry()
    prev = set_metrics(probe_metrics)
    trips = 0
    try:
        engine = Engine(graph, EngineConfig(
            session=SessionConfig(breaker_cooldown_s=0.0),
            pool_size=1, use_cache=False, deadline_ms=5.0,
            faults=plan, metrics=probe_metrics, requests=tracker,
        ))
        with engine:
            try:
                engine.infer(feeds)
            except DeadlineExceeded:
                trips += 1
    finally:
        set_metrics(prev)
    return trips


def run_chaos_storm(
    graph: Optional[Graph] = None,
    seed: int = 0,
    target_faults: int = 200,
    max_rounds: int = 50,
    sanitize: bool = False,
    postmortem_dir: Optional[str] = None,
    kv_dtype: str = "float32",
) -> ChaosReport:
    """Run the seven-phase fault storm until ``target_faults`` have fired.

    Installs a fresh process-wide metrics registry (and a disabled
    process-wide fault plan, so gold runs stay clean even under
    ``$REPRO_FAULTS``) for the duration; both are restored on return.

    ``sanitize=True`` threads one :class:`repro.sanitize.Sanitizer`
    through every storm engine and session (gold runs stay
    uninstrumented — they define expected *output*, not expected
    interleavings); the report then also carries race / lock-cycle /
    lifecycle tallies and ``ok`` requires all three to be zero.

    ``postmortem_dir`` threads one deterministic
    :class:`repro.obs.FlightRecorder`-backed request tracker through
    every storm engine: isolated faults, ``KVCacheOOM`` admission
    failures and a dedicated deadline probe each dump a postmortem JSON
    into the directory.  Two same-seed storms produce byte-identical
    artifacts (the replay test's contract), and a fault-free workload
    dumps nothing.

    ``kv_dtype="int8"`` runs the generation and prefix phases (storm
    *and* their golds) over a quantized KV cache — the bit-identity
    contract is unchanged, because quantized rows are a pure function of
    each fp row and every sampled logit takes the decode path.  The
    cluster phase stays fp32 (its config crosses the process boundary
    and its gold shares it, so it proves nothing extra about kv_dtype).
    """
    if graph is None:
        graph = default_chaos_graph()
    report = ChaosReport(seed=seed, target=target_faults, sanitized=sanitize)

    prev_metrics = set_metrics(MetricsRegistry())
    prev_plan = set_fault_plan(FaultPlan())
    sanitizer = Sanitizer(enabled=True, metrics=get_metrics()) if sanitize else False
    tracker: Optional[RequestTracker] = None
    if postmortem_dir is not None:
        tracker = RequestTracker(
            metrics=get_metrics(),
            recorder=FlightRecorder(
                out_dir=postmortem_dir, deterministic=True,
                metrics=get_metrics(),
            ),
        )
    tmp = tempfile.mkdtemp(prefix="repro-chaos-")
    cluster = None
    try:
        rng = np.random.default_rng(seed)
        in_name = graph.inputs[0]
        in_shape = graph.desc(in_name).shape
        feeds = {in_name: rng.standard_normal(in_shape).astype(np.float32)}

        # Gold A/B/C: one fault-free session over the same graph.
        gold = Session(graph).run(feeds)

        # Phase C request set: 2 rounds of 4 distinct requests per storm
        # round, plus their fault-free per-request golds (computed through
        # an identically configured fault-free batching engine, so batch
        # math matches exactly).
        batch_rounds = []
        for _ in range(2):
            batch_rounds.append([
                {in_name: rng.standard_normal(in_shape).astype(np.float32)}
                for _ in range(4)
            ])
        golds_by_input: Dict[bytes, Dict[str, np.ndarray]] = {}
        gold_session = Session(graph)
        for round_feeds in batch_rounds:
            for f in round_feeds:
                golds_by_input[f[in_name].tobytes()] = gold_session.run(f)

        # Phase D: force Winograd on every eligible 3x3 conv (unit
        # stride/dilation, ungrouped); gold runs the same convs direct.
        # Convs whose natural scheme is already a Winograd flavour keep
        # it, so the NaN rule hits them too.
        probe = Session(graph)
        wino_overrides: Dict[str, SchemeDecision] = {}
        direct_overrides: Dict[str, SchemeDecision] = {}
        for node in probe.graph.nodes:
            if node.op_type != Op.CONV2D:
                continue
            attrs = node.attrs
            eligible = (
                tuple(attrs.get("kernel", ())) == (3, 3)
                and tuple(attrs.get("stride", (1, 1))) == (1, 1)
                and tuple(attrs.get("dilation", (1, 1))) == (1, 1)
                and attrs.get("groups", 1) == 1
            )
            natural = probe.schemes.get(node.name)
            if eligible:
                wino_overrides[node.name] = SchemeDecision(
                    kind="winograd", winograd_n=2
                )
                direct_overrides[node.name] = SchemeDecision(kind="sliding")
            elif natural is not None and natural.kind.startswith("winograd"):
                wino_overrides[node.name] = natural
                direct_overrides[node.name] = SchemeDecision(kind="sliding")
        gold_direct = Session(
            graph, SessionConfig(scheme_overrides=direct_overrides)
        ).run(feeds)

        # Phase E: fixed prompt set + its fault-free gold generation
        # (alloc faults must never change tokens, only timing/placement).
        from ..genai import GenerationEngine, SamplingParams

        prompts = [
            [int(t) for t in rng.integers(0, 64, size=int(length))]
            for length in rng.integers(2, 7, size=5)
        ]
        gold_engine = GenerationEngine(
            _generation_config(FaultPlan(), kv_dtype=kv_dtype)
        )
        gold_tokens = [
            r.tokens
            for r in gold_engine.generate(prompts, SamplingParams(max_tokens=8))
        ]

        # Phase F: prompts sharing a 10-token prefix, and their *cold*
        # fault-free gold — the COW prefix cache must be invisible in the
        # tokens even while alloc faults evict its parents mid-storm.
        shared = [int(t) for t in rng.integers(0, 64, size=10)]
        prefix_prompts = [
            shared + [int(t) for t in rng.integers(0, 64, size=int(extra))]
            for extra in rng.integers(2, 5, size=6)
        ]
        gold_prefix = [
            r.tokens
            for r in gold_engine.generate(
                prefix_prompts, SamplingParams(max_tokens=8)
            )
        ]

        # Phase G (cluster): its own prompt set, gold generated by a
        # local engine built from the exact worker config — so the
        # bit-identity check spans the process boundary.  One cluster
        # serves every round (the per-round plan is swapped in at the
        # router; workers never hold it), with the storm's sanitizer
        # guarding the shared-memory segment lifecycle.
        from ..cluster import Cluster, ClusterConfig
        from ..genai import GenerationConfig, GenerationEngine as _GE

        cluster_prompts = [
            [int(t) for t in rng.integers(0, 64, size=int(length))]
            for length in rng.integers(2, 7, size=5)
        ]
        cluster_gold_engine = _GE(GenerationConfig(**_CLUSTER_GENAI))
        gold_cluster = [
            r.tokens
            for r in cluster_gold_engine.generate(
                cluster_prompts, SamplingParams(max_tokens=8)
            )
        ]
        cluster_gold_engine.close()
        cluster = Cluster(config=ClusterConfig(
            workers=2, genai=dict(_CLUSTER_GENAI), replay_budget=2,
            metrics=get_metrics(), sanitize=sanitizer, requests=tracker,
        ))

        while report.injected < target_faults and report.rounds < max_rounds:
            base = seed + report.rounds * 1000
            _phase_cache(
                graph, feeds, gold, base + 1, tmp, report, sanitizer, tracker
            )
            _phase_pool_dispatch(
                graph, feeds, gold, base + 2, report, sanitizer, tracker
            )
            _phase_batch(
                graph, batch_rounds, golds_by_input, base + 3, report, sanitizer
            )
            _phase_numeric(
                graph, feeds, gold_direct, base + 4, wino_overrides, report,
                sanitizer,
            )
            _phase_generate(
                prompts, gold_tokens, base + 5, report, sanitizer, tracker,
                kv_dtype=kv_dtype,
            )
            _phase_prefix(
                prefix_prompts, gold_prefix, base + 6, report, sanitizer, tracker,
                kv_dtype=kv_dtype,
            )
            _phase_cluster(
                cluster, cluster_prompts, gold_cluster, base + 7, report
            )
            report.rounds += 1
            metrics = get_metrics()
            report.injected = int(metrics.value("faults.injected"))

        # Close the cluster before the tallies (and before a sanitizer
        # report): shutdown must unlink every shared-memory segment, and
        # a leaked one would — correctly — fail the lifecycle check.
        cluster.close()

        if tracker is not None:
            # The probe swaps in a private registry (see _probe_deadline),
            # so it runs after the rounds and before the tallies read the
            # storm registry — its delay fault never enters the equation.
            report.deadline_trips = _probe_deadline(graph, feeds, tracker)
            report.dumps = len(tracker.recorder.dumps)

        metrics = get_metrics()
        report.injected = int(metrics.value("faults.injected"))
        report.retries = int(metrics.value("retry.attempts"))
        report.fallback_ops = int(metrics.value("fallback.ops"))
        report.fallback_numeric = int(metrics.value("fallback.numeric"))
        report.fallback_cache = int(metrics.value("fallback.cache"))
        report.fallback_evict = int(metrics.value("fallback.evict"))
        report.isolated = int(metrics.value("faults.isolated"))
        report.replays = int(metrics.value("fallback.replay"))
        report.worker_lost = int(metrics.value("cluster.worker_lost"))
        report.replacements = int(metrics.value("cluster.replacements"))
        report.breaker_opens = int(metrics.value("breaker.opens"))
        report.short_circuits = int(metrics.value("breaker.short_circuits"))
        report.cache_corrupt = int(metrics.value("cache.corrupt"))
        if sanitize:
            # report() flushes lock-cycle detection into the counters;
            # the tallies come from the counters so BENCH/CLI snapshots
            # of the same registry agree with the report.
            sanitizer.report()
            report.races = int(metrics.value("sanitize.races"))
            report.lock_cycles = int(metrics.value("sanitize.lock_cycles"))
            report.leaks = int(metrics.value("sanitize.leaks"))
        return report
    finally:
        if cluster is not None:
            cluster.close()  # idempotent; reaps workers on error paths
        shutil.rmtree(tmp, ignore_errors=True)
        set_metrics(prev_metrics)
        set_fault_plan(prev_plan)
