"""The typed error hierarchy of the resilience layer.

Every failure the runtime is expected to *survive* — or at least turn
into a well-formed, per-request error instead of an engine crash — is a
:class:`ResilienceError`.  The split matters operationally:

* :class:`InjectedFault` (and its :class:`TransientFault` /
  :class:`FatalFault` leaves) are raised by an active
  :class:`~repro.faults.FaultPlan` at a named fault point; the handlers
  in the session/serving layers absorb them via retry, per-op backend
  fallback, cache recompute or batch bisection.
* :class:`DeadlineExceeded` / :class:`PoolTimeout` are backpressure
  errors: the request gives up in bounded time instead of hanging.

Accounting contract: every injected fault is absorbed by **exactly one**
resilience counter (``retry.attempts``, ``fallback.ops``,
``fallback.numeric``, ``fallback.cache`` or ``faults.isolated``), which
is what makes the chaos harness's reconciliation equation closed —
:func:`mark_isolated` guards the "failed alone" counter against double
counting as an exception crosses layer boundaries.
"""

from __future__ import annotations

from ..obs.metrics import get_metrics

__all__ = [
    "ResilienceError",
    "DeadlineExceeded",
    "PoolTimeout",
    "CircuitOpen",
    "InjectedFault",
    "TransientFault",
    "FatalFault",
    "mark_isolated",
]


class ResilienceError(RuntimeError):
    """Base class for every typed failure of the resilience layer."""


class DeadlineExceeded(ResilienceError):
    """A request ran past its deadline (raised instead of hanging).

    Attributes:
        budget_ms: the deadline budget the request started with.
        elapsed_ms: wall time actually spent when the deadline tripped.
        where: the checkpoint that noticed (op name, ``pool.checkout``...).
    """

    def __init__(self, budget_ms: float, elapsed_ms: float, where: str = "") -> None:
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        self.where = where
        at = f" at {where!r}" if where else ""
        super().__init__(
            f"deadline of {budget_ms:.1f} ms exceeded{at} "
            f"({elapsed_ms:.1f} ms elapsed)"
        )


class PoolTimeout(ResilienceError):
    """No pool worker freed up in time (backpressure, not a crash).

    Attributes:
        wait_s: how long the acquire blocked before giving up.
        size: total pool size.
        idle: free workers at the moment of failure (normally 0).
    """

    def __init__(self, wait_s: float, size: int, idle: int) -> None:
        self.wait_s = wait_s
        self.size = size
        self.idle = idle
        super().__init__(
            f"no free session after {wait_s * 1000:.1f} ms "
            f"(pool size {size}, {idle} idle)"
        )


class CircuitOpen(ResilienceError):
    """The circuit breaker is open and no fallback path exists."""


class InjectedFault(ResilienceError):
    """A fault fired by a :class:`~repro.faults.FaultPlan`.

    Attributes:
        site: the fault-point name that fired (``"kernel.execute"``...).
        kind: the fault kind (``"transient"``, ``"fatal"``...).
        seq: position in the owning plan's injection sequence.
    """

    def __init__(self, site: str, kind: str, seq: int) -> None:
        self.site = site
        self.kind = kind
        self.seq = seq
        super().__init__(f"injected {kind} fault #{seq} at {site}")


class TransientFault(InjectedFault):
    """An injected failure a retry is expected to cure."""


class FatalFault(InjectedFault):
    """An injected failure that persists; only a fallback path survives it."""


def mark_isolated(exc: BaseException) -> None:
    """Count ``exc`` as a fault that failed one request alone — once.

    Layers re-raise injected faults upward (batcher future -> engine ->
    caller); whichever layer handles the failure first calls this, and
    the flag on the exception object keeps outer layers from counting
    the same fault twice.
    """
    if isinstance(exc, InjectedFault) and not getattr(exc, "_fault_accounted", False):
        exc._fault_accounted = True
        get_metrics().counter("faults.isolated").inc()
