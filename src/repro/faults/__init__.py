"""repro.faults — fault injection + the resilience layer that survives it.

Two halves:

* **Injection** (:mod:`repro.faults.plan`): a deterministic, seedable
  :class:`FaultPlan` evaluated at named fault points compiled into the
  engine (:data:`FAULT_SITES`).  Activated per session/engine via
  ``SessionConfig(faults=)`` / ``EngineConfig(faults=)``, process-wide
  via ``$REPRO_FAULTS``, or from the CLI with ``cli chaos``.
* **Resilience** (:mod:`repro.faults.resilience` + the typed errors):
  deadlines, retry-with-backoff, a per-backend circuit breaker, per-op
  CPU fallback, batch bisection, and numeric guards — the mechanisms
  that turn injected (or real) failures into bounded, per-request
  degradation instead of engine crashes.

The chaos harness (:mod:`repro.faults.chaos`) is deliberately *not*
imported here: it depends on ``repro.core``/``repro.serving``, which in
turn import this package — import it lazily (the CLI and tests do).
"""

from .errors import (
    CircuitOpen,
    DeadlineExceeded,
    FatalFault,
    InjectedFault,
    PoolTimeout,
    ResilienceError,
    TransientFault,
    mark_isolated,
)
from .plan import (
    FAULT_KINDS,
    FAULT_SITES,
    FAULTS_ENV_VAR,
    Fault,
    FaultPlan,
    FaultRule,
    get_fault_plan,
    parse_fault_spec,
    set_fault_plan,
)
from .resilience import CircuitBreaker, Deadline, retry_transient

__all__ = [
    # errors
    "ResilienceError",
    "DeadlineExceeded",
    "PoolTimeout",
    "CircuitOpen",
    "InjectedFault",
    "TransientFault",
    "FatalFault",
    "mark_isolated",
    # plan
    "FAULTS_ENV_VAR",
    "FAULT_SITES",
    "FAULT_KINDS",
    "Fault",
    "FaultRule",
    "FaultPlan",
    "parse_fault_spec",
    "get_fault_plan",
    "set_fault_plan",
    # resilience
    "Deadline",
    "retry_transient",
    "CircuitBreaker",
]
