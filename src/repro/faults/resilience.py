"""Resilience primitives: deadlines, retry-with-backoff, circuit breaker.

These are the *survival* half of ``repro.faults`` — mechanisms the
session and serving layers use to absorb the failures the
:class:`~repro.faults.FaultPlan` (or the real world) throws at them:

* :class:`Deadline` — a monotonic-clock budget threaded through
  ``Engine.infer`` → pool checkout → batch dispatch → per-op execution;
  checkpoints call :meth:`Deadline.check` and a blown budget raises
  :class:`~repro.faults.DeadlineExceeded` instead of hanging.
* :func:`retry_transient` — bounded retry with exponential backoff and
  seeded jitter; every extra attempt increments ``retry.attempts``.
* :class:`CircuitBreaker` — per-backend failure tracker that demotes a
  repeatedly-failing primary to the CPU fallback for a cool-down window
  (the paper's hybrid-scheduling CPU-fallback rule, made stateful).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from ..obs.metrics import get_metrics
from .errors import DeadlineExceeded, TransientFault

__all__ = ["Deadline", "retry_transient", "CircuitBreaker"]

T = TypeVar("T")


class Deadline:
    """A wall-clock budget for one request, measured on the monotonic clock.

    Created once at the request boundary (``Engine.infer`` /
    ``Session.run``) and passed down; each layer spends from the same
    budget, so a stall in pool checkout leaves less time for execution.
    """

    __slots__ = ("budget_ms", "_t0")

    def __init__(self, budget_ms: float, *, _t0: Optional[float] = None) -> None:
        self.budget_ms = float(budget_ms)
        self._t0 = time.monotonic() if _t0 is None else _t0

    @classmethod
    def from_ms(cls, budget_ms: Optional[float]) -> Optional["Deadline"]:
        """``None``-propagating constructor: no budget → no deadline."""
        return None if budget_ms is None else cls(budget_ms)

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    def remaining_s(self) -> float:
        """Seconds left, clamped at 0 (handy as a blocking-call timeout)."""
        return max(0.0, (self.budget_ms - self.elapsed_ms()) / 1000.0)

    @property
    def expired(self) -> bool:
        return self.elapsed_ms() >= self.budget_ms

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed_ms()
        if elapsed >= self.budget_ms:
            raise DeadlineExceeded(self.budget_ms, elapsed, where)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline({self.budget_ms:.1f} ms, {self.remaining_s()*1000:.1f} ms left)"


def retry_transient(
    fn: Callable[[], T],
    *,
    retries: int = 3,
    base_delay_ms: float = 1.0,
    rng: Optional[random.Random] = None,
    deadline: Optional[Deadline] = None,
    label: str = "",
    transient: Tuple[Type[BaseException], ...] = (TransientFault,),
) -> T:
    """Call ``fn``, retrying ``transient`` failures with jittered backoff.

    ``retries`` is the number of *extra* attempts after the first; each
    one increments ``retry.attempts``.  On exhaustion the last transient
    error is re-raised so the caller can escalate (fallback, isolate...).
    Backoff for attempt *k* sleeps ``base_delay_ms * 2**k * jitter`` with
    jitter drawn from ``rng`` (pass the plan's per-site RNG for
    reproducible timing; defaults to the module-level ``random``).
    """
    jitter = (rng or random).random
    attempt = 0
    while True:
        try:
            return fn()
        except transient:
            if attempt >= retries:
                raise
            if deadline is not None:
                deadline.check(f"retry:{label}" if label else "retry")
            attempt += 1
            get_metrics().counter("retry.attempts").inc()
            delay_s = base_delay_ms * (2 ** (attempt - 1)) * (0.5 + jitter()) / 1000.0
            if deadline is not None:
                delay_s = min(delay_s, deadline.remaining_s())
            if delay_s > 0:
                time.sleep(delay_s)


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN failure tracker for one backend.

    CLOSED passes every call through.  After ``threshold`` *consecutive*
    failures the breaker OPENs: :meth:`allow` answers ``False`` (callers
    skip the primary and go straight to the fallback) until
    ``cooldown_s`` has passed, at which point the breaker goes HALF_OPEN
    and lets exactly one probe through — success re-CLOSEs it, failure
    re-OPENs it for another cool-down.

    ``clock`` is injectable for deterministic tests; ``cooldown_s=0``
    makes every post-open call a probe (used by the chaos harness, where
    wall-clock timing would break replay determinism).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0  # consecutive, resets on success
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the next call try the primary path?

        ``False`` means short-circuit to the fallback (counted in
        ``breaker.short_circuits`` — *not* part of the fault
        reconciliation equation, since skipping the primary means no
        fault fires at all).  HALF_OPEN admits a single probe: the first
        caller to ask during a given cool-down expiry gets ``True``,
        and the breaker re-arms OPEN pending that probe's verdict.
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                # Admit one probe; re-open so concurrent calls keep
                # short-circuiting until the probe reports back.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return True
            get_metrics().counter("breaker.short_circuits").inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == self.CLOSED and self._failures >= self.threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                suffix = f".{self.name}" if self.name else ""
                get_metrics().counter("breaker.opens").inc()
                if suffix:
                    get_metrics().counter(f"breaker.opens{suffix}").inc()
            elif self._state == self.OPEN:
                # A failed HALF_OPEN probe: restart the cool-down.
                self._opened_at = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.name or 'backend'}: {self.state}, "
            f"{self._failures}/{self.threshold} failures)"
        )
