"""Binary model serialization — the repro equivalent of the ``.mnn`` format.

Layout of a ``.rmnn`` file::

    magic   4 bytes  b"RMNN"
    version u32      format version (currently 1)
    meta    u64 + JSON blob   graph structure: nodes, inputs, outputs, descs
    blobs   u32 count, then per-constant:
              u16 name length + name bytes
              u8  dtype tag + u8 rank + rank*u32 dims
              u64 payload length + raw little-endian array bytes

The structural part is JSON for inspectability (the real MNN uses
flatbuffers; the property we preserve is a self-contained, versioned,
weight-embedding single-file format with cheap partial parsing).
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
from typing import Any, BinaryIO, Dict, Union

import numpy as np

from .graph import Graph, GraphError
from .tensor import DataType, TensorDesc

__all__ = [
    "save_model",
    "load_model",
    "dumps",
    "loads",
    "graph_signature",
    "FormatError",
    "MAGIC",
    "VERSION",
]

MAGIC = b"RMNN"
VERSION = 1

_DTYPE_TAGS = {dt: i for i, dt in enumerate(DataType)}
_TAG_DTYPES = {i: dt for dt, i in _DTYPE_TAGS.items()}


class FormatError(ValueError):
    """Raised when a model file is malformed or from an unknown version."""


def _jsonable_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out


def _tupled_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, list):
            value = tuple(value)
        out[key] = value
    return out


def dumps(graph: Graph) -> bytes:
    """Serialize ``graph`` (structure + weights) to bytes."""
    buf = io.BytesIO()
    buf.write(MAGIC)
    buf.write(struct.pack("<I", VERSION))
    meta = {
        "name": graph.name,
        "inputs": graph.inputs,
        "outputs": graph.outputs,
        "nodes": [
            {
                "name": n.name,
                "op_type": n.op_type,
                "inputs": n.inputs,
                "outputs": n.outputs,
                "attrs": _jsonable_attrs(n.attrs),
            }
            for n in graph.nodes
        ],
        "descs": {
            name: {"shape": list(d.shape), "dtype": d.dtype.value}
            for name, d in graph.tensor_descs.items()
            if name not in graph.constants
        },
    }
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    buf.write(struct.pack("<Q", len(meta_bytes)))
    buf.write(meta_bytes)
    buf.write(struct.pack("<I", len(graph.constants)))
    for name, value in graph.constants.items():
        name_bytes = name.encode("utf-8")
        buf.write(struct.pack("<H", len(name_bytes)))
        buf.write(name_bytes)
        dtype = DataType.from_numpy(value.dtype)
        buf.write(struct.pack("<BB", _DTYPE_TAGS[dtype], value.ndim))
        buf.write(struct.pack(f"<{value.ndim}I", *value.shape))
        payload = np.ascontiguousarray(value).tobytes()
        buf.write(struct.pack("<Q", len(payload)))
        buf.write(payload)
    return buf.getvalue()


#: Upper bound on any single length field — a corrupted size prefix must
#: fail cleanly instead of attempting a multi-exabyte read.
_MAX_SECTION_BYTES = 1 << 40


def _read_exact(stream: BinaryIO, n: int) -> bytes:
    if n < 0 or n > _MAX_SECTION_BYTES:
        raise FormatError(f"corrupt length field: {n} bytes")
    try:
        data = stream.read(n)
    except (OverflowError, MemoryError) as exc:
        raise FormatError(f"corrupt length field: {n} bytes") from exc
    if len(data) != n:
        raise FormatError(f"truncated model file: wanted {n} bytes, got {len(data)}")
    return data


def loads(data: Union[bytes, BinaryIO]) -> Graph:
    """Deserialize a graph produced by :func:`dumps`.

    Raises:
        FormatError: on a bad magic, unsupported version, or truncation.
    """
    stream = io.BytesIO(data) if isinstance(data, (bytes, bytearray)) else data
    if _read_exact(stream, 4) != MAGIC:
        raise FormatError("not a .rmnn model (bad magic)")
    (version,) = struct.unpack("<I", _read_exact(stream, 4))
    if version != VERSION:
        raise FormatError(f"unsupported model version {version} (expected {VERSION})")
    (meta_len,) = struct.unpack("<Q", _read_exact(stream, 8))
    try:
        meta = json.loads(_read_exact(stream, meta_len))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FormatError(f"corrupt model metadata: {exc}") from exc

    graph = Graph(meta.get("name", "graph"))
    graph.inputs = list(meta["inputs"])
    graph.outputs = list(meta["outputs"])
    for name, d in meta.get("descs", {}).items():
        graph.tensor_descs[name] = TensorDesc(name, tuple(d["shape"]), DataType(d["dtype"]))

    (n_constants,) = struct.unpack("<I", _read_exact(stream, 4))
    for _ in range(n_constants):
        (name_len,) = struct.unpack("<H", _read_exact(stream, 2))
        name = _read_exact(stream, name_len).decode("utf-8")
        tag, rank = struct.unpack("<BB", _read_exact(stream, 2))
        if tag not in _TAG_DTYPES:
            raise FormatError(f"constant {name!r}: unknown dtype tag {tag}")
        shape = struct.unpack(f"<{rank}I", _read_exact(stream, 4 * rank))
        (payload_len,) = struct.unpack("<Q", _read_exact(stream, 8))
        dtype = _TAG_DTYPES[tag]
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if rank else dtype.itemsize
        if payload_len != expected:
            raise FormatError(
                f"constant {name!r}: payload {payload_len} bytes != expected {expected}"
            )
        payload = _read_exact(stream, payload_len)
        value = np.frombuffer(payload, dtype=dtype.np_dtype).reshape(shape).copy()
        graph.constants[name] = value
        graph.tensor_descs[name] = TensorDesc(name, shape, dtype)

    # Nodes are appended last so incremental inference in add_node sees
    # constants; Node construction re-validates attrs against schemas.
    for spec in meta["nodes"]:
        graph.add_node(
            spec["op_type"],
            spec["inputs"],
            spec["outputs"],
            _tupled_attrs(spec["attrs"]),
            name=spec["name"],
        )
    graph.validate()
    return graph


def graph_signature(graph: Graph) -> str:
    """A stable content digest of a graph, for cache keying.

    Covers the full structure (nodes, edges, attrs), every tensor
    descriptor (shapes and dtypes — the inputs to scheme selection and
    memory planning), and a cheap fingerprint of each constant: shape,
    dtype and a sample of the payload (first/last 1 KiB) rather than the
    full weight bytes, so signing a many-MiB model stays microseconds.
    Pre-inference artifacts keyed by this signature (schemes, memory plan,
    Winograd matrices) depend only on structure and shapes, so the sampled
    weight fingerprint is strictly extra safety margin.
    """
    h = hashlib.sha256()
    meta = {
        "name": graph.name,
        "inputs": graph.inputs,
        "outputs": graph.outputs,
        "nodes": [
            {
                "name": n.name,
                "op_type": n.op_type,
                "inputs": n.inputs,
                "outputs": n.outputs,
                "attrs": _jsonable_attrs(n.attrs),
            }
            for n in graph.nodes
        ],
        "descs": {
            name: [list(d.shape), d.dtype.value]
            for name, d in sorted(graph.tensor_descs.items())
        },
    }
    h.update(json.dumps(meta, separators=(",", ":"), sort_keys=True).encode("utf-8"))
    for name in sorted(graph.constants):
        value = np.ascontiguousarray(graph.constants[name])
        h.update(name.encode("utf-8"))
        h.update(str((value.shape, value.dtype.str, value.nbytes)).encode("ascii"))
        if value.size:
            flat = value.reshape(-1)
            sample = max(1, 1024 // value.itemsize)
            h.update(flat[:sample].tobytes())
            h.update(flat[-sample:].tobytes())
    return h.hexdigest()


def save_model(graph: Graph, path: str) -> None:
    """Write ``graph`` to ``path`` in the ``.rmnn`` binary format."""
    with open(path, "wb") as fh:
        fh.write(dumps(graph))


def load_model(path: str) -> Graph:
    """Read a graph previously written with :func:`save_model`."""
    with open(path, "rb") as fh:
        return loads(fh)
