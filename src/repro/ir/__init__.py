"""Intermediate representation: tensors, operators, graphs, serialization."""

from .tensor import DataType, Layout, TensorDesc, SIMD_WIDTH, buffer_nbytes, element_count
from .ops import Op, OpSchema, all_op_types, get_schema, register_op
from .graph import Graph, GraphBuilder, GraphError, Node
from .shape_inference import conv_output_hw, infer_node, infer_shapes, resolve_padding
from .serialization import (
    FormatError,
    dumps,
    graph_signature,
    load_model,
    loads,
    save_model,
)

__all__ = [
    "DataType",
    "Layout",
    "TensorDesc",
    "SIMD_WIDTH",
    "buffer_nbytes",
    "element_count",
    "Op",
    "OpSchema",
    "all_op_types",
    "get_schema",
    "register_op",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Node",
    "conv_output_hw",
    "infer_node",
    "infer_shapes",
    "resolve_padding",
    "FormatError",
    "dumps",
    "graph_signature",
    "load_model",
    "loads",
    "save_model",
]
