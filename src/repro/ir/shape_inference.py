"""Per-operator shape inference.

``infer_shapes(graph)`` walks the graph in topological order and fills in
``graph.tensor_descs`` for every intermediate tensor.  This is the
foundation of the paper's *pre-inference* stage: because input sizes are
fixed, every buffer size in the network is known before the first real
inference, enabling memory pre-allocation and cost evaluation (Section 3.2).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .graph import Graph, GraphError, Node
from .ops import Op
from .tensor import DataType, TensorDesc

__all__ = [
    "infer_shapes",
    "infer_node",
    "infer_node_outputs",
    "resolve_padding",
    "conv_output_hw",
]

Shape = Tuple[int, ...]


def resolve_padding(
    pad_mode: str,
    pad: Sequence[int],
    in_hw: Tuple[int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    dilation: Tuple[int, int] = (1, 1),
) -> Tuple[int, int, int, int]:
    """Return explicit (top, bottom, left, right) padding.

    ``"same"`` pads so the output spatial size is ``ceil(in / stride)``;
    ``"valid"`` means no padding; ``"explicit"`` passes ``pad`` through.
    """
    if pad_mode == "explicit":
        top, bottom, left, right = (int(p) for p in pad)
        return top, bottom, left, right
    if pad_mode == "valid":
        return (0, 0, 0, 0)
    if pad_mode == "same":
        result = []
        for size, k, s, d in zip(in_hw, kernel, stride, dilation):
            eff_k = (k - 1) * d + 1
            out = math.ceil(size / s)
            total = max(0, (out - 1) * s + eff_k - size)
            result.append((total // 2, total - total // 2))
        (top, bottom), (left, right) = result
        return top, bottom, left, right
    raise GraphError(f"unknown pad_mode {pad_mode!r}")


def conv_output_hw(
    in_hw: Tuple[int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pads: Tuple[int, int, int, int],
    dilation: Tuple[int, int] = (1, 1),
    ceil_mode: bool = False,
) -> Tuple[int, int]:
    """Output spatial size of a conv/pool window sweep."""
    ih, iw = in_hw
    kh, kw = kernel
    sh, sw = stride
    dh, dw = dilation
    top, bottom, left, right = pads
    eff_kh = (kh - 1) * dh + 1
    eff_kw = (kw - 1) * dw + 1
    rounder = math.ceil if ceil_mode else math.floor
    oh = rounder((ih + top + bottom - eff_kh) / sh) + 1
    ow = rounder((iw + left + right - eff_kw) / sw) + 1
    if oh <= 0 or ow <= 0:
        raise GraphError(
            f"window {kernel} stride {stride} does not fit input {in_hw} with pads {pads}"
        )
    return oh, ow


# ---------------------------------------------------------------------------
# Per-op inference functions: (node, input_descs) -> list of output descs.
# ---------------------------------------------------------------------------
InferFn = Callable[[Node, List[TensorDesc]], List[Tuple[Shape, DataType]]]
_INFER: Dict[str, InferFn] = {}


def _register(op_type: str):
    def deco(fn: InferFn) -> InferFn:
        _INFER[op_type] = fn
        return fn

    return deco


def _conv_like(node: Node, descs: List[TensorDesc], transposed: bool = False):
    x = descs[0]
    if x.rank != 4:
        raise GraphError(f"{node.op_type} {node.name!r}: expected rank-4 input, got {x.shape}")
    n, ic, ih, iw = x.shape
    w_shape = descs[1].shape
    attrs = node.attrs
    kernel = tuple(attrs["kernel"])
    stride = tuple(attrs["stride"])
    dilation = tuple(attrs["dilation"])
    groups = int(attrs["groups"])
    if node.op_type == Op.DEPTHWISE_CONV2D:
        oc = ic
        expected_w = (ic, 1, *kernel)
    elif transposed:
        oc = w_shape[1] * groups
        expected_w = (ic, oc // groups, *kernel)
    else:
        oc = w_shape[0]
        expected_w = (oc, ic // groups, *kernel)
        if ic % groups != 0:
            raise GraphError(f"{node.name!r}: channels {ic} not divisible by groups {groups}")
    if tuple(w_shape) != expected_w:
        raise GraphError(
            f"{node.name!r}: weight shape {tuple(w_shape)} != expected {expected_w}"
        )
    if transposed:
        out_pad = tuple(attrs.get("output_padding", (0, 0)))
        pads = resolve_padding(attrs["pad_mode"], attrs["pad"], (ih, iw), kernel, stride, dilation)
        eff_kh = (kernel[0] - 1) * dilation[0] + 1
        eff_kw = (kernel[1] - 1) * dilation[1] + 1
        oh = (ih - 1) * stride[0] + eff_kh - pads[0] - pads[1] + out_pad[0]
        ow = (iw - 1) * stride[1] + eff_kw - pads[2] - pads[3] + out_pad[1]
    else:
        pads = resolve_padding(attrs["pad_mode"], attrs["pad"], (ih, iw), kernel, stride, dilation)
        oh, ow = conv_output_hw((ih, iw), kernel, stride, pads, dilation)
    return [((n, oc, oh, ow), x.dtype)]


_register(Op.CONV2D)(lambda n, d: _conv_like(n, d))
_register(Op.DEPTHWISE_CONV2D)(lambda n, d: _conv_like(n, d))
_register(Op.CONV_TRANSPOSE2D)(lambda n, d: _conv_like(n, d, transposed=True))


@_register(Op.MATMUL)
def _matmul(node, descs):
    a, b = descs[0].shape, descs[1].shape
    if node.attrs["transpose_a"]:
        a = (*a[:-2], a[-1], a[-2])
    if node.attrs["transpose_b"]:
        b = (*b[:-2], b[-1], b[-2])
    if a[-1] != b[-2]:
        raise GraphError(f"{node.name!r}: matmul inner dims {a[-1]} != {b[-2]}")
    batch = np.broadcast_shapes(a[:-2], b[:-2])
    return [((*batch, a[-2], b[-1]), descs[0].dtype)]


@_register(Op.FULLY_CONNECTED)
def _fc(node, descs):
    x = descs[0]
    units = int(node.attrs["units"])
    in_features = int(np.prod(x.shape[1:]))
    w = descs[1].shape
    if tuple(w) != (units, in_features):
        raise GraphError(f"{node.name!r}: FC weight {tuple(w)} != ({units}, {in_features})")
    return [((x.shape[0], units), x.dtype)]


def _same_shape(node, descs):
    return [(descs[0].shape, descs[0].dtype)]


for _op in (
    Op.BATCH_NORM, Op.RELU, Op.RELU6, Op.PRELU, Op.SIGMOID, Op.TANH,
    Op.SOFTMAX, Op.DROPOUT, Op.IDENTITY, Op.SCALE, Op.QUANTIZE, Op.DEQUANTIZE,
):
    _register(_op)(_same_shape)


def _binary(node, descs):
    try:
        shape = np.broadcast_shapes(descs[0].shape, descs[1].shape)
    except ValueError:
        raise GraphError(
            f"{node.name!r}: shapes {descs[0].shape} and {descs[1].shape} do not broadcast"
        ) from None
    return [(tuple(int(d) for d in shape), descs[0].dtype)]


for _op in (Op.ADD, Op.SUB, Op.MUL, Op.ELTWISE_MAX):
    _register(_op)(_binary)


def _pool(node, descs):
    x = descs[0]
    if x.rank != 4:
        raise GraphError(f"{node.op_type} {node.name!r}: expected rank-4 input, got {x.shape}")
    n, c, ih, iw = x.shape
    attrs = node.attrs
    kernel = tuple(attrs["kernel"])
    stride = tuple(attrs["stride"])
    pads = resolve_padding(attrs["pad_mode"], attrs["pad"], (ih, iw), kernel, stride)
    oh, ow = conv_output_hw((ih, iw), kernel, stride, pads, ceil_mode=attrs["ceil_mode"])
    return [((n, c, oh, ow), x.dtype)]


_register(Op.MAX_POOL)(_pool)
_register(Op.AVG_POOL)(_pool)


@_register(Op.GLOBAL_AVG_POOL)
def _gap(node, descs):
    n, c = descs[0].shape[:2]
    return [((n, c, 1, 1), descs[0].dtype)]


@_register(Op.CONCAT)
def _concat(node, descs):
    axis = int(node.attrs["axis"])
    base = list(descs[0].shape)
    axis = axis % len(base)
    total = 0
    for d in descs:
        shape = list(d.shape)
        if len(shape) != len(base):
            raise GraphError(f"{node.name!r}: concat rank mismatch")
        for i, (a, b) in enumerate(zip(shape, base)):
            if i != axis and a != b:
                raise GraphError(f"{node.name!r}: concat dim {i} mismatch {a} != {b}")
        total += shape[axis]
    base[axis] = total
    return [(tuple(base), descs[0].dtype)]


@_register(Op.SLICE)
def _slice(node, descs):
    shape = list(descs[0].shape)
    axis = int(node.attrs["axis"]) % len(shape)
    start = int(node.attrs["start"])
    end = min(int(node.attrs["end"]), shape[axis])
    if not (0 <= start < end <= shape[axis]):
        raise GraphError(f"{node.name!r}: bad slice [{start}:{end}] on dim {shape[axis]}")
    shape[axis] = end - start
    return [(tuple(shape), descs[0].dtype)]


@_register(Op.RESHAPE)
def _reshape(node, descs):
    in_size = descs[0].size
    target = list(node.attrs["shape"])
    if target.count(-1) > 1:
        raise GraphError(f"{node.name!r}: at most one -1 in reshape target")
    if -1 in target:
        known = int(np.prod([d for d in target if d != -1])) or 1
        if in_size % known != 0:
            raise GraphError(f"{node.name!r}: cannot infer -1 for {target} from {in_size}")
        target[target.index(-1)] = in_size // known
    if int(np.prod(target)) != in_size:
        raise GraphError(f"{node.name!r}: reshape {target} incompatible with {in_size} elements")
    return [(tuple(int(d) for d in target), descs[0].dtype)]


@_register(Op.FLATTEN)
def _flatten(node, descs):
    shape = descs[0].shape
    axis = int(node.attrs["axis"]) % (len(shape) + 1)
    head = int(np.prod(shape[:axis])) or 1
    tail = int(np.prod(shape[axis:])) or 1
    return [((head, tail), descs[0].dtype)]


@_register(Op.PAD)
def _pad(node, descs):
    shape = list(descs[0].shape)
    pads = node.attrs["pads"]  # flat (before_0, after_0, before_1, after_1, ...)
    if len(pads) != 2 * len(shape):
        raise GraphError(f"{node.name!r}: pads length {len(pads)} != 2*rank")
    out = [shape[i] + pads[2 * i] + pads[2 * i + 1] for i in range(len(shape))]
    return [(tuple(out), descs[0].dtype)]


@_register(Op.RESIZE)
def _resize(node, descs):
    n, c, h, w = descs[0].shape
    sh, sw = node.attrs["scale"]
    return [((n, c, int(h * sh), int(w * sw)), descs[0].dtype)]


@_register(Op.REDUCE_MEAN)
def _reduce_mean(node, descs):
    shape = list(descs[0].shape)
    axes = [a % len(shape) for a in node.attrs["axes"]]
    if node.attrs["keepdims"]:
        out = [1 if i in axes else d for i, d in enumerate(shape)]
    else:
        out = [d for i, d in enumerate(shape) if i not in axes]
    return [(tuple(out or (1,)), descs[0].dtype)]


@_register(Op.SPLIT)
def _split(node, descs):
    shape = list(descs[0].shape)
    axis = int(node.attrs["axis"]) % len(shape)
    sizes = [int(s) for s in node.attrs["sizes"]]
    if sum(sizes) != shape[axis]:
        raise GraphError(
            f"{node.name!r}: split sizes {sizes} do not sum to dim {shape[axis]}"
        )
    if len(sizes) != len(node.outputs):
        raise GraphError(
            f"{node.name!r}: {len(sizes)} sizes but {len(node.outputs)} outputs"
        )
    results = []
    for size in sizes:
        out = list(shape)
        out[axis] = size
        results.append((tuple(out), descs[0].dtype))
    return results


@_register(Op.TRANSPOSE)
def _transpose(node, descs):
    shape = descs[0].shape
    perm = [p % len(shape) for p in node.attrs["perm"]]
    if sorted(perm) != list(range(len(shape))):
        raise GraphError(f"{node.name!r}: perm {perm} is not a permutation of rank {len(shape)}")
    return [(tuple(shape[p] for p in perm), descs[0].dtype)]


@_register(Op.GATHER)
def _gather(node, descs):
    data, indices = descs
    axis = int(node.attrs["axis"]) % data.rank
    out = data.shape[:axis] + indices.shape + data.shape[axis + 1 :]
    return [(out, data.dtype)]


@_register(Op.LAYER_NORM)
def _layer_norm(node, descs):
    x, gamma, beta = descs
    axis = int(node.attrs["axis"]) % x.rank
    if gamma.shape != (x.shape[axis],) or beta.shape != (x.shape[axis],):
        raise GraphError(
            f"{node.name!r}: gamma/beta must be ({x.shape[axis]},), "
            f"got {gamma.shape}/{beta.shape}"
        )
    return [(x.shape, x.dtype)]


_register(Op.GELU)(_same_shape)


@_register(Op.LSTM)
def _lstm(node, descs):
    x = descs[0]
    if x.rank != 3:
        raise GraphError(f"{node.name!r}: LSTM expects (N, T, features), got {x.shape}")
    n, t, features = x.shape
    hidden = int(node.attrs["hidden_size"])
    w_ih, w_hh = descs[1], descs[2]
    if w_ih.shape != (4 * hidden, features):
        raise GraphError(f"{node.name!r}: w_ih {w_ih.shape} != ({4 * hidden}, {features})")
    if w_hh.shape != (4 * hidden, hidden):
        raise GraphError(f"{node.name!r}: w_hh {w_hh.shape} != ({4 * hidden}, {hidden})")
    if node.attrs["return_sequences"]:
        return [((n, t, hidden), x.dtype)]
    return [((n, hidden), x.dtype)]


@_register(Op.ATTENTION)
def _attention(node, descs):
    q, k, v = descs[0], descs[1], descs[2]
    if q.rank != 4:
        raise GraphError(
            f"{node.name!r}: attention expects (N, H, Tq, dh) queries, got {q.shape}"
        )
    if k.shape != q.shape or v.shape != q.shape:
        raise GraphError(
            f"{node.name!r}: attention k/v must match q {q.shape}, "
            f"got {k.shape}/{v.shape}"
        )
    if len(descs) not in (3, 6):
        raise GraphError(
            f"{node.name!r}: attention takes (q, k, v) or "
            f"(q, k, v, lengths, k_cache, v_cache); got {len(descs)} inputs"
        )
    if len(descs) == 6:
        lengths, k_cache, v_cache = descs[3], descs[4], descs[5]
        if lengths.shape != (q.shape[0],):
            raise GraphError(
                f"{node.name!r}: lengths must be ({q.shape[0]},), got {lengths.shape}"
            )
        if not np.issubdtype(lengths.dtype.np_dtype, np.integer):
            raise GraphError(f"{node.name!r}: lengths must be integer-typed")
        expect = (q.shape[0], q.shape[1], k_cache.shape[2], q.shape[3])
        if k_cache.shape != expect or v_cache.shape != expect:
            raise GraphError(
                f"{node.name!r}: k/v cache must be (N, H, cap, dh) = {expect}, "
                f"got {k_cache.shape}/{v_cache.shape}"
            )
    return [(q.shape, q.dtype)]


def infer_node_outputs(graph: Graph, node: Node) -> List[Tuple[Shape, DataType]]:
    """Compute ``node``'s output ``(shape, dtype)`` pairs without mutating.

    This is the side-effect-free core of :func:`infer_node`; the graph
    linter uses it to re-derive shapes and cross-check the recorded
    descriptors.

    Raises:
        GraphError: if an input descriptor is missing, the op has no
            inference rule, or shapes mismatch.
    """
    if node.op_type == Op.INPUT:
        return []
    try:
        fn = _INFER[node.op_type]
    except KeyError:
        raise GraphError(f"no shape inference for op {node.op_type!r}") from None
    descs = []
    for inp in node.inputs:
        if inp not in graph.tensor_descs:
            raise GraphError(f"node {node.name!r}: input {inp!r} has no descriptor yet")
        descs.append(graph.tensor_descs[inp])
    results = fn(node, descs)
    if len(results) != len(node.outputs):
        raise GraphError(
            f"node {node.name!r}: inference produced {len(results)} shapes "
            f"for {len(node.outputs)} outputs"
        )
    return results


def infer_node(graph: Graph, node: Node) -> None:
    """Infer and record the output descriptors for a single node.

    Raises:
        GraphError: if an input descriptor is missing or shapes mismatch.
    """
    results = infer_node_outputs(graph, node)
    for out_name, (shape, dtype) in zip(node.outputs, results):
        existing = graph.tensor_descs.get(out_name)
        desc = TensorDesc(out_name, shape, dtype)
        if existing is not None and existing.shape != desc.shape:
            raise GraphError(
                f"tensor {out_name!r}: inferred {desc.shape} conflicts with {existing.shape}"
            )
        graph.tensor_descs[out_name] = desc


def infer_shapes(graph: Graph) -> Graph:
    """Run shape inference over the whole graph in topological order."""
    for node in graph.toposort():
        infer_node(graph, node)
    return graph
