"""Operator definitions and the operator registry.

Every operator the engine understands is described by an :class:`OpSchema`:
its type name, how many inputs it takes, the attributes it accepts (with
defaults), and a rough multiply-count formula used by the pre-inference cost
model (paper Eq. 5 measures operator complexity in MULs).

The registry is the single source of truth shared by the converter, shape
inference, kernels, backends (which declare *which* of these ops they
support — paper Table 4) and the baseline engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["OpSchema", "register_op", "get_schema", "all_op_types", "Op"]


# ---------------------------------------------------------------------------
# Operator type names.  Kept as plain strings (like ONNX) so that user
# extensions can register new types without touching an enum.
# ---------------------------------------------------------------------------
class Op:
    """Namespace of built-in operator type names."""

    INPUT = "Input"
    CONSTANT = "Constant"
    CONV2D = "Conv2D"
    DEPTHWISE_CONV2D = "DepthwiseConv2D"
    CONV_TRANSPOSE2D = "ConvTranspose2D"
    MATMUL = "MatMul"
    FULLY_CONNECTED = "FullyConnected"
    BATCH_NORM = "BatchNorm"
    RELU = "ReLU"
    RELU6 = "ReLU6"
    PRELU = "PReLU"
    SIGMOID = "Sigmoid"
    TANH = "Tanh"
    SOFTMAX = "Softmax"
    MAX_POOL = "MaxPool"
    AVG_POOL = "AvgPool"
    GLOBAL_AVG_POOL = "GlobalAvgPool"
    ADD = "Add"
    SUB = "Sub"
    MUL = "Mul"
    CONCAT = "Concat"
    SLICE = "Slice"
    RESHAPE = "Reshape"
    FLATTEN = "Flatten"
    PAD = "Pad"
    RESIZE = "Resize"
    REDUCE_MEAN = "ReduceMean"
    DROPOUT = "Dropout"
    IDENTITY = "Identity"
    SCALE = "Scale"
    ELTWISE_MAX = "EltwiseMax"
    QUANTIZE = "Quantize"
    DEQUANTIZE = "Dequantize"
    # sequence/attention operators (the paper's Figure 1 lists RNN/LSTM/
    # Transformer among the model families a universal engine must run)
    SPLIT = "Split"
    TRANSPOSE = "Transpose"
    GATHER = "Gather"
    LAYER_NORM = "LayerNorm"
    GELU = "Gelu"
    LSTM = "LSTM"
    ATTENTION = "Attention"


MulFn = Callable[[Sequence[Tuple[int, ...]], Tuple[int, ...], Mapping[str, Any]], int]


@dataclass(frozen=True)
class OpSchema:
    """Static description of an operator type.

    Attributes:
        op_type: registry key, e.g. ``"Conv2D"``.
        min_inputs / max_inputs: accepted input arity (weights count as
            inputs, matching ONNX convention).
        attrs: attribute names mapped to default values (``...`` marks a
            required attribute with no default).
        mul_count: optional callable ``(input_shapes, output_shape, attrs)``
            returning the number of multiplications the op performs — the
            complexity measure used by the paper's cost model (Eq. 5).
        compute_intensive: whether the op should be considered for
            scheme-selection during pre-inference.
    """

    op_type: str
    min_inputs: int
    max_inputs: int
    attrs: Mapping[str, Any] = field(default_factory=dict)
    mul_count: Optional[MulFn] = None
    compute_intensive: bool = False

    def validate_attrs(self, given: Mapping[str, Any]) -> Dict[str, Any]:
        """Merge ``given`` attributes over the schema defaults.

        Raises:
            ValueError: on unknown attributes or missing required ones.
        """
        merged: Dict[str, Any] = {}
        for key, default in self.attrs.items():
            if key in given:
                merged[key] = given[key]
            elif default is ...:
                raise ValueError(f"{self.op_type}: missing required attribute {key!r}")
            else:
                merged[key] = default
        unknown = set(given) - set(self.attrs)
        if unknown:
            raise ValueError(f"{self.op_type}: unknown attributes {sorted(unknown)}")
        return merged


_REGISTRY: Dict[str, OpSchema] = {}


def register_op(schema: OpSchema) -> OpSchema:
    """Add ``schema`` to the global registry (overwriting is an error)."""
    if schema.op_type in _REGISTRY:
        raise ValueError(f"operator {schema.op_type!r} already registered")
    _REGISTRY[schema.op_type] = schema
    return schema


def get_schema(op_type: str) -> OpSchema:
    """Look up the schema for ``op_type``.

    Raises:
        KeyError: if the operator type was never registered.
    """
    try:
        return _REGISTRY[op_type]
    except KeyError:
        raise KeyError(f"unknown operator type {op_type!r}") from None


def all_op_types() -> Tuple[str, ...]:
    """All registered operator type names, sorted."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# MUL-count formulas (paper Eq. 5: Cop = MUL / FLOPS).
# ---------------------------------------------------------------------------

def _conv_muls(input_shapes, output_shape, attrs) -> int:
    ic = input_shapes[0][1]
    groups = attrs.get("groups", 1)
    kh, kw = attrs["kernel"]
    n, oc, oh, ow = output_shape
    return n * oc * oh * ow * (ic // groups) * kh * kw


def _depthwise_muls(input_shapes, output_shape, attrs) -> int:
    kh, kw = attrs["kernel"]
    n, oc, oh, ow = output_shape
    return n * oc * oh * ow * kh * kw


def _deconv_muls(input_shapes, output_shape, attrs) -> int:
    n, ic, ih, iw = input_shapes[0]
    oc = output_shape[1]
    kh, kw = attrs["kernel"]
    return n * ic * ih * iw * oc * kh * kw


def _matmul_muls(input_shapes, output_shape, attrs) -> int:
    k = input_shapes[0][-1]
    out = 1
    for d in output_shape:
        out *= d
    return out * k


def _fc_muls(input_shapes, output_shape, attrs) -> int:
    in_features = 1
    for d in input_shapes[0][1:]:
        in_features *= d
    n, out_features = output_shape
    return n * out_features * in_features


def _elementwise_muls(input_shapes, output_shape, attrs) -> int:
    out = 1
    for d in output_shape:
        out *= d
    return out


def _pool_muls(input_shapes, output_shape, attrs) -> int:
    kh, kw = attrs.get("kernel", (1, 1))
    out = 1
    for d in output_shape:
        out *= d
    return out * kh * kw


def _zero_muls(input_shapes, output_shape, attrs) -> int:
    return 0


# ---------------------------------------------------------------------------
# Built-in schemas.
# ---------------------------------------------------------------------------
_CONV_ATTRS = {
    "kernel": ...,          # (kh, kw)
    "stride": (1, 1),
    "dilation": (1, 1),
    "pad": (0, 0, 0, 0),    # (top, bottom, left, right)
    "pad_mode": "explicit",  # "explicit" | "same" | "valid"
    "groups": 1,
    "has_bias": True,
    "activation": None,      # fused activation: None | "relu" | "relu6"
    # int8 post-training quantization (set by repro.converter.quantize):
    "input_scale": None,     # activation scale; weights are int8 when set
    "weight_scales": None,   # per-output-channel weight scales
}

register_op(OpSchema(Op.INPUT, 0, 0, {"shape": ..., "dtype": "float32"}, _zero_muls))
register_op(OpSchema(Op.CONSTANT, 0, 0, {"value_name": ...}, _zero_muls))
register_op(OpSchema(Op.CONV2D, 2, 3, _CONV_ATTRS, _conv_muls, compute_intensive=True))
register_op(
    OpSchema(Op.DEPTHWISE_CONV2D, 2, 3, _CONV_ATTRS, _depthwise_muls, compute_intensive=True)
)
register_op(
    OpSchema(
        Op.CONV_TRANSPOSE2D,
        2,
        3,
        {**_CONV_ATTRS, "output_padding": (0, 0)},
        _deconv_muls,
        compute_intensive=True,
    )
)
register_op(
    OpSchema(
        Op.MATMUL,
        2,
        2,
        # rowwise: compute each output row as an independent vector-matrix
        # product.  Slower, but bitwise invariant to the leading (token)
        # dimension — required by autoregressive decode, where step t must
        # reproduce row t of the full-sequence product exactly.
        # weight_scales: per-output-channel scales when the rhs constant is
        # int8 (set by repro.quant.quantize_graph); activations quantize
        # dynamically per row, so no input_scale is needed here.
        {"transpose_a": False, "transpose_b": False, "rowwise": False,
         "weight_scales": None},
        _matmul_muls,
        compute_intensive=True,
    )
)
register_op(
    OpSchema(
        Op.FULLY_CONNECTED,
        2,
        3,
        {"units": ..., "input_scale": None, "weight_scales": None},
        _fc_muls,
        compute_intensive=True,
    )
)
register_op(OpSchema(Op.BATCH_NORM, 1, 5, {"epsilon": 1e-5}, _elementwise_muls))
register_op(OpSchema(Op.RELU, 1, 1, {}, _zero_muls))
register_op(OpSchema(Op.RELU6, 1, 1, {}, _zero_muls))
register_op(OpSchema(Op.PRELU, 2, 2, {}, _elementwise_muls))
register_op(OpSchema(Op.SIGMOID, 1, 1, {}, _elementwise_muls))
register_op(OpSchema(Op.TANH, 1, 1, {}, _elementwise_muls))
register_op(OpSchema(Op.SOFTMAX, 1, 1, {"axis": 1}, _elementwise_muls))
_POOL_ATTRS = {
    "kernel": ...,
    "stride": (1, 1),
    "pad": (0, 0, 0, 0),
    "pad_mode": "explicit",
    "ceil_mode": False,
    "count_include_pad": False,
}
register_op(OpSchema(Op.MAX_POOL, 1, 1, _POOL_ATTRS, _pool_muls))
register_op(OpSchema(Op.AVG_POOL, 1, 1, _POOL_ATTRS, _pool_muls))
register_op(OpSchema(Op.GLOBAL_AVG_POOL, 1, 1, {}, _elementwise_muls))
register_op(OpSchema(Op.ADD, 2, 2, {}, _elementwise_muls))
register_op(OpSchema(Op.SUB, 2, 2, {}, _elementwise_muls))
register_op(OpSchema(Op.MUL, 2, 2, {}, _elementwise_muls))
register_op(OpSchema(Op.ELTWISE_MAX, 2, 2, {}, _elementwise_muls))
register_op(OpSchema(Op.CONCAT, 1, 64, {"axis": 1}, _zero_muls))
register_op(
    OpSchema(Op.SLICE, 1, 1, {"axis": ..., "start": ..., "end": ...}, _zero_muls)
)
register_op(OpSchema(Op.RESHAPE, 1, 1, {"shape": ...}, _zero_muls))
register_op(OpSchema(Op.FLATTEN, 1, 1, {"axis": 1}, _zero_muls))
register_op(OpSchema(Op.PAD, 1, 1, {"pads": ..., "value": 0.0}, _zero_muls))
register_op(
    OpSchema(Op.RESIZE, 1, 1, {"scale": ..., "mode": "nearest"}, _elementwise_muls)
)
register_op(OpSchema(Op.REDUCE_MEAN, 1, 1, {"axes": ..., "keepdims": True}, _elementwise_muls))
register_op(OpSchema(Op.DROPOUT, 1, 1, {"ratio": 0.5}, _zero_muls))
register_op(OpSchema(Op.IDENTITY, 1, 1, {}, _zero_muls))
register_op(OpSchema(Op.SCALE, 1, 3, {}, _elementwise_muls))
register_op(OpSchema(Op.QUANTIZE, 1, 1, {"scale": ..., "zero_point": 0}, _elementwise_muls))
register_op(OpSchema(Op.DEQUANTIZE, 1, 1, {"scale": ..., "zero_point": 0}, _elementwise_muls))


def _lstm_muls(input_shapes, output_shape, attrs) -> int:
    n, t, features = input_shapes[0]
    hidden = int(attrs["hidden_size"])
    # four gates, each an (features + hidden) x hidden product per step
    return n * t * 4 * hidden * (features + hidden)


register_op(OpSchema(Op.SPLIT, 1, 1, {"axis": 1, "sizes": ...}, _zero_muls))
register_op(OpSchema(Op.TRANSPOSE, 1, 1, {"perm": ...}, _zero_muls))
register_op(OpSchema(Op.GATHER, 2, 2, {"axis": 0}, _zero_muls))
register_op(OpSchema(Op.LAYER_NORM, 3, 3, {"axis": -1, "epsilon": 1e-5}, _elementwise_muls))
register_op(OpSchema(Op.GELU, 1, 1, {}, _elementwise_muls))
register_op(
    OpSchema(
        Op.LSTM,
        3,
        4,
        {"hidden_size": ..., "return_sequences": False},
        _lstm_muls,
        compute_intensive=True,
    )
)


def _attention_muls(input_shapes, output_shape, attrs) -> int:
    n, h, tq, dh = input_shapes[0]
    cached = input_shapes[4][2] if len(input_shapes) >= 5 else 0
    # scores (q . k) plus context (weights . v) per visible key, averaged
    # over the causal ramp: roughly keys_visible = cached + tq/2 per row.
    visible = cached + max(1, tq // 2)
    return n * h * tq * visible * dh * 2


register_op(
    OpSchema(
        Op.ATTENTION,
        # q, k, v [, lengths, k_cache, v_cache]
        3,
        6,
        {"causal": True, "scale": None},
        _attention_muls,
        compute_intensive=True,
    )
)
