"""Tensor descriptors, data types and data layouts for the repro IR.

The engine describes data flowing through a graph with :class:`TensorDesc`
objects: a shape, a :class:`DataType` and a :class:`Layout`.  Actual numeric
payloads are plain ``numpy.ndarray`` values held either in the graph's
constant table (weights) or in backend-managed buffers at execution time.

Layouts follow the paper (Section 3.3.1): the canonical interchange layout is
``NCHW``; compute kernels may repack activations into ``NC4HW4``, which splits
the channel dimension into groups of ``V = 4`` contiguous elements so that a
"SIMD lane" (a trailing numpy axis of size 4) can process 4 channels per
instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "DataType",
    "Layout",
    "TensorDesc",
    "SIMD_WIDTH",
    "element_count",
    "buffer_nbytes",
]

#: Vector width V used by the NC4HW4 layout (the paper fixes V = 4).
SIMD_WIDTH = 4


class DataType(enum.Enum):
    """Numeric element types supported by the engine."""

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    INT32 = "int32"
    INT8 = "int8"
    UINT8 = "uint8"

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype used to store elements of this type."""
        return np.dtype(self.value)

    @property
    def itemsize(self) -> int:
        """Size in bytes of one element."""
        return self.np_dtype.itemsize

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DataType":
        """Map a numpy dtype to the engine's :class:`DataType`.

        Raises:
            ValueError: if the numpy dtype has no engine equivalent.
        """
        name = np.dtype(dtype).name
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unsupported numpy dtype {dtype!r}")


class Layout(enum.Enum):
    """Physical data layouts understood by the kernels."""

    #: Batch, channel, height, width — the canonical interchange layout.
    NCHW = "NCHW"
    #: Channel-blocked layout: [N, ceil(C/4), H, W, 4]; see module docstring.
    NC4HW4 = "NC4HW4"
    #: Flat 2-D layout for matrices / fully-connected activations.
    NC = "NC"


@dataclass(frozen=True)
class TensorDesc:
    """Static description of a tensor: shape, element type and layout.

    ``shape`` always refers to the *logical* NCHW (or NC) extent; a tensor in
    ``NC4HW4`` layout still reports its logical channel count, and the packed
    physical extent is computed by :meth:`physical_shape`.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DataType = DataType.FLOAT32
    layout: Layout = Layout.NCHW

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        for dim in self.shape:
            if dim < 0:
                raise ValueError(f"tensor {self.name!r} has negative dim in {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        """Number of logical elements."""
        return element_count(self.shape)

    @property
    def nbytes(self) -> int:
        """Bytes required to store the tensor in its physical layout."""
        return buffer_nbytes(self.shape, self.dtype, self.layout)

    def physical_shape(self) -> Tuple[int, ...]:
        """The shape of the numpy buffer realizing this tensor.

        For ``NC4HW4`` the channel axis is padded up to a multiple of
        :data:`SIMD_WIDTH` and split into ``(C/4, ..., 4)``.
        """
        if self.layout is Layout.NC4HW4:
            if self.rank != 4:
                raise ValueError(f"NC4HW4 requires rank-4 logical shape, got {self.shape}")
            n, c, h, w = self.shape
            c4 = (c + SIMD_WIDTH - 1) // SIMD_WIDTH
            return (n, c4, h, w, SIMD_WIDTH)
        return self.shape

    def with_layout(self, layout: Layout) -> "TensorDesc":
        return TensorDesc(self.name, self.shape, self.dtype, layout)

    def with_name(self, name: str) -> "TensorDesc":
        return TensorDesc(name, self.shape, self.dtype, self.layout)


def element_count(shape: Sequence[int]) -> int:
    """Product of the dims of ``shape`` (1 for a scalar / empty shape)."""
    count = 1
    for dim in shape:
        count *= int(dim)
    return count


def buffer_nbytes(shape: Sequence[int], dtype: DataType, layout: Layout = Layout.NCHW) -> int:
    """Bytes needed for a physical buffer holding ``shape`` in ``layout``."""
    if layout is Layout.NC4HW4:
        if len(shape) != 4:
            raise ValueError(f"NC4HW4 requires rank-4 shape, got {tuple(shape)}")
        n, c, h, w = (int(d) for d in shape)
        c4 = (c + SIMD_WIDTH - 1) // SIMD_WIDTH
        return n * c4 * h * w * SIMD_WIDTH * dtype.itemsize
    return element_count(shape) * dtype.itemsize
