"""Computational graph: nodes, validation, topological ordering and a builder.

A :class:`Graph` is a flat SSA-style structure, close to the paper's ``.mnn``
model format: every tensor has a unique string name, nodes consume and
produce tensor names, weights live in a constant table keyed by tensor name.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .ops import Op, get_schema
from .tensor import DataType, Layout, TensorDesc

__all__ = ["Node", "Graph", "GraphBuilder", "GraphError"]


class GraphError(ValueError):
    """Raised when a graph is structurally invalid.

    ``diagnostics`` carries the structured findings
    (:class:`repro.analysis.Diagnostic`) when the error aggregates several
    problems — :meth:`Graph.validate` reports *all* violations at once
    rather than stopping at the first.
    """

    def __init__(self, message: str, diagnostics: Optional[Sequence[Any]] = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


@dataclass
class Node:
    """One operator instance in the graph.

    Attributes:
        name: unique node name (defaults to its first output's name).
        op_type: registered operator type (see :mod:`repro.ir.ops`).
        inputs: tensor names consumed, in schema order (weights included).
        outputs: tensor names produced.
        attrs: attribute dict, validated against the op schema.
    """

    name: str
    op_type: str
    inputs: List[str]
    outputs: List[str]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        schema = get_schema(self.op_type)
        n_data_inputs = len(self.inputs)
        if not (schema.min_inputs <= n_data_inputs <= schema.max_inputs):
            raise GraphError(
                f"node {self.name!r} ({self.op_type}): {n_data_inputs} inputs, "
                f"schema allows [{schema.min_inputs}, {schema.max_inputs}]"
            )
        self.attrs = schema.validate_attrs(self.attrs)


class Graph:
    """A dataflow graph over named tensors.

    The constant table holds weights/parameters as numpy arrays; tensor
    descriptors (``tensor_descs``) are filled in by shape inference and are
    keyed by tensor name.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.constants: Dict[str, np.ndarray] = {}
        self.tensor_descs: Dict[str, TensorDesc] = {}

    # -- construction -------------------------------------------------------
    def add_input(self, name: str, shape: Sequence[int], dtype: DataType = DataType.FLOAT32) -> str:
        if name in self.tensor_descs or name in self.constants:
            raise GraphError(f"duplicate tensor name {name!r}")
        self.inputs.append(name)
        self.tensor_descs[name] = TensorDesc(name, tuple(shape), dtype)
        return name

    def add_constant(self, name: str, value: np.ndarray) -> str:
        if name in self.tensor_descs or name in self.constants:
            raise GraphError(f"duplicate tensor name {name!r}")
        value = np.asarray(value)
        self.constants[name] = value
        self.tensor_descs[name] = TensorDesc(name, value.shape, DataType.from_numpy(value.dtype))
        return name

    def add_node(
        self,
        op_type: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        attrs: Optional[Mapping[str, Any]] = None,
        name: Optional[str] = None,
    ) -> Node:
        node = Node(
            name=name or outputs[0],
            op_type=op_type,
            inputs=list(inputs),
            outputs=list(outputs),
            attrs=dict(attrs or {}),
        )
        self.nodes.append(node)
        # Incremental shape inference keeps descriptors live during
        # construction (GraphBuilder needs channel counts mid-build).  If an
        # input descriptor is not known yet, the final infer_shapes() pass
        # will fill it in (or raise).
        from .shape_inference import infer_node

        try:
            infer_node(self, node)
        except GraphError:
            pass
        return node

    def mark_output(self, name: str) -> None:
        if name not in self.outputs:
            self.outputs.append(name)

    def shallow_clone(self) -> "Graph":
        """A structural alias with independent descriptor/IO containers.

        Nodes and the constant table are *shared* (they are treated as
        immutable by inference); ``inputs``/``outputs``/``tensor_descs``
        are copied so shape inference on the clone — e.g. a
        :meth:`~repro.core.Session.resize` — cannot corrupt descriptors
        seen by other sessions holding the original graph.
        """
        clone = Graph(self.name)
        clone.nodes = self.nodes
        clone.constants = self.constants
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        clone.tensor_descs = dict(self.tensor_descs)
        return clone

    # -- queries -------------------------------------------------------------
    def producer_map(self) -> Dict[str, Node]:
        """Map each tensor name to the node that produces it."""
        producers: Dict[str, Node] = {}
        for node in self.nodes:
            for out in node.outputs:
                if out in producers:
                    raise GraphError(f"tensor {out!r} produced by two nodes")
                producers[out] = node
        return producers

    def consumer_map(self) -> Dict[str, List[Node]]:
        """Map each tensor name to the nodes consuming it."""
        consumers: Dict[str, List[Node]] = {}
        for node in self.nodes:
            for inp in node.inputs:
                consumers.setdefault(inp, []).append(node)
        return consumers

    def desc(self, tensor: str) -> TensorDesc:
        """The :class:`TensorDesc` for ``tensor`` (requires shape inference)."""
        try:
            return self.tensor_descs[tensor]
        except KeyError:
            raise GraphError(f"no descriptor for tensor {tensor!r}; run shape inference") from None

    # -- validation & ordering ------------------------------------------------
    def check(self) -> List[Any]:
        """Collect *all* structural violations as diagnostics.

        Unlike :meth:`validate` this never raises: it returns a list of
        :class:`repro.analysis.Diagnostic` records (empty when the graph is
        structurally sound) covering undefined inputs, unproduced outputs,
        double-produced tensors, duplicate node names and cycles.
        """
        from ..analysis.diagnostics import error  # deferred: avoids import cycle

        diags: List[Any] = []
        producers: Dict[str, Node] = {}
        doubled = False
        for node in self.nodes:
            for out in node.outputs:
                if out in producers:
                    doubled = True
                    diags.append(error(
                        "double-producer",
                        f"tensor {out!r} produced by two nodes "
                        f"({producers[out].name!r} and {node.name!r})",
                        node=node.name, tensor=out,
                        hint="rename one of the outputs",
                    ))
                else:
                    producers[out] = node
        seen_names: Dict[str, Node] = {}
        for node in self.nodes:
            if node.name in seen_names:
                diags.append(error(
                    "duplicate-node-name",
                    f"node name {node.name!r} used by two nodes",
                    node=node.name,
                ))
            else:
                seen_names[node.name] = node
        available = set(self.inputs) | set(self.constants)
        for tensor in self.outputs:
            if tensor not in producers and tensor not in available:
                diags.append(error(
                    "unproduced-output",
                    f"graph output {tensor!r} is never produced",
                    tensor=tensor,
                ))
        for node in self.nodes:
            for inp in node.inputs:
                if inp not in producers and inp not in available:
                    diags.append(error(
                        "dangling-input",
                        f"node {node.name!r} reads undefined tensor {inp!r}",
                        node=node.name, tensor=inp,
                    ))
        # Cycle check: toposort must cover every node.  Skipped when a
        # tensor is double-produced (producer_map would raise).
        if not doubled and len(self.toposort()) != len(self.nodes):
            diags.append(error("cycle", "graph contains a cycle"))
        return diags

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` on failure.

        All violations are gathered first and raised together: the
        exception message joins every finding and ``exc.diagnostics``
        holds the structured records.
        """
        diags = self.check()
        if diags:
            raise GraphError("; ".join(d.message for d in diags), diags)

    def toposort(self) -> List[Node]:
        """Nodes in a valid execution order (Kahn's algorithm).

        Nodes involved in a cycle are omitted; :meth:`validate` turns that
        into an error.
        """
        producers = self.producer_map()
        indegree: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        for i, node in enumerate(self.nodes):
            deps = {
                id(producers[inp])
                for inp in node.inputs
                if inp in producers and producers[inp] is not node
            }
            indegree[i] = len(deps)
        by_id = {id(node): i for i, node in enumerate(self.nodes)}
        for i, node in enumerate(self.nodes):
            for inp in node.inputs:
                producer = producers.get(inp)
                if producer is not None and producer is not node:
                    dependents.setdefault(by_id[id(producer)], []).append(i)
        ready = deque(i for i, deg in indegree.items() if deg == 0)
        order: List[Node] = []
        seen = set()
        while ready:
            i = ready.popleft()
            if i in seen:
                continue
            seen.add(i)
            order.append(self.nodes[i])
            for j in dependents.get(i, ()):  # may contain duplicates; indegree guards
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
        return order

    # -- misc ------------------------------------------------------------------
    def op_histogram(self) -> Dict[str, int]:
        """Count of nodes per op type (used by Table 4 style reports)."""
        hist: Dict[str, int] = {}
        for node in self.nodes:
            hist[node.op_type] = hist.get(node.op_type, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph({self.name!r}, nodes={len(self.nodes)}, "
            f"inputs={self.inputs}, outputs={self.outputs})"
        )


class GraphBuilder:
    """Convenience API for constructing graphs in model-zoo code.

    Every method returns the output tensor name so calls can be chained::

        b = GraphBuilder("net")
        x = b.input("data", (1, 3, 224, 224))
        x = b.conv(x, oc=32, kernel=3, stride=2, pad_mode="same", activation="relu")
        b.output(b.softmax(b.fc(b.global_avg_pool(x), units=1000)))
        graph = b.finish()
    """

    def __init__(self, name: str = "graph", seed: int = 0) -> None:
        self.graph = Graph(name)
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    # -- internals ---------------------------------------------------------
    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}_{self._counter}"

    def _weight(self, hint: str, shape: Tuple[int, ...], scale: Optional[float] = None) -> str:
        if scale is None:
            fan_in = int(np.prod(shape[1:])) or 1
            scale = float(np.sqrt(2.0 / fan_in))
        value = self._rng.standard_normal(shape, dtype=np.float32) * np.float32(scale)
        return self.graph.add_constant(self._fresh(hint), value)

    @staticmethod
    def _pair(v) -> Tuple[int, int]:
        if isinstance(v, (tuple, list)):
            return int(v[0]), int(v[1])
        return int(v), int(v)

    # -- graph I/O ------------------------------------------------------------
    def input(self, name: str, shape: Sequence[int], dtype: DataType = DataType.FLOAT32) -> str:
        return self.graph.add_input(name, shape, dtype)

    def constant(self, value: np.ndarray, name: Optional[str] = None) -> str:
        return self.graph.add_constant(name or self._fresh("const"), value)

    def output(self, *names: str) -> None:
        for name in names:
            self.graph.mark_output(name)

    def finish(self) -> Graph:
        from .shape_inference import infer_shapes

        self.graph.validate()
        infer_shapes(self.graph)
        return self.graph

    # -- layers ------------------------------------------------------------
    def conv(
        self,
        x: str,
        oc: int,
        kernel,
        stride=1,
        pad_mode: str = "same",
        pad=(0, 0, 0, 0),
        dilation=1,
        groups: int = 1,
        bias: bool = True,
        activation: Optional[str] = None,
        ic: Optional[int] = None,
        name: Optional[str] = None,
    ) -> str:
        kh, kw = self._pair(kernel)
        if ic is None:
            ic = self.graph.desc(x).shape[1] if x in self.graph.tensor_descs else None
        if ic is None:
            raise GraphError("conv: input channel count unknown; pass ic=")
        w = self._weight("weight", (oc, ic // groups, kh, kw))
        inputs = [x, w]
        if bias:
            inputs.append(self._weight("bias", (oc,), scale=0.01))
        out = name or self._fresh("conv")
        self.graph.add_node(
            Op.CONV2D,
            inputs,
            [out],
            {
                "kernel": (kh, kw),
                "stride": self._pair(stride),
                "dilation": self._pair(dilation),
                "pad": tuple(pad),
                "pad_mode": pad_mode,
                "groups": groups,
                "has_bias": bias,
                "activation": activation,
            },
        )
        return out

    def depthwise_conv(
        self,
        x: str,
        kernel,
        stride=1,
        pad_mode: str = "same",
        pad=(0, 0, 0, 0),
        dilation=1,
        bias: bool = True,
        activation: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        kh, kw = self._pair(kernel)
        channels = self.graph.desc(x).shape[1]
        w = self._weight("dw_weight", (channels, 1, kh, kw))
        inputs = [x, w]
        if bias:
            inputs.append(self._weight("dw_bias", (channels,), scale=0.01))
        out = name or self._fresh("dwconv")
        self.graph.add_node(
            Op.DEPTHWISE_CONV2D,
            inputs,
            [out],
            {
                "kernel": (kh, kw),
                "stride": self._pair(stride),
                "dilation": self._pair(dilation),
                "pad": tuple(pad),
                "pad_mode": pad_mode,
                "groups": channels,
                "has_bias": bias,
                "activation": activation,
            },
        )
        return out

    def batch_norm(self, x: str, name: Optional[str] = None) -> str:
        channels = self.graph.desc(x).shape[1]
        gamma = self.constant(np.ones(channels, np.float32))
        beta = self.constant(np.zeros(channels, np.float32))
        mean = self.constant(self._rng.standard_normal(channels).astype(np.float32) * 0.05)
        var = self.constant(np.abs(self._rng.standard_normal(channels).astype(np.float32)) + 0.9)
        out = name or self._fresh("bn")
        self.graph.add_node(Op.BATCH_NORM, [x, gamma, beta, mean, var], [out])
        return out

    def _unary(self, op_type: str, x: str, attrs=None, name: Optional[str] = None) -> str:
        out = name or self._fresh(op_type.lower())
        self.graph.add_node(op_type, [x], [out], attrs or {})
        return out

    def relu(self, x: str, name: Optional[str] = None) -> str:
        return self._unary(Op.RELU, x, name=name)

    def relu6(self, x: str, name: Optional[str] = None) -> str:
        return self._unary(Op.RELU6, x, name=name)

    def sigmoid(self, x: str, name: Optional[str] = None) -> str:
        return self._unary(Op.SIGMOID, x, name=name)

    def tanh(self, x: str, name: Optional[str] = None) -> str:
        return self._unary(Op.TANH, x, name=name)

    def softmax(self, x: str, axis: int = 1, name: Optional[str] = None) -> str:
        return self._unary(Op.SOFTMAX, x, {"axis": axis}, name=name)

    def dropout(self, x: str, ratio: float = 0.5, name: Optional[str] = None) -> str:
        return self._unary(Op.DROPOUT, x, {"ratio": ratio}, name=name)

    def max_pool(self, x: str, kernel, stride=None, pad_mode="valid", pad=(0, 0, 0, 0),
                 ceil_mode: bool = False, name: Optional[str] = None) -> str:
        stride = stride if stride is not None else kernel
        out = name or self._fresh("maxpool")
        self.graph.add_node(
            Op.MAX_POOL,
            [x],
            [out],
            {"kernel": self._pair(kernel), "stride": self._pair(stride),
             "pad": tuple(pad), "pad_mode": pad_mode, "ceil_mode": ceil_mode},
        )
        return out

    def avg_pool(self, x: str, kernel, stride=None, pad_mode="valid", pad=(0, 0, 0, 0),
                 ceil_mode: bool = False, count_include_pad: bool = False,
                 name: Optional[str] = None) -> str:
        stride = stride if stride is not None else kernel
        out = name or self._fresh("avgpool")
        self.graph.add_node(
            Op.AVG_POOL,
            [x],
            [out],
            {"kernel": self._pair(kernel), "stride": self._pair(stride),
             "pad": tuple(pad), "pad_mode": pad_mode, "ceil_mode": ceil_mode,
             "count_include_pad": count_include_pad},
        )
        return out

    def global_avg_pool(self, x: str, name: Optional[str] = None) -> str:
        return self._unary(Op.GLOBAL_AVG_POOL, x, name=name)

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        out = name or self._fresh("add")
        self.graph.add_node(Op.ADD, [a, b], [out])
        return out

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        out = name or self._fresh("mul")
        self.graph.add_node(Op.MUL, [a, b], [out])
        return out

    def split(self, x: str, sizes: Sequence[int], axis: int = 1,
              name: Optional[str] = None) -> List[str]:
        base = name or self._fresh("split")
        outputs = [f"{base}_{i}" for i in range(len(sizes))]
        self.graph.add_node(
            Op.SPLIT, [x], outputs, {"axis": axis, "sizes": tuple(sizes)}, name=base
        )
        return outputs

    def concat(self, xs: Sequence[str], axis: int = 1, name: Optional[str] = None) -> str:
        out = name or self._fresh("concat")
        self.graph.add_node(Op.CONCAT, list(xs), [out], {"axis": axis})
        return out

    def flatten(self, x: str, axis: int = 1, name: Optional[str] = None) -> str:
        return self._unary(Op.FLATTEN, x, {"axis": axis}, name=name)

    def reshape(self, x: str, shape: Sequence[int], name: Optional[str] = None) -> str:
        return self._unary(Op.RESHAPE, x, {"shape": tuple(shape)}, name=name)

    def transpose(self, x: str, perm: Sequence[int], name: Optional[str] = None) -> str:
        return self._unary(Op.TRANSPOSE, x, {"perm": tuple(perm)}, name=name)

    def gather(self, data: str, indices: str, axis: int = 0,
               name: Optional[str] = None) -> str:
        out = name or self._fresh("gather")
        self.graph.add_node(Op.GATHER, [data, indices], [out], {"axis": axis})
        return out

    def layer_norm(self, x: str, axis: int = -1, name: Optional[str] = None) -> str:
        dim = self.graph.desc(x).shape[axis]
        gamma = self.constant(np.ones(dim, np.float32))
        beta = self.constant(np.zeros(dim, np.float32))
        out = name or self._fresh("ln")
        self.graph.add_node(Op.LAYER_NORM, [x, gamma, beta], [out], {"axis": axis})
        return out

    def gelu(self, x: str, name: Optional[str] = None) -> str:
        return self._unary(Op.GELU, x, name=name)

    def matmul(self, a: str, b: str, transpose_a: bool = False,
               transpose_b: bool = False, rowwise: bool = False,
               name: Optional[str] = None) -> str:
        out = name or self._fresh("matmul")
        self.graph.add_node(
            Op.MATMUL, [a, b], [out],
            {"transpose_a": transpose_a, "transpose_b": transpose_b,
             "rowwise": rowwise},
        )
        return out

    def attention(self, q: str, k: str, v: str, lengths: Optional[str] = None,
                  k_cache: Optional[str] = None, v_cache: Optional[str] = None,
                  causal: bool = True, scale: Optional[float] = None,
                  name: Optional[str] = None) -> str:
        """Fused scaled-dot-product attention over (N, H, T, dh) tensors.

        With ``lengths``/``k_cache``/``v_cache`` the op attends over the
        valid cache prefix followed by the fresh k/v rows (autoregressive
        decode); without them it is plain (optionally causal) attention.
        """
        if (lengths is None) != (k_cache is None) or (k_cache is None) != (v_cache is None):
            raise GraphError(
                "attention: lengths, k_cache and v_cache must be given together"
            )
        inputs = [q, k, v]
        if lengths is not None:
            inputs += [lengths, k_cache, v_cache]
        out = name or self._fresh("attn")
        self.graph.add_node(
            Op.ATTENTION, inputs, [out], {"causal": causal, "scale": scale}
        )
        return out

    def lstm(self, x: str, hidden_size: int, return_sequences: bool = False,
             bias: bool = True, name: Optional[str] = None) -> str:
        features = self.graph.desc(x).shape[-1]
        w_ih = self._weight("lstm_w_ih", (4 * hidden_size, features))
        w_hh = self._weight("lstm_w_hh", (4 * hidden_size, hidden_size))
        inputs = [x, w_ih, w_hh]
        if bias:
            inputs.append(self._weight("lstm_bias", (4 * hidden_size,), scale=0.01))
        out = name or self._fresh("lstm")
        self.graph.add_node(
            Op.LSTM, inputs, [out],
            {"hidden_size": hidden_size, "return_sequences": return_sequences},
        )
        return out

    def fc(self, x: str, units: int, bias: bool = True, name: Optional[str] = None) -> str:
        desc = self.graph.desc(x)
        in_features = int(np.prod(desc.shape[1:]))
        w = self._weight("fc_weight", (units, in_features))
        inputs = [x, w]
        if bias:
            inputs.append(self._weight("fc_bias", (units,), scale=0.01))
        out = name or self._fresh("fc")
        self.graph.add_node(Op.FULLY_CONNECTED, inputs, [out], {"units": units})
        return out
