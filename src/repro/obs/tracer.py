"""Low-overhead span tracing (the observability layer's timeline source).

A :class:`Tracer` collects :class:`Span` records — named, categorised wall
-clock intervals with the recording thread's id and a nesting depth — from
every layer of the engine: converter passes, the pre-inference pipeline,
per-operator kernel execution (serial *and* parallel paths) and the
serving stack.  The same spans feed three consumers:

* Chrome trace-event JSON (:func:`repro.obs.save_chrome_trace`) for
  Perfetto / ``chrome://tracing``, with one lane per thread so branch
  parallelism is visible;
* text reports (:func:`repro.obs.top_ops_report`,
  :func:`repro.obs.waterfall_report`);
* the thin legacy views — ``RunStats`` / ``OpProfile`` rows are derived
  from ``"op"``-category spans rather than a second timing pass.

Design constraints, in order:

1. **Disabled must be (almost) free.**  The process-wide default tracer is
   disabled; ``span()`` on it returns one shared no-op context manager and
   hot loops additionally guard on ``tracer.enabled`` so per-op work is a
   single attribute check.  The overhead guard in
   ``tests/test_obs_integration.py`` holds this to <5% of a small-model
   run loop.
2. **Thread-safe recording.**  Workers in ``_execute_parallel`` and the
   micro-batcher thread record concurrently; appends happen under one
   lock, and nesting depth is tracked per-thread.
3. **No global mutation by default.**  Sessions/engines take a tracer via
   config (``SessionConfig(trace=...)``, ``EngineConfig(trace=...)``); the
   process-wide tracer (:func:`get_tracer`/:func:`set_tracer`) is only the
   fallback, so two engines can trace independently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer"]


@dataclass
class Span:
    """One recorded interval (or instant) on one thread.

    Timestamps are microseconds relative to the owning tracer's epoch
    (``time.perf_counter`` based), matching the Chrome trace-event ``ts``/
    ``dur`` convention.
    """

    name: str
    category: str
    start_us: float
    dur_us: float
    tid: int
    depth: int = 0
    instant: bool = False
    counter: bool = False
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us

    @property
    def dur_ms(self) -> float:
        return self.dur_us / 1000.0


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """An open span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "category", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: Dict) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "_SpanHandle":
        state = self._tracer._state()
        self._depth = state.depth
        state.depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self._tracer._state().depth = self._depth
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._record(
            self.name, self.category, self._start, end, self._depth, False, self.args
        )
        return False

    def set(self, **args) -> "_SpanHandle":
        """Attach attributes to the span before it closes."""
        self.args.update(args)
        return self


class Tracer:
    """A thread-safe collector of :class:`Span` records.

    ``Tracer()`` is enabled; ``Tracer(enabled=False)`` is the no-op form
    used as the process-wide default.  All recording APIs are safe to call
    from any thread.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._epoch = time.perf_counter()
        self._tls = threading.local()
        self._thread_names: Dict[int, str] = {}

    # -- recording ----------------------------------------------------------
    def span(self, name: str, category: str = "", **args):
        """Context manager timing a block; no-op when disabled.

        Usage::

            with tracer.span("memory_plan", "pre_inference", tensors=12):
                ...
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, category, args)

    def record(
        self, name: str, category: str, start_s: float, end_s: float, **args
    ) -> None:
        """Record a completed span from ``time.perf_counter()`` endpoints.

        The hot-loop API: callers time the work themselves (one pair of
        ``perf_counter`` calls they often need anyway) and hand over the
        endpoints, avoiding a context-manager allocation per operator.
        The span is attributed to the calling thread at its current
        nesting depth, i.e. as a child of whatever ``span()`` blocks are
        open on this thread.
        """
        if not self.enabled:
            return
        self._record(name, category, start_s, end_s, self._state().depth, False, args)

    def instant(self, name: str, category: str = "", **args) -> None:
        """Record a zero-duration point event (cache hit, batch dispatch)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        self._record(name, category, now, now, self._state().depth, True, args)

    def counter(self, name: str, value: float, category: str = "resource") -> None:
        """Record a counter sample (Chrome-trace "C" event).

        Perfetto renders one counter track per counter name, drawn under
        the span lanes — KV utilization, pool idle seats, batch
        occupancy over time.  Samples carry a single ``value`` arg.
        """
        if not self.enabled:
            return
        now = time.perf_counter()
        self._record(
            name, category, now, now, 0, True, {"value": float(value)},
            counter=True,
        )

    def name_thread(self, name: str, tid: Optional[int] = None) -> None:
        """Register a display name for a thread's trace lane.

        Spans auto-capture ``threading.current_thread().name`` at record
        time; this override is for threads whose Python-level name is
        uninformative or that never record spans themselves (a lane that
        only receives counter samples, say).
        """
        if tid is None:
            tid = threading.get_ident()
        with self._lock:
            self._thread_names[tid] = name

    def _state(self):
        tls = self._tls
        if not hasattr(tls, "depth"):
            tls.depth = 0
        return tls

    def _record(
        self, name, category, start_s, end_s, depth, instant, args, counter=False
    ) -> None:
        tid = threading.get_ident()
        span = Span(
            name=name,
            category=category,
            start_us=(start_s - self._epoch) * 1e6,
            dur_us=max(end_s - start_s, 0.0) * 1e6,
            tid=tid,
            depth=depth,
            instant=instant,
            counter=counter,
            args=args,
        )
        thread_name = threading.current_thread().name
        with self._lock:
            self._spans.append(span)
            self._thread_names.setdefault(tid, thread_name)

    # -- reading ------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Snapshot of every recorded span, in recording order."""
        with self._lock:
            return list(self._spans)

    @property
    def thread_names(self) -> Dict[int, str]:
        """Thread id -> thread name for every thread that recorded a span."""
        with self._lock:
            return dict(self._thread_names)

    def mark(self) -> int:
        """Current span count; pass to :meth:`spans_since` to slice a run."""
        with self._lock:
            return len(self._spans)

    def spans_since(self, mark: int) -> List[Span]:
        """Spans recorded after :meth:`mark` returned ``mark``."""
        with self._lock:
            return list(self._spans[mark:])

    def clear(self) -> None:
        """Drop all recorded spans (thread names are kept)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: Process-wide default: a disabled tracer, so un-configured sessions pay
#: only an ``enabled`` check.  Replace with :func:`set_tracer` to capture
#: everything (the CLI does this for ``cli trace``).
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled no-op unless :func:`set_tracer` ran)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide; returns the previous one (restore it)."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous
