"""Bench-regression gate: compare a fresh BENCH record to its trajectory.

Every benchmark appends one record per run to ``BENCH_<name>.json``
(:mod:`repro.bench.harness`), so each file is a performance trajectory.
This module turns the trajectory into a CI gate: the newest record is
compared against the *median of prior comparable records* with a
noise-tolerant threshold, and ``scripts/check.sh`` fails when a headline
metric regresses past it.

What gets compared
------------------
* ``timing.median_ms`` — lower is better (wall clock of the headline
  timed section).
* any key in the record's explicit ``headline`` map — benches declare
  direction per metric (``{"prefix_tokens_per_sec": {"value": v,
  "direction": "higher"}}``).
* legacy fallbacks for un-annotated records: a top-level ``speedup``
  and ``config`` keys ending in ``_tokens_per_sec`` (higher is better).

What makes records comparable
-----------------------------
Records are stamped (:func:`repro.bench.harness.bench_record`) with a
schema version, git commit and the :func:`repro.devices.host.
host_fingerprint` of the measuring machine.  Baselines are restricted to
records whose host key and schema match the fresh record's — wall-clock
numbers from a different box are not a baseline, they are a different
experiment.  Unstamped (pre-gate) records are skipped, never compared.

The default threshold is deliberately loose (50%): CI boxes are noisy
and this gate exists to catch "the new code path is 3x slower", not 3%
jitter.  Tighten per-call when the environment warrants it.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["RegressionReport", "check_trajectory", "extract_headline"]

#: Default tolerated relative slowdown before the gate fails.
DEFAULT_THRESHOLD = 0.5


def extract_headline(record: Dict) -> Dict[str, Tuple[float, str]]:
    """Pull ``{metric: (value, direction)}`` out of one BENCH record.

    ``direction`` is ``"lower"`` or ``"higher"`` (which way is better).
    """
    out: Dict[str, Tuple[float, str]] = {}
    timing = record.get("timing")
    if isinstance(timing, dict) and isinstance(timing.get("median_ms"), (int, float)):
        out["timing.median_ms"] = (float(timing["median_ms"]), "lower")

    headline = record.get("headline")
    if isinstance(headline, dict):
        for name, spec in headline.items():
            if not isinstance(spec, dict):
                continue
            value = spec.get("value")
            direction = spec.get("direction", "higher")
            if isinstance(value, (int, float)) and direction in ("lower", "higher"):
                out[f"headline.{name}"] = (float(value), direction)

    speedup = record.get("speedup")
    if isinstance(speedup, (int, float)):
        out["speedup"] = (float(speedup), "higher")
    config = record.get("config")
    if isinstance(config, dict):
        for key, value in config.items():
            if key.endswith("_tokens_per_sec") and isinstance(value, (int, float)):
                out[f"config.{key}"] = (float(value), "higher")
    return out


def _stamp_key(record: Dict) -> Optional[Tuple[object, str]]:
    """(schema, host key) of a stamped record, or None for legacy records."""
    stamp = record.get("stamp")
    if not isinstance(stamp, dict):
        return None
    host = stamp.get("host")
    host_key = host.get("key") if isinstance(host, dict) else None
    if not isinstance(host_key, str):
        return None
    return (stamp.get("schema"), host_key)


@dataclass
class RegressionReport:
    """Outcome of gating one trajectory file."""

    name: str
    path: str
    ok: bool = True
    baseline_runs: int = 0
    compared: Dict[str, Dict[str, float]] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        status = "ok" if self.ok else "REGRESSION"
        lines = [
            f"[{status}] {self.name}: {len(self.compared)} metric(s) vs "
            f"{self.baseline_runs} baseline run(s)"
        ]
        for metric, row in sorted(self.compared.items()):
            lines.append(
                f"  {metric}: fresh={row['fresh']:.4g} "
                f"baseline={row['baseline']:.4g} ({row['direction']} is better)"
            )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def check_trajectory(
    path: str,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = 1,
    history_window: int = 20,
) -> RegressionReport:
    """Gate the newest record in ``path`` against its own trajectory.

    Baselines are the up-to-``history_window`` most recent *prior*
    records whose stamp (schema + host fingerprint key) matches the
    fresh record's; per-metric baseline is their median.  A metric
    regresses when it is worse than baseline by more than ``threshold``
    (relative).  Files with no stamped fresh record or fewer than
    ``min_history`` comparable baselines pass with a note — an empty
    gate is not a failing gate.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            history = json.load(fh)
    except (OSError, ValueError) as exc:
        report = RegressionReport(name=path, path=path, ok=False)
        report.failures.append(f"unreadable trajectory: {exc}")
        return report
    if not isinstance(history, list) or not history:
        report = RegressionReport(name=path, path=path)
        report.notes.append("empty trajectory; nothing to gate")
        return report

    fresh = history[-1]
    name = fresh.get("name", path) if isinstance(fresh, dict) else path
    report = RegressionReport(name=str(name), path=path)
    if not isinstance(fresh, dict):
        report.ok = False
        report.failures.append("newest record is not an object")
        return report

    fresh_key = _stamp_key(fresh)
    if fresh_key is None:
        report.notes.append("newest record is unstamped; gate skipped")
        return report

    prior = [r for r in history[:-1] if isinstance(r, dict)]
    cross_host = sum(
        1 for r in prior if _stamp_key(r) is not None and _stamp_key(r) != fresh_key
    )
    if cross_host:
        report.notes.append(
            f"refused {cross_host} baseline record(s) from a different "
            "host/schema"
        )
    comparable = [r for r in prior if _stamp_key(r) == fresh_key]
    comparable = comparable[-history_window:]
    report.baseline_runs = len(comparable)
    if len(comparable) < min_history:
        report.notes.append(
            f"only {len(comparable)} comparable baseline run(s) "
            f"(< {min_history}); gate skipped"
        )
        return report

    fresh_metrics = extract_headline(fresh)
    if not fresh_metrics:
        report.notes.append("no headline metrics in newest record")
        return report

    for metric, (value, direction) in sorted(fresh_metrics.items()):
        samples = [
            extract_headline(r)[metric][0]
            for r in comparable
            if metric in extract_headline(r)
        ]
        if not samples:
            continue
        baseline = statistics.median(samples)
        report.compared[metric] = {
            "fresh": value,
            "baseline": baseline,
            "direction": direction,  # type: ignore[dict-item]
        }
        if direction == "lower":
            limit = baseline * (1.0 + threshold)
            if value > limit and value - baseline > 1e-9:
                report.ok = False
                report.failures.append(
                    f"{metric}: {value:.4g} > {limit:.4g} "
                    f"(baseline {baseline:.4g} +{threshold:.0%})"
                )
        else:
            limit = baseline * (1.0 - threshold)
            if value < limit and baseline - value > 1e-9:
                report.ok = False
                report.failures.append(
                    f"{metric}: {value:.4g} < {limit:.4g} "
                    f"(baseline {baseline:.4g} -{threshold:.0%})"
                )
    if not report.compared:
        report.notes.append("no overlapping headline metrics with baselines")
    return report
