"""Prometheus text exposition for the metrics registry.

:func:`to_prometheus` renders a :class:`~repro.obs.metrics.
MetricsRegistry` snapshot in the Prometheus text exposition format
(version 0.0.4), the lingua franca every scrape pipeline understands:

* counters  → ``repro_<name>_total`` with ``# TYPE ... counter``,
* gauges    → ``repro_<name>`` with ``# TYPE ... gauge``,
* histograms → Prometheus *summaries*: ``{quantile="0.5|0.9|0.99"}``
  sample lines plus ``_sum`` and ``_count`` (our histograms keep exact
  count/sum and windowed percentiles — exactly a summary's shape).

Metric names are sanitized (dots → underscores) and prefixed ``repro_``.
Output is deterministic for a given snapshot: families sorted by the
original metric name, stable float formatting via ``repr``.

:func:`parse_prometheus` is the validating inverse used by
``cli metrics --prom --selftest`` and the test suite: it checks the
grammar line by line (TYPE before samples, sample names consistent with
their family, parseable values) and returns the parsed families.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = ["to_prometheus", "parse_prometheus", "prom_name"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)

_QUANTILES = ((0.5, 50.0), (0.9, 90.0), (0.99, 99.0))


def prom_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a registry metric name into a Prometheus metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = prefix + cleaned
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render the registry in Prometheus text exposition format."""
    snap = registry.snapshot()
    lines: List[str] = []

    for name, value in snap["counters"].items():
        pname = prom_name(name, prefix) + "_total"
        lines.append(f"# HELP {pname} Counter {name!r} from the repro registry.")
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(value)}")

    for name, value in snap["gauges"].items():
        pname = prom_name(name, prefix)
        lines.append(f"# HELP {pname} Gauge {name!r} from the repro registry.")
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(value)}")

    for name, summary in snap["histograms"].items():
        pname = prom_name(name, prefix)
        lines.append(f"# HELP {pname} Histogram {name!r} from the repro registry.")
        lines.append(f"# TYPE {pname} summary")
        for q, pkey in _QUANTILES:
            key = f"p{int(pkey)}"
            lines.append(f'{pname}{{quantile="{q}"}} {_fmt(summary[key])}')
        lines.append(f"{pname}_sum {_fmt(summary['sum'])}")
        lines.append(f"{pname}_count {_fmt(summary['count'])}")

    return "\n".join(lines) + "\n"


def _family_of(sample_name: str) -> str:
    for suffix in ("_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse (and validate) text exposition; raises ``ValueError`` on errors.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``.
    """
    families: Dict[str, Dict[str, object]] = {}
    current: Optional[str] = None

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            _, _, fname, ftype = parts
            if ftype not in ("counter", "gauge", "summary", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: unknown type {ftype!r}")
            if fname in families:
                raise ValueError(f"line {lineno}: duplicate family {fname!r}")
            families[fname] = {"type": ftype, "samples": []}
            current = fname
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        name = match.group("name")
        family = _family_of(name)
        if current is None or family != current:
            raise ValueError(
                f"line {lineno}: sample {name!r} outside its TYPE'd family "
                f"(current family: {current!r})"
            )
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                if "=" not in pair:
                    raise ValueError(f"line {lineno}: malformed label {pair!r}")
                key, _, val = pair.partition("=")
                if not (val.startswith('"') and val.endswith('"')):
                    raise ValueError(f"line {lineno}: unquoted label value {pair!r}")
                labels[key.strip()] = val[1:-1]
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            )
        samples: List[Tuple[str, Dict[str, str], float]] = families[current]["samples"]  # type: ignore[assignment]
        samples.append((name, labels, value))

    for fname, family in families.items():
        if not family["samples"]:
            raise ValueError(f"family {fname!r} has a TYPE line but no samples")
    return families
