"""Periodic resource sampling: counter tracks for Perfetto and BENCH.

A :class:`ResourceSampler` polls a set of named sources — callables
returning the current value of a resource counter (KV-slab page/token
utilization, free pages, pool idle seats, batch occupancy, prefix-cache
hit rate) — and fans each sample out three ways:

* a Chrome-trace counter ("C") event via ``Tracer.counter`` so Perfetto
  renders live counter tracks under the span lanes,
* a gauge in the metrics registry (so ``cli metrics --prom`` exports the
  latest value), and
* a bounded in-memory history, exported by :meth:`series` as parallel
  lists for the ``BENCH_*.json`` trajectories.

Sampling is driven either explicitly (``sample()`` at natural ticks —
the continuous-batching scheduler calls it once per decode step) or by a
background thread (``start(interval_ms)`` / ``stop()``) for the serving
engine, where there is no single loop to hook.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .metrics import MetricsRegistry, get_metrics
from .tracer import Tracer, get_tracer

__all__ = ["ResourceSampler"]


class ResourceSampler:
    """Samples named resource counters into traces, gauges and history."""

    def __init__(
        self,
        sources: Optional[Dict[str, Callable[[], float]]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_samples: int = 4096,
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.sources: Dict[str, Callable[[], float]] = dict(sources or {})
        self._tracer = tracer
        self._metrics = metrics
        self._history: Dict[str, Deque[float]] = {}
        self._max_samples = max_samples
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.samples = 0

    def add_source(self, name: str, fn: Callable[[], float]) -> None:
        with self._lock:
            self.sources[name] = fn

    def _tracer_or_default(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_metrics()

    # -- sampling -----------------------------------------------------------
    def sample(self, extra: Optional[Dict[str, float]] = None) -> Dict[str, float]:
        """Take one sample of every source (plus ad-hoc ``extra`` values).

        Sources that raise are skipped for that tick — a closing engine
        must not take the sampler thread down with it.
        """
        with self._lock:
            sources = list(self.sources.items())
        values: Dict[str, float] = {}
        for name, fn in sources:
            try:
                values[name] = float(fn())
            except Exception:
                continue
        for name, value in (extra or {}).items():
            values[name] = float(value)

        tracer = self._tracer_or_default()
        registry = self._registry()
        for name, value in values.items():
            if tracer.enabled:
                tracer.counter(name, value)
            registry.gauge(name).set(value)
        with self._lock:
            for name, value in values.items():
                history = self._history.get(name)
                if history is None:
                    history = self._history[name] = deque(maxlen=self._max_samples)
                history.append(value)
            self.samples += 1
        return values

    def series(self) -> Dict[str, List[float]]:
        """Per-counter sample history, oldest first (for BENCH records)."""
        with self._lock:
            return {name: list(h) for name, h in sorted(self._history.items())}

    # -- background mode ----------------------------------------------------
    def start(self, interval_ms: float = 100.0) -> None:
        """Sample on a background thread every ``interval_ms`` until stop()."""

        def _loop() -> None:
            while not self._stop.wait(interval_ms / 1000.0):
                self.sample()

        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            thread = threading.Thread(
                target=_loop, name="resource-sampler", daemon=True
            )
            self._thread = thread
        thread.start()

    def stop(self) -> None:
        # Join outside the lock: the sampler loop takes it in sample().
        with self._lock:
            thread = self._thread
            self._thread = None
            self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
