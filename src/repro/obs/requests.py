"""Request-scoped timelines: the SLO layer over spans and metrics.

The tracer (:mod:`repro.obs.tracer`) records *what the engine did*; this
module records *what each request experienced*.  A request ID is minted
at the front door (``Engine.infer`` / ``GenerationEngine.generate``) and
every stage it passes through — pool checkout, micro-batch assembly,
continuous-batching admission, prefill, each decode step, preemption,
KV eviction, prefix-cache hits, fault recovery — stamps an event on its
:class:`RequestTimeline`.  From those stamps the tracker derives the
serving-tier SLO metrics the ROADMAP (and MNN-LLM) treat as headline
numbers:

* ``slo.queue_wait_ms``  — enqueue → admission,
* ``slo.ttft_ms``        — enqueue → first emitted token,
* ``slo.tpot_ms``        — inter-arrival gap between consecutive tokens,
* ``slo.tokens_per_sec`` — per-request decode throughput,
* ``slo.e2e_ms``         — enqueue → finish.

Design constraints mirror the tracer's:

1. **Disabled must be (almost) free.**  The process-wide default tracker
   is disabled; ``start()`` on it returns one shared no-op timeline and
   hot paths guard on ``tracker.enabled``.  The overhead guard in
   ``tests/test_obs_requests.py`` holds the disabled cost to <5% of a
   small-model run loop, same budget as the tracer's.
2. **Thread-safe.**  ``Engine.infer`` is called from many threads; the
   tracker's request table and the event sequence counter are locked.
   A single timeline is only ever stamped by the thread driving that
   request, so per-timeline state is lock-free.
3. **Deterministic where it matters.**  Event *sequence numbers* are a
   tracker-global monotonic counter, and ``to_dict(deterministic=True)``
   drops wall-clock fields — so two same-seed chaos storms produce
   byte-identical flight-recorder postmortems.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, get_metrics

__all__ = [
    "RequestTimeline",
    "RequestTracker",
    "TimelineEvent",
    "get_request_tracker",
    "resolve_request_tracker",
    "set_request_tracker",
]


class TimelineEvent:
    """One stamped point on a request's timeline.

    ``seq`` is a tracker-global monotonic sequence number (deterministic
    under a seeded single-threaded workload); ``t_ms`` is wall time since
    the request was enqueued (dropped by deterministic serialization).
    """

    __slots__ = ("seq", "request_id", "name", "t_ms", "args")

    def __init__(self, seq: int, request_id: str, name: str, t_ms: float, args: Dict):
        self.seq = seq
        self.request_id = request_id
        self.name = name
        self.t_ms = t_ms
        self.args = args

    def to_dict(self, deterministic: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "request": self.request_id,
            "name": self.name,
        }
        if deterministic:
            # Wall-clock stamps and any float-valued argument (durations,
            # rates, utilizations measured mid-flight) vary run to run;
            # ints, strings and bools are replay-stable.
            out["args"] = {
                k: v
                for k, v in sorted(self.args.items())
                if not isinstance(v, float)
            }
        else:
            out["t_ms"] = round(self.t_ms, 3)
            out["args"] = dict(sorted(self.args.items()))
        return out


class _NullTimeline:
    """Shared no-op timeline returned by a disabled tracker."""

    __slots__ = ()
    request_id = ""
    enabled = False

    def event(self, name: str, **args) -> None:
        return None

    def admitted(self, **args) -> None:
        return None

    def token(self, n: int = 1) -> None:
        return None

    def finish(self, reason: str = "ok", **args) -> None:
        return None


_NULL_TIMELINE = _NullTimeline()


class RequestTimeline:
    """The per-request record: milestones, events, and derived SLO stats.

    Stamped by exactly one thread (the one driving the request), so the
    milestone fields need no lock; appending events goes through the
    owning tracker, which serializes the global sequence counter and the
    flight-recorder notification.
    """

    __slots__ = (
        "request_id",
        "kind",
        "enabled",
        "_tracker",
        "_t0",
        "queue_wait_ms",
        "ttft_ms",
        "tokens",
        "finish_reason",
        "e2e_ms",
        "_last_token_s",
        "events",
    )

    def __init__(self, tracker: "RequestTracker", request_id: str, kind: str) -> None:
        self.request_id = request_id
        self.kind = kind
        self.enabled = True
        self._tracker = tracker
        self._t0 = time.perf_counter()
        self.queue_wait_ms: Optional[float] = None
        self.ttft_ms: Optional[float] = None
        self.tokens = 0
        self.finish_reason: Optional[str] = None
        self.e2e_ms: Optional[float] = None
        self._last_token_s: Optional[float] = None
        self.events: List[TimelineEvent] = []

    def _elapsed_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1000.0

    # -- stamping -----------------------------------------------------------
    def event(self, name: str, **args) -> None:
        """Stamp a named event (preemption, KV eviction, fault, ...)."""
        self._tracker._stamp(self, name, args)

    def admitted(self, **args) -> None:
        """The request won admission (pool seat, batch slot, KV pages).

        The first call fixes ``queue_wait_ms``; later calls (a preempted
        sequence rejoining the batch) stamp a ``readmitted`` event only.
        """
        if self.queue_wait_ms is None:
            self.queue_wait_ms = self._elapsed_ms()
            self._tracker._observe("slo.queue_wait_ms", self.queue_wait_ms)
            self.event("admitted", **args)
        else:
            self.event("readmitted", **args)

    def token(self, n: int = 1) -> None:
        """A token was emitted; the first one fixes TTFT, the rest TPOT."""
        now = time.perf_counter()
        if self.ttft_ms is None:
            self.ttft_ms = (now - self._t0) * 1000.0
            self._tracker._observe("slo.ttft_ms", self.ttft_ms)
            self.event("first_token")
        else:
            gap_ms = (now - self._last_token_s) * 1000.0
            self._tracker._observe("slo.tpot_ms", gap_ms)
        self._last_token_s = now
        self.tokens += n

    def finish(self, reason: str = "ok", **args) -> None:
        """Close the timeline; derives tokens/sec and end-to-end latency."""
        if self.finish_reason is not None:
            return
        self.finish_reason = reason
        self.e2e_ms = self._elapsed_ms()
        tracker = self._tracker
        tracker._observe("slo.e2e_ms", self.e2e_ms)
        if self.tokens and self.e2e_ms > 0:
            tracker._observe(
                "slo.tokens_per_sec", self.tokens / (self.e2e_ms / 1000.0)
            )
        self.event("finish", reason=reason, tokens=self.tokens, **args)
        tracker._retire(self)

    # -- reading ------------------------------------------------------------
    def to_dict(self, deterministic: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "request": self.request_id,
            "kind": self.kind,
            "tokens": self.tokens,
            "finish_reason": self.finish_reason,
            "events": [e.to_dict(deterministic) for e in self.events],
        }
        if not deterministic:
            out["queue_wait_ms"] = self.queue_wait_ms
            out["ttft_ms"] = self.ttft_ms
            out["e2e_ms"] = self.e2e_ms
        return out


class RequestTracker:
    """Mints request IDs, owns live timelines, forwards to the recorder.

    ``RequestTracker()`` is enabled; ``RequestTracker(enabled=False)`` is
    the no-op form used as the process-wide default so un-configured
    engines pay a single attribute check per request.
    """

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        recorder=None,
        max_events: int = 512,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics
        self.recorder = recorder
        self.max_events = max_events
        self._lock = threading.Lock()
        self._seq = 0
        self._ids = 0
        self._live: Dict[str, RequestTimeline] = {}
        self._finished = 0

    def _registry(self) -> MetricsRegistry:
        return self.metrics if self.metrics is not None else get_metrics()

    def _observe(self, name: str, value: float) -> None:
        self._registry().histogram(name).observe(value)

    # -- lifecycle ----------------------------------------------------------
    def next_id(self, prefix: str = "req") -> str:
        """Mint a deterministic, tracker-unique request ID."""
        with self._lock:
            n = self._ids
            self._ids += 1
        return f"{prefix}-{n}"

    def start(self, request_id: str, kind: str = "request", **args):
        """Open a timeline (stamps ``enqueued``); no-op when disabled."""
        if not self.enabled:
            return _NULL_TIMELINE
        timeline = RequestTimeline(self, request_id, kind)
        with self._lock:
            self._live[request_id] = timeline
        self._registry().counter("slo.requests").inc()
        self._stamp(timeline, "enqueued", dict(args, kind=kind))
        return timeline

    def get(self, request_id: str) -> Optional[RequestTimeline]:
        with self._lock:
            return self._live.get(request_id)

    def live(self) -> List[str]:
        """IDs of requests that started but have not finished, sorted."""
        with self._lock:
            return sorted(self._live)

    def _retire(self, timeline: RequestTimeline) -> None:
        with self._lock:
            self._live.pop(timeline.request_id, None)
            self._finished += 1
        if timeline.finish_reason not in (None, "ok", "stop", "length"):
            self._registry().counter("slo.failures").inc()

    def _stamp(self, timeline: RequestTimeline, name: str, args: Dict) -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
        event = TimelineEvent(
            seq, timeline.request_id, name, timeline._elapsed_ms(), args
        )
        if len(timeline.events) < self.max_events:
            timeline.events.append(event)
        if self.recorder is not None:
            self.recorder.record(event)

    # -- postmortems --------------------------------------------------------
    def dump(self, trigger: str, request_id: Optional[str] = None, **extra):
        """Ask the attached flight recorder for a postmortem artifact.

        Returns the artifact path, or ``None`` when disabled or no
        recorder is attached (the common production-off configuration).
        """
        if not self.enabled or self.recorder is None:
            return None
        return self.recorder.dump(
            trigger,
            request_id=request_id,
            live_requests=self.live(),
            **extra,
        )


def resolve_request_tracker(spec, metrics: Optional[MetricsRegistry] = None):
    """Resolve an engine-config ``requests`` field into a tracker.

    ``spec`` may be a :class:`RequestTracker` (used as-is), ``True``
    (build a fresh enabled tracker observing into ``metrics``), or
    ``None``/``False`` (fall back to the process-wide tracker, which is
    disabled unless :func:`set_request_tracker` installed one).
    """
    if isinstance(spec, RequestTracker):
        return spec
    if spec:
        return RequestTracker(metrics=metrics)
    return get_request_tracker()


#: Process-wide default: a disabled tracker, so un-configured engines pay
#: only an ``enabled`` check per request.  Replace with
#: :func:`set_request_tracker` to capture every request.
_GLOBAL_TRACKER = RequestTracker(enabled=False)


def get_request_tracker() -> RequestTracker:
    """The process-wide tracker (disabled unless :func:`set_request_tracker` ran)."""
    return _GLOBAL_TRACKER


def set_request_tracker(tracker: RequestTracker) -> RequestTracker:
    """Install ``tracker`` process-wide; returns the previous one (restore it)."""
    global _GLOBAL_TRACKER
    previous = _GLOBAL_TRACKER
    _GLOBAL_TRACKER = tracker
    return previous
