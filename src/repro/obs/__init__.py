"""Observability: span tracing, metrics, and trace export.

The paper's central claim — pre-inference work pays for itself at
execution time — is only checkable with end-to-end measurement.  This
package provides the three pieces:

* :mod:`repro.obs.tracer` — a low-overhead, thread-safe span tracer with
  a process-wide no-op default (``SessionConfig(trace=...)`` /
  ``EngineConfig(trace=...)`` opt in per session/engine);
* :mod:`repro.obs.metrics` — counters, gauges and p50/p90/p99 histograms
  behind :class:`MetricsRegistry`; the serving stats objects are thin
  views over one of these;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) plus text top-K-ops and waterfall reports.

Surfaced on the command line as ``cli trace <model>``, ``cli metrics
<model>`` and ``cli serve --trace``.
"""

from .export import (
    chrome_trace_events,
    save_chrome_trace,
    to_chrome_trace,
    top_ops_report,
    waterfall_report,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from .tracer import Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "chrome_trace_events",
    "to_chrome_trace",
    "save_chrome_trace",
    "top_ops_report",
    "waterfall_report",
]
