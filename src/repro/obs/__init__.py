"""Observability: spans, metrics, request timelines, and exports.

The paper's central claim — pre-inference work pays for itself at
execution time — is only checkable with end-to-end measurement.  This
package provides the pieces:

* :mod:`repro.obs.tracer` — a low-overhead, thread-safe span tracer with
  a process-wide no-op default (``SessionConfig(trace=...)`` /
  ``EngineConfig(trace=...)`` opt in per session/engine), including
  counter samples for Perfetto counter tracks;
* :mod:`repro.obs.metrics` — counters, gauges and p50/p90/p99 histograms
  behind :class:`MetricsRegistry`; the serving stats objects are thin
  views over one of these;
* :mod:`repro.obs.requests` — request-scoped SLO timelines (queue wait,
  TTFT, TPOT, tokens/sec) minted at the engine front doors and stamped
  through admission, prefill, decode, preemption and fault recovery;
* :mod:`repro.obs.recorder` — a bounded flight recorder that dumps
  deterministic postmortem JSON on ``DeadlineExceeded``, ``KVCacheOOM``,
  isolated faults and sanitizer findings;
* :mod:`repro.obs.resources` — periodic resource sampling (KV/arena
  utilization, pool idle, batch occupancy, prefix hit rate) fanned out
  to counter tracks, gauges and BENCH series;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) plus text top-K-ops and waterfall reports;
* :mod:`repro.obs.prom` — Prometheus text exposition of a registry
  (``cli metrics --prom``) with a validating parser for self-tests;
* :mod:`repro.obs.regress` — the bench-regression gate comparing fresh
  ``BENCH_*.json`` records against their stored trajectory.

Surfaced on the command line as ``cli trace <model>``, ``cli metrics
[--prom]``, ``cli regress`` and ``cli serve --trace``.
"""

from .export import (
    chrome_trace_events,
    save_chrome_trace,
    to_chrome_trace,
    top_ops_report,
    waterfall_report,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from .prom import parse_prometheus, to_prometheus
from .recorder import FlightRecorder
from .regress import RegressionReport, check_trajectory
from .requests import (
    RequestTimeline,
    RequestTracker,
    TimelineEvent,
    get_request_tracker,
    set_request_tracker,
)
from .resources import ResourceSampler
from .tracer import Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "RequestTimeline",
    "RequestTracker",
    "TimelineEvent",
    "get_request_tracker",
    "set_request_tracker",
    "FlightRecorder",
    "ResourceSampler",
    "to_prometheus",
    "parse_prometheus",
    "RegressionReport",
    "check_trajectory",
    "chrome_trace_events",
    "to_chrome_trace",
    "save_chrome_trace",
    "top_ops_report",
    "waterfall_report",
]
